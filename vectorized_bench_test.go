package cda

// vectorized_bench_test.go benchmarks the columnar engine against the
// row-at-a-time oracle it replaced. Every BenchmarkVectorized* family
// runs the same fixture through engine=row (Engine.RowOracle, the
// legacy path kept as the differential-testing oracle) and engine=vec
// (the default columnar path), so
//
//	go test -bench='^BenchmarkVectorized'
//
// reads as a row-vs-columnar table. The engines are byte-identical by
// construction — Rows, Prov, Stats, and Fingerprint all match, which
// the differential tests in internal/sqldb enforce; these benches
// measure only the speed side. scripts/bench.sh snapshots them (third
// pass) into BENCH_vectorized.json and scripts/benchdiff.go fails if
// any E-bench regressed against BENCH_baseline.json.

import (
	"context"
	"fmt"
	"testing"

	"github.com/reliable-cda/cda/internal/sqldb"
)

// vectorizedEngines yields the two engine configurations under test.
func vectorizedEngines(b *testing.B, run func(b *testing.B, mk func() *sqldb.Engine)) {
	db := parallelBenchDB(120000, 300)
	for _, cfg := range []struct {
		name string
		row  bool
	}{{"engine=row", true}, {"engine=vec", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			run(b, func() *sqldb.Engine {
				e := sqldb.NewEngine(db)
				e.RowOracle = cfg.row
				return e
			})
		})
	}
}

func BenchmarkVectorizedFilterScan(b *testing.B) {
	vectorizedEngines(b, func(b *testing.B, mk func() *sqldb.Engine) {
		e := mk()
		for i := 0; i < b.N; i++ {
			res, err := e.Query("SELECT * FROM facts WHERE v > 75 AND grp = 'g3'")
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("empty result; fixture broken")
			}
		}
	})
}

func BenchmarkVectorizedHashJoinAgg(b *testing.B) {
	const q = "SELECT d.label, AVG(f.v) FROM facts f JOIN dims d ON f.k = d.k GROUP BY d.label ORDER BY d.label"
	vectorizedEngines(b, func(b *testing.B, mk func() *sqldb.Engine) {
		e := mk()
		for i := 0; i < b.N; i++ {
			res, err := e.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.HashJoins != 1 {
				b.Fatalf("expected a hash join, stats = %+v", res.Stats)
			}
		}
	})
}

func BenchmarkVectorizedGroupAgg(b *testing.B) {
	const q = "SELECT grp, COUNT(*), AVG(v), MIN(v), MAX(v) FROM facts WHERE k < 200 GROUP BY grp ORDER BY grp"
	vectorizedEngines(b, func(b *testing.B, mk func() *sqldb.Engine) {
		e := mk()
		for i := 0; i < b.N; i++ {
			res, err := e.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("empty result; fixture broken")
			}
		}
	})
}

// BenchmarkVectorizedStreamE7 measures the streaming path end to end:
// plan once, consume the driving table in the default four batches,
// re-running the non-decomposable tail per snapshot. The metric to
// compare against is BenchmarkVectorizedHashJoinAgg/engine=vec — the
// same answer without partial results.
func BenchmarkVectorizedStreamE7(b *testing.B) {
	db := parallelBenchDB(120000, 300)
	stmt, err := sqldb.Parse("SELECT d.label, AVG(f.v) FROM facts f JOIN dims d ON f.k = d.k GROUP BY d.label ORDER BY d.label")
	if err != nil {
		b.Fatal(err)
	}
	e := sqldb.NewEngine(db)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		snapshots := 0
		err := e.ExecStream(ctx, stmt, sqldb.StreamOptions{}, func(sqldb.Partial) error {
			snapshots++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if snapshots < 2 {
			b.Fatalf("expected streaming snapshots, got %d", snapshots)
		}
	}
}

// BenchmarkVectorizedProbeScaling re-measures the hash-join probe at
// every worker count through the columnar engine — the fixture whose
// row-engine scaling regressed at workers>=4 before chunk
// oversubscription (parallel.Options.ChunkFactor) evened out probe
// skew.
func BenchmarkVectorizedProbeScaling(b *testing.B) {
	db := parallelBenchDB(120000, 300)
	const q = "SELECT d.label, AVG(f.v) FROM facts f JOIN dims d ON f.k = d.k GROUP BY d.label ORDER BY d.label"
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := sqldb.NewEngine(db)
			e.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
