package cda

// vstore_bench_test.go measures the versioned store's three costs:
//
//   - BenchmarkVstoreCommitDelta: commit latency as a function of how
//     many rows changed since the previous version (1/16/256 of a
//     4096-row table). Structural sharing should make the cost scale
//     with the delta, not the table — the chunks/op metric makes the
//     shape visible in benchmark output.
//   - BenchmarkVstoreAsOf: materializing a historical database version
//     from its Merkle tree (the time-travel read path behind
//     GET /sessions/{id}/asof/{turn} and DataAsOf).
//   - BenchmarkVstoreCatchUp: replica catch-up via chunk negotiation
//     when the replica already holds the previous version (ships only
//     the delta) versus a cold replica pulling the full closure (the
//     inline-snapshot equivalent).
//
// scripts/bench.sh snapshots BenchmarkVstore* into BENCH_vstore.json;
// the check gate runs each once as a smoke test.

import (
	"fmt"
	"testing"

	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/vstore"
)

const vstoreBenchRows = 4096

// vstoreBenchDB builds a deterministic 3-column table large enough to
// span many leaf chunks (DefaultLeafRows is 256).
func vstoreBenchDB(rows int) *storage.Database {
	db := storage.NewDatabase("bench")
	t := storage.NewTable("metrics", storage.Schema{
		{Name: "id", Kind: storage.KindInt},
		{Name: "region", Kind: storage.KindString},
		{Name: "value", Kind: storage.KindFloat},
	})
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			storage.Int(int64(i)),
			storage.Str(regions[i%len(regions)]),
			storage.Float(float64(i)*1.5),
		)
	}
	db.Put(t)
	return db
}

func BenchmarkVstoreCommitDelta(b *testing.B) {
	for _, delta := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			s := vstore.NewMemory()
			db := vstoreBenchDB(vstoreBenchRows)
			tab, err := db.Get("metrics")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.CommitDatabase("data", db, 0); err != nil {
				b.Fatal(err)
			}
			base := s.NumChunks()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < delta; j++ {
					// Unique value per (iteration, row) so every commit
					// really produces a new version.
					r := (i*delta + j) % vstoreBenchRows
					tab.Column(2)[r] = storage.Float(float64(i*delta+j) + 0.25)
				}
				if _, err := s.CommitDatabase("data", db, i+1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(s.NumChunks()-base)/float64(b.N), "chunks/op")
		})
	}
}

func BenchmarkVstoreAsOf(b *testing.B) {
	s := vstore.NewMemory()
	db := vstoreBenchDB(vstoreBenchRows)
	tab, err := db.Get("metrics")
	if err != nil {
		b.Fatal(err)
	}
	const versions = 8
	for k := 0; k < versions; k++ {
		if k > 0 {
			tab.Column(2)[k] = storage.Float(float64(k) * 3.5)
		}
		if _, err := s.CommitDatabase("data", db, k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mdb, _, err := s.DatabaseAsOf("data", i%versions)
		if err != nil {
			b.Fatal(err)
		}
		mt, err := mdb.Get("metrics")
		if err != nil {
			b.Fatal(err)
		}
		if mt.NumRows() != vstoreBenchRows {
			b.Fatalf("materialized %d rows, want %d", mt.NumRows(), vstoreBenchRows)
		}
	}
}

func BenchmarkVstoreCatchUp(b *testing.B) {
	prim := vstore.NewMemory()
	db := vstoreBenchDB(vstoreBenchRows)
	tab, err := db.Get("metrics")
	if err != nil {
		b.Fatal(err)
	}
	head0, err := prim.CommitDatabase("data", db, 0)
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 16; j++ {
		tab.Column(2)[j*17] = storage.Float(float64(j) + 0.5)
	}
	head1, err := prim.CommitDatabase("data", db, 1)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	b.Run("negotiated", func(b *testing.B) {
		moved := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rep := vstore.NewMemory()
			if _, err := rep.PullFrom(prim, head0.Hash, batch); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			// The measured span: a replica at version 0 negotiating the
			// missing closure of version 1 — only the delta moves.
			n, err := rep.PullFrom(prim, head1.Hash, batch)
			if err != nil {
				b.Fatal(err)
			}
			moved += n
		}
		b.ReportMetric(float64(moved)/float64(b.N), "chunks/op")
	})
	b.Run("fullsnapshot", func(b *testing.B) {
		moved := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rep := vstore.NewMemory()
			b.StartTimer()
			// A cold replica pulls the entire closure — what an inline
			// full-snapshot transfer would cost.
			n, err := rep.PullFrom(prim, head1.Hash, batch)
			if err != nil {
				b.Fatal(err)
			}
			moved += n
		}
		b.ReportMetric(float64(moved)/float64(b.N), "chunks/op")
	})
}
