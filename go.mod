module github.com/reliable-cda/cda

go 1.22
