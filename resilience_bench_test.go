package cda

// resilience_bench_test.go measures the overhead and behavior of the
// fault-injection and resilience layer:
//
//   - BenchmarkResilienceOverhead: the cost Respond pays for running
//     the NL2SQL path through the retry/breaker executor when no
//     faults are configured — the production tax of the layer.
//   - BenchmarkResilienceChaosReplay: one full Figure 1 chaos replay
//     per iteration at a moderate fault rate, the end-to-end price of
//     retries, backoff (on the virtual clock), and ladder fallbacks.
//   - BenchmarkResilienceRetrier / Breaker: the micro costs of one
//     guarded call on the happy path.
//
// The check gate runs every BenchmarkResilience* once as a smoke test
// alongside the BenchmarkParallel* family.

import (
	"context"
	"testing"

	"github.com/reliable-cda/cda/internal/chaos"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/faults"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/workload"
)

func BenchmarkResilienceOverhead(b *testing.B) {
	dom := workload.NewSwissDomain(1)
	sys := core.New(core.Config{
		DB: dom.DB, Catalog: dom.Catalog, KG: dom.KG, Vocab: dom.Vocab,
		Documents: dom.Documents, Now: dom.Now, Seed: 1,
		Clock: resilience.NewVirtualClock(),
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := sys.NewSession()
		if _, err := sys.Respond(ctx, sess, "how many employment where canton is Zurich"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResilienceChaosReplay(b *testing.B) {
	sc := chaos.Scenario{
		Seed:         1,
		Rates:        faults.Rates{Error: 0.2, Latency: 0.1, Corrupt: 0.1},
		FaultStorage: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chaos.ReplaySwiss(context.Background(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResilienceRetrier(b *testing.B) {
	r := resilience.NewRetrier(resilience.RetryPolicy{}, resilience.NewVirtualClock(), 1)
	ctx := context.Background()
	op := func() error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Do(ctx, op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResilienceBreaker(b *testing.B) {
	ex := resilience.NewExecutor(resilience.Options{}, resilience.NewVirtualClock(), 1)
	ctx := context.Background()
	op := func() error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Do(ctx, "bench", op); err != nil {
			b.Fatal(err)
		}
	}
}
