// Swiss-workforce: an executable reproduction of the paper's Figure 1
// dialogue. The four user turns from the paper run against the
// synthetic Swiss labour-market domain, and each system answer is
// printed with the reliability-property annotations from the figure
// (P1–P5).
//
//	go run ./examples/swiss-workforce
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	d := workload.NewSwissDomain(42)
	sys := core.New(core.Config{
		DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now, Seed: 42,
	})
	sess := sys.NewSession()

	for i, turn := range workload.Figure1Turns() {
		fmt.Printf("User: %s\n", turn)
		ans, err := sys.Respond(context.Background(), sess, turn)
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range strings.Split(ans.Text, "\n") {
			fmt.Println("System: " + line)
		}
		var props []string
		if strings.Contains(ans.Text, "I am assuming") {
			props = append(props, "(P2) grounding of terminology", "(P3) explainability of the assumption")
		}
		if ans.Clarification != "" {
			props = append(props, "(P5) guidance via follow-up question")
		}
		if len(ans.Explanation.Sources) > 0 {
			props = append(props, "(P4) soundness by provenance: "+strings.Join(ans.Explanation.Sources, "; "))
		}
		props = append(props, fmt.Sprintf("(P4) soundness by confidence: %.0f%%", ans.Confidence*100))
		if ans.Code != "" {
			props = append(props, "(P3) explainability by code:")
		}
		for _, p := range props {
			fmt.Println("        " + p)
		}
		if ans.Code != "" {
			for _, line := range strings.Split(ans.Code, "\n") {
				fmt.Println("            " + line)
			}
		}
		if i < 3 {
			fmt.Println()
		}
	}
}
