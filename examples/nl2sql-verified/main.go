// NL2SQL-verified: demonstrates the reliability ladder on a noisy
// simulated LLM. The same questions run through (a) the
// generation-only baseline and (b) the grounded + constrained +
// verified pipeline, showing how verification turns hallucinations
// into either correct answers or explicit abstentions.
//
//	go run ./examples/nl2sql-verified
package main

import (
	"fmt"
	"log"

	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	w := workload.GenNL2SQL(6, 0.6, 11)
	grounder := ground.NewGrounder(nil, w.DB, w.Vocab)
	gold := sqldb.NewEngine(w.DB)

	const noise = 0.15
	configure := func(tr *nl2sql.Translator, opts nl2sql.Options) {
		tr.Channel = nlmodel.Channel{HallucinationRate: noise, Fabrications: w.Fabrications}
		tr.Options = opts
	}

	for i, qa := range w.Pairs {
		fmt.Printf("Q%d: %s\n", i+1, qa.Question)
		goldRes, err := gold.Query(qa.GoldSQL)
		if err != nil {
			log.Fatal(err)
		}

		base := nl2sql.NewTranslator(w.DB, grounder, int64(i))
		configure(base, nl2sql.Options{Samples: 1, MaxRepairAttempts: 1})
		b, err := base.Translate(qa.Question)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  baseline:  %s\n             -> %s\n", b.SQL, verdict(b, goldRes))

		full := nl2sql.NewTranslator(w.DB, grounder, int64(i))
		configure(full, nl2sql.DefaultOptions())
		f, err := full.Translate(qa.Question)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  verified:  %s\n             -> %s (confidence %.0f%%)\n\n",
			f.SQL, verdict(f, goldRes), f.Confidence*100)
	}
}

func verdict(tr *nl2sql.Translation, gold *sqldb.Result) string {
	switch {
	case tr.Abstained:
		return "ABSTAINED (nothing verifiable)"
	case tr.Result == nil:
		return "FAILED to execute (reported anyway — this is the hallucination risk)"
	case tr.Result.Fingerprint() == gold.Fingerprint():
		return "correct"
	default:
		return "WRONG result"
	}
}
