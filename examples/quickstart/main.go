// Quickstart: build a tiny database, wire up the reliable CDA
// system, and ask it one question. Shows the answer annotations every
// response carries: confidence, sources, generated code, and
// next-step suggestions.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/storage"
)

func main() {
	// 1. Data: one table of city populations.
	cities := storage.NewTable("cities", storage.Schema{
		{Name: "name", Kind: storage.KindString, Description: "city name"},
		{Name: "country", Kind: storage.KindString, Description: "country"},
		{Name: "population", Kind: storage.KindInt, Description: "inhabitants"},
	})
	cities.MustAppendRow(storage.Str("Zurich"), storage.Str("Switzerland"), storage.Int(434008))
	cities.MustAppendRow(storage.Str("Geneva"), storage.Str("Switzerland"), storage.Int(203856))
	cities.MustAppendRow(storage.Str("Lyon"), storage.Str("France"), storage.Int(522969))
	db := storage.NewDatabase("demo")
	db.Put(cities)

	// 2. Catalog entry so discovery and provenance can cite the data.
	cat := catalog.New()
	cat.Add(catalog.Dataset{
		ID: "cities", Name: "City populations",
		Description: "population counts for European cities",
		Source:      "https://example.org/city-stats",
		Table:       cities,
	})

	// 3. Domain vocabulary: users say "towns", the schema says
	// "cities".
	vocab := ground.NewVocabulary()
	vocab.AddSynonym("towns", "cities")
	vocab.AddSynonym("people", "population")

	// 4. The system.
	sys := core.New(core.Config{DB: db, Catalog: cat, Vocab: vocab, Seed: 1})
	sess := sys.NewSession()

	// 5. Ask — note the synonyms: grounding resolves them.
	for _, q := range []string{
		"how many towns where country is Switzerland",
		"what is the total people in towns",
	} {
		ans, err := sys.Respond(context.Background(), sess, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\nA: %s\n", q, ans.Text)
		fmt.Printf("   confidence: %.0f%%   sql: %s\n", ans.Confidence*100, ans.Code)
		if len(ans.Explanation.Sources) > 0 {
			fmt.Printf("   sources: %s\n", strings.Join(ans.Explanation.Sources, "; "))
		}
		fmt.Println()
	}
}
