// Provenance-audit: demonstrates the P3/P4 machinery end to end —
// per-row why-provenance from the SQL engine, the answer-level
// provenance DAG with its losslessness and invertibility checks,
// where-from and where-to traversal, and the Graphviz export.
//
//	go run ./examples/provenance-audit
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/reliable-cda/cda/internal/explain"
	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	d := workload.NewSwissDomain(42)
	engine := sqldb.NewEngine(d.DB)

	// 1. Row-level why-provenance: which base rows produced each
	// output row of an aggregate query.
	sql := "SELECT canton, SUM(employees) FROM employment WHERE year = 2024 GROUP BY canton ORDER BY canton LIMIT 3"
	res, err := engine.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query:", sql)
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Printf("  %s  <- derived from %d base rows of %q\n",
			strings.Join(cells, " | "), len(res.Prov[i]), res.Prov[i][0].Table)
	}

	// 2. The answer-level provenance DAG and its formal properties.
	g := provenance.NewGraph()
	src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: "employment",
		Meta: map[string]string{"uri": "https://www.bfs.admin.ch/"}})
	q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "aggregate per canton",
		Meta: map[string]string{"query": sql}})
	ans := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "2024 employment by canton"})
	for _, e := range [][2]string{{q, src}, {ans, q}} {
		if err := g.DerivedFrom(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nLosslessness: %+v\n", g.CheckLosslessness())
	fmt.Printf("Invertibility: %+v\n", g.CheckInvertibility())

	// 3. Where-from (the answer's ancestry) and where-to (everything a
	// source feeds — the paper's guidance-supporting direction).
	fmt.Println("\nWhere-from trace of the answer:")
	for _, line := range strings.Split(g.Summary(ans), "\n") {
		fmt.Println("  " + line)
	}
	desc, err := g.WhereTo(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhere-to of source %q: %d derived artifacts\n", "employment", len(desc))

	// 4. An orphaned claim makes the graph non-lossless — and the core
	// system would refuse to emit it.
	g.AddNode(provenance.Node{Kind: provenance.KindClaim, Label: "unsupported assertion"})
	rep := g.CheckLosslessness()
	fmt.Printf("\nAfter adding an unsupported claim: lossless=%v orphans=%v\n", rep.Lossless, rep.Orphans)

	// 5. Graphviz export for documentation.
	fmt.Println("\nDOT (render with `dot -Tsvg`):")
	fmt.Println(g.DOT())

	// 6. The deterministic explanation assembled from the graph.
	ex, err := explain.FromProvenance(g, ans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Explanation:\n" + ex.Render(1.0))
}
