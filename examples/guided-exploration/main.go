// Guided-exploration: demonstrates the P5 guidance machinery — the
// interaction graph learning which conversational routes succeed,
// speculative planning toward a goal, per-turn next-step suggestions,
// and expertise-adapted verbosity.
//
//	go run ./examples/guided-exploration
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/guidance"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	// 1. An interaction graph trained on simulated past sessions:
	// sessions that clarified before analyzing succeeded; sessions
	// that jumped straight to analysis failed.
	g := guidance.NewGraph()
	for i := 0; i < 25; i++ {
		g.Record([]guidance.Action{guidance.ActDiscover, guidance.ActClarify, guidance.ActDescribe, guidance.ActAnalyze}, true)
	}
	for i := 0; i < 15; i++ {
		g.Record([]guidance.Action{guidance.ActAnalyze}, false)
	}

	path, prob := g.Plan(guidance.ActStart, 6)
	steps := make([]string, len(path))
	for i, a := range path {
		steps[i] = string(a)
	}
	fmt.Printf("Speculative plan from a cold start: %s (estimated success %.0f%%)\n\n",
		strings.Join(steps, " -> "), prob*100)

	fmt.Println("Recommended next steps after a discovery turn:")
	for _, s := range g.NextSteps(guidance.ActDiscover, 3) {
		fmt.Printf("  %-10s %.0f%%  %s\n", s.Action, s.Score*100, s.Reason)
	}

	// 2. Expertise profiling adapts how much the system explains.
	novice := []string{"show me some job data", "what does this mean?"}
	expert := []string{"decompose the series and report residual variance", "what is the autocorrelation at lag 12?"}
	fmt.Printf("\nProfile %v -> %s (verbosity ×%.2f)\n", novice, guidance.ProfileExpertise(novice), guidance.Verbosity(guidance.ProfileExpertise(novice)))
	fmt.Printf("Profile %v -> %s (verbosity ×%.2f)\n\n", expert, guidance.ProfileExpertise(expert), guidance.Verbosity(guidance.ProfileExpertise(expert)))

	// 3. Live suggestions in a real session.
	d := workload.NewSwissDomain(7)
	sys := core.New(core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now, Seed: 7})
	sess := sys.NewSession()
	ans, err := sys.Respond(context.Background(), sess, "Give me an overview of the working force in Switzerland")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("User: Give me an overview of the working force in Switzerland")
	fmt.Println("System: " + strings.Split(ans.Text, "\n")[0] + " …")
	if ans.Clarification != "" {
		fmt.Println("System asks: " + ans.Clarification)
	}
	if ans.Suggestions != "" {
		fmt.Println("System suggests: " + ans.Suggestions)
	}
}
