// Package cda is the root of a from-scratch Go reproduction of
// "Towards Reliable Conversational Data Analytics" (EDBT 2025): a
// conversational data-analytics system whose answers are timely,
// consistent, and verifiable, built around the paper's five
// reliability properties — Efficiency, Grounding, Explainability,
// Soundness, and Guidance.
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// the measured reproduction of the paper's example and claims. The
// bench_test.go file in this directory regenerates every experiment
// via `go test -bench=.`.
package cda
