package cda

// bench_test.go regenerates every experiment in EXPERIMENTS.md as a
// testing.B benchmark (one per table/figure of the reproduction, per
// DESIGN.md §4), plus microbenchmarks for the individual substrates
// and the ablations DESIGN.md §6 calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report their headline metric as a custom
// b.ReportMetric value so the shape claims are visible in benchmark
// output, not just in cdabench tables.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/experiments"
	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/kg"
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/timeseries"
	"github.com/reliable-cda/cda/internal/vectorindex"
	"github.com/reliable-cda/cda/internal/workload"
)

// --- E1: Figure 1 dialogue ---------------------------------------------

func BenchmarkE1Figure1Dialogue(b *testing.B) {
	var conf float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE1(context.Background(), 1)
		if err != nil {
			b.Fatal(err)
		}
		conf = r.SeasonConfidence
	}
	b.ReportMetric(conf, "season-confidence")
}

// --- E2: similarity search regimes -------------------------------------

func benchVectorIndex(b *testing.B, build func(data []vectorindex.Vector) vectorindex.Index) {
	p := workload.VectorParams{N: 20000, Queries: 64, Dim: 32, Clusters: 16, Spread: 1, Scale: 5, Seed: 1}
	data, queries := workload.GenVectors(p)
	idx := build(data)
	exact := vectorindex.NewExact(data)
	truth := make([][]vectorindex.Neighbor, len(queries))
	for i, q := range queries {
		truth[i], _ = exact.Search(q, 10)
	}
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		nn, err := idx.Search(q, 10)
		if err != nil {
			b.Fatal(err)
		}
		recall = vectorindex.Recall(truth[i%len(queries)], nn)
	}
	b.ReportMetric(recall, "recall")
}

func BenchmarkE2VectorSearchExact(b *testing.B) {
	benchVectorIndex(b, func(data []vectorindex.Vector) vectorindex.Index {
		return vectorindex.NewExact(data)
	})
}

func BenchmarkE2VectorSearchLSH(b *testing.B) {
	benchVectorIndex(b, func(data []vectorindex.Vector) vectorindex.Index {
		idx, err := vectorindex.NewLSH(data, vectorindex.LSHParams{Tables: 10, Hashes: 4, Width: 16, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return idx
	})
}

func BenchmarkE2VectorSearchIVF(b *testing.B) {
	benchVectorIndex(b, func(data []vectorindex.Vector) vectorindex.Index {
		idx, err := vectorindex.NewIVF(data, vectorindex.IVFParams{Lists: 64, Probe: 6, KMeansIts: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return idx
	})
}

func BenchmarkE2VectorSearchProgressive(b *testing.B) {
	benchVectorIndex(b, func(data []vectorindex.Vector) vectorindex.Index {
		idx, err := vectorindex.NewProgressive(data, vectorindex.ProgressiveParams{Delta: 0.9, Lists: 64, KMeansIts: 8, BatchSize: 64, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return idx
	})
}

// Ablation (DESIGN §6.1): progressive early-stopping target δ.
func BenchmarkAblationProgressiveDelta(b *testing.B) {
	p := workload.VectorParams{N: 10000, Queries: 32, Dim: 32, Clusters: 16, Spread: 1, Scale: 5, Seed: 1}
	data, queries := workload.GenVectors(p)
	for _, delta := range []float64{0.75, 0.9, 0.99} {
		b.Run(fmt.Sprintf("delta=%.2f", delta), func(b *testing.B) {
			idx, err := vectorindex.NewProgressive(data, vectorindex.ProgressiveParams{Delta: delta, Lists: 64, KMeansIts: 8, BatchSize: 64, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			before := idx.DistComps()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(idx.DistComps()-before)/float64(b.N), "dist-comps/op")
		})
	}
}

// --- E3: grounding ------------------------------------------------------

func BenchmarkE3Grounding(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE3(60, 0.8, 0.05, 5)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.With.ExecAccuracy - r.Without.ExecAccuracy
	}
	b.ReportMetric(gain, "accuracy-gain")
}

// --- E4: provenance overhead -------------------------------------------

func BenchmarkE4ProvenanceOverhead(b *testing.B) {
	w := workload.GenNL2SQL(40, 0, 5)
	for _, capture := range []bool{false, true} {
		b.Run(fmt.Sprintf("capture=%v", capture), func(b *testing.B) {
			eng := sqldb.NewEngine(w.DB)
			eng.CaptureProvenance = capture
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(w.Pairs[i%len(w.Pairs)].GoldSQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: calibration ----------------------------------------------------

func BenchmarkE5Calibration(b *testing.B) {
	var ece float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE5(80, 0.2, 5)
		if err != nil {
			b.Fatal(err)
		}
		ece = r.Rows[2].ECE // recalibrated scheme
	}
	b.ReportMetric(ece, "recalibrated-ECE")
}

// Ablation (DESIGN §6.3): self-consistency sample count m.
func BenchmarkAblationConsistencySamples(b *testing.B) {
	w := workload.GenNL2SQL(40, 0.3, 9)
	grounder := ground.NewGrounder(nil, w.DB, w.Vocab)
	for _, m := range []int{1, 3, 5, 9} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			opts := nl2sql.DefaultOptions()
			opts.Samples = m
			for i := 0; i < b.N; i++ {
				tr := nl2sql.NewTranslator(w.DB, grounder, int64(i))
				tr.Channel = nlmodel.Channel{HallucinationRate: 0.15, Fabrications: w.Fabrications}
				tr.Options = opts
				if _, err := tr.Translate(w.Pairs[i%len(w.Pairs)].Question); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: guidance -------------------------------------------------------

func BenchmarkE6Guidance(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE6(context.Background(), 4, 6, 3)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.GuidedSuccess - r.RandomSuccess
	}
	b.ReportMetric(gap, "success-gap")
}

// --- E7: NL2SQL ladder --------------------------------------------------

func BenchmarkE7NL2SQLAblation(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE7(40, 0.3, 0.1, 5)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Stages[len(r.Stages)-1].ExecAccuracy
	}
	b.ReportMetric(acc, "full-pipeline-acc")
}

// --- E8: interplay matrix -----------------------------------------------

func BenchmarkE8InterplayMatrix(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE8(context.Background(), 0.15, 5)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Rows[0].ExecAcc
	}
	b.ReportMetric(acc, "full-system-acc")
}

// --- E9: multimodal discovery ---------------------------------------

func BenchmarkE9DiscoveryModes(b *testing.B) {
	var hybridMRR float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE9(60, 7)
		if err != nil {
			b.Fatal(err)
		}
		hybridMRR = r.Rows[2].MRR
	}
	b.ReportMetric(hybridMRR, "hybrid-MRR")
}

// --- E10: bias identification -----------------------------------------

func BenchmarkE10BiasIdentification(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE10(3, 25, 7)
		if err != nil {
			b.Fatal(err)
		}
		f1 = r.F1
	}
	b.ReportMetric(f1, "F1")
}

// Ablation (DESIGN §6.4): holistic-optimizer cache on/off for repeated
// questions.
func BenchmarkAblationAnswerCache(b *testing.B) {
	d := workload.NewSwissDomain(1)
	questions := []string{
		"how many employment where canton is Zurich",
		"what is the average value in barometer",
		"how many barometer",
	}
	for _, cacheSize := range []int{1 /* effectively off */, 256} {
		b.Run(fmt.Sprintf("cache=%d", cacheSize), func(b *testing.B) {
			sys := core.New(core.Config{
				DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now,
				Seed: 1, CacheSize: cacheSize,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh session per turn keeps the dialogue state
				// constant-size; the answer cache lives on the System
				// and persists across sessions.
				sess := sys.NewSession()
				if _, err := sys.Respond(context.Background(), sess, questions[i%len(questions)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate microbenchmarks ------------------------------------------

func BenchmarkSQLFilterScan(b *testing.B) {
	w := workload.GenNL2SQL(1, 0, 3)
	eng := sqldb.NewEngine(w.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query("SELECT COUNT(*) FROM employees WHERE salary > 100"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLGroupBy(b *testing.B) {
	w := workload.GenNL2SQL(1, 0, 3)
	eng := sqldb.NewEngine(w.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query("SELECT department, AVG(salary) FROM employees GROUP BY department"); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: hash join + predicate pushdown vs the naive plan on a
// two-table equi-join.
func BenchmarkAblationJoinOptimizer(b *testing.B) {
	db := storage.NewDatabase("join")
	left := storage.NewTable("facts", storage.Schema{
		{Name: "k", Kind: storage.KindInt}, {Name: "v", Kind: storage.KindFloat},
	})
	right := storage.NewTable("dims", storage.Schema{
		{Name: "k", Kind: storage.KindInt}, {Name: "label", Kind: storage.KindString},
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		left.MustAppendRow(storage.Int(int64(rng.Intn(500))), storage.Float(rng.Float64()*100))
	}
	for i := 0; i < 500; i++ {
		right.MustAppendRow(storage.Int(int64(i)), storage.Str(fmt.Sprintf("d%d", i)))
	}
	db.Put(left)
	db.Put(right)
	q := "SELECT d.label, COUNT(*) FROM facts f JOIN dims d ON f.k = d.k WHERE f.v > 50 GROUP BY d.label"
	for _, naive := range []bool{false, true} {
		b.Run(fmt.Sprintf("naive=%v", naive), func(b *testing.B) {
			eng := sqldb.NewEngine(db)
			eng.DisableOptimizations = naive
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSQLParse(b *testing.B) {
	q := "SELECT d.dname, COUNT(*) AS n FROM employees e JOIN departments d ON e.dept_id = d.id WHERE e.salary > 50 GROUP BY d.dname ORDER BY n DESC LIMIT 5"
	for i := 0; i < b.N; i++ {
		if _, err := sqldb.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeasonalityDetection(b *testing.B) {
	xs := workload.BarometerSeries(workload.DefaultBarometerParams())
	for i := 0; i < b.N; i++ {
		if _, err := timeseries.DetectSeasonality(xs, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKGInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := kg.NewStore()
		for c := 0; c < 50; c++ {
			st.Add(kg.Triple{S: fmt.Sprintf("c%d", c), P: kg.PredSubClassOf, O: fmt.Sprintf("c%d", c+1)})
			st.Add(kg.Triple{S: fmt.Sprintf("x%d", c), P: kg.PredType, O: fmt.Sprintf("c%d", c)})
		}
		b.StartTimer()
		st.Infer()
	}
}

func BenchmarkGroundingPass(b *testing.B) {
	d := workload.NewSwissDomain(1)
	g := ground.NewGrounder(d.KG, d.DB, d.Vocab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Ground("overview of the working force in Zurich")
	}
}

func BenchmarkTranslateFullPipeline(b *testing.B) {
	w := workload.GenNL2SQL(20, 0.3, 9)
	grounder := ground.NewGrounder(nil, w.DB, w.Vocab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := nl2sql.NewTranslator(w.DB, grounder, int64(i))
		tr.Channel = nlmodel.Channel{HallucinationRate: 0.1, Fabrications: w.Fabrications}
		if _, err := tr.Translate(w.Pairs[i%len(w.Pairs)].Question); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreRespondEndToEnd(b *testing.B) {
	d := workload.NewSwissDomain(1)
	sys := core.New(core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now, Seed: 1})
	turns := workload.Figure1Turns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := sys.NewSession()
		for _, t := range turns {
			if _, err := sys.Respond(context.Background(), sess, t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Efficiency lever before approximation: fan the exact scan across
// cores.
func BenchmarkE2VectorSearchParallelExact(b *testing.B) {
	benchVectorIndex(b, func(data []vectorindex.Vector) vectorindex.Index {
		return vectorindex.NewParallelExact(data, 0)
	})
}

// Scorecard: the composite reliability report (heavier; runs E2–E7
// internals once per iteration).
func BenchmarkScorecard(b *testing.B) {
	var sys float64
	for i := 0; i < b.N; i++ {
		sc, err := experiments.RunScorecard(context.Background(), 5)
		if err != nil {
			b.Fatal(err)
		}
		sys = sc.System
	}
	b.ReportMetric(sys, "system-score")
}
