// Package parallel is the deterministic fan-out substrate of the
// computational infrastructure (layer ⓑ): chunked worker pools sized
// by GOMAXPROCS, ordered result merges, deterministic error
// aggregation, and a serial-fallback threshold so tiny inputs never
// pay goroutine overhead.
//
// The package exists to make "run it on all cores" a safe default for
// the reliability-critical paths (SQL execution, index probes,
// retrieval scoring, batched respond): every helper guarantees that
//
//   - chunk boundaries are a pure function of (n, workers), never of
//     scheduling;
//   - per-chunk results are merged in chunk order, so any caller that
//     appends chunk outputs in order reproduces the serial output
//     byte-for-byte;
//   - when several chunks fail, the error of the lowest-indexed chunk
//     is returned — the same error a serial left-to-right scan would
//     have surfaced first;
//   - inputs smaller than the serial threshold run inline on the
//     calling goroutine, so results cannot depend on whether the
//     parallel or serial path was taken.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultSerialThreshold is the input size below which the helpers run
// serially. Fanning out costs on the order of a few microseconds per
// goroutine; below roughly a thousand cheap items that overhead
// dominates the work itself.
const DefaultSerialThreshold = 1024

// Options configures a fan-out call site.
type Options struct {
	// Workers is the maximum number of concurrent goroutines.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path.
	Workers int
	// SerialThreshold is the input size below which the call runs
	// serially regardless of Workers (0 means
	// DefaultSerialThreshold). Set to 1 to force the parallel path
	// for any non-empty input (tests use this to exercise the
	// parallel code on small fixtures).
	SerialThreshold int
	// ChunkFactor oversubscribes the chunk count: the input is split
	// into Workers×ChunkFactor chunks consumed by exactly Workers
	// goroutines from a shared queue (0 or 1 = one chunk per worker,
	// the historical behavior). Oversubscription evens out skew —
	// when chunks carry unequal work (e.g. hash-join probes over
	// clustered keys), a stalled worker no longer leaves the rest
	// idle. Chunk boundaries remain a pure function of
	// (n, Workers×ChunkFactor) and results still merge in chunk
	// order, so outputs are byte-identical for any factor.
	ChunkFactor int
}

// Resolve returns the effective worker count: 0 maps to GOMAXPROCS
// and the result is clamped to [1, n] so no worker is ever idle by
// construction.
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

func (o Options) threshold() int {
	if o.SerialThreshold <= 0 {
		return DefaultSerialThreshold
	}
	return o.SerialThreshold
}

// serial reports whether an input of size n should run inline.
func (o Options) serial(n int) bool {
	return n < o.threshold() || Resolve(o.Workers, n) <= 1
}

// Span is one contiguous half-open chunk [Lo, Hi) of an input.
type Span struct{ Lo, Hi int }

// Spans splits [0, n) into at most `chunks` near-equal contiguous
// spans. The split depends only on (n, chunks): the first n%chunks
// spans are one element longer.
func Spans(n, chunks int) []Span {
	chunks = Resolve(chunks, n)
	out := make([]Span, 0, chunks)
	base := n / chunks
	extra := n % chunks
	lo := 0
	for c := 0; c < chunks; c++ {
		size := base
		if c < extra {
			size++
		}
		out = append(out, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// chunks returns the effective chunk count for an input of size n:
// Workers×ChunkFactor, clamped to n by Spans' own Resolve.
func (o Options) chunks(n int) int {
	w := Resolve(o.Workers, n)
	if o.ChunkFactor > 1 {
		return w * o.ChunkFactor
	}
	return w
}

// runChunks executes fn over the given spans using exactly `workers`
// goroutines pulling chunk indices from a shared atomic counter.
// Callers index their result/error slices by the chunk index fn
// receives, so the ordered-merge and lowest-indexed-chunk error
// contracts hold regardless of which worker ran which chunk.
func runChunks(spans []Span, workers int, fn func(i int, s Span)) {
	if workers > len(spans) {
		workers = len(spans)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				fn(i, spans[i])
			}
		}()
	}
	wg.Wait()
}

// Do runs fn over [0, n) in parallel chunks and waits for completion.
// Chunks must only write to disjoint state (typically out[i] for i in
// [lo, hi)). The error returned is the lowest-indexed chunk's error —
// identical to what a serial left-to-right run would surface first,
// because a serial scan stops at the first failing element.
func Do(n int, o Options, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if o.serial(n) {
		return fn(0, n)
	}
	spans := Spans(n, o.chunks(n))
	errs := make([]error, len(spans))
	runChunks(spans, Resolve(o.Workers, n), func(i int, s Span) {
		errs[i] = fn(s.Lo, s.Hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapChunks runs fn over [0, n) in parallel chunks and returns the
// per-chunk results in chunk order. Callers that concatenate the
// results reproduce the serial output exactly, because the serial
// path is a single chunk [0, n) and chunk outputs are contiguous,
// in-order slices of it. On error the lowest-indexed chunk's error is
// returned and the results are nil.
func MapChunks[T any](n int, o Options, fn func(lo, hi int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if o.serial(n) {
		v, err := fn(0, n)
		if err != nil {
			return nil, err
		}
		return []T{v}, nil
	}
	spans := Spans(n, o.chunks(n))
	results := make([]T, len(spans))
	errs := make([]error, len(spans))
	runChunks(spans, Resolve(o.Workers, n), func(i int, s Span) {
		results[i], errs[i] = fn(s.Lo, s.Hi)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ForEach runs fn(i) for every i in [0, n) in parallel chunks,
// stopping each chunk at its first error. fn must only write to
// per-index state (out[i]). Error selection follows Do: the failure a
// serial scan would have hit first wins.
func ForEach(n int, o Options, fn func(i int) error) error {
	return Do(n, o, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	})
}
