package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestSpansCoverAndOrder(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1001} {
		for _, w := range []int{1, 2, 3, 4, 8, 200} {
			spans := Spans(n, w)
			if len(spans) == 0 {
				t.Fatalf("Spans(%d,%d): empty", n, w)
			}
			if len(spans) > n {
				t.Fatalf("Spans(%d,%d): %d spans exceed n", n, w, len(spans))
			}
			lo := 0
			for _, s := range spans {
				if s.Lo != lo {
					t.Fatalf("Spans(%d,%d): gap at %d (got Lo=%d)", n, w, lo, s.Lo)
				}
				if s.Hi <= s.Lo {
					t.Fatalf("Spans(%d,%d): empty span %+v", n, w, s)
				}
				lo = s.Hi
			}
			if lo != n {
				t.Fatalf("Spans(%d,%d): covers [0,%d), want [0,%d)", n, w, lo, n)
			}
		}
	}
}

func TestSpansDeterministic(t *testing.T) {
	a := Spans(1000, 7)
	b := Spans(1000, 7)
	if len(a) != len(b) {
		t.Fatal("span count changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(4, 2); got != 2 {
		t.Fatalf("Resolve(4,2) = %d, want clamp to 2", got)
	}
	if got := Resolve(0, 100); got < 1 {
		t.Fatalf("Resolve(0,100) = %d, want >= 1", got)
	}
	if got := Resolve(-3, 100); got < 1 {
		t.Fatalf("Resolve(-3,100) = %d, want >= 1", got)
	}
}

func TestDoComputesEveryIndex(t *testing.T) {
	const n = 10000
	out := make([]int, n)
	err := Do(n, Options{Workers: 8, SerialThreshold: 1}, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestDoSerialFallback(t *testing.T) {
	var calls atomic.Int32
	err := Do(100, Options{Workers: 8, SerialThreshold: 1000}, func(lo, hi int) error {
		calls.Add(1)
		if lo != 0 || hi != 100 {
			t.Errorf("serial fallback got chunk [%d,%d), want [0,100)", lo, hi)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("serial fallback made %d calls, want 1", calls.Load())
	}
}

func TestDoFirstErrorWins(t *testing.T) {
	// Every chunk fails; the returned error must be the one a serial
	// left-to-right scan would have hit first, on every run.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(1000, Options{Workers: 8, SerialThreshold: 1}, func(i int) error {
			if i >= 100 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 100" {
			t.Fatalf("trial %d: got %v, want fail at 100", trial, err)
		}
	}
}

func TestMapChunksOrderedMerge(t *testing.T) {
	// Concatenated chunk outputs must equal the serial output for any
	// worker count.
	rng := rand.New(rand.NewSource(42))
	data := make([]int, 5000)
	for i := range data {
		data[i] = rng.Intn(1000)
	}
	serialOut := make([]int, 0, len(data))
	for _, v := range data {
		if v%3 == 0 {
			serialOut = append(serialOut, v)
		}
	}
	for _, w := range []int{1, 2, 3, 4, 8} {
		chunks, err := MapChunks(len(data), Options{Workers: w, SerialThreshold: 1}, func(lo, hi int) ([]int, error) {
			var out []int
			for i := lo; i < hi; i++ {
				if data[i]%3 == 0 {
					out = append(out, data[i])
				}
			}
			return out, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var merged []int
		for _, c := range chunks {
			merged = append(merged, c...)
		}
		if len(merged) != len(serialOut) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(merged), len(serialOut))
		}
		for i := range merged {
			if merged[i] != serialOut[i] {
				t.Fatalf("workers=%d: merged[%d] = %d, want %d", w, i, merged[i], serialOut[i])
			}
		}
	}
}

func TestMapChunksError(t *testing.T) {
	want := errors.New("boom")
	_, err := MapChunks(5000, Options{Workers: 4, SerialThreshold: 1}, func(lo, hi int) (int, error) {
		if lo == 0 {
			return 0, want
		}
		return hi - lo, nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	if err := Do(0, Options{}, func(lo, hi int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	out, err := MapChunks(-5, Options{}, func(lo, hi int) (int, error) { t.Error("called"); return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("got %v, %v; want nil, nil", out, err)
	}
}
