package experiments

import (
	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/metrics"
	"github.com/reliable-cda/cda/internal/workload"
)

// E9Row measures one discovery retrieval mode.
type E9Row struct {
	Mode string
	// Top1 is the fraction of queries whose target ranks first.
	Top1 float64
	// MRR over all queries.
	MRR float64
	// MismatchTop1 restricts Top1 to vocabulary-mismatch queries —
	// the subset dense retrieval exists for.
	MismatchTop1 float64
}

// E9Result is the multimodal-index experiment: lexical (BM25) vs.
// dense (hashed embeddings) vs. hybrid (reciprocal-rank fusion)
// dataset discovery, per the paper's unified-dense-space vision.
type E9Result struct {
	N    int
	Rows []E9Row
}

// RunE9 evaluates the three modes on the labeled discovery workload.
func RunE9(n int, seed int64) (*E9Result, error) {
	w := workload.GenDiscovery(n, seed)
	res := &E9Result{N: n}
	modes := []struct {
		name   string
		search func(q string) []catalog.Recommendation
	}{
		{"lexical (BM25)", func(q string) []catalog.Recommendation {
			return w.Catalog.Search(q, 6, w.Now)
		}},
		{"dense (embeddings)", func(q string) []catalog.Recommendation {
			return w.Catalog.SearchDense(q, 6, w.Now)
		}},
		{"hybrid (RRF)", func(q string) []catalog.Recommendation {
			return w.Catalog.SearchHybrid(q, 6, w.Now)
		}},
	}
	for _, m := range modes {
		var ranks []int
		var top1, mismatchTop1, mismatchN float64
		for _, q := range w.Queries {
			recs := m.search(q.Text)
			rank := 0
			for i, r := range recs {
				if r.Dataset.ID == q.Target {
					rank = i + 1
					break
				}
			}
			ranks = append(ranks, rank)
			hit := 0.0
			if rank == 1 {
				hit = 1
			}
			top1 += hit
			if q.Mismatch {
				mismatchN++
				mismatchTop1 += hit
			}
		}
		mrr, err := metrics.MRR(ranks)
		if err != nil {
			return nil, err
		}
		row := E9Row{Mode: m.name, Top1: top1 / float64(len(w.Queries)), MRR: mrr}
		if mismatchN > 0 {
			row.MismatchTop1 = mismatchTop1 / mismatchN
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the discovery-mode comparison.
func (r *E9Result) Table() *Table {
	t := &Table{
		Title:   "E9 — multimodal discovery: lexical vs dense vs hybrid",
		Columns: []string{"mode", "top-1", "MRR", "top-1 (vocab mismatch)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Mode, pct(row.Top1), f3(row.MRR), pct(row.MismatchTop1)})
	}
	t.Notes = append(t.Notes,
		"expected shape: BM25 wins on vocabulary-matched queries but collapses under",
		"vocabulary mismatch; dense embeddings recover mismatched queries; hybrid fusion",
		"dominates both overall.",
	)
	return t
}
