package experiments

import (
	"context"

	"testing"
)

func TestE6UnguidedEventuallySucceeds(t *testing.T) {
	r, err := RunE6(context.Background(), 30, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("guided %.2f (%.1f turns) random %.2f (%.1f turns)", r.GuidedSuccess, r.GuidedTurns, r.RandomSuccess, r.RandomTurns)
	if r.RandomSuccess == 0 {
		t.Error("unguided never succeeds even with 8-turn budget; simulation may be broken")
	}
}
