// Package experiments implements the E1–E8 reproduction suite from
// DESIGN.md §4: one runner per experiment, each returning a
// structured result with a text rendering that cmd/cdabench prints
// and EXPERIMENTS.md records. bench_test.go wraps the same runners in
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
