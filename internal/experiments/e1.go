package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/workload"
)

// E1Result reproduces Figure 1 (left): the four-turn Swiss workforce
// dialogue with the per-turn property annotations.
type E1Result struct {
	Turns []E1Turn
	// PeriodDetected and SeasonConfidence are the headline numbers
	// ("seasonal period is 6", "confidence 90%").
	PeriodDetected   bool
	SeasonConfidence float64
	AllLossless      bool
}

// E1Turn is one exchange with the properties it exhibited.
type E1Turn struct {
	User       string
	System     string
	Confidence float64
	Properties []string // e.g. "P2 grounding", "P4 provenance"
}

// RunE1 replays the dialogue on a fresh Swiss domain. The context
// bounds the whole replay; pass the caller's ctx so cancellation
// reaches every turn.
func RunE1(ctx context.Context, seed int64) (*E1Result, error) {
	d := workload.NewSwissDomain(seed)
	sys := core.New(core.Config{
		DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now, Seed: seed,
	})
	sess := sys.NewSession()
	res := &E1Result{AllLossless: true}
	for i, turn := range workload.Figure1Turns() {
		ans, err := sys.Respond(ctx, sess, turn)
		if err != nil {
			return nil, fmt.Errorf("turn %d: %w", i+1, err)
		}
		t := E1Turn{User: turn, System: ans.Text, Confidence: ans.Confidence}
		if strings.Contains(ans.Text, "I am assuming") {
			t.Properties = append(t.Properties, "P2 grounding of terminology")
		}
		if ans.Clarification != "" || ans.Suggestions != "" {
			t.Properties = append(t.Properties, "P5 guidance")
		}
		if len(ans.Explanation.Sources) > 0 {
			t.Properties = append(t.Properties, "P4 soundness by provenance")
		}
		if ans.Confidence > 0 {
			t.Properties = append(t.Properties, "P4 soundness by confidence")
		}
		if ans.Code != "" {
			t.Properties = append(t.Properties, "P3 explainability (code)")
		}
		if ans.Provenance != nil {
			if !ans.Provenance.CheckLosslessness().Lossless {
				res.AllLossless = false
			}
		}
		if i == 3 {
			if strings.Contains(ans.Text, "seasonal period is 6") {
				res.PeriodDetected = true
			}
			// Parse the confidence out of the evidence instead of the
			// text: the analyze handler sets Consistency to it.
			res.SeasonConfidence = ans.Evidence.Consistency
		}
		res.Turns = append(res.Turns, t)
	}
	return res, nil
}

// Table renders the dialogue reproduction summary.
func (r *E1Result) Table() *Table {
	t := &Table{
		Title:   "E1 — Figure 1 dialogue reproduction",
		Columns: []string{"turn", "confidence", "properties"},
	}
	for i, turn := range r.Turns {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d %.40s…", i+1, turn.User),
			f2(turn.Confidence),
			strings.Join(turn.Properties, ", "),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("seasonal period 6 detected: %v (paper: period 6)", r.PeriodDetected),
		fmt.Sprintf("seasonality confidence: %s (paper: 90%%)", pct(r.SeasonConfidence)),
		fmt.Sprintf("all provenance lossless: %v", r.AllLossless),
	)
	return t
}
