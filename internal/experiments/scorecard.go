package experiments

import (
	"context"

	"fmt"

	"github.com/reliable-cda/cda/internal/workload"
)

// Scorecard is the composite system-reliability report the paper's
// Evaluation section calls for ("new metrics are needed to assess
// component and system reliability"): one normalized score per
// property, each computed from the corresponding experiment, plus
// their mean as the headline system score. Scores are in [0,1].
type Scorecard struct {
	// P1 Efficiency: progressive search's saving over the exact scan
	// at its promised recall — 1 − (progressive comps / exact comps),
	// i.e. the fraction of guaranteed-method work avoided.
	P1Efficiency float64
	// P2 Grounding: exec-accuracy gain grounding contributes on the
	// synonym workload, normalized by the headroom it had.
	P2Grounding float64
	// P3 Explainability: fraction of answers that are lossless AND
	// invertible.
	P3Explainability float64
	// P4 Soundness: 1 − (wrong-answer rate of the full pipeline) —
	// confidently wrong answers are the failure this penalizes.
	P4Soundness float64
	// P5 Guidance: guided success minus unguided success.
	P5Guidance float64
	// System is the arithmetic mean of the five.
	System float64
}

// RunScorecard computes all five property scores on reduced-size
// workloads (it re-runs E2–E7 internals; expect a few seconds).
func RunScorecard(ctx context.Context, seed int64) (*Scorecard, error) {
	sc := &Scorecard{}

	// P1 from E2.
	p := workload.DefaultVectorParams()
	p.N, p.Queries, p.Seed = 10000, 50, seed
	e2, err := RunE2(p, 10)
	if err != nil {
		return nil, err
	}
	var exactComps, progComps float64
	for _, row := range e2.Rows {
		switch row.Method {
		case "exact-scan":
			exactComps = row.AvgComps
		case "progressive(δ=0.9)":
			progComps = row.AvgComps
		}
	}
	if exactComps > 0 {
		sc.P1Efficiency = clampScore(1 - progComps/exactComps)
	}

	// P2 from E3.
	e3, err := RunE3(120, 0.8, 0.05, seed)
	if err != nil {
		return nil, err
	}
	headroom := 1 - e3.Without.ExecAccuracy
	if headroom > 0 {
		sc.P2Grounding = clampScore((e3.With.ExecAccuracy - e3.Without.ExecAccuracy) / headroom)
	}

	// P3 from E4.
	e4, err := RunE4(120, seed)
	if err != nil {
		return nil, err
	}
	sc.P3Explainability = clampScore(e4.LosslessRate * e4.InvertibleRate)

	// P4 from E7's full pipeline.
	e7, err := RunE7(120, 0.3, 0.1, seed)
	if err != nil {
		return nil, err
	}
	full := e7.Stages[len(e7.Stages)-1]
	sc.P4Soundness = clampScore(1 - full.WrongRate)

	// P5 from E6.
	e6, err := RunE6(ctx, 10, 6, seed)
	if err != nil {
		return nil, err
	}
	sc.P5Guidance = clampScore(e6.GuidedSuccess - e6.RandomSuccess)

	sc.System = (sc.P1Efficiency + sc.P2Grounding + sc.P3Explainability + sc.P4Soundness + sc.P5Guidance) / 5
	return sc, nil
}

func clampScore(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Table renders the scorecard.
func (sc *Scorecard) Table() *Table {
	t := &Table{
		Title:   "Scorecard — composite system reliability (each property in [0,1])",
		Columns: []string{"property", "score", "derived from"},
		Rows: [][]string{
			{"P1 Efficiency", f2(sc.P1Efficiency), "work avoided vs exact scan at promised recall (E2)"},
			{"P2 Grounding", f2(sc.P2Grounding), "accuracy headroom recovered on synonym questions (E3)"},
			{"P3 Explainability", f2(sc.P3Explainability), "lossless × invertible answer rate (E4)"},
			{"P4 Soundness", f2(sc.P4Soundness), "1 − confidently-wrong rate, full pipeline (E7)"},
			{"P5 Guidance", f2(sc.P5Guidance), "guided − unguided goal success (E6)"},
			{"SYSTEM", fmt.Sprintf("%.2f", sc.System), "mean of the five properties"},
		},
	}
	return t
}
