package experiments

import (
	"fmt"
	"time"

	"github.com/reliable-cda/cda/internal/explain"
	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/workload"
)

// E4Result is the P3 Explainability experiment: the cost of capturing
// why-provenance, and the losslessness / invertibility properties
// over a query workload.
type E4Result struct {
	Queries        int
	TimeWithProv   time.Duration
	TimeNoProv     time.Duration
	Overhead       float64 // ratio with/without
	LosslessRate   float64
	InvertibleRate float64
	// ProvRefs is the mean number of base-row references per output
	// row (explanation fidelity).
	ProvRefs float64
}

// RunE4 executes a generated SQL workload with provenance capture on
// and off, then builds and checks a provenance graph per query.
func RunE4(n int, seed int64) (*E4Result, error) {
	w := workload.GenNL2SQL(n, 0, seed)
	res := &E4Result{Queries: len(w.Pairs)}

	engineOff := sqldb.NewEngine(w.DB)
	engineOff.CaptureProvenance = false
	start := time.Now()
	for _, qa := range w.Pairs {
		if _, err := engineOff.Query(qa.GoldSQL); err != nil {
			return nil, err
		}
	}
	res.TimeNoProv = time.Since(start)

	engineOn := sqldb.NewEngine(w.DB)
	lossless, invertible := 0, 0
	var refSum, rowCount float64
	start = time.Now()
	for _, qa := range w.Pairs {
		r, err := engineOn.Query(qa.GoldSQL)
		if err != nil {
			return nil, err
		}
		for _, p := range r.Prov {
			refSum += float64(len(p))
			rowCount++
		}
		g := provenance.NewGraph()
		q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "sql",
			Meta: map[string]string{"query": qa.GoldSQL}})
		src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: r.Stmt.From,
			Meta: map[string]string{"dataset": r.Stmt.From}})
		comp := g.AddNode(provenance.Node{Kind: provenance.KindComputation, Label: "execute",
			Meta: map[string]string{"code": qa.GoldSQL}})
		ans := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "result"})
		for _, e := range [][2]string{{q, src}, {comp, q}, {ans, comp}} {
			if err := g.DerivedFrom(e[0], e[1]); err != nil {
				return nil, err
			}
		}
		if g.CheckLosslessness().Lossless {
			lossless++
		}
		if g.CheckInvertibility().Invertible {
			invertible++
		}
		if _, err := explain.FromProvenance(g, ans); err != nil {
			return nil, err
		}
	}
	res.TimeWithProv = time.Since(start)
	if res.TimeNoProv > 0 {
		res.Overhead = float64(res.TimeWithProv) / float64(res.TimeNoProv)
	}
	res.LosslessRate = float64(lossless) / float64(len(w.Pairs))
	res.InvertibleRate = float64(invertible) / float64(len(w.Pairs))
	if rowCount > 0 {
		res.ProvRefs = refSum / rowCount
	}
	return res, nil
}

// Table renders the provenance measurements.
func (r *E4Result) Table() *Table {
	t := &Table{
		Title:   "E4 — provenance capture (P3): overhead and formal properties",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"queries executed", fmt.Sprintf("%d", r.Queries)},
			{"exec time, provenance OFF", r.TimeNoProv.String()},
			{"exec time, provenance ON (incl. graph+explanation)", r.TimeWithProv.String()},
			{"overhead ratio", f2(r.Overhead)},
			{"lossless answers", pct(r.LosslessRate)},
			{"invertible computations", pct(r.InvertibleRate)},
			{"mean base-row refs per output row", f2(r.ProvRefs)},
		},
	}
	t.Notes = append(t.Notes,
		"expected shape: losslessness and invertibility hold on 100% of answers;",
		"capture overhead stays within a small constant factor.",
	)
	return t
}
