package experiments

import (
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/workload"
)

// E3Result is the P2 Grounding experiment: hallucination rate and
// answer correctness with vs. without grounding on a synonym-heavy
// workload (domain vocabulary the "model" has never seen as schema
// identifiers).
type E3Result struct {
	N           int
	SynonymRate float64
	Without     *PipelineStats
	With        *PipelineStats
	// SynonymSubset restricts the comparison to questions that
	// actually used synonyms (where grounding must do the work).
	SynonymQuestions int
}

// RunE3 compares the verified pipeline with grounding off vs. on.
func RunE3(n int, synonymRate, hallucination float64, seed int64) (*E3Result, error) {
	w := workload.GenNL2SQL(n, synonymRate, seed)
	res := &E3Result{N: n, SynonymRate: synonymRate}
	for _, qa := range w.Pairs {
		if qa.UsesSynonyms {
			res.SynonymQuestions++
		}
	}
	base := nl2sql.Options{UseConstrained: true, UseVerification: true, Samples: 5, MaxRepairAttempts: 3}
	withG := base
	withG.UseGrounding = true
	var err error
	res.Without, err = RunPipeline("verified, no grounding", w, base, hallucination, seed)
	if err != nil {
		return nil, err
	}
	res.With, err = RunPipeline("verified + grounding", w, withG, hallucination, seed)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the grounding comparison.
func (r *E3Result) Table() *Table {
	t := &Table{
		Title:   "E3 — grounding ablation (P2): synonym-heavy questions",
		Columns: []string{"system", "exec acc", "wrong", "abstain", "halluc. ids"},
	}
	for _, s := range []*PipelineStats{r.Without, r.With} {
		t.Rows = append(t.Rows, []string{
			s.Name, pct(s.ExecAccuracy), pct(s.WrongRate), pct(s.AbstainRate), pct(s.HallucinatedID),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: grounding recovers the questions phrased in domain vocabulary,",
		"raising accuracy and cutting abstentions without raising the wrong-answer rate.",
	)
	return t
}
