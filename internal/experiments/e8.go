package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/workload"
)

// e8QA is one swiss-domain question with its gold SQL.
type e8QA struct {
	question string
	gold     string
}

// swissQuestions mixes schema-literal and vocabulary-mediated
// phrasings over the Figure 1 data.
var swissQuestions = []e8QA{
	{"how many employment where canton is Zurich", "SELECT COUNT(*) FROM employment WHERE canton = 'Zurich'"},
	{"how many employment where canton is Bern", "SELECT COUNT(*) FROM employment WHERE canton = 'Bern'"},
	{"how many employment where employment_type is full_time", "SELECT COUNT(*) FROM employment WHERE employment_type = 'full_time'"},
	{"what is the average value in barometer", "SELECT AVG(value) FROM barometer"},
	{"what is the maximum value in barometer", "SELECT MAX(value) FROM barometer"},
	{"what is the total employees in employment", "SELECT SUM(employees) FROM employment"},
	{"what is the average employees in employment where canton is Geneva", "SELECT AVG(employees) FROM employment WHERE canton = 'Geneva'"},
	{"how many barometer", "SELECT COUNT(*) FROM barometer"},
	{"what is the minimum value in barometer", "SELECT MIN(value) FROM barometer"},
	{"how many jobs where canton is Vaud", "SELECT COUNT(*) FROM employment WHERE canton = 'Vaud'"}, // "jobs" needs vocab
}

// E8Row is one ablation configuration's downstream measurements.
type E8Row struct {
	Config string
	// ExecAcc is the soundness metric (correct answers / questions).
	ExecAcc float64
	// WrongRate: confidently wrong answers (soundness failure).
	WrongRate float64
	// AbstainRate: refusals.
	AbstainRate float64
	// SourcedRate: answered turns whose explanation cites ≥1 source
	// (the explainability metric).
	SourcedRate float64
	// SuggestRate: turns carrying next-step suggestions (the guidance
	// metric).
	SuggestRate float64
	// MeanLatency per turn (the efficiency metric).
	MeanLatency time.Duration
}

// E8Result is the Figure 2 interplay matrix: disable one property's
// component and watch which downstream property degrades.
type E8Result struct {
	Noise float64
	Rows  []E8Row
}

// RunE8 measures each ablation over the swiss question set under
// the caller's context.
func RunE8(ctx context.Context, noise float64, seed int64) (*E8Result, error) {
	res := &E8Result{Noise: noise}
	configs := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full system", func(c *core.Config) {}},
		{"- grounding (P2 off)", func(c *core.Config) { c.DisableGrounding = true }},
		{"- verification (P4 off)", func(c *core.Config) { c.DisableVerification = true }},
		{"- provenance (P3 off)", func(c *core.Config) { c.DisableProvenance = true }},
		{"- guidance (P5 off)", func(c *core.Config) { c.DisableGuidance = true }},
	}
	for _, cf := range configs {
		row, err := runE8Config(ctx, cf.name, cf.mutate, noise, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runE8Config(ctx context.Context, name string, mutate func(*core.Config), noise float64, seed int64) (*E8Row, error) {
	d := workload.NewSwissDomain(seed)
	cfg := core.Config{
		DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now,
		Seed:              seed,
		HallucinationRate: noise,
		Fabrications:      []string{"revenue", "turnover", "kpi_x"},
	}
	mutate(&cfg)
	sys := core.New(cfg)
	gold := sqldb.NewEngine(d.DB)

	row := &E8Row{Config: name}
	var correct, wrong, abstained, sourced, suggested int
	start := time.Now()
	for _, qa := range swissQuestions {
		sess := sys.NewSession()
		ans, err := sys.Respond(ctx, sess, qa.question)
		if err != nil {
			return nil, err
		}
		if ans.Suggestions != "" {
			suggested++
		}
		if ans.Abstained {
			abstained++
			continue
		}
		if len(ans.Explanation.Sources) > 0 {
			sourced++
		}
		goldRes, err := gold.Query(qa.gold)
		if err != nil {
			return nil, err
		}
		sysRes, err := gold.Query(ans.Code)
		if err != nil || sysRes.Fingerprint() != goldRes.Fingerprint() {
			wrong++
			continue
		}
		correct++
	}
	n := float64(len(swissQuestions))
	row.ExecAcc = float64(correct) / n
	row.WrongRate = float64(wrong) / n
	row.AbstainRate = float64(abstained) / n
	answered := n - float64(abstained)
	if answered > 0 {
		row.SourcedRate = float64(sourced) / answered
	}
	row.SuggestRate = float64(suggested) / n
	row.MeanLatency = time.Since(start) / time.Duration(len(swissQuestions))
	return row, nil
}

// Table renders the interplay matrix.
func (r *E8Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("E8 — Figure 2 property interplay (ablation matrix, noise=%.2f)", r.Noise),
		Columns: []string{
			"config", "exec acc (P4)", "wrong", "abstain", "sourced (P3)", "suggest (P5)", "latency (P1)",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Config, pct(row.ExecAcc), pct(row.WrongRate), pct(row.AbstainRate),
			pct(row.SourcedRate), pct(row.SuggestRate), row.MeanLatency.String(),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape (Figure 2 arrows): grounding off ⇒ soundness drops (P2 enables P4 via P3);",
		"verification off ⇒ wrong-rate rises; provenance off ⇒ sourced-rate collapses (P3);",
		"guidance off ⇒ suggestions vanish while accuracy holds (P5 is orthogonal to single-turn P4).",
	)
	return t
}
