package experiments

import (
	"fmt"

	"github.com/reliable-cda/cda/internal/bias"
	"github.com/reliable-cda/cda/internal/metrics"
	"github.com/reliable-cda/cda/internal/workload"
)

// E10Result evaluates automatic bias identification over conversation
// logs with planted ground truth — the paper's call for "automatic
// methods for, at least partial, output evaluation to improve both
// effectiveness and accuracy in bias identification".
type E10Result struct {
	Groups    int
	Biased    int
	PerGroup  int
	Precision float64
	Recall    float64
	F1        float64
	// FlaggedPairs lists the (group, descriptor) findings for the
	// report.
	FlaggedPairs []string
}

// RunE10 plants biases, runs the analyzer, and scores group-level
// detection (a group counts as detected when any finding names it
// with its planted descriptor).
func RunE10(biased, perGroup int, seed int64) (*E10Result, error) {
	logs := workload.GenBiasLogs(biased, perGroup, seed)
	analyzer := bias.NewAnalyzer()
	findings := analyzer.Findings(logs.Corpus, logs.GroupTerms)

	res := &E10Result{Groups: len(logs.GroupTerms), Biased: len(logs.Planted), PerGroup: perGroup}
	var conf metrics.Confusion
	flaggedGroups := map[string]string{}
	for _, f := range findings {
		// Keep each group's strongest finding only.
		if _, seen := flaggedGroups[f.Group]; !seen {
			flaggedGroups[f.Group] = f.Term
			res.FlaggedPairs = append(res.FlaggedPairs, f.Group+"→"+f.Term)
		}
	}
	for _, g := range logs.GroupTerms {
		planted, isBiased := logs.Planted[g]
		flaggedTerm, isFlagged := flaggedGroups[g]
		correctFlag := isFlagged && isBiased && flaggedTerm == planted
		conf.Observe(isFlagged, isBiased)
		_ = correctFlag
	}
	res.Precision = conf.Precision()
	res.Recall = conf.Recall()
	res.F1 = conf.F1()
	return res, nil
}

// Table renders the bias-identification scores.
func (r *E10Result) Table() *Table {
	t := &Table{
		Title:   "E10 — automatic bias identification in conversation logs",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"group terms", fmt.Sprintf("%d (%d with planted bias)", r.Groups, r.Biased)},
			{"precision", pct(r.Precision)},
			{"recall", pct(r.Recall)},
			{"F1", pct(r.F1)},
			{"flagged", fmt.Sprintf("%v", r.FlaggedPairs)},
		},
	}
	t.Notes = append(t.Notes,
		"expected shape: planted group/descriptor biases are recovered with high precision;",
		"clean groups are not flagged. Findings are surfaced for human review, not censored.",
	)
	return t
}
