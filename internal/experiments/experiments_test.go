package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"wide-cell-value", "x"}},
		Notes:   []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"== demo ==", "long-column", "wide-cell-value", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestRunE1ReproducesFigure1(t *testing.T) {
	r, err := RunE1(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Turns) != 4 {
		t.Fatalf("turns = %d", len(r.Turns))
	}
	if !r.PeriodDetected {
		t.Error("seasonal period 6 not detected")
	}
	if r.SeasonConfidence < 0.8 || r.SeasonConfidence > 0.98 {
		t.Errorf("seasonality confidence = %v, want ≈0.9", r.SeasonConfidence)
	}
	if !r.AllLossless {
		t.Error("provenance not lossless across the dialogue")
	}
	// Turn 1 must exhibit grounding and guidance; turn 4 code.
	hasProp := func(turn int, prop string) bool {
		for _, p := range r.Turns[turn].Properties {
			if strings.Contains(p, prop) {
				return true
			}
		}
		return false
	}
	if !hasProp(0, "P2") || !hasProp(0, "P5") {
		t.Errorf("turn 1 properties = %v", r.Turns[0].Properties)
	}
	if !hasProp(3, "P3") {
		t.Errorf("turn 4 properties = %v", r.Turns[3].Properties)
	}
	if s := r.Table().String(); !strings.Contains(s, "seasonal period 6 detected: true") {
		t.Errorf("table = %s", s)
	}
}

func TestRunE2Shapes(t *testing.T) {
	p := workload.VectorParams{N: 3000, Queries: 30, Dim: 16, Clusters: 8, Spread: 1, Scale: 5, Seed: 3}
	r, err := RunE2(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E2Row{}
	for _, row := range r.Rows {
		byName[row.Method] = row
		if !row.PromiseMet {
			t.Errorf("%s failed its promise: %+v", row.Method, row)
		}
	}
	exact := byName["exact-scan"]
	if exact.Recall != 1 {
		t.Errorf("exact recall = %v", exact.Recall)
	}
	// Approximate methods must do fewer distance computations.
	for _, name := range []string{"lsh", "ivf(probe=10%)", "progressive(δ=0.9)"} {
		if byName[name].AvgComps >= exact.AvgComps {
			t.Errorf("%s comps %v >= exact %v", name, byName[name].AvgComps, exact.AvgComps)
		}
	}
	// The progressive method with δ=0.9 must hold its recall bound.
	if byName["progressive(δ=0.9)"].Recall < 0.85 {
		t.Errorf("progressive recall = %v", byName["progressive(δ=0.9)"].Recall)
	}
	if byName["progressive(δ=1)"].Recall != 1 {
		t.Errorf("progressive exact recall = %v", byName["progressive(δ=1)"].Recall)
	}
	_ = r.Table().String()
}

func TestRunE3GroundingHelps(t *testing.T) {
	r, err := RunE3(80, 0.8, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.With.ExecAccuracy <= r.Without.ExecAccuracy {
		t.Errorf("grounding did not help: with=%v without=%v",
			r.With.ExecAccuracy, r.Without.ExecAccuracy)
	}
	if r.SynonymQuestions == 0 {
		t.Error("workload contains no synonym questions")
	}
	_ = r.Table().String()
}

func TestRunE4Properties(t *testing.T) {
	r, err := RunE4(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.LosslessRate != 1 || r.InvertibleRate != 1 {
		t.Errorf("formal properties violated: %+v", r)
	}
	if r.ProvRefs < 1 {
		t.Errorf("mean provenance refs = %v", r.ProvRefs)
	}
	if r.Overhead <= 0 {
		t.Errorf("overhead = %v", r.Overhead)
	}
	_ = r.Table().String()
}

func TestRunE5CalibrationShapes(t *testing.T) {
	r, err := RunE5(150, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	raw, cons, ent, cal := r.Rows[0], r.Rows[1], r.Rows[2], r.Rows[3]
	// Entropy UQ must also order errors far better than the raw
	// self-report.
	if ent.AURC >= raw.AURC {
		t.Errorf("entropy AURC %v >= raw %v", ent.AURC, raw.AURC)
	}
	// Consistency-based UQ must be better calibrated and better
	// ordered than the raw self-report.
	if cons.ECE >= raw.ECE {
		t.Errorf("consistency ECE %v >= raw %v", cons.ECE, raw.ECE)
	}
	if cons.AURC >= raw.AURC {
		t.Errorf("consistency AURC %v >= raw %v", cons.AURC, raw.AURC)
	}
	// Recalibration should not be dramatically worse than raw
	// consistency (it is fit on held-out data so small regressions
	// are possible, but the order-of-magnitude claim must hold).
	if cal.ECE > raw.ECE {
		t.Errorf("recalibrated ECE %v > raw %v", cal.ECE, raw.ECE)
	}
	// Selective accuracy at 0.5 must beat the answered-everything
	// accuracy of the raw scheme (whose coverage ≈ 1 at 0.5).
	if cons.SelAcc <= raw.SelAcc && cons.Coverage < raw.Coverage {
		t.Errorf("abstention did not pay: cons=%+v raw=%+v", cons, raw)
	}
	_ = r.Table().String()
}

func TestRunE6GuidanceWins(t *testing.T) {
	r, err := RunE6(context.Background(), 6, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.GuidedSuccess < r.RandomSuccess {
		t.Errorf("guided %v < random %v", r.GuidedSuccess, r.RandomSuccess)
	}
	if r.GuidedSuccess == 0 {
		t.Error("guided sessions never succeed")
	}
	if r.GuidedSuccess == r.RandomSuccess && r.GuidedTurns > r.RandomTurns {
		t.Errorf("guided needs more turns at equal success: %v vs %v", r.GuidedTurns, r.RandomTurns)
	}
	if len(r.PlannedPath) == 0 {
		t.Error("no speculative plan")
	}
	_ = r.Table().String()
}

func TestRunE7Ladder(t *testing.T) {
	r, err := RunE7(80, 0.3, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 5 {
		t.Fatalf("stages = %d", len(r.Stages))
	}
	// Monotone accuracy up the ladder (allowing equality between
	// adjacent stages).
	for i := 1; i < len(r.Stages); i++ {
		if r.Stages[i].ExecAccuracy < r.Stages[i-1].ExecAccuracy-0.01 {
			t.Errorf("ladder not monotone at %s: %v -> %v",
				r.Stages[i].Name, r.Stages[i-1].ExecAccuracy, r.Stages[i].ExecAccuracy)
		}
	}
	full := r.Stages[len(r.Stages)-1]
	base := r.Stages[0]
	if full.ExecAccuracy <= base.ExecAccuracy {
		t.Errorf("full pipeline %v <= base %v", full.ExecAccuracy, base.ExecAccuracy)
	}
	// Verification suppresses confidently-wrong answers.
	if full.WrongRate > base.WrongRate {
		t.Errorf("verification raised wrong rate: %v > %v", full.WrongRate, base.WrongRate)
	}
	_ = r.Table().String()
}

func TestRunE8Interplay(t *testing.T) {
	r, err := RunE8(context.Background(), 0.15, 5)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]E8Row{}
	for _, row := range r.Rows {
		rows[row.Config] = row
	}
	full := rows["full system"]
	if full.ExecAcc < 0.5 {
		t.Errorf("full system accuracy = %v", full.ExecAcc)
	}
	if rows["- grounding (P2 off)"].ExecAcc > full.ExecAcc {
		t.Errorf("grounding off should not beat full: %v > %v",
			rows["- grounding (P2 off)"].ExecAcc, full.ExecAcc)
	}
	if got := rows["- provenance (P3 off)"].SourcedRate; got != 0 {
		t.Errorf("provenance off but sourced rate = %v", got)
	}
	if got := rows["- guidance (P5 off)"].SuggestRate; got != 0 {
		t.Errorf("guidance off but suggest rate = %v", got)
	}
	if full.SourcedRate == 0 || full.SuggestRate == 0 {
		t.Errorf("full system missing annotations: %+v", full)
	}
	_ = r.Table().String()
}

func TestRunE9HybridDominates(t *testing.T) {
	r, err := RunE9(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]E9Row{}
	for _, row := range r.Rows {
		byMode[row.Mode] = row
	}
	lex := byMode["lexical (BM25)"]
	dense := byMode["dense (embeddings)"]
	hybrid := byMode["hybrid (RRF)"]
	if dense.MismatchTop1 <= lex.MismatchTop1 {
		t.Errorf("dense mismatch top1 %v <= lexical %v", dense.MismatchTop1, lex.MismatchTop1)
	}
	if hybrid.MRR < lex.MRR || hybrid.MRR < dense.MRR {
		t.Errorf("hybrid MRR %v below a component (lex %v dense %v)", hybrid.MRR, lex.MRR, dense.MRR)
	}
	_ = r.Table().String()
}

func TestRunE10BiasDetection(t *testing.T) {
	r, err := RunE10(3, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Precision < 0.99 {
		t.Errorf("precision = %v (clean group flagged)", r.Precision)
	}
	if r.Recall < 0.99 {
		t.Errorf("recall = %v (planted bias missed)", r.Recall)
	}
	_ = r.Table().String()
}

func TestRunE2SweepScaling(t *testing.T) {
	p := workload.VectorParams{Queries: 20, Dim: 16, Clusters: 8, Spread: 1, Scale: 5, Seed: 3}
	sweep, err := RunE2Sweep([]int{1000, 4000}, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 2 {
		t.Fatalf("results = %d", len(sweep.Results))
	}
	// Exact scan cost grows with n; find the exact row.
	var small, large *E2Row
	for i := range sweep.Results[0].Rows {
		if sweep.Results[0].Rows[i].Method == "exact-scan" {
			small = &sweep.Results[0].Rows[i]
			large = &sweep.Results[1].Rows[i]
		}
	}
	if small == nil || large == nil {
		t.Fatal("exact-scan row missing")
	}
	if large.AvgComps <= small.AvgComps {
		t.Errorf("exact comps did not grow: %v -> %v", small.AvgComps, large.AvgComps)
	}
	// Promise holds at both sizes.
	for _, res := range sweep.Results {
		for _, row := range res.Rows {
			if !row.PromiseMet {
				t.Errorf("promise failed at n=%d for %s", res.Params.N, row.Method)
			}
		}
	}
	_ = sweep.Table().String()
}

func TestRunScorecard(t *testing.T) {
	sc, err := RunScorecard(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"P1": sc.P1Efficiency, "P2": sc.P2Grounding, "P3": sc.P3Explainability,
		"P4": sc.P4Soundness, "P5": sc.P5Guidance, "System": sc.System,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of range", name, v)
		}
	}
	// The full system should score highly on every property.
	if sc.P3Explainability < 0.99 {
		t.Errorf("P3 = %v", sc.P3Explainability)
	}
	if sc.P4Soundness < 0.9 {
		t.Errorf("P4 = %v", sc.P4Soundness)
	}
	if sc.System < 0.7 {
		t.Errorf("system score = %v", sc.System)
	}
	_ = sc.Table().String()
}
