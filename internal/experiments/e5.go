package experiments

import (
	"math/rand"

	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/metrics"
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/uncertainty"
	"github.com/reliable-cda/cda/internal/workload"
)

// E5Row measures one confidence scheme.
type E5Row struct {
	Scheme   string
	ECE      float64
	Brier    float64
	AURC     float64
	Coverage float64 // at the 0.5 abstention threshold
	SelAcc   float64 // selective accuracy at that threshold
}

// E5Result is the P4 Soundness calibration experiment: raw LLM
// self-confidence vs. consistency-based UQ vs. histogram-recalibrated
// consistency, over a noisy NL2SQL workload with known ground truth.
type E5Result struct {
	N             int
	Hallucination float64
	Rows          []E5Row
	// AbstainedWrong / AnsweredWrong at the combined scheme,
	// demonstrating that abstention absorbs errors.
	Answered int
}

// RunE5 collects (confidence, correct) pairs under three schemes.
func RunE5(n int, hallucination float64, seed int64) (*E5Result, error) {
	w := workload.GenNL2SQL(n, 0.3, seed)
	grounder := ground.NewGrounder(nil, w.DB, w.Vocab)
	engine := sqldb.NewEngine(w.DB)
	rng := rand.New(rand.NewSource(seed))
	raw := nlmodel.RawConfidence{Base: 0.9, Noise: 0.04}

	var rawPreds, consPreds, entPreds []metrics.Prediction
	res := &E5Result{N: n, Hallucination: hallucination}
	for i, qa := range w.Pairs {
		gold, err := engine.Query(qa.GoldSQL)
		if err != nil {
			return nil, err
		}
		matches := func(out *nl2sql.Translation) bool {
			return !out.Abstained && out.Result != nil && out.Result.Fingerprint() == gold.Fingerprint()
		}

		// Scheme 1: the generation-only system — single unchecked
		// sample, raw self-reported confidence independent of truth
		// (the paper's "relying solely on an LLM" case).
		baseTr := nl2sql.NewTranslator(w.DB, grounder, seed+int64(i))
		baseTr.Channel = nlmodel.Channel{HallucinationRate: hallucination, Fabrications: w.Fabrications}
		baseTr.Options = nl2sql.Options{UseGrounding: true, Samples: 1, MaxRepairAttempts: 1}
		baseOut, err := baseTr.Translate(qa.Question)
		if err != nil {
			continue
		}
		rawPreds = append(rawPreds, metrics.Prediction{
			Confidence: raw.Score(rng),
			Correct:    matches(baseOut),
		})

		// Scheme 2: the verified pipeline with consistency agreement
		// as confidence (abstention = confidence 0).
		fullTr := nl2sql.NewTranslator(w.DB, grounder, seed+int64(i))
		fullTr.Channel = nlmodel.Channel{HallucinationRate: hallucination, Fabrications: w.Fabrications}
		fullTr.Options = nl2sql.DefaultOptions()
		fullOut, err := fullTr.Translate(qa.Question)
		if err != nil {
			continue
		}
		if !fullOut.Abstained {
			res.Answered++
		}
		conf := fullOut.Confidence
		entConf := uncertainty.EntropyConfidence(fullOut.Votes)
		if fullOut.Abstained {
			conf, entConf = 0, 0
		}
		consPreds = append(consPreds, metrics.Prediction{Confidence: conf, Correct: matches(fullOut)})
		entPreds = append(entPreds, metrics.Prediction{Confidence: entConf, Correct: matches(fullOut)})
	}

	// Scheme 3: histogram-recalibrated consistency, fit on the first
	// half, evaluated on the second.
	half := len(consPreds) / 2
	cal := uncertainty.NewHistogram(10)
	if err := cal.Fit(consPreds[:half]); err != nil {
		return nil, err
	}
	var calPreds []metrics.Prediction
	for _, p := range consPreds[half:] {
		c, err := cal.Calibrate(p.Confidence)
		if err != nil {
			return nil, err
		}
		calPreds = append(calPreds, metrics.Prediction{Confidence: c, Correct: p.Correct})
	}

	for _, s := range []struct {
		name  string
		preds []metrics.Prediction
	}{
		{"raw LLM self-confidence", rawPreds},
		{"consistency-based UQ", consPreds},
		{"semantic-entropy UQ", entPreds},
		{"consistency + recalibration", calPreds},
	} {
		row, err := e5Row(s.name, s.preds)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func e5Row(name string, preds []metrics.Prediction) (E5Row, error) {
	ece, err := metrics.ECE(preds, 10)
	if err != nil {
		return E5Row{}, err
	}
	brier, err := metrics.Brier(preds)
	if err != nil {
		return E5Row{}, err
	}
	aurc, err := metrics.AURC(preds)
	if err != nil {
		return E5Row{}, err
	}
	cov, acc := metrics.SelectiveAccuracy(preds, 0.5)
	return E5Row{Scheme: name, ECE: ece, Brier: brier, AURC: aurc, Coverage: cov, SelAcc: acc}, nil
}

// Table renders the calibration comparison.
func (r *E5Result) Table() *Table {
	t := &Table{
		Title:   "E5 — confidence calibration (P4 Soundness)",
		Columns: []string{"scheme", "ECE", "Brier", "AURC", "coverage@0.5", "sel. acc@0.5"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scheme, f3(row.ECE), f3(row.Brier), f3(row.AURC), pct(row.Coverage), pct(row.SelAcc),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: raw self-confidence is badly calibrated (high ECE);",
		"consistency-based UQ orders errors (lower AURC); recalibration drives ECE toward 0;",
		"abstaining below 0.5 trades coverage for much higher selective accuracy.",
	)
	return t
}
