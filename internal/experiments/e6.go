package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/guidance"
	"github.com/reliable-cda/cda/internal/workload"
)

// E6Result is the P5 Guidance experiment: simulated users pursue a
// hidden analytical goal (a seasonality insight on the barometer)
// either following the system's guidance or exploring on their own.
type E6Result struct {
	Sessions       int
	TurnBudget     int
	GuidedSuccess  float64
	GuidedTurns    float64 // mean turns among successful sessions
	RandomSuccess  float64
	RandomTurns    float64
	PlannedPath    []guidance.Action
	PlannedSuccess float64 // graph's own estimate for the planned path
}

// goalReached checks whether an answer delivers the target insight.
func goalReached(ans *core.Answer) bool {
	return ans != nil && !ans.Abstained && strings.Contains(ans.Text, "seasonal period")
}

// RunE6 simulates guided and unguided user sessions under the
// caller's context.
func RunE6(ctx context.Context, sessions, turnBudget int, seed int64) (*E6Result, error) {
	res := &E6Result{Sessions: sessions, TurnBudget: turnBudget}

	// The guided user starts from the same vague opening and then
	// only reacts to the system's own signals: it answers pending
	// clarifications by naming its goal dataset and follows a
	// seasonality suggestion when offered. No fixed script.
	guidedPolicy := func(last *core.Answer) string {
		switch {
		case last == nil:
			return "Give me an overview of the working force in Switzerland"
		case last.Clarification != "":
			return "I am interested in the barometer"
		case strings.Contains(last.Suggestions, "seasonality"):
			return "Can you please give me the seasonality insights"
		default:
			return "Can you please give me the seasonality insights"
		}
	}
	// The unguided pool: plausible utterances issued in random order
	// (the "single prompt, no guidance" interaction style).
	randomPool := []string{
		"Can you please give me the seasonality insights",
		"What is the Swiss workforce barometer?",
		"how many employment where canton is Zurich",
		"Give me an overview of the working force in Switzerland",
		"I am interested in the barometer",
		"list the value of barometer",
	}

	var guidedOK, randomOK int
	var guidedTurnSum, randomTurnSum float64
	for s := 0; s < sessions; s++ {
		// Guided session.
		d := workload.NewSwissDomain(seed)
		sys := core.New(core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now, Seed: seed + int64(s)})
		sess := sys.NewSession()
		turns := 0
		success := false
		var last *core.Answer
		for turns < turnBudget {
			turns++
			ans, err := sys.Respond(ctx, sess, guidedPolicy(last))
			if err != nil {
				return nil, err
			}
			last = ans
			if goalReached(ans) {
				success = true
				break
			}
		}
		if success {
			guidedOK++
			guidedTurnSum += float64(turns)
			sys.Guide().Record([]guidance.Action{guidance.ActDiscover, guidance.ActClarify, guidance.ActAnalyze}, true)
		}

		// Unguided session: same system, random utterance order.
		d2 := workload.NewSwissDomain(seed)
		sys2 := core.New(core.Config{DB: d2.DB, Catalog: d2.Catalog, KG: d2.KG, Vocab: d2.Vocab, Documents: d2.Documents, Now: d2.Now, Seed: seed + int64(s), DisableGuidance: true})
		sess2 := sys2.NewSession()
		rng := rand.New(rand.NewSource(seed + int64(s)*31))
		turns = 0
		success = false
		for turns < turnBudget {
			turns++
			u := randomPool[rng.Intn(len(randomPool))]
			ans, err := sys2.Respond(ctx, sess2, u)
			if err != nil {
				return nil, err
			}
			if goalReached(ans) {
				success = true
				break
			}
		}
		if success {
			randomOK++
			randomTurnSum += float64(turns)
		}
	}
	res.GuidedSuccess = float64(guidedOK) / float64(sessions)
	res.RandomSuccess = float64(randomOK) / float64(sessions)
	if guidedOK > 0 {
		res.GuidedTurns = guidedTurnSum / float64(guidedOK)
	}
	if randomOK > 0 {
		res.RandomTurns = randomTurnSum / float64(randomOK)
	}

	// The interaction graph's own speculative plan.
	g := guidance.NewGraph()
	for i := 0; i < 10; i++ {
		g.Record([]guidance.Action{guidance.ActDiscover, guidance.ActClarify, guidance.ActAnalyze}, true)
		g.Record([]guidance.Action{guidance.ActAnalyze}, false)
	}
	res.PlannedPath, res.PlannedSuccess = g.Plan(guidance.ActStart, 5)
	return res, nil
}

// Table renders the guidance comparison.
func (r *E6Result) Table() *Table {
	t := &Table{
		Title:   "E6 — guided vs. unguided exploration (P5 Guidance)",
		Columns: []string{"mode", "success rate", "mean turns to goal"},
		Rows: [][]string{
			{"guided (follow system leads)", pct(r.GuidedSuccess), f2(r.GuidedTurns)},
			{"unguided (random prompts)", pct(r.RandomSuccess), f2(r.RandomTurns)},
		},
	}
	path := make([]string, len(r.PlannedPath))
	for i, a := range r.PlannedPath {
		path[i] = string(a)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("interaction-graph plan: %s (estimated success %s)", strings.Join(path, " → "), pct(r.PlannedSuccess)),
		"expected shape: guidance reaches the goal with fewer turns and higher success.",
	)
	return t
}
