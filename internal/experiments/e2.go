package experiments

import (
	"fmt"
	"time"

	"github.com/reliable-cda/cda/internal/vectorindex"
	"github.com/reliable-cda/cda/internal/workload"
)

// E2Row is one similarity-search method's measurement.
type E2Row struct {
	Method     string
	BuildTime  time.Duration
	AvgLatency time.Duration
	AvgComps   float64 // distance computations per query
	Recall     float64 // vs exact top-k
	Guarantee  string  // "exact", "δ=0.9", "none"
	// PromiseMet reports whether empirical recall met the promised
	// bound (guaranteed methods only; vacuously true otherwise).
	PromiseMet bool
}

// E2Result is the P1 Efficiency experiment: the three regimes of
// similarity search the paper contrasts.
type E2Result struct {
	Params workload.VectorParams
	K      int
	Rows   []E2Row
}

// RunE2 measures exact, LSH, IVF, and progressive search on a
// clustered workload.
func RunE2(p workload.VectorParams, k int) (*E2Result, error) {
	data, queries := workload.GenVectors(p)
	res := &E2Result{Params: p, K: k}

	// Ground truth from the exact index.
	exact := vectorindex.NewExact(data)
	truth := make([][]vectorindex.Neighbor, len(queries))
	for i, q := range queries {
		nn, err := exact.Search(q, k)
		if err != nil {
			return nil, err
		}
		truth[i] = nn
	}

	type method struct {
		name      string
		guarantee string
		delta     float64
		build     func() (vectorindex.Index, error)
	}
	lists := p.Clusters * 4
	methods := []method{
		{name: "exact-scan", guarantee: "exact", build: func() (vectorindex.Index, error) {
			return vectorindex.NewExact(data), nil
		}},
		{name: "lsh", guarantee: "none", build: func() (vectorindex.Index, error) {
			return vectorindex.NewLSH(data, vectorindex.LSHParams{Tables: 10, Hashes: 4, Width: 16, Seed: p.Seed})
		}},
		{name: "ivf(probe=10%)", guarantee: "none", build: func() (vectorindex.Index, error) {
			return vectorindex.NewIVF(data, vectorindex.IVFParams{Lists: lists, Probe: max(1, lists/10), KMeansIts: 8, Seed: p.Seed})
		}},
		{name: "progressive(δ=0.9)", guarantee: "δ=0.9", delta: 0.9, build: func() (vectorindex.Index, error) {
			return vectorindex.NewProgressive(data, vectorindex.ProgressiveParams{Delta: 0.9, Lists: lists, KMeansIts: 8, BatchSize: 64, Seed: p.Seed})
		}},
		{name: "progressive(δ=1)", guarantee: "exact", delta: 1, build: func() (vectorindex.Index, error) {
			return vectorindex.NewProgressive(data, vectorindex.ProgressiveParams{Delta: 1, Lists: lists, KMeansIts: 8, Seed: p.Seed})
		}},
	}

	for _, m := range methods {
		start := time.Now()
		idx, err := m.build()
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", m.name, err)
		}
		buildTime := time.Since(start)
		before := idx.DistComps()
		var recallSum float64
		qStart := time.Now()
		for i, q := range queries {
			nn, err := idx.Search(q, k)
			if err != nil {
				return nil, fmt.Errorf("%s query %d: %w", m.name, i, err)
			}
			recallSum += vectorindex.Recall(truth[i], nn)
		}
		elapsed := time.Since(qStart)
		row := E2Row{
			Method:     m.name,
			BuildTime:  buildTime,
			AvgLatency: elapsed / time.Duration(len(queries)),
			AvgComps:   float64(idx.DistComps()-before) / float64(len(queries)),
			Recall:     recallSum / float64(len(queries)),
			Guarantee:  m.guarantee,
		}
		switch {
		case m.guarantee == "exact":
			row.PromiseMet = row.Recall >= 0.999
		case m.delta > 0:
			row.PromiseMet = row.Recall >= m.delta-0.05
		default:
			row.PromiseMet = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the efficiency comparison.
func (r *E2Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("E2 — similarity search: n=%d d=%d k=%d (P1 Efficiency)",
			r.Params.N, r.Params.Dim, r.K),
		Columns: []string{"method", "guarantee", "avg latency", "avg dist comps", "recall@k", "promise met"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Method, row.Guarantee, row.AvgLatency.String(),
			fmt.Sprintf("%.0f", row.AvgComps), f3(row.Recall),
			fmt.Sprintf("%v", row.PromiseMet),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: approximate methods cut distance computations but lose recall with no bound;",
		"progressive(δ) keeps recall ≥ δ while staying well below the exact scan's cost.",
	)
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E2Sweep aggregates RunE2 over several collection sizes — the
// parameter sweep showing how each regime's cost scales.
type E2Sweep struct {
	K       int
	Sizes   []int
	Results []*E2Result
}

// RunE2Sweep runs the similarity-search comparison at each size.
func RunE2Sweep(sizes []int, base workload.VectorParams, k int) (*E2Sweep, error) {
	sweep := &E2Sweep{K: k, Sizes: sizes}
	for _, n := range sizes {
		p := base
		p.N = n
		r, err := RunE2(p, k)
		if err != nil {
			return nil, err
		}
		sweep.Results = append(sweep.Results, r)
	}
	return sweep, nil
}

// Table renders latency scaling per method across sizes.
func (s *E2Sweep) Table() *Table {
	t := &Table{
		Title:   "E2b — similarity-search scaling (avg latency per query)",
		Columns: []string{"method"},
	}
	for _, n := range s.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("n=%d", n))
	}
	if len(s.Results) == 0 {
		return t
	}
	for mi, row0 := range s.Results[0].Rows {
		row := []string{row0.Method}
		for _, res := range s.Results {
			row = append(row, fmt.Sprintf("%v (r=%.2f)", res.Rows[mi].AvgLatency, res.Rows[mi].Recall))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: exact latency grows linearly in n; the indexed methods grow sublinearly",
		"while progressive holds its recall promise at every size.")
	return t
}
