package experiments

import (
	"fmt"
	"strings"

	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/metrics"
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/workload"
)

// PipelineStats aggregates one NL2SQL configuration's outcomes over a
// workload.
type PipelineStats struct {
	Name string
	// ExecAccuracy: answered AND result matches the gold query's
	// result multiset.
	ExecAccuracy float64
	// WrongRate: answered but with a different result (the dangerous
	// case the paper wants driven to zero).
	WrongRate float64
	// AbstainRate: declined to answer.
	AbstainRate float64
	// HallucinatedID: fraction of emitted SQL containing identifiers
	// outside the schema.
	HallucinatedID float64
	// AvgConfidence of answered questions.
	AvgConfidence float64
	// Outcomes holds the per-question 1/0 correctness for bootstrap
	// confidence intervals on ExecAccuracy.
	Outcomes []float64
}

// RunPipeline evaluates one option set over the workload at the given
// channel noise.
func RunPipeline(name string, w *workload.NL2SQLWorkload, opts nl2sql.Options, hallucination float64, seed int64) (*PipelineStats, error) {
	grounder := ground.NewGrounder(nil, w.DB, w.Vocab)
	engine := sqldb.NewEngine(w.DB)
	valid := map[string]bool{}
	for _, t := range w.DB.Tables() {
		valid[strings.ToLower(t.Name)] = true
		for _, c := range t.Schema() {
			valid[strings.ToLower(c.Name)] = true
		}
	}

	stats := &PipelineStats{Name: name}
	var correct, wrong, abstained, hallucinated int
	var confSum float64
	answered := 0
	for i, qa := range w.Pairs {
		tr := nl2sql.NewTranslator(w.DB, grounder, seed+int64(i))
		tr.Channel = nlmodel.Channel{HallucinationRate: hallucination, Fabrications: w.Fabrications}
		tr.Options = opts
		res, err := tr.Translate(qa.Question)
		if err != nil {
			abstained++ // out-of-grammar: treated as a clarification turn
			stats.Outcomes = append(stats.Outcomes, 0)
			continue
		}
		if hasInvalidIdentifier(res.SQL, valid) {
			hallucinated++
		}
		if res.Abstained {
			abstained++
			stats.Outcomes = append(stats.Outcomes, 0)
			continue
		}
		answered++
		confSum += res.Confidence
		goldRes, err := engine.Query(qa.GoldSQL)
		if err != nil {
			return nil, err
		}
		if res.Result != nil && res.Result.Fingerprint() == goldRes.Fingerprint() {
			correct++
			stats.Outcomes = append(stats.Outcomes, 1)
		} else {
			wrong++
			stats.Outcomes = append(stats.Outcomes, 0)
		}
	}
	n := float64(len(w.Pairs))
	stats.ExecAccuracy = float64(correct) / n
	stats.WrongRate = float64(wrong) / n
	stats.AbstainRate = float64(abstained) / n
	stats.HallucinatedID = float64(hallucinated) / n
	if answered > 0 {
		stats.AvgConfidence = confSum / float64(answered)
	}
	return stats, nil
}

func hasInvalidIdentifier(sql string, valid map[string]bool) bool {
	toks, err := sqldb.Lex(sql)
	if err != nil {
		return true
	}
	for _, tk := range toks {
		if tk.Type == sqldb.TokIdent && !valid[strings.ToLower(tk.Text)] {
			return true
		}
	}
	return false
}

// E7Result is the reliability-stage ablation ladder.
type E7Result struct {
	N             int
	SynonymRate   float64
	Hallucination float64
	Stages        []*PipelineStats
}

// RunE7 evaluates the four-stage ladder on one workload.
func RunE7(n int, synonymRate, hallucination float64, seed int64) (*E7Result, error) {
	w := workload.GenNL2SQL(n, synonymRate, seed)
	res := &E7Result{N: n, SynonymRate: synonymRate, Hallucination: hallucination}
	stages := []struct {
		name string
		opts nl2sql.Options
	}{
		{"base (LLM-only)", nl2sql.Options{Samples: 1, MaxRepairAttempts: 1}},
		{"+grounding", nl2sql.Options{UseGrounding: true, Samples: 1, MaxRepairAttempts: 1}},
		{"+constrained", nl2sql.Options{UseGrounding: true, UseConstrained: true, Samples: 1, MaxRepairAttempts: 3}},
		{"+reranking", nl2sql.Options{UseGrounding: true, UseConstrained: true, UseReranking: true, RerankPool: 4, Samples: 1, MaxRepairAttempts: 3}},
		{"+verification", nl2sql.DefaultOptions()},
	}
	for _, st := range stages {
		s, err := RunPipeline(st.name, w, st.opts, hallucination, seed)
		if err != nil {
			return nil, err
		}
		res.Stages = append(res.Stages, s)
	}
	return res, nil
}

// Table renders the ablation ladder.
func (r *E7Result) Table() *Table {
	t := &Table{
		Title: "E7 — NL2SQL reliability ladder (exec accuracy per stage)",
		Columns: []string{
			"stage", "exec acc", "95% CI", "wrong", "abstain", "halluc. ids", "avg conf",
		},
	}
	for _, s := range r.Stages {
		ci := "—"
		if lo, hi, err := metrics.Bootstrap(s.Outcomes, 2000, 0.95, 1); err == nil {
			ci = fmt.Sprintf("[%s, %s]", pct(lo), pct(hi))
		}
		t.Rows = append(t.Rows, []string{
			s.Name, pct(s.ExecAccuracy), ci, pct(s.WrongRate), pct(s.AbstainRate),
			pct(s.HallucinatedID), f2(s.AvgConfidence),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: accuracy increases monotonically down the ladder;",
		"verification converts residual wrong answers into abstentions.",
	)
	return t
}
