// Package optimizer implements the paper's "holistic optimizer" for
// interactivity (P1): a result cache with LRU eviction and
// singleflight computation sharing, plus request batching, each
// instrumented so E2/E4 can quantify the savings.
package optimizer

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a thread-safe LRU result cache keyed by strings (typically
// canonical query texts) with singleflight semantics: concurrent
// misses on the same key share one computation instead of stampeding
// (see Do). The zero value is unusable; construct with NewCache.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	flights  map[string]*flight[V]
	hits     int64
	misses   int64
	deduped  int64
}

type entry[V any] struct {
	key string
	val V
}

// flight is one in-flight computation; waiters block on done.
type flight[V any] struct {
	done   chan struct{}
	val    V
	err    error
	shared bool // leader's outcome is valid for waiters
}

// NewCache creates a cache holding at most capacity entries
// (capacity < 1 is raised to 1).
func NewCache[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight[V]),
	}
}

// Get returns the cached value and whether it was present, promoting
// the entry on hit.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores a value, evicting the least-recently-used entry when
// full.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

func (c *Cache[V]) putLocked(key string, val V) {
	if el, ok := c.items[key]; ok {
		el.Value = entry[V]{key, val}
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(entry[V]).key)
		}
	}
	c.items[key] = c.ll.PushFront(entry[V]{key, val})
}

// Do returns the cached value for key or computes it with
// singleflight semantics: among concurrent callers missing the same
// key, exactly one (the leader) runs compute while the rest wait.
//
// compute reports (value, store, error). With store true the value is
// cached and handed to every waiter; errors are also handed to
// waiters (but never cached, so a later call retries). With store
// false and a nil error the result is treated as caller-specific —
// nothing is cached and each waiter runs its own compute once the
// leader finishes.
//
// A waiter whose ctx is done stops waiting and returns ctx.Err();
// the leader's flight still settles normally for the other waiters.
// The leader itself is responsible for honoring ctx inside compute —
// a leader that abandons the flight would strand its waiters.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, bool, error)) (V, error) {
	v, hit, f, leader := c.lookup(key)
	if hit {
		return v, nil
	}
	if !leader {
		select {
		case <-f.done:
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
		if f.shared {
			return f.val, f.err
		}
		v, _, err := compute()
		return v, err
	}
	v, store, err := compute()
	c.settle(key, f, v, store, err)
	return v, err
}

// lookup consults the LRU and the flight table under one lock
// acquisition: a cache hit returns (v, true, nil, false); otherwise
// the caller either joins an existing flight (leader=false) or
// registers a new one it must settle (leader=true).
func (c *Cache[V]) lookup(key string) (v V, hit bool, f *flight[V], leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(entry[V]).val, true, nil, false
	}
	c.misses++
	if f, ok := c.flights[key]; ok {
		c.deduped++
		return v, false, f, false
	}
	f = &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	return v, false, f, true
}

// settle publishes the leader's outcome to waiters and retires the
// flight, caching the value when compute asked for it.
func (c *Cache[V]) settle(key string, f *flight[V], v V, store bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f.val, f.err = v, err
	f.shared = store || err != nil
	if store && err == nil {
		c.putLocked(key, v)
	}
	delete(c.flights, key)
	close(f.done)
}

// GetOrCompute returns the cached value or computes, stores, and
// returns it, sharing one in-flight computation per key among
// concurrent callers (singleflight via Do).
func (c *Cache[V]) GetOrCompute(ctx context.Context, key string, compute func() (V, error)) (V, error) {
	v, err := c.Do(ctx, key, func() (V, bool, error) {
		v, err := compute()
		return v, err == nil, err
	})
	if err != nil {
		var zero V
		return zero, err
	}
	return v, nil
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counts. A caller that joins
// another caller's in-flight computation counts as a miss (the value
// was not in the LRU); see Deduped for how many such joins occurred.
func (c *Cache[V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Deduped returns how many lookups joined an already-in-flight
// computation instead of starting their own — the work the
// singleflight layer saved from the thundering herd.
func (c *Cache[V]) Deduped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deduped
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (c *Cache[V]) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Batcher groups items until Size is reached (or Flush is called) and
// hands each full batch to the sink — the "batched computations"
// optimization. Not safe for concurrent use; wrap externally if
// needed.
type Batcher[T any] struct {
	Size    int
	Sink    func(batch []T)
	pending []T
	flushed int
}

// Add appends one item, flushing automatically at Size.
func (b *Batcher[T]) Add(item T) {
	b.pending = append(b.pending, item)
	if b.Size > 0 && len(b.pending) >= b.Size {
		b.Flush()
	}
}

// Flush delivers any pending items as one batch.
func (b *Batcher[T]) Flush() {
	if len(b.pending) == 0 {
		return
	}
	batch := b.pending
	b.pending = nil
	b.flushed++
	if b.Sink != nil {
		b.Sink(batch)
	}
}

// Batches returns how many batches have been delivered.
func (b *Batcher[T]) Batches() int { return b.flushed }
