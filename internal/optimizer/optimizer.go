// Package optimizer implements the paper's "holistic optimizer" for
// interactivity (P1): a result cache with LRU eviction, request
// batching, and sharing of intermediate computations across the
// pipeline, each instrumented so E2/E4 can quantify the savings.
package optimizer

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU result cache keyed by strings (typically
// canonical query texts). The zero value is unusable; construct with
// NewCache.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	hits     int64
	misses   int64
}

type entry[V any] struct {
	key string
	val V
}

// NewCache creates a cache holding at most capacity entries
// (capacity < 1 is raised to 1).
func NewCache[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and whether it was present, promoting
// the entry on hit.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores a value, evicting the least-recently-used entry when
// full.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = entry[V]{key, val}
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(entry[V]).key)
		}
	}
	c.items[key] = c.ll.PushFront(entry[V]{key, val})
}

// GetOrCompute returns the cached value or computes, stores, and
// returns it. Concurrent callers may compute the same key redundantly
// (last write wins) — acceptable for idempotent query results.
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, error)) (V, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	c.Put(key, v)
	return v, nil
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counts.
func (c *Cache[V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (c *Cache[V]) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Batcher groups items until Size is reached (or Flush is called) and
// hands each full batch to the sink — the "batched computations"
// optimization. Not safe for concurrent use; wrap externally if
// needed.
type Batcher[T any] struct {
	Size    int
	Sink    func(batch []T)
	pending []T
	flushed int
}

// Add appends one item, flushing automatically at Size.
func (b *Batcher[T]) Add(item T) {
	b.pending = append(b.pending, item)
	if b.Size > 0 && len(b.pending) >= b.Size {
		b.Flush()
	}
}

// Flush delivers any pending items as one batch.
func (b *Batcher[T]) Flush() {
	if len(b.pending) == 0 {
		return
	}
	batch := b.pending
	b.pending = nil
	b.flushed++
	if b.Sink != nil {
		b.Sink(batch)
	}
}

// Batches returns how many batches have been delivered.
func (b *Batcher[T]) Batches() int { return b.flushed }

// Shared memoizes an expensive computation so parallel pipeline
// stages share one evaluation per key ("sharing of computation and
// intermediate data"). Unlike Cache it never evicts and guarantees a
// single in-flight computation per key.
type Shared[V any] struct {
	mu      sync.Mutex
	results map[string]*sharedCall[V]
}

type sharedCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// NewShared creates an empty computation-sharing table.
func NewShared[V any]() *Shared[V] {
	return &Shared[V]{results: make(map[string]*sharedCall[V])}
}

// Do returns the memoized result for key, computing it exactly once
// even under concurrency (singleflight semantics, but results are
// retained).
func (s *Shared[V]) Do(key string, compute func() (V, error)) (V, error) {
	s.mu.Lock()
	if call, ok := s.results[key]; ok {
		s.mu.Unlock()
		call.wg.Wait()
		return call.val, call.err
	}
	call := &sharedCall[V]{}
	call.wg.Add(1)
	s.results[key] = call
	s.mu.Unlock()
	call.val, call.err = compute()
	call.wg.Done()
	return call.val, call.err
}
