package optimizer

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache[int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("get a = %v %v", v, ok)
	}
	// Insert c: b is LRU (a was just touched) and must be evicted.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache[int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("updated value = %v", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheStatsAndHitRate(t *testing.T) {
	c := NewCache[int](2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("missing")
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d %d", h, m)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
	empty := NewCache[int](1)
	if empty.HitRate() != 0 {
		t.Error("empty hit rate != 0")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache[int](0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	c := NewCache[int](4)
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	v, err := c.GetOrCompute(context.Background(), "k", fn)
	if err != nil || v != 42 {
		t.Fatalf("first = %v %v", v, err)
	}
	v, err = c.GetOrCompute(context.Background(), "k", fn)
	if err != nil || v != 42 || calls != 1 {
		t.Errorf("second = %v %v calls=%d", v, err, calls)
	}
	wantErr := errors.New("boom")
	_, err = c.GetOrCompute(context.Background(), "bad", func() (int, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Error("error result cached")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := string(rune('a' + (g+i)%26))
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}

func TestBatcher(t *testing.T) {
	var batches [][]int
	b := &Batcher[int]{Size: 3, Sink: func(batch []int) {
		cp := append([]int{}, batch...)
		batches = append(batches, cp)
	}}
	for i := 1; i <= 7; i++ {
		b.Add(i)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %v", batches)
	}
	b.Flush()
	if len(batches) != 3 || len(batches[2]) != 1 {
		t.Errorf("after flush = %v", batches)
	}
	if b.Batches() != 3 {
		t.Errorf("count = %d", b.Batches())
	}
	b.Flush() // empty flush is a no-op
	if b.Batches() != 3 {
		t.Error("empty flush counted")
	}
}

// TestDoComputesOnce: under a concurrent stampede on one key, the
// compute runs exactly once — callers either lead, join the flight,
// or hit the freshly cached value.
func TestDoComputesOnce(t *testing.T) {
	c := NewCache[int](4)
	var calls atomic.Int32
	compute := func() (int, bool, error) {
		calls.Add(1)
		return 7, true, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(context.Background(), "key", compute)
			if err != nil || v != 7 {
				t.Errorf("do = %v %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times", calls.Load())
	}
	if v, ok := c.Get("key"); !ok || v != 7 {
		t.Errorf("value not cached: %v %v", v, ok)
	}
}

// TestDoSharesErrorWithWaiters: waiters that joined the flight get
// the leader's error without computing, but the error is not cached —
// the next call retries.
func TestDoSharesErrorWithWaiters(t *testing.T) {
	c := NewCache[int](4)
	boom := errors.New("boom")
	var calls atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, err := c.Do(context.Background(), "k", func() (int, bool, error) {
			calls.Add(1)
			close(entered)
			<-release
			return 0, false, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-entered // the flight is registered; joiners now must wait
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Do(context.Background(), "k", func() (int, bool, error) {
				calls.Add(1)
				return 0, false, nil
			})
			if !errors.Is(err, boom) {
				t.Errorf("waiter err = %v", err)
			}
		}()
	}
	for c.Deduped() < 8 { // wait for all 8 to join the flight
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	<-leaderDone
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times", calls.Load())
	}
	if _, ok := c.Get("k"); ok {
		t.Error("error result cached")
	}
	// The error was not cached: a later call retries.
	v, err := c.Do(context.Background(), "k", func() (int, bool, error) { return 5, true, nil })
	if err != nil || v != 5 {
		t.Errorf("retry = %v %v", v, err)
	}
}

// TestDoNonCacheableNotShared: when the leader reports store=false
// with no error, its result is caller-specific — waiters run their
// own compute and nothing lands in the cache.
func TestDoNonCacheableNotShared(t *testing.T) {
	c := NewCache[int](4)
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err := c.Do(context.Background(), "k", func() (int, bool, error) {
			close(entered)
			<-release
			return 1, false, nil
		})
		if err != nil || v != 1 {
			t.Errorf("leader = %v %v", v, err)
		}
	}()
	<-entered
	var wg sync.WaitGroup
	var waiterCalls atomic.Int32
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(context.Background(), "k", func() (int, bool, error) {
				waiterCalls.Add(1)
				return 2, false, nil
			})
			if err != nil || v != 2 {
				t.Errorf("waiter = %v %v", v, err)
			}
		}()
	}
	for c.Deduped() < 4 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	<-leaderDone
	if waiterCalls.Load() != 4 {
		t.Errorf("waiters computed %d times, want 4", waiterCalls.Load())
	}
	if c.Len() != 0 {
		t.Errorf("non-cacheable result stored; len = %d", c.Len())
	}
}

func TestDoDistinctKeys(t *testing.T) {
	c := NewCache[string](4)
	a, _ := c.Do(context.Background(), "a", func() (string, bool, error) { return "A", true, nil })
	b, _ := c.Do(context.Background(), "b", func() (string, bool, error) { return "B", true, nil })
	if a != "A" || b != "B" {
		t.Errorf("values = %q %q", a, b)
	}
	if c.Deduped() != 0 {
		t.Errorf("deduped = %d, want 0", c.Deduped())
	}
}
