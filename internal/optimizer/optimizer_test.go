package optimizer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache[int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("get a = %v %v", v, ok)
	}
	// Insert c: b is LRU (a was just touched) and must be evicted.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache[int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("updated value = %v", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheStatsAndHitRate(t *testing.T) {
	c := NewCache[int](2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("missing")
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d %d", h, m)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
	empty := NewCache[int](1)
	if empty.HitRate() != 0 {
		t.Error("empty hit rate != 0")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache[int](0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	c := NewCache[int](4)
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	v, err := c.GetOrCompute("k", fn)
	if err != nil || v != 42 {
		t.Fatalf("first = %v %v", v, err)
	}
	v, err = c.GetOrCompute("k", fn)
	if err != nil || v != 42 || calls != 1 {
		t.Errorf("second = %v %v calls=%d", v, err, calls)
	}
	wantErr := errors.New("boom")
	_, err = c.GetOrCompute("bad", func() (int, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Error("error result cached")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := string(rune('a' + (g+i)%26))
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}

func TestBatcher(t *testing.T) {
	var batches [][]int
	b := &Batcher[int]{Size: 3, Sink: func(batch []int) {
		cp := append([]int{}, batch...)
		batches = append(batches, cp)
	}}
	for i := 1; i <= 7; i++ {
		b.Add(i)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %v", batches)
	}
	b.Flush()
	if len(batches) != 3 || len(batches[2]) != 1 {
		t.Errorf("after flush = %v", batches)
	}
	if b.Batches() != 3 {
		t.Errorf("count = %d", b.Batches())
	}
	b.Flush() // empty flush is a no-op
	if b.Batches() != 3 {
		t.Error("empty flush counted")
	}
}

func TestSharedComputesOnce(t *testing.T) {
	s := NewShared[int]()
	var calls atomic.Int32
	compute := func() (int, error) {
		calls.Add(1)
		return 7, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Do("key", compute)
			if err != nil || v != 7 {
				t.Errorf("do = %v %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times", calls.Load())
	}
}

func TestSharedDistinctKeys(t *testing.T) {
	s := NewShared[string]()
	a, _ := s.Do("a", func() (string, error) { return "A", nil })
	b, _ := s.Do("b", func() (string, error) { return "B", nil })
	if a != "A" || b != "B" {
		t.Errorf("values = %q %q", a, b)
	}
}

func TestSharedPropagatesError(t *testing.T) {
	s := NewShared[int]()
	boom := errors.New("boom")
	_, err := s.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	// Error results are retained too (deterministic replay).
	_, err = s.Do("k", func() (int, error) { return 1, nil })
	if !errors.Is(err, boom) {
		t.Errorf("retained err = %v", err)
	}
}
