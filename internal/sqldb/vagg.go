package sqldb

import (
	"fmt"
	"sort"

	"github.com/reliable-cda/cda/internal/storage"
)

// Vectorized aggregation: the same grouping and group-scope evaluation
// as aggregate.go, with column access through compiled kernels instead
// of per-row materialized slices. Group membership is tracked by
// physical row index so provenance and first-row key semantics line up
// with the row engine exactly (which tracks relation row indexes).

// vExecuteAggregate mirrors executeAggregate over a vrel.
func (e *Engine) vExecuteAggregate(stmt *SelectStmt, vr *vrel) (*Result, error) {
	if stmt.SelStar {
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
	}
	for _, it := range stmt.Items {
		if err := validateGroupExpr(it.Expr, stmt.GroupBy); err != nil {
			return nil, err
		}
	}

	vc := &vcompiler{res: vr}
	groups := vBuildGroups(stmt.GroupBy, vr, vc)
	res := &Result{}
	for _, it := range stmt.Items {
		res.Columns = append(res.Columns, it.OutputName())
	}

	type keyed struct {
		row  []storage.Value
		prov []RowRef
		keys []storage.Value
	}
	orderExprs := e.orderExprs(stmt)
	var out []keyed
	for _, g := range groups {
		if stmt.Having != nil {
			hv, err := vEvalGroupExpr(stmt.Having, vr, g, vc)
			if err != nil {
				return nil, err
			}
			if !isTrue(hv) {
				continue
			}
		}
		row := make([]storage.Value, len(stmt.Items))
		for j, it := range stmt.Items {
			v, err := vEvalGroupExpr(it.Expr, vr, g, vc)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		k := keyed{row: row}
		if e.CaptureProvenance {
			k.prov = vGroupProvenance(vr, g)
		}
		for _, oe := range orderExprs {
			v, err := vEvalGroupExpr(oe, vr, g, vc)
			if err != nil {
				return nil, err
			}
			k.keys = append(k.keys, v)
		}
		out = append(out, k)
	}
	if len(orderExprs) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			return compareKeySlices(out[i].keys, out[j].keys, stmt.OrderBy) < 0
		})
	}
	for _, k := range out {
		res.Rows = append(res.Rows, k.row)
		if e.CaptureProvenance {
			res.Prov = append(res.Prov, k.prov)
		}
	}
	return res, nil
}

// vBuildGroups mirrors buildGroups: group keys in first-appearance
// order over the selection, kernel errors treated as NULL keys, and
// the key string built exactly as the row engine builds it
// (kind:value joined with \x1f). Group members are physical row
// indexes in selection order. A reused byte buffer replaces the
// per-row strings.Join allocation.
func vBuildGroups(groupBy []Expr, vr *vrel, vc *vcompiler) []*group {
	n := vr.length()
	if len(groupBy) == 0 {
		g := &group{}
		for pos := 0; pos < n; pos++ {
			g.rowIdxs = append(g.rowIdxs, vr.phys(pos))
		}
		return []*group{g}
	}
	ks := make([]vkernel, len(groupBy))
	for j, ge := range groupBy {
		ks[j] = vc.kernel(ge)
	}
	index := make(map[string]*group)
	var order []*group
	ctx := vctx{cols: vr.cols}
	var buf []byte
	for pos := 0; pos < n; pos++ {
		p := vr.phys(pos)
		ctx.phys = p
		key := make([]storage.Value, len(groupBy))
		buf = buf[:0]
		for j, k := range ks {
			v, err := k(&ctx)
			if err != nil {
				// Same policy as buildGroups: evaluation errors become
				// NULL keys (GROUP BY keys are validated column refs in
				// practice).
				v = storage.Null()
			}
			key[j] = v
			if j > 0 {
				buf = append(buf, '\x1f')
			}
			buf = append(buf, v.Kind.String()...)
			buf = append(buf, ':')
			buf = append(buf, v.String()...)
		}
		g, ok := index[string(buf)]
		if !ok {
			g = &group{key: key}
			index[string(buf)] = g
			order = append(order, g)
		}
		g.rowIdxs = append(g.rowIdxs, p)
	}
	return order
}

// vGroupProvenance mirrors groupProvenance: dedup in row order over
// the group's members.
func vGroupProvenance(vr *vrel, g *group) []RowRef {
	if vr.base != "" {
		// Base-table provenance is one ref per physical row and group
		// members are distinct physical rows, so the refs are already
		// unique — the dedup map would be pure overhead.
		if len(g.rowIdxs) == 0 {
			return nil
		}
		out := make([]RowRef, len(g.rowIdxs))
		for i, p := range g.rowIdxs {
			out[i] = RowRef{Table: vr.base, Row: p}
		}
		return out
	}
	var out []RowRef
	seen := make(map[RowRef]struct{})
	for _, p := range g.rowIdxs {
		for _, r := range vr.provOf(p) {
			if _, ok := seen[r]; !ok {
				seen[r] = struct{}{}
				out = append(out, r)
			}
		}
	}
	return out
}

// vEvalGroupExpr mirrors evalGroupExpr: aggregates compute over the
// group; other nodes rebuild with group-evaluated literal leaves and
// reuse the row engine's literal evaluator (literal trees contain no
// column references, so passing a nil relation is safe — exactly what
// evalGroupExpr relies on).
func vEvalGroupExpr(e Expr, vr *vrel, g *group, vc *vcompiler) (storage.Value, error) {
	switch x := e.(type) {
	case *FuncExpr:
		return vEvalAggregate(x, vr, g, vc)
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		if len(g.rowIdxs) == 0 {
			return storage.Null(), nil
		}
		k := vc.kernel(x)
		ctx := vctx{cols: vr.cols, phys: g.rowIdxs[0]}
		return k(&ctx)
	case *BinaryExpr:
		l, err := vEvalGroupExpr(x.Left, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		r, err := vEvalGroupExpr(x.Right, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		lit := &BinaryExpr{Op: x.Op, Left: &Literal{Val: l}, Right: &Literal{Val: r}}
		return evalExpr(lit, nil, nil)
	case *UnaryExpr:
		v, err := vEvalGroupExpr(x.Expr, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		return evalExpr(&UnaryExpr{Op: x.Op, Expr: &Literal{Val: v}}, nil, nil)
	case *InExpr:
		v, err := vEvalGroupExpr(x.Expr, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			iv, err := vEvalGroupExpr(it, vr, g, vc)
			if err != nil {
				return storage.Null(), err
			}
			list[i] = &Literal{Val: iv}
		}
		return evalExpr(&InExpr{Expr: &Literal{Val: v}, List: list, Not: x.Not}, nil, nil)
	case *BetweenExpr:
		v, err := vEvalGroupExpr(x.Expr, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		lo, err := vEvalGroupExpr(x.Lo, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		hi, err := vEvalGroupExpr(x.Hi, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		return evalExpr(&BetweenExpr{
			Expr: &Literal{Val: v}, Lo: &Literal{Val: lo}, Hi: &Literal{Val: hi}, Not: x.Not,
		}, nil, nil)
	case *IsNullExpr:
		v, err := vEvalGroupExpr(x.Expr, vr, g, vc)
		if err != nil {
			return storage.Null(), err
		}
		return storage.Bool(v.IsNull() != x.Not), nil
	case *ScalarExpr:
		args := make([]storage.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := vEvalGroupExpr(a, vr, g, vc)
			if err != nil {
				return storage.Null(), err
			}
			args[i] = v
		}
		return evalScalar(x.Name, args)
	default:
		return storage.Null(), fmt.Errorf("sql: unsupported expression %T in group scope", e)
	}
}

// vEvalAggregate mirrors evalAggregate: gather non-NULL argument
// values over the group in row order through one compiled kernel,
// dedup for DISTINCT, then fold with the shared finishAggregate.
func vEvalAggregate(f *FuncExpr, vr *vrel, g *group, vc *vcompiler) (storage.Value, error) {
	if _, isStar := f.Arg.(*Star); isStar {
		if f.Name != "COUNT" {
			return storage.Null(), fmt.Errorf("sql: %s(*) is not valid", f.Name)
		}
		return storage.Int(int64(len(g.rowIdxs))), nil
	}
	k := vc.kernel(f.Arg)
	ctx := vctx{cols: vr.cols}
	var vals []storage.Value
	for _, p := range g.rowIdxs {
		ctx.phys = p
		v, err := k(&ctx)
		if err != nil {
			return storage.Null(), err
		}
		if v.IsNull() {
			continue
		}
		vals = append(vals, v)
	}
	if f.Distinct {
		vals = dedupValues(vals)
	}
	return finishAggregate(f.Name, vals)
}
