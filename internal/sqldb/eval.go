package sqldb

import (
	"fmt"
	"math"
	"strings"

	"github.com/reliable-cda/cda/internal/storage"
)

// evalExpr evaluates a scalar (non-aggregate) expression against one
// relation row. Aggregate calls reaching this function are an internal
// error surfaced to the caller.
func evalExpr(e Expr, rel *relation, row []storage.Value) (storage.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		idx, err := rel.resolve(x)
		if err != nil {
			return storage.Null(), err
		}
		return row[idx], nil
	case *BinaryExpr:
		return evalBinary(x, rel, row)
	case *UnaryExpr:
		v, err := evalExpr(x.Expr, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return storage.Null(), nil
			}
			return storage.Bool(!isTrue(v)), nil
		case "-":
			switch v.Kind {
			case storage.KindInt:
				return storage.Int(-v.I), nil
			case storage.KindFloat:
				return storage.Float(-v.F), nil
			case storage.KindNull:
				return storage.Null(), nil
			default:
				return storage.Null(), fmt.Errorf("sql: cannot negate %s", v.Kind)
			}
		default:
			return storage.Null(), fmt.Errorf("sql: unknown unary operator %q", x.Op)
		}
	case *InExpr:
		v, err := evalExpr(x.Expr, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		if v.IsNull() {
			return storage.Null(), nil
		}
		found := false
		for _, item := range x.List {
			iv, err := evalExpr(item, rel, row)
			if err != nil {
				return storage.Null(), err
			}
			if v.Equal(iv) {
				found = true
				break
			}
		}
		return storage.Bool(found != x.Not), nil
	case *BetweenExpr:
		v, err := evalExpr(x.Expr, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		lo, err := evalExpr(x.Lo, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		hi, err := evalExpr(x.Hi, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return storage.Null(), nil
		}
		cl, err := v.Compare(lo)
		if err != nil {
			return storage.Null(), err
		}
		ch, err := v.Compare(hi)
		if err != nil {
			return storage.Null(), err
		}
		in := cl >= 0 && ch <= 0
		return storage.Bool(in != x.Not), nil
	case *IsNullExpr:
		v, err := evalExpr(x.Expr, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		return storage.Bool(v.IsNull() != x.Not), nil
	case *ScalarExpr:
		args := make([]storage.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalExpr(a, rel, row)
			if err != nil {
				return storage.Null(), err
			}
			args[i] = v
		}
		return evalScalar(x.Name, args)
	case *FuncExpr:
		return storage.Null(), fmt.Errorf("sql: aggregate %s used outside GROUP BY context", x.Name)
	case *Star:
		return storage.Null(), fmt.Errorf("sql: * is not a scalar expression")
	default:
		return storage.Null(), fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func evalBinary(x *BinaryExpr, rel *relation, row []storage.Value) (storage.Value, error) {
	l, err := evalExpr(x.Left, rel, row)
	if err != nil {
		return storage.Null(), err
	}
	// Short-circuit logic with SQL three-valued semantics approximated:
	// NULL propagates except for definitive AND-false / OR-true.
	switch x.Op {
	case "AND":
		if !l.IsNull() && !isTrue(l) {
			return storage.Bool(false), nil
		}
		r, err := evalExpr(x.Right, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		if l.IsNull() || r.IsNull() {
			if !r.IsNull() && !isTrue(r) {
				return storage.Bool(false), nil
			}
			return storage.Null(), nil
		}
		return storage.Bool(isTrue(l) && isTrue(r)), nil
	case "OR":
		if !l.IsNull() && isTrue(l) {
			return storage.Bool(true), nil
		}
		r, err := evalExpr(x.Right, rel, row)
		if err != nil {
			return storage.Null(), err
		}
		if l.IsNull() || r.IsNull() {
			if !r.IsNull() && isTrue(r) {
				return storage.Bool(true), nil
			}
			return storage.Null(), nil
		}
		return storage.Bool(isTrue(l) || isTrue(r)), nil
	}
	r, err := evalExpr(x.Right, rel, row)
	if err != nil {
		return storage.Null(), err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return storage.Null(), nil
		}
		c, err := l.Compare(r)
		if err != nil {
			return storage.Null(), err
		}
		var b bool
		switch x.Op {
		case "=":
			b = c == 0
		case "!=":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return storage.Bool(b), nil
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return storage.Null(), nil
		}
		if l.Kind != storage.KindString || r.Kind != storage.KindString {
			return storage.Null(), fmt.Errorf("sql: LIKE requires string operands")
		}
		return storage.Bool(likeMatch(l.S, r.S)), nil
	default:
		return storage.Null(), fmt.Errorf("sql: unknown operator %q", x.Op)
	}
}

func evalArith(op string, l, r storage.Value) (storage.Value, error) {
	if l.IsNull() || r.IsNull() {
		return storage.Null(), nil
	}
	// String concatenation via +.
	if op == "+" && l.Kind == storage.KindString && r.Kind == storage.KindString {
		return storage.Str(l.S + r.S), nil
	}
	bothInt := l.Kind == storage.KindInt && r.Kind == storage.KindInt
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok || l.Kind == storage.KindString || r.Kind == storage.KindString {
		return storage.Null(), fmt.Errorf("sql: cannot apply %s to %s and %s", op, l.Kind, r.Kind)
	}
	if bothInt && op != "/" {
		switch op {
		case "+":
			return storage.Int(l.I + r.I), nil
		case "-":
			return storage.Int(l.I - r.I), nil
		case "*":
			return storage.Int(l.I * r.I), nil
		case "%":
			if r.I == 0 {
				return storage.Null(), fmt.Errorf("sql: modulo by zero")
			}
			return storage.Int(l.I % r.I), nil
		}
	}
	switch op {
	case "+":
		return storage.Float(lf + rf), nil
	case "-":
		return storage.Float(lf - rf), nil
	case "*":
		return storage.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return storage.Null(), fmt.Errorf("sql: division by zero")
		}
		return storage.Float(lf / rf), nil
	case "%":
		return storage.Null(), fmt.Errorf("sql: %% requires integer operands")
	}
	return storage.Null(), fmt.Errorf("sql: unknown arithmetic operator %q", op)
}

// evalScalar applies a scalar function to already-evaluated
// arguments. NULL propagates through every function except COALESCE.
func evalScalar(name string, args []storage.Value) (storage.Value, error) {
	if name == "COALESCE" {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return storage.Null(), nil
	}
	for _, a := range args {
		if a.IsNull() {
			return storage.Null(), nil
		}
	}
	switch name {
	case "LOWER", "UPPER":
		if args[0].Kind != storage.KindString {
			return storage.Null(), fmt.Errorf("sql: %s requires a string, got %s", name, args[0].Kind)
		}
		if name == "LOWER" {
			return storage.Str(strings.ToLower(args[0].S)), nil
		}
		return storage.Str(strings.ToUpper(args[0].S)), nil
	case "LENGTH":
		if args[0].Kind != storage.KindString {
			return storage.Null(), fmt.Errorf("sql: LENGTH requires a string, got %s", args[0].Kind)
		}
		return storage.Int(int64(len([]rune(args[0].S)))), nil
	case "ABS":
		switch args[0].Kind {
		case storage.KindInt:
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return storage.Int(v), nil
		case storage.KindFloat:
			return storage.Float(math.Abs(args[0].F)), nil
		default:
			return storage.Null(), fmt.Errorf("sql: ABS requires a number, got %s", args[0].Kind)
		}
	case "ROUND":
		f, ok := args[0].AsFloat()
		if !ok || args[0].Kind == storage.KindString || args[0].Kind == storage.KindBool {
			return storage.Null(), fmt.Errorf("sql: ROUND requires a number, got %s", args[0].Kind)
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].Kind != storage.KindInt {
				return storage.Null(), fmt.Errorf("sql: ROUND digits must be an integer")
			}
			digits = args[1].I
		}
		scale := math.Pow(10, float64(digits))
		rounded := math.Round(f*scale) / scale
		if args[0].Kind == storage.KindInt && digits >= 0 {
			return storage.Int(int64(rounded)), nil
		}
		return storage.Float(rounded), nil
	default:
		return storage.Null(), fmt.Errorf("sql: unknown scalar function %s", name)
	}
}

// isTrue reports SQL truthiness: only a BOOL true (or non-zero
// numeric) is true; NULL is not.
func isTrue(v storage.Value) bool {
	switch v.Kind {
	case storage.KindBool:
		return v.B
	case storage.KindInt:
		return v.I != 0
	case storage.KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single
// character), case-insensitive, by dynamic programming over bytes.
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	n, m := len(s), len(pattern)
	// dp[j] = does pattern[:j] match s[:i] for current i.
	prev := make([]bool, m+1)
	cur := make([]bool, m+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] && pattern[j-1] == '%'
	}
	for i := 1; i <= n; i++ {
		cur[0] = false
		for j := 1; j <= m; j++ {
			switch pattern[j-1] {
			case '%':
				cur[j] = cur[j-1] || prev[j]
			case '_':
				cur[j] = prev[j-1]
			default:
				cur[j] = prev[j-1] && s[i-1] == pattern[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
