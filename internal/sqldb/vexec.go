package sqldb

import (
	"fmt"
	"sort"

	"github.com/reliable-cda/cda/internal/parallel"
	"github.com/reliable-cda/cda/internal/storage"
)

// This file is the batch-at-a-time executor: the same pipeline as
// executeRow (scan → pushdown → joins → residual filter →
// aggregation/projection) over the vrel columnar representation.
// Every operator preserves row order and first-error order, so
// Result, Stats, Prov, and Fingerprint are byte-identical to the row
// engine's — a property the differential tests in fuzz_test.go and
// parallel_determinism_test.go enforce against the RowOracle flag.

// executeVec runs the columnar pipeline. Structure mirrors executeRow
// stage for stage so the two engines stay diffable side by side.
func (e *Engine) executeVec(stmt *SelectStmt) (*Result, error) {
	var stats Stats

	vr, err := e.vScan(stmt.From, stmt.FromAl, &stats)
	if err != nil {
		return nil, err
	}
	var wherePreds []Expr
	if stmt.Where != nil {
		if containsAggregate(stmt.Where) {
			return nil, fmt.Errorf("sql: aggregates are not allowed in WHERE")
		}
		wherePreds = conjuncts(stmt.Where)
	}
	if !e.DisableOptimizations && len(stmt.Joins) > 0 {
		var pushed []Expr
		pushed, wherePreds = pushDown(wherePreds, vr)
		stats.PushedPredicates += len(pushed)
		vr, err = e.vFilter(vr, pushed)
		if err != nil {
			return nil, err
		}
	}
	for _, jc := range stmt.Joins {
		right, err := e.vScan(jc.Table, jc.Alias, &stats)
		if err != nil {
			return nil, err
		}
		if !e.DisableOptimizations {
			var pushed []Expr
			pushed, wherePreds = pushDown(wherePreds, right)
			stats.PushedPredicates += len(pushed)
			right, err = e.vFilter(right, pushed)
			if err != nil {
				return nil, err
			}
			if li, ri, residual, ok := equiJoinKey(jc.On, vr, right); ok {
				stats.HashJoins++
				buckets := buildBuckets(right, ri)
				vr, err = e.vProbeJoin(vr, right, li, buckets, residual, &stats)
				if err != nil {
					return nil, err
				}
				continue
			}
		}
		vr, err = e.vNestedJoin(vr, right, jc.On, &stats)
		if err != nil {
			return nil, err
		}
	}
	if cond := conjoin(wherePreds); cond != nil {
		vr, err = e.vFilter(vr, wherePreds)
		if err != nil {
			return nil, err
		}
	}

	var res *Result
	if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
		res, err = e.vExecuteAggregate(stmt, vr)
	} else {
		res, err = e.vProjection(stmt, vr)
	}
	if err != nil {
		return nil, err
	}
	return finishResult(stmt, res, &stats), nil
}

// vScan opens a zero-copy columnar view of a base table: no per-row
// materialization, no provenance allocation (provOf derives {table,
// row} lazily for rows that survive).
func (e *Engine) vScan(table, alias string, stats *Stats) (*vrel, error) {
	t, err := e.DB.Get(table)
	if err != nil {
		return nil, err
	}
	if alias == "" {
		alias = table
	}
	vr := &vrel{cols: t.Columns(), nphys: t.NumRows()}
	for _, c := range t.Schema() {
		vr.aliases = append(vr.aliases, alias)
		vr.names = append(vr.names, c.Name)
	}
	stats.RowsScanned += vr.nphys
	if e.CaptureProvenance {
		vr.base = t.Name
	}
	return vr, nil
}

// vFilter refines the selection vector by the conjoined predicates.
// Chunks scan selection positions in order and chunk survivors merge
// in chunk order, so the surviving rows — and the first evaluation
// error — are identical to a serial scan for any chunking.
func (e *Engine) vFilter(vr *vrel, preds []Expr) (*vrel, error) {
	if len(preds) == 0 {
		return vr, nil
	}
	cond := conjoin(preds)
	k := (&vcompiler{res: vr}).compile(cond)
	n := vr.length()
	chunks, err := parallel.MapChunks(n, e.parOptions(), func(lo, hi int) ([]int, error) {
		keep := make([]int, 0, hi-lo)
		ctx := vctx{cols: vr.cols}
		for pos := lo; pos < hi; pos++ {
			ctx.phys = vr.phys(pos)
			v, err := k(&ctx)
			if err != nil {
				return nil, err
			}
			if isTrue(v) {
				keep = append(keep, ctx.phys)
			}
		}
		return keep, nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	sel := make([]int, 0, total)
	for _, c := range chunks {
		sel = append(sel, c...)
	}
	out := *vr
	out.sel = sel
	return &out, nil
}

// buildBuckets builds the hash-join table over the right relation's
// key column: valueKey → physical row indexes in selection order
// (matching the row engine's bucket order over surviving rows).
func buildBuckets(right *vrel, ri int) map[string][]int {
	col := right.cols[ri]
	n := right.length()
	buckets := make(map[string][]int, n)
	for pos := 0; pos < n; pos++ {
		rp := right.phys(pos)
		if key, ok := valueKey(col[rp]); ok {
			buckets[key] = append(buckets[key], rp)
		}
	}
	return buckets
}

// vProbeJoin probes the prebuilt buckets with the left relation in
// parallel chunks, evaluating residual ON conjuncts on each candidate
// pair without materializing combined rows, then gathers the matched
// pairs into fresh output columns. Candidate order is left-row-major
// with bucket order within a row — the row engine's exact order.
func (e *Engine) vProbeJoin(left, right *vrel, li int, buckets map[string][]int, residual []Expr, stats *Stats) (*vrel, error) {
	out := &vrel{
		aliases: append(append([]string{}, left.aliases...), right.aliases...),
		names:   append(append([]string{}, left.names...), right.names...),
	}
	var resid vkernel
	if cond := conjoin(residual); cond != nil {
		resid = (&vcompiler{res: out}).compile(cond)
	}
	lcol := left.cols[li]
	split := len(left.cols)
	type probePart struct {
		lphys, rphys []int
		joined       int
	}
	chunks, err := parallel.MapChunks(left.length(), e.parOptions(), func(lo, hi int) (*probePart, error) {
		part := &probePart{}
		ctx := vctx{cols: left.cols, rcols: right.cols, split: split}
		for pos := lo; pos < hi; pos++ {
			lp := left.phys(pos)
			key, ok := valueKey(lcol[lp])
			if !ok {
				continue
			}
			matches := buckets[key]
			if len(matches) == 0 {
				continue
			}
			part.joined += len(matches)
			if resid == nil {
				for range matches {
					part.lphys = append(part.lphys, lp)
				}
				part.rphys = append(part.rphys, matches...)
				continue
			}
			ctx.phys = lp
			for _, rp := range matches {
				ctx.rphys = rp
				v, err := resid(&ctx)
				if err != nil {
					return nil, err
				}
				if !isTrue(v) {
					continue
				}
				part.lphys = append(part.lphys, lp)
				part.rphys = append(part.rphys, rp)
			}
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range chunks {
		stats.RowsJoined += p.joined
		total += len(p.lphys)
	}
	lidx := make([]int, 0, total)
	ridx := make([]int, 0, total)
	for _, p := range chunks {
		lidx = append(lidx, p.lphys...)
		ridx = append(ridx, p.rphys...)
	}
	return e.vGatherJoin(left, right, lidx, ridx, out)
}

// vNestedJoin is the fallback O(n·m) join (non-equi ON conditions, or
// DisableOptimizations). It stays serial like the row engine's.
func (e *Engine) vNestedJoin(left, right *vrel, on Expr, stats *Stats) (*vrel, error) {
	out := &vrel{
		aliases: append(append([]string{}, left.aliases...), right.aliases...),
		names:   append(append([]string{}, left.names...), right.names...),
	}
	k := (&vcompiler{res: out}).compile(on)
	var lidx, ridx []int
	ctx := vctx{cols: left.cols, rcols: right.cols, split: len(left.cols)}
	nl, nr := left.length(), right.length()
	for lpos := 0; lpos < nl; lpos++ {
		lp := left.phys(lpos)
		ctx.phys = lp
		for rpos := 0; rpos < nr; rpos++ {
			rp := right.phys(rpos)
			stats.RowsJoined++
			ctx.rphys = rp
			v, err := k(&ctx)
			if err != nil {
				return nil, err
			}
			if !isTrue(v) {
				continue
			}
			lidx = append(lidx, lp)
			ridx = append(ridx, rp)
		}
	}
	return e.vGatherJoin(left, right, lidx, ridx, out)
}

// vGatherJoin materializes the joined output: fresh column vectors
// gathered from the matched (left, right) physical row pairs, plus
// concatenated per-row provenance (left refs then right refs, no
// dedup — matching the row engine's join provenance).
func (e *Engine) vGatherJoin(left, right *vrel, lidx, ridx []int, out *vrel) (*vrel, error) {
	n := len(lidx)
	split := len(left.cols)
	out.cols = make([][]storage.Value, split+len(right.cols))
	for c := range out.cols {
		out.cols[c] = make([]storage.Value, n)
	}
	out.nphys = n
	gerr := parallel.Do(n, e.parOptions(), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			lp, rp := lidx[i], ridx[i]
			for c, col := range left.cols {
				out.cols[c][i] = col[lp]
			}
			for c, col := range right.cols {
				out.cols[split+c][i] = col[rp]
			}
		}
		return nil
	})
	if gerr != nil {
		return nil, gerr
	}
	if e.CaptureProvenance {
		out.prov = make([][]RowRef, n)
		perr := parallel.Do(n, e.parOptions(), func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				lrefs := left.provOf(lidx[i])
				rrefs := right.provOf(ridx[i])
				p := make([]RowRef, 0, len(lrefs)+len(rrefs))
				p = append(p, lrefs...)
				p = append(p, rrefs...)
				out.prov[i] = p
			}
			return nil
		})
		if perr != nil {
			return nil, perr
		}
	}
	return out, nil
}

// vProjection handles non-aggregate SELECTs over a vrel. Rows are
// produced in selection order; per-row evaluation order (items, then
// ORDER BY keys) matches executeProjection so the first error is
// identical; the stable sort then sees the same pre-sort order and the
// same keys.
func (e *Engine) vProjection(stmt *SelectStmt, vr *vrel) (*Result, error) {
	res := &Result{}
	if stmt.SelStar {
		res.Columns = append(res.Columns, vr.names...)
	} else {
		for _, it := range stmt.Items {
			res.Columns = append(res.Columns, it.OutputName())
		}
	}
	vc := &vcompiler{res: vr}
	var itemKs []vkernel
	if !stmt.SelStar {
		for _, it := range stmt.Items {
			itemKs = append(itemKs, vc.compile(it.Expr))
		}
	}
	var orderKs []vkernel
	for _, oe := range e.orderExprs(stmt) {
		orderKs = append(orderKs, vc.compile(oe))
	}

	type keyed struct {
		row  []storage.Value
		prov []RowRef
		keys []storage.Value
	}
	n := vr.length()
	chunks, err := parallel.MapChunks(n, e.parOptions(), func(lo, hi int) ([]keyed, error) {
		part := make([]keyed, 0, hi-lo)
		ctx := vctx{cols: vr.cols}
		for pos := lo; pos < hi; pos++ {
			p := vr.phys(pos)
			ctx.phys = p
			var projected []storage.Value
			if stmt.SelStar {
				projected = make([]storage.Value, len(vr.cols))
				for c, col := range vr.cols {
					projected[c] = col[p]
				}
			} else {
				projected = make([]storage.Value, len(itemKs))
				for j, k := range itemKs {
					v, err := k(&ctx)
					if err != nil {
						return nil, err
					}
					projected[j] = v
				}
			}
			kd := keyed{row: projected}
			if e.CaptureProvenance {
				kd.prov = vr.provOf(p)
			}
			for _, ok := range orderKs {
				v, err := ok(&ctx)
				if err != nil {
					return nil, err
				}
				kd.keys = append(kd.keys, v)
			}
			part = append(part, kd)
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}
	var out []keyed
	if len(chunks) == 1 {
		out = chunks[0]
	} else {
		total := 0
		for _, c := range chunks {
			total += len(c)
		}
		out = make([]keyed, 0, total)
		for _, c := range chunks {
			out = append(out, c...)
		}
	}
	if len(orderKs) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			return compareKeySlices(out[i].keys, out[j].keys, stmt.OrderBy) < 0
		})
	}
	for _, k := range out {
		res.Rows = append(res.Rows, k.row)
		if e.CaptureProvenance {
			res.Prov = append(res.Prov, k.prov)
		}
	}
	return res, nil
}
