package sqldb

import (
	"context"
	"fmt"

	"github.com/reliable-cda/cda/internal/storage"
)

// Streaming execution: ExecStream runs the columnar pipeline over the
// driving (FROM) table in batches, emitting a partial Result snapshot
// after each batch together with a completeness bound that only
// tightens. The final snapshot is byte-identical to Execute's Result —
// filters and joins distribute over row batches (outputs are
// row-ordered concatenations), and the non-decomposable stages
// (aggregation, ORDER BY, DISTINCT, OFFSET/LIMIT) are re-run over the
// accumulated relation for every snapshot, so each partial is itself
// an exact answer to the query restricted to the rows consumed so far.

// Partial is one streaming snapshot.
type Partial struct {
	// Result is the exact query answer over the driving-table prefix
	// consumed so far. Its Stats reflect work done so far; the final
	// snapshot's Stats equal Execute's.
	Result *Result
	// Completeness is the fraction of the driving table consumed, in
	// [0, 1]; it is non-decreasing across snapshots and reaches 1 on
	// the final one. Callers scale answer confidence by it.
	Completeness float64
	// Done marks the final snapshot.
	Done bool
}

// StreamOptions tunes ExecStream.
type StreamOptions struct {
	// BatchRows is the number of driving-table physical rows consumed
	// per batch; 0 picks a quarter of the table (minimum 1) so even
	// small tables stream several snapshots.
	BatchRows int
}

// streamJoin is one prepared join: the right side already scanned and
// pre-filtered, the hash table (for equi joins) already built, so
// per-batch work is probe-only.
type streamJoin struct {
	right    *vrel
	on       Expr
	equi     bool
	li       int
	buckets  map[string][]int
	residual []Expr
}

// ExecStream executes stmt in streaming batches, calling emit after
// each batch. It stops early when ctx is cancelled (returning the
// context error) or when emit returns a non-nil error (returning that
// error). Right-hand join sides are prepared once up front; only the
// driving table streams — the same shape ProS-style progressive
// retrieval uses, generalized to the SQL pipeline.
func (e *Engine) ExecStream(ctx context.Context, stmt *SelectStmt, opts StreamOptions, emit func(Partial) error) error {
	if e.Faults != nil {
		if err := e.Faults.Inject("sqldb.execute"); err != nil {
			return err
		}
	}
	var stats Stats
	base, err := e.vScan(stmt.From, stmt.FromAl, &stats)
	if err != nil {
		return err
	}
	var wherePreds []Expr
	if stmt.Where != nil {
		if containsAggregate(stmt.Where) {
			return fmt.Errorf("sql: aggregates are not allowed in WHERE")
		}
		wherePreds = conjuncts(stmt.Where)
	}
	// Plan once, mirroring executeVec's stage order so pushdown
	// bookkeeping (PushedPredicates, HashJoins) matches Execute.
	var basePush []Expr
	if !e.DisableOptimizations && len(stmt.Joins) > 0 {
		basePush, wherePreds = pushDown(wherePreds, base)
		stats.PushedPredicates += len(basePush)
	}
	// leftSchema tracks the schema the accumulated relation will have
	// after each join, for equi-key resolution.
	leftSchema := &vrel{
		aliases: append([]string{}, base.aliases...),
		names:   append([]string{}, base.names...),
	}
	joins := make([]streamJoin, 0, len(stmt.Joins))
	for _, jc := range stmt.Joins {
		right, err := e.vScan(jc.Table, jc.Alias, &stats)
		if err != nil {
			return err
		}
		sj := streamJoin{on: jc.On}
		if !e.DisableOptimizations {
			var pushed []Expr
			pushed, wherePreds = pushDown(wherePreds, right)
			stats.PushedPredicates += len(pushed)
			right, err = e.vFilter(right, pushed)
			if err != nil {
				return err
			}
			if li, ri, residual, ok := equiJoinKey(jc.On, leftSchema, right); ok {
				sj.equi, sj.li, sj.residual = true, li, residual
				sj.buckets = buildBuckets(right, ri)
				stats.HashJoins++
			}
		}
		sj.right = right
		joins = append(joins, sj)
		leftSchema.aliases = append(leftSchema.aliases, right.aliases...)
		leftSchema.names = append(leftSchema.names, right.names...)
	}
	residualWhere := wherePreds

	// The accumulator holds the post-join, post-filter relation built
	// so far: materialized columns plus explicit provenance.
	acc := &vrel{
		aliases: leftSchema.aliases,
		names:   leftSchema.names,
		cols:    make([][]storage.Value, len(leftSchema.names)),
	}

	total := base.nphys
	batch := opts.BatchRows
	if batch <= 0 {
		batch = (total + 3) / 4
	}
	if batch < 1 {
		batch = 1
	}

	snapshot := func(consumed int) error {
		snap := *acc
		snapStats := stats
		var res *Result
		var err error
		if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
			res, err = e.vExecuteAggregate(stmt, &snap)
		} else {
			res, err = e.vProjection(stmt, &snap)
		}
		if err != nil {
			return err
		}
		res = finishResult(stmt, res, &snapStats)
		completeness := 1.0
		if total > 0 {
			completeness = float64(consumed) / float64(total)
		}
		return emit(Partial{Result: res, Completeness: completeness, Done: consumed == total})
	}

	if total == 0 {
		return snapshot(0)
	}
	for lo := 0; lo < total; lo += batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + batch
		if hi > total {
			hi = total
		}
		window := make([]int, hi-lo)
		for i := range window {
			window[i] = lo + i
		}
		cur := &vrel{
			aliases: base.aliases, names: base.names,
			cols: base.cols, nphys: base.nphys,
			sel: window, base: base.base,
		}
		cur, err := e.vFilter(cur, basePush)
		if err != nil {
			return err
		}
		for _, sj := range joins {
			if sj.equi {
				cur, err = e.vProbeJoin(cur, sj.right, sj.li, sj.buckets, sj.residual, &stats)
			} else {
				cur, err = e.vNestedJoin(cur, sj.right, sj.on, &stats)
			}
			if err != nil {
				return err
			}
		}
		cur, err = e.vFilter(cur, residualWhere)
		if err != nil {
			return err
		}
		appendToAccumulator(acc, cur, e.CaptureProvenance)
		if err := snapshot(hi); err != nil {
			return err
		}
	}
	return nil
}

// appendToAccumulator materializes the batch's selected rows onto the
// accumulator's columns, carrying provenance across.
func appendToAccumulator(acc, b *vrel, capture bool) {
	n := b.length()
	for pos := 0; pos < n; pos++ {
		p := b.phys(pos)
		for c := range acc.cols {
			acc.cols[c] = append(acc.cols[c], b.cols[c][p])
		}
		if capture {
			acc.prov = append(acc.prov, b.provOf(p))
		}
	}
	acc.nphys += n
}
