package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/reliable-cda/cda/internal/storage"
)

// genJoinDB builds a randomized two-table database: a fact table with
// numeric and string columns and a dimension table keyed by id.
func genJoinDB(rows, dims int, seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase("par")
	facts := storage.NewTable("facts", storage.Schema{
		{Name: "k", Kind: storage.KindInt},
		{Name: "v", Kind: storage.KindFloat},
		{Name: "grp", Kind: storage.KindString},
	})
	for i := 0; i < rows; i++ {
		facts.MustAppendRow(
			storage.Int(int64(rng.Intn(dims))),
			storage.Float(rng.Float64()*100),
			storage.Str(fmt.Sprintf("g%d", rng.Intn(7))),
		)
	}
	dim := storage.NewTable("dims", storage.Schema{
		{Name: "k", Kind: storage.KindInt},
		{Name: "label", Kind: storage.KindString},
	})
	for i := 0; i < dims; i++ {
		dim.MustAppendRow(storage.Int(int64(i)), storage.Str(fmt.Sprintf("d%d", i%13)))
	}
	db.Put(facts)
	db.Put(dim)
	return db
}

var parallelPropQueries = []string{
	"SELECT * FROM facts WHERE v > 50",
	"SELECT grp, COUNT(*) FROM facts WHERE v > 25 GROUP BY grp ORDER BY grp",
	"SELECT f.grp, d.label, COUNT(*) FROM facts f JOIN dims d ON f.k = d.k WHERE f.v > 30 GROUP BY f.grp, d.label ORDER BY f.grp, d.label",
	"SELECT d.label, AVG(f.v) FROM facts f JOIN dims d ON f.k = d.k GROUP BY d.label ORDER BY d.label",
	"SELECT DISTINCT grp FROM facts WHERE v < 90 ORDER BY grp",
	"SELECT f.v, d.label FROM facts f JOIN dims d ON f.k = d.k WHERE f.v > 80 AND d.label = 'd3' ORDER BY f.v DESC LIMIT 20",
}

// TestParallelExecutionMatchesSerial is the executor's determinism
// property test: for randomized workloads and several worker counts,
// the parallel engine returns byte-identical rows, provenance,
// Fingerprint, and Stats versus the serial engine.
func TestParallelExecutionMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		db := genJoinDB(4000, 200, seed)
		serial := NewEngine(db)
		serial.Workers = 1
		for _, workers := range []int{2, 4, 8} {
			par := NewEngine(db)
			par.Workers = workers
			par.ParallelThreshold = 1 // force the parallel operators
			for _, q := range parallelPropQueries {
				want, err := serial.Query(q)
				if err != nil {
					t.Fatalf("serial %q: %v", q, err)
				}
				got, err := par.Query(q)
				if err != nil {
					t.Fatalf("parallel(%d) %q: %v", workers, q, err)
				}
				if want.Fingerprint() != got.Fingerprint() {
					t.Fatalf("workers=%d %q: fingerprints differ", workers, q)
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Fatalf("workers=%d %q: row order differs", workers, q)
				}
				if !reflect.DeepEqual(want.Prov, got.Prov) {
					t.Fatalf("workers=%d %q: provenance differs", workers, q)
				}
				if want.Stats != got.Stats {
					t.Fatalf("workers=%d %q: stats %+v, want %+v", workers, q, got.Stats, want.Stats)
				}
			}
		}
	}
}

// TestParallelExecutionProvenanceOff checks the E4 baseline stays
// identical too: provenance disabled must be nil under both engines.
func TestParallelExecutionProvenanceOff(t *testing.T) {
	db := genJoinDB(2000, 100, 9)
	par := NewEngine(db)
	par.CaptureProvenance = false
	par.Workers = 4
	par.ParallelThreshold = 1
	res, err := par.Query("SELECT f.v FROM facts f JOIN dims d ON f.k = d.k WHERE f.v > 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Prov != nil {
		t.Fatalf("provenance captured despite CaptureProvenance=false")
	}
	if len(res.Rows) == 0 {
		t.Fatal("query returned no rows; fixture broken")
	}
}

// TestParallelExecutionErrorMatchesSerial: a predicate that fails on
// some row must surface the same error the serial scan reports.
func TestParallelExecutionErrorMatchesSerial(t *testing.T) {
	db := genJoinDB(3000, 50, 4)
	serial := NewEngine(db)
	serial.Workers = 1
	par := NewEngine(db)
	par.Workers = 8
	par.ParallelThreshold = 1
	const q = "SELECT * FROM facts WHERE grp + 1 > 0" // string + int fails in eval
	_, serr := serial.Query(q)
	_, perr := par.Query(q)
	if serr == nil || perr == nil {
		t.Fatalf("expected both engines to fail, got serial=%v parallel=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error diverged: serial %q, parallel %q", serr, perr)
	}
}

// TestVectorizedMatchesRowOracleAcrossWorkers runs the determinism
// query set through the row oracle and the vectorized engine across
// worker counts and both optimizer settings: every combination must
// agree on Rows, Prov, Stats, and Fingerprint bit-for-bit.
func TestVectorizedMatchesRowOracleAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		db := genJoinDB(4000, 200, seed)
		for _, disableOpt := range []bool{false, true} {
			oracle := NewEngine(db)
			oracle.RowOracle = true
			oracle.Workers = 1
			oracle.DisableOptimizations = disableOpt
			for _, workers := range []int{1, 2, 8} {
				vec := NewEngine(db)
				vec.Workers = workers
				vec.ParallelThreshold = 1
				vec.DisableOptimizations = disableOpt
				for _, q := range parallelPropQueries {
					want, err := oracle.Query(q)
					if err != nil {
						t.Fatalf("oracle %q: %v", q, err)
					}
					got, err := vec.Query(q)
					if err != nil {
						t.Fatalf("vectorized(w=%d,noopt=%v) %q: %v", workers, disableOpt, q, err)
					}
					if want.Fingerprint() != got.Fingerprint() {
						t.Fatalf("w=%d noopt=%v %q: fingerprints differ", workers, disableOpt, q)
					}
					if !reflect.DeepEqual(want.Rows, got.Rows) {
						t.Fatalf("w=%d noopt=%v %q: rows differ", workers, disableOpt, q)
					}
					if !reflect.DeepEqual(want.Prov, got.Prov) {
						t.Fatalf("w=%d noopt=%v %q: provenance differs", workers, disableOpt, q)
					}
					if want.Stats != got.Stats {
						t.Fatalf("w=%d noopt=%v %q: stats %+v, want %+v", workers, disableOpt, q, got.Stats, want.Stats)
					}
				}
			}
		}
	}
}

// TestVectorizedErrorMatchesRowOracle: evaluation errors in scans,
// projections, and aggregates must surface with identical text and
// identical first-error selection under both engines.
func TestVectorizedErrorMatchesRowOracle(t *testing.T) {
	db := genJoinDB(3000, 50, 4)
	oracle := NewEngine(db)
	oracle.RowOracle = true
	vec := NewEngine(db)
	vec.Workers = 8
	vec.ParallelThreshold = 1
	for _, q := range []string{
		"SELECT * FROM facts WHERE grp + 1 > 0",          // filter eval error
		"SELECT v + grp FROM facts",                      // projection eval error
		"SELECT SUM(grp) FROM facts",                     // aggregate over strings
		"SELECT nosuch FROM facts",                       // unknown column
		"SELECT f.v FROM facts f JOIN dims d ON f.k = d.k WHERE d.label - 1 > 0", // residual eval error
	} {
		_, oerr := oracle.Query(q)
		_, verr := vec.Query(q)
		if oerr == nil || verr == nil {
			t.Fatalf("%q: expected both engines to fail, oracle=%v vectorized=%v", q, oerr, verr)
		}
		if oerr.Error() != verr.Error() {
			t.Fatalf("%q: error diverged oracle %q vectorized %q", q, oerr, verr)
		}
	}
}
