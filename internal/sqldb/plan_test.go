package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/reliable-cda/cda/internal/storage"
)

// optimizerQueries is the cross-check workload: every query must
// produce identical result multisets under the optimized and naive
// plans.
var optimizerQueries = []string{
	"SELECT e.name, d.dname FROM employees e JOIN departments d ON e.dept_id = d.id",
	"SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.id WHERE d.dname = 'Engineering'",
	"SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.id WHERE e.salary > 85 AND d.dname != 'HR'",
	"SELECT d.dname, COUNT(*) FROM employees e JOIN departments d ON e.dept_id = d.id GROUP BY d.dname",
	"SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.id AND e.salary > 90",
	"SELECT e.name FROM employees e JOIN departments d ON e.dept_id < d.id", // non-equi: nested loop
	"SELECT name FROM employees WHERE salary > 85",
	"SELECT e1.name, e2.name FROM employees e1 JOIN employees e2 ON e1.dept_id = e2.dept_id WHERE e1.id < e2.id",
}

func TestOptimizedMatchesNaive(t *testing.T) {
	db := testDB(t)
	opt := NewEngine(db)
	naive := NewEngine(db)
	naive.DisableOptimizations = true
	for _, q := range optimizerQueries {
		a, err := opt.Query(q)
		if err != nil {
			t.Fatalf("optimized %q: %v", q, err)
		}
		b, err := naive.Query(q)
		if err != nil {
			t.Fatalf("naive %q: %v", q, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("plans disagree on %q:\n opt  %d rows\n naive %d rows", q, len(a.Rows), len(b.Rows))
		}
	}
}

func TestPredicatePushdownCounts(t *testing.T) {
	db := testDB(t)
	e := NewEngine(db)
	res := mustQuery(t, e,
		"SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.id WHERE e.salary > 85 AND d.dname != 'HR'")
	if res.Stats.PushedPredicates != 2 {
		t.Errorf("pushed = %d", res.Stats.PushedPredicates)
	}
	// Without joins, nothing is pushed (the final filter is the scan
	// filter already).
	res = mustQuery(t, e, "SELECT name FROM employees WHERE salary > 85")
	if res.Stats.PushedPredicates != 0 {
		t.Errorf("no-join pushed = %d", res.Stats.PushedPredicates)
	}
}

func TestHashJoinCrossTypeKeys(t *testing.T) {
	db := storage.NewDatabase("x")
	a := storage.NewTable("a", storage.Schema{{Name: "k", Kind: storage.KindInt}})
	a.MustAppendRow(storage.Int(2))
	a.MustAppendRow(storage.Int(20))
	db.Put(a)
	b := storage.NewTable("b", storage.Schema{{Name: "k", Kind: storage.KindFloat}, {Name: "v", Kind: storage.KindString}})
	b.MustAppendRow(storage.Float(2.0), storage.Str("two"))
	b.MustAppendRow(storage.Float(20.0), storage.Str("twenty"))
	b.MustAppendRow(storage.Float(2.5), storage.Str("no"))
	db.Put(b)
	e := NewEngine(db)
	res := mustQuery(t, e, "SELECT a.k, b.v FROM a JOIN b ON a.k = b.k ORDER BY a.k")
	if len(res.Rows) != 2 || res.Rows[0][1].S != "two" || res.Rows[1][1].S != "twenty" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	db := storage.NewDatabase("x")
	a := storage.NewTable("a", storage.Schema{{Name: "k", Kind: storage.KindInt}})
	a.MustAppendRow(storage.Null())
	a.MustAppendRow(storage.Int(1))
	db.Put(a)
	b := storage.NewTable("b", storage.Schema{{Name: "k", Kind: storage.KindInt}})
	b.MustAppendRow(storage.Null())
	b.MustAppendRow(storage.Int(1))
	db.Put(b)
	e := NewEngine(db)
	res := mustQuery(t, e, "SELECT a.k FROM a JOIN b ON a.k = b.k")
	if len(res.Rows) != 1 {
		t.Errorf("NULL keys joined: %v", res.Rows)
	}
}

func TestConjunctsAndConjoin(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE a > 1 AND b < 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	parts := conjuncts(stmt.Where)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	rebuilt := conjoin(parts)
	if rebuilt.Render() != stmt.Where.Render() {
		t.Errorf("conjoin mismatch:\n%s\n%s", rebuilt.Render(), stmt.Where.Render())
	}
	if conjoin(nil) != nil {
		t.Error("empty conjoin must be nil")
	}
}

// Property: on randomly generated equi-join data, both plans agree.
func TestPlansAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := storage.NewDatabase("p")
		l := storage.NewTable("l", storage.Schema{
			{Name: "k", Kind: storage.KindInt}, {Name: "x", Kind: storage.KindInt},
		})
		r := storage.NewTable("r", storage.Schema{
			{Name: "k", Kind: storage.KindInt}, {Name: "y", Kind: storage.KindInt},
		})
		for i := 0; i < 30; i++ {
			l.MustAppendRow(storage.Int(int64(rng.Intn(6))), storage.Int(int64(rng.Intn(100))))
			r.MustAppendRow(storage.Int(int64(rng.Intn(6))), storage.Int(int64(rng.Intn(100))))
		}
		db.Put(l)
		db.Put(r)
		q := fmt.Sprintf("SELECT l.x, r.y FROM l JOIN r ON l.k = r.k WHERE l.x > %d", rng.Intn(80))
		opt := NewEngine(db)
		naive := NewEngine(db)
		naive.DisableOptimizations = true
		a, err1 := opt.Query(q)
		b, err2 := naive.Query(q)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: provenance row references survive the hash-join path
// identically to the naive path (as sets per matching output row
// count).
func TestHashJoinProvenance(t *testing.T) {
	db := testDB(t)
	e := NewEngine(db)
	res := mustQuery(t, e, "SELECT e.name, d.dname FROM employees e JOIN departments d ON e.dept_id = d.id")
	for i, p := range res.Prov {
		tables := map[string]bool{}
		for _, ref := range p {
			tables[ref.Table] = true
		}
		if !tables["employees"] || !tables["departments"] {
			t.Errorf("row %d provenance = %v", i, p)
		}
	}
}

func TestSQLErrorRendering(t *testing.T) {
	_, err := Parse("SELECT FROM t")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "position") || !strings.Contains(msg, "near") {
		t.Errorf("error = %q", msg)
	}
	e2 := &SQLError{Pos: -1, Query: "q", Msg: "boom"}
	if e2.Error() != "sql: boom" {
		t.Errorf("positionless error = %q", e2.Error())
	}
}

func TestColumnRefsCollection(t *testing.T) {
	stmt, err := Parse("SELECT a, SUM(b) FROM t WHERE c IN (1, d) AND e BETWEEN f AND 2 GROUP BY a HAVING COUNT(*) > g ORDER BY LOWER(h)")
	if err != nil {
		t.Fatal(err)
	}
	refs := stmt.ColumnRefs()
	want := map[string]bool{"a": false, "b": false, "c": false, "d": false, "e": false, "f": false, "g": false, "h": false}
	for _, r := range refs {
		if _, ok := want[r.Column]; ok {
			want[r.Column] = true
		}
	}
	for col, seen := range want {
		if !seen {
			t.Errorf("column %q not collected", col)
		}
	}
}

func TestStarAndUnaryRender(t *testing.T) {
	if (&Star{}).Render() != "*" {
		t.Error("star render")
	}
	u := &UnaryExpr{Op: "-", Expr: &ColumnRef{Column: "x"}}
	if u.Render() != "(-x)" {
		t.Errorf("unary render = %q", u.Render())
	}
}
