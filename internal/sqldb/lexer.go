// Package sqldb implements a SQL subset over internal/storage tables:
// a lexer, recursive-descent parser, logical planner, and executor.
//
// Two properties distinguish it from an off-the-shelf embedded SQL
// engine and are required by the paper:
//
//   - Why-provenance: every output row carries the set of base-table
//     row coordinates that contributed to it (P3 Explainability, P4
//     Soundness by provenance). Aggregated rows carry the whole
//     contributing group.
//   - Deterministic, fully inspectable evaluation: the NL2SQL verifier
//     (internal/nl2sql) executes candidate queries and compares result
//     multisets, which requires stable semantics.
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT [DISTINCT] expr [AS alias] {, expr [AS alias]}
//	FROM table [alias] {JOIN table [alias] ON expr}
//	[WHERE expr] [GROUP BY expr {, expr}] [HAVING expr]
//	[ORDER BY expr [ASC|DESC] {, ...}] [LIMIT n]
//
// with aggregates COUNT(*)/COUNT/SUM/AVG/MIN/MAX, arithmetic,
// comparisons, AND/OR/NOT, LIKE, IN (...), BETWEEN, IS [NOT] NULL.
package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenType classifies lexer output.
type TokenType int

// Token types.
const (
	TokEOF TokenType = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokSymbol
)

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Type TokenType
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "IS": true, "NULL": true, "JOIN": true, "ON": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"TRUE": true, "FALSE": true, "INNER": true, "LEFT": true,
}

// SQLError is a lexing/parsing/execution error with a position and the
// original query, so explanations can point at the offending fragment.
type SQLError struct {
	Pos   int
	Query string
	Msg   string
}

func (e *SQLError) Error() string {
	if e.Pos >= 0 && e.Pos <= len(e.Query) {
		return fmt.Sprintf("sql: %s at position %d near %q", e.Msg, e.Pos, excerpt(e.Query, e.Pos))
	}
	return "sql: " + e.Msg
}

func excerpt(q string, pos int) string {
	end := pos + 12
	if end > len(q) {
		end = len(q)
	}
	return q[pos:end]
}

func errAt(query string, pos int, format string, args ...any) error {
	return &SQLError{Pos: pos, Query: query, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes a query. String literals use single quotes with ”
// escaping. Numbers may contain one decimal point and an exponent.
func Lex(query string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(query)
	for i < n {
		c := query[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if query[i] == '\'' {
					if i+1 < n && query[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(query[i])
				i++
			}
			if !closed {
				return nil, errAt(query, start, "unterminated string literal")
			}
			toks = append(toks, Token{Type: TokString, Text: sb.String(), Pos: start})
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(query[i+1])):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := query[i]
				if isDigit(d) {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (query[i] == '+' || query[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Type: TokNumber, Text: query[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(query[i]) {
				i++
			}
			word := query[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Type: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Type: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			// Multi-char operators first.
			if i+1 < n {
				two := query[i : i+2]
				switch two {
				case "<=", ">=", "!=", "<>":
					toks = append(toks, Token{Type: TokSymbol, Text: two, Pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', '%', ';':
				toks = append(toks, Token{Type: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, errAt(query, i, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{Type: TokEOF, Text: "", Pos: n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c) }
