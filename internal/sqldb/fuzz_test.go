package sqldb

import (
	"testing"
	"testing/quick"
)

// Property: the lexer and parser never panic — they return errors for
// malformed input. Random byte strings and mutated near-SQL both go
// through.
func TestParserNeverPanicsProperty(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: truncating a valid query at any byte offset never panics.
func TestParserTruncationProperty(t *testing.T) {
	q := "SELECT d.dname, COUNT(*) AS n FROM employees e JOIN departments d ON e.dept_id = d.id WHERE e.salary > 50 AND name LIKE 'A%' GROUP BY d.dname HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5 OFFSET 1"
	for i := 0; i <= len(q); i++ {
		func(prefix string) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on prefix %q: %v", prefix, r)
				}
			}()
			_, _ = Parse(prefix)
		}(q[:i])
	}
}

// Property: executing any parseable mutation either errors cleanly or
// returns a well-formed result (len(Prov) == len(Rows) when captured).
func TestExecutorResultShapeProperty(t *testing.T) {
	db := testDB(t)
	e := NewEngine(db)
	queries := []string{
		"SELECT * FROM employees",
		"SELECT name FROM employees WHERE salary > 1",
		"SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id",
		"SELECT DISTINCT senior FROM employees ORDER BY senior",
	}
	for _, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if res.Prov != nil && len(res.Prov) != len(res.Rows) {
			t.Errorf("%q: prov/rows mismatch %d != %d", q, len(res.Prov), len(res.Rows))
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Errorf("%q: row width %d != columns %d", q, len(row), len(res.Columns))
			}
		}
	}
}
