package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Property: the lexer and parser never panic — they return errors for
// malformed input. Random byte strings and mutated near-SQL both go
// through.
func TestParserNeverPanicsProperty(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: truncating a valid query at any byte offset never panics.
func TestParserTruncationProperty(t *testing.T) {
	q := "SELECT d.dname, COUNT(*) AS n FROM employees e JOIN departments d ON e.dept_id = d.id WHERE e.salary > 50 AND name LIKE 'A%' GROUP BY d.dname HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5 OFFSET 1"
	for i := 0; i <= len(q); i++ {
		func(prefix string) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on prefix %q: %v", prefix, r)
				}
			}()
			_, _ = Parse(prefix)
		}(q[:i])
	}
}

// Property: executing any parseable mutation either errors cleanly or
// returns a well-formed result (len(Prov) == len(Rows) when captured).
func TestExecutorResultShapeProperty(t *testing.T) {
	db := testDB(t)
	e := NewEngine(db)
	queries := []string{
		"SELECT * FROM employees",
		"SELECT name FROM employees WHERE salary > 1",
		"SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id",
		"SELECT DISTINCT senior FROM employees ORDER BY senior",
	}
	for _, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if res.Prov != nil && len(res.Prov) != len(res.Rows) {
			t.Errorf("%q: prov/rows mismatch %d != %d", q, len(res.Prov), len(res.Rows))
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Errorf("%q: row width %d != columns %d", q, len(row), len(res.Columns))
			}
		}
	}
}

// genDiffQuery emits a random, always-parseable query over genJoinDB's
// schema (facts(k,v,grp) JOIN dims(k,label)): random projection or
// aggregation, predicates, grouping, ordering, and paging. It is the
// workload generator for the vectorized-vs-row differential property.
func genDiffQuery(rng *rand.Rand) string {
	var b strings.Builder
	join := rng.Intn(2) == 0
	agg := rng.Intn(2) == 0
	b.WriteString("SELECT ")
	distinct := !agg && rng.Intn(4) == 0
	if distinct {
		b.WriteString("DISTINCT ")
	}
	var groupCols []string
	if agg {
		if join {
			groupCols = []string{"f.grp", "d.label"}[:1+rng.Intn(2)]
		} else {
			groupCols = []string{"grp"}
		}
		b.WriteString(strings.Join(groupCols, ", "))
		aggs := []string{"COUNT(*)", "SUM(f.v)", "AVG(f.v)", "MIN(f.v)", "MAX(f.k)", "COUNT(DISTINCT f.grp)"}
		if !join {
			aggs = []string{"COUNT(*)", "SUM(v)", "AVG(v)", "MIN(v)", "MAX(k)", "COUNT(DISTINCT grp)"}
		}
		b.WriteString(", " + aggs[rng.Intn(len(aggs))] + " AS m")
	} else {
		switch {
		case join && rng.Intn(3) == 0:
			b.WriteString("f.v, d.label")
		case join:
			b.WriteString("f.k, f.grp, d.label")
		case rng.Intn(3) == 0:
			b.WriteString("*")
		default:
			b.WriteString("k, v * 2 AS dv, grp")
		}
	}
	if join {
		b.WriteString(" FROM facts f JOIN dims d ON f.k = d.k")
	} else {
		b.WriteString(" FROM facts")
	}
	pre := "f."
	if !join {
		pre = ""
	}
	preds := []string{
		pre + "v > " + fmt.Sprintf("%d", rng.Intn(100)),
		pre + "k < " + fmt.Sprintf("%d", rng.Intn(200)),
		pre + "grp = 'g" + fmt.Sprintf("%d", rng.Intn(7)) + "'",
		pre + "grp LIKE 'g%'",
		pre + "v BETWEEN " + fmt.Sprintf("%d AND %d", rng.Intn(50), 50+rng.Intn(50)),
		pre + "k IN (1, 2, 3, " + fmt.Sprintf("%d", rng.Intn(200)) + ")",
	}
	if join {
		preds = append(preds, "d.label = 'd"+fmt.Sprintf("%d", rng.Intn(13))+"'")
	}
	n := rng.Intn(3)
	if n > 0 {
		chosen := make([]string, 0, n)
		for i := 0; i < n; i++ {
			chosen = append(chosen, preds[rng.Intn(len(preds))])
		}
		b.WriteString(" WHERE " + strings.Join(chosen, " AND "))
	}
	if agg {
		b.WriteString(" GROUP BY " + strings.Join(groupCols, ", "))
		if rng.Intn(3) == 0 {
			b.WriteString(" HAVING COUNT(*) > " + fmt.Sprintf("%d", rng.Intn(4)))
		}
		b.WriteString(" ORDER BY " + strings.Join(groupCols, ", "))
	} else if rng.Intn(2) == 0 {
		if join {
			b.WriteString(" ORDER BY f.v DESC, f.k")
		} else {
			b.WriteString(" ORDER BY v DESC, k")
		}
	}
	if rng.Intn(3) == 0 {
		b.WriteString(" LIMIT " + fmt.Sprintf("%d", rng.Intn(40)))
		if rng.Intn(2) == 0 {
			b.WriteString(" OFFSET " + fmt.Sprintf("%d", rng.Intn(10)))
		}
	}
	return b.String()
}

// TestVectorizedMatchesRowOracleFuzz is the engine differential
// property: hundreds of generated queries run through both the legacy
// row-at-a-time oracle and the vectorized engine, which must agree on
// Rows, Prov, Stats, and Fingerprint bit-for-bit.
func TestVectorizedMatchesRowOracleFuzz(t *testing.T) {
	db := genJoinDB(1500, 80, 11)
	oracle := NewEngine(db)
	oracle.RowOracle = true
	vec := NewEngine(db)
	vec.ParallelThreshold = 1 // force the parallel operators
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		q := genDiffQuery(rng)
		want, werr := oracle.Query(q)
		got, gerr := vec.Query(q)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%q: error divergence oracle=%v vectorized=%v", q, werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("%q: error text diverged oracle=%q vectorized=%q", q, werr, gerr)
			}
			continue
		}
		if want.Fingerprint() != got.Fingerprint() {
			t.Fatalf("%q: fingerprints differ", q)
		}
		if !reflect.DeepEqual(want.Rows, got.Rows) {
			t.Fatalf("%q: rows differ\noracle %v\nvector %v", q, want.Rows, got.Rows)
		}
		if !reflect.DeepEqual(want.Prov, got.Prov) {
			t.Fatalf("%q: provenance differs", q)
		}
		if want.Stats != got.Stats {
			t.Fatalf("%q: stats oracle %+v vectorized %+v", q, want.Stats, got.Stats)
		}
	}
}
