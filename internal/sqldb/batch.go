package sqldb

import (
	"fmt"

	"github.com/reliable-cda/cda/internal/storage"
)

// This file holds the batch (columnar) execution substrate: the vrel
// intermediate representation and the compiled expression kernels.
//
// The row executor (exec.go) evaluates the Expr AST once per row,
// re-resolving every column reference by a linear scan over the schema
// and materializing a fresh []storage.Value per scanned row. The
// vectorized executor instead keeps data in column vectors (zero-copy
// views of storage.Table for base scans), tracks surviving rows in a
// selection vector, and compiles each expression once per relation
// schema into a closure tree with column indexes already bound.
//
// Semantics are identical BY CONSTRUCTION, not by reimplementation:
// every kernel mirrors the corresponding evalExpr case statement for
// statement, calls the same helpers (Value.Compare, evalArith,
// evalScalar, isTrue, likeMatch), and preserves evaluation order —
// including which sub-expression errors first and that unresolvable
// columns fail at evaluation time, not compile time (a query over an
// empty table must succeed even if it references unknown columns,
// exactly as the row engine behaves).

// vrel is the columnar intermediate relation: parallel column vectors
// with an optional selection vector of surviving physical rows.
type vrel struct {
	aliases []string // per column
	names   []string // per column
	// cols are the physical column vectors; for base-table scans they
	// alias storage.Table's backing slices (zero copy) and must be
	// treated as read-only.
	cols  [][]storage.Value
	nphys int
	// sel lists the selected physical row indexes in ascending order;
	// nil means all rows are selected. Filters refine sel without
	// touching cols, so a scan+filter never copies values.
	sel []int
	// base, when non-empty, names the base table: provenance is the
	// identity {base, phys} and is materialized lazily only for rows
	// that survive to a join or projection (the row engine allocates a
	// RowRef slice for every scanned row up front).
	base string
	// prov holds explicit per-physical-row provenance for derived
	// relations (join outputs, streaming accumulators).
	prov [][]RowRef
}

func (vr *vrel) resolve(ref *ColumnRef) (int, error) {
	return resolveColumn(vr.aliases, vr.names, ref)
}

// length returns the selected row count.
func (vr *vrel) length() int {
	if vr.sel == nil {
		return vr.nphys
	}
	return len(vr.sel)
}

// phys maps a selection position to its physical row index.
func (vr *vrel) phys(pos int) int {
	if vr.sel == nil {
		return pos
	}
	return vr.sel[pos]
}

// provOf returns the provenance of one physical row. Callers must not
// mutate the result (derived relations share the stored slice, exactly
// as the row engine shares rel.prov[i]).
func (vr *vrel) provOf(phys int) []RowRef {
	if vr.base != "" {
		return []RowRef{{Table: vr.base, Row: phys}}
	}
	if vr.prov == nil {
		return nil
	}
	return vr.prov[phys]
}

// vctx addresses one row during kernel evaluation. For join
// conditions the row is a virtual concatenation of a left and right
// relation: columns at index >= split come from rcols at rphys. This
// lets ON/residual predicates run without materializing combined rows.
type vctx struct {
	cols  [][]storage.Value
	phys  int
	rcols [][]storage.Value
	rphys int
	split int
}

func (c *vctx) col(i int) storage.Value {
	if c.rcols != nil && i >= c.split {
		return c.rcols[i-c.split][c.rphys]
	}
	return c.cols[i][c.phys]
}

// vkernel is a compiled scalar expression: evaluate against one row
// addressed by the context. Kernels are pure and re-entrant (no shared
// scratch), so parallel chunks may share one kernel tree.
type vkernel func(c *vctx) (storage.Value, error)

// vcompiler compiles expressions against one relation schema. The
// cache is keyed by AST node identity so group-scope evaluation, which
// revisits the same argument expression once per group, compiles it
// only once. The cache is not goroutine-safe; compile before fanning
// out (compiled kernels themselves are safe to share).
type vcompiler struct {
	res   columnResolver
	cache map[Expr]vkernel
}

// kernel returns the cached kernel for e, compiling on first use.
func (vc *vcompiler) kernel(e Expr) vkernel {
	if k, ok := vc.cache[e]; ok {
		return k
	}
	if vc.cache == nil {
		vc.cache = make(map[Expr]vkernel)
	}
	k := vc.compile(e)
	vc.cache[e] = k
	return k
}

// errKernel defers an error to evaluation time: the row engine only
// surfaces resolution (and shape) errors when a row is actually
// evaluated, so a filter over an empty relation must not fail.
func errKernel(err error) vkernel {
	return func(*vctx) (storage.Value, error) { return storage.Null(), err }
}

// compile builds the kernel tree for e. Each case mirrors the matching
// evalExpr case, with column resolution hoisted out of the per-row
// path.
func (vc *vcompiler) compile(e Expr) vkernel {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(*vctx) (storage.Value, error) { return v, nil }
	case *ColumnRef:
		idx, err := vc.res.resolve(x)
		if err != nil {
			return errKernel(err)
		}
		return func(c *vctx) (storage.Value, error) { return c.col(idx), nil }
	case *BinaryExpr:
		return vc.compileBinary(x)
	case *UnaryExpr:
		inner := vc.compile(x.Expr)
		switch x.Op {
		case "NOT":
			return func(c *vctx) (storage.Value, error) {
				v, err := inner(c)
				if err != nil {
					return storage.Null(), err
				}
				if v.IsNull() {
					return storage.Null(), nil
				}
				return storage.Bool(!isTrue(v)), nil
			}
		case "-":
			return func(c *vctx) (storage.Value, error) {
				v, err := inner(c)
				if err != nil {
					return storage.Null(), err
				}
				switch v.Kind {
				case storage.KindInt:
					return storage.Int(-v.I), nil
				case storage.KindFloat:
					return storage.Float(-v.F), nil
				case storage.KindNull:
					return storage.Null(), nil
				default:
					return storage.Null(), fmt.Errorf("sql: cannot negate %s", v.Kind)
				}
			}
		default:
			op := x.Op
			return func(c *vctx) (storage.Value, error) {
				// The row engine evaluates the operand before rejecting
				// the operator, so operand errors win.
				if _, err := inner(c); err != nil {
					return storage.Null(), err
				}
				return storage.Null(), fmt.Errorf("sql: unknown unary operator %q", op)
			}
		}
	case *InExpr:
		expr := vc.compile(x.Expr)
		items := make([]vkernel, len(x.List))
		for i, item := range x.List {
			items[i] = vc.compile(item)
		}
		not := x.Not
		return func(c *vctx) (storage.Value, error) {
			v, err := expr(c)
			if err != nil {
				return storage.Null(), err
			}
			if v.IsNull() {
				return storage.Null(), nil
			}
			found := false
			for _, item := range items {
				iv, err := item(c)
				if err != nil {
					return storage.Null(), err
				}
				if v.Equal(iv) {
					found = true
					break
				}
			}
			return storage.Bool(found != not), nil
		}
	case *BetweenExpr:
		expr := vc.compile(x.Expr)
		lo := vc.compile(x.Lo)
		hi := vc.compile(x.Hi)
		not := x.Not
		return func(c *vctx) (storage.Value, error) {
			v, err := expr(c)
			if err != nil {
				return storage.Null(), err
			}
			lv, err := lo(c)
			if err != nil {
				return storage.Null(), err
			}
			hv, err := hi(c)
			if err != nil {
				return storage.Null(), err
			}
			if v.IsNull() || lv.IsNull() || hv.IsNull() {
				return storage.Null(), nil
			}
			cl, err := v.Compare(lv)
			if err != nil {
				return storage.Null(), err
			}
			ch, err := v.Compare(hv)
			if err != nil {
				return storage.Null(), err
			}
			in := cl >= 0 && ch <= 0
			return storage.Bool(in != not), nil
		}
	case *IsNullExpr:
		inner := vc.compile(x.Expr)
		not := x.Not
		return func(c *vctx) (storage.Value, error) {
			v, err := inner(c)
			if err != nil {
				return storage.Null(), err
			}
			return storage.Bool(v.IsNull() != not), nil
		}
	case *ScalarExpr:
		argKs := make([]vkernel, len(x.Args))
		for i, a := range x.Args {
			argKs[i] = vc.compile(a)
		}
		name := x.Name
		return func(c *vctx) (storage.Value, error) {
			args := make([]storage.Value, len(argKs))
			for i, k := range argKs {
				v, err := k(c)
				if err != nil {
					return storage.Null(), err
				}
				args[i] = v
			}
			return evalScalar(name, args)
		}
	case *FuncExpr:
		return errKernel(fmt.Errorf("sql: aggregate %s used outside GROUP BY context", x.Name))
	case *Star:
		return errKernel(fmt.Errorf("sql: * is not a scalar expression"))
	default:
		return errKernel(fmt.Errorf("sql: unsupported expression %T", e))
	}
}

// compileBinary mirrors evalBinary: AND/OR short-circuit with SQL
// three-valued semantics, comparisons through Value.Compare,
// arithmetic through evalArith, LIKE through likeMatch.
func (vc *vcompiler) compileBinary(x *BinaryExpr) vkernel {
	lk := vc.compile(x.Left)
	rk := vc.compile(x.Right)
	op := x.Op
	switch op {
	case "AND":
		return func(c *vctx) (storage.Value, error) {
			l, err := lk(c)
			if err != nil {
				return storage.Null(), err
			}
			if !l.IsNull() && !isTrue(l) {
				return storage.Bool(false), nil
			}
			r, err := rk(c)
			if err != nil {
				return storage.Null(), err
			}
			if l.IsNull() || r.IsNull() {
				if !r.IsNull() && !isTrue(r) {
					return storage.Bool(false), nil
				}
				return storage.Null(), nil
			}
			return storage.Bool(isTrue(l) && isTrue(r)), nil
		}
	case "OR":
		return func(c *vctx) (storage.Value, error) {
			l, err := lk(c)
			if err != nil {
				return storage.Null(), err
			}
			if !l.IsNull() && isTrue(l) {
				return storage.Bool(true), nil
			}
			r, err := rk(c)
			if err != nil {
				return storage.Null(), err
			}
			if l.IsNull() || r.IsNull() {
				if !r.IsNull() && isTrue(r) {
					return storage.Bool(true), nil
				}
				return storage.Null(), nil
			}
			return storage.Bool(isTrue(l) || isTrue(r)), nil
		}
	case "=", "!=", "<", "<=", ">", ">=":
		return func(c *vctx) (storage.Value, error) {
			l, err := lk(c)
			if err != nil {
				return storage.Null(), err
			}
			r, err := rk(c)
			if err != nil {
				return storage.Null(), err
			}
			if l.IsNull() || r.IsNull() {
				return storage.Null(), nil
			}
			cmp, err := l.Compare(r)
			if err != nil {
				return storage.Null(), err
			}
			var b bool
			switch op {
			case "=":
				b = cmp == 0
			case "!=":
				b = cmp != 0
			case "<":
				b = cmp < 0
			case "<=":
				b = cmp <= 0
			case ">":
				b = cmp > 0
			case ">=":
				b = cmp >= 0
			}
			return storage.Bool(b), nil
		}
	case "+", "-", "*", "/", "%":
		return func(c *vctx) (storage.Value, error) {
			l, err := lk(c)
			if err != nil {
				return storage.Null(), err
			}
			r, err := rk(c)
			if err != nil {
				return storage.Null(), err
			}
			return evalArith(op, l, r)
		}
	case "LIKE":
		return func(c *vctx) (storage.Value, error) {
			l, err := lk(c)
			if err != nil {
				return storage.Null(), err
			}
			r, err := rk(c)
			if err != nil {
				return storage.Null(), err
			}
			if l.IsNull() || r.IsNull() {
				return storage.Null(), nil
			}
			if l.Kind != storage.KindString || r.Kind != storage.KindString {
				return storage.Null(), fmt.Errorf("sql: LIKE requires string operands")
			}
			return storage.Bool(likeMatch(l.S, r.S)), nil
		}
	default:
		return func(c *vctx) (storage.Value, error) {
			if _, err := lk(c); err != nil {
				return storage.Null(), err
			}
			if _, err := rk(c); err != nil {
				return storage.Null(), err
			}
			return storage.Null(), fmt.Errorf("sql: unknown operator %q", op)
		}
	}
}
