package sqldb

import (
	"github.com/reliable-cda/cda/internal/parallel"
	"github.com/reliable-cda/cda/internal/storage"
)

// This file implements the engine's logical optimizations, the
// query-level half of the paper's "holistic optimizer":
//
//   - predicate pushdown: WHERE conjuncts that reference a single
//     base relation are applied at scan time, before any join;
//   - hash equi-joins: a conjunct of the ON condition of the form
//     left.col = right.col turns the O(n·m) nested loop into a build
//     + probe pass; residual ON conjuncts are evaluated on matches.
//
// Engine.DisableOptimizations turns both off, keeping the naive
// plan for correctness cross-checks and the ablation bench.

// conjuncts flattens a tree of ANDs into its conjunct list.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// conjoin rebuilds an expression from conjuncts (nil for none).
func conjoin(parts []Expr) Expr {
	if len(parts) == 0 {
		return nil
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = &BinaryExpr{Op: "AND", Left: out, Right: p}
	}
	return out
}

// resolvableIn reports whether every column reference of the
// expression resolves unambiguously in the relation.
func resolvableIn(e Expr, rel columnResolver) bool {
	var refs []*ColumnRef
	columnRefs(e, &refs)
	if len(refs) == 0 {
		return false // constant predicates stay at the top
	}
	for _, r := range refs {
		if _, err := rel.resolve(r); err != nil {
			return false
		}
	}
	return true
}

// pushDown splits predicates into those evaluable against rel and the
// remainder.
func pushDown(preds []Expr, rel columnResolver) (pushed, rest []Expr) {
	for _, p := range preds {
		if containsAggregate(p) {
			rest = append(rest, p)
			continue
		}
		if resolvableIn(p, rel) {
			pushed = append(pushed, p)
		} else {
			rest = append(rest, p)
		}
	}
	return pushed, rest
}

// filterRelation applies a predicate list to a relation. Rows are
// evaluated in parallel chunks (expression evaluation is pure);
// per-chunk survivors merge in chunk order, so the output row order —
// and with it Result bytes and Fingerprint — matches the serial scan
// exactly.
func (e *Engine) filterRelation(rel *relation, preds []Expr) (*relation, error) {
	if len(preds) == 0 {
		return rel, nil
	}
	cond := conjoin(preds)
	out := &relation{aliases: rel.aliases, names: rel.names}
	chunks, err := parallel.MapChunks(len(rel.rows), e.parOptions(), func(lo, hi int) (*relation, error) {
		part := &relation{}
		for i := lo; i < hi; i++ {
			row := rel.rows[i]
			v, err := evalExpr(cond, rel, row)
			if err != nil {
				return nil, err
			}
			if isTrue(v) {
				part.rows = append(part.rows, row)
				if e.CaptureProvenance {
					part.prov = append(part.prov, rel.prov[i])
				}
			}
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}
	for _, part := range chunks {
		out.rows = append(out.rows, part.rows...)
		out.prov = append(out.prov, part.prov...)
	}
	return out, nil
}

// equiJoinKey finds one `a = b` conjunct with a resolving in left and
// b in right (either order), returning the column indexes and the
// residual conjuncts.
func equiJoinKey(on Expr, left, right columnResolver) (li, ri int, residual []Expr, ok bool) {
	parts := conjuncts(on)
	for idx, p := range parts {
		b, isBin := p.(*BinaryExpr)
		if !isBin || b.Op != "=" {
			continue
		}
		lref, lok := b.Left.(*ColumnRef)
		rref, rok := b.Right.(*ColumnRef)
		if !lok || !rok {
			continue
		}
		if l, err := left.resolve(lref); err == nil {
			if r, err := right.resolve(rref); err == nil {
				rest := append(append([]Expr{}, parts[:idx]...), parts[idx+1:]...)
				return l, r, rest, true
			}
		}
		if l, err := left.resolve(rref); err == nil {
			if r, err := right.resolve(lref); err == nil {
				rest := append(append([]Expr{}, parts[:idx]...), parts[idx+1:]...)
				return l, r, rest, true
			}
		}
	}
	return 0, 0, nil, false
}

// valueKey renders a value as a hash key with kind tag; numeric kinds
// share a representation so INT 2 joins FLOAT 2.0.
func valueKey(v storage.Value) (string, bool) {
	if v.IsNull() {
		return "", false // NULL never equi-joins
	}
	if f, ok := v.AsFloat(); ok && v.Kind != storage.KindString && v.Kind != storage.KindBool {
		// Both sides go through the same float renderer, so INT 2 and
		// FLOAT 2.0 produce the identical key "n:2".
		return "n:" + storage.Float(f).String(), true
	}
	return v.Kind.String() + ":" + v.String(), true
}

// hashJoin builds a hash table on the right side and probes with the
// left, evaluating residual conjuncts on each candidate match. The
// probe phase runs in parallel chunks over the left rows: bucket
// lists preserve right-row order, chunks scan left rows in order, and
// chunk outputs merge in chunk order, so the joined rows, provenance,
// and RowsJoined accounting are identical to the serial probe.
func (e *Engine) hashJoin(left, right *relation, li, ri int, residual []Expr, stats *Stats) (*relation, error) {
	out := &relation{
		aliases: append(append([]string{}, left.aliases...), right.aliases...),
		names:   append(append([]string{}, left.names...), right.names...),
	}
	cond := conjoin(residual)
	// Build on the right (kept simple; the planner has no cardinality
	// estimates to choose sides).
	buckets := make(map[string][]int, len(right.rows))
	for i, row := range right.rows {
		if key, ok := valueKey(row[ri]); ok {
			buckets[key] = append(buckets[key], i)
		}
	}
	type probePart struct {
		rel    relation
		joined int
	}
	chunks, err := parallel.MapChunks(len(left.rows), e.parOptions(), func(lo, hi int) (*probePart, error) {
		part := &probePart{}
		for lIdx := lo; lIdx < hi; lIdx++ {
			lrow := left.rows[lIdx]
			key, ok := valueKey(lrow[li])
			if !ok {
				continue
			}
			for _, rIdx := range buckets[key] {
				part.joined++
				combined := make([]storage.Value, 0, len(lrow)+len(right.rows[rIdx]))
				combined = append(combined, lrow...)
				combined = append(combined, right.rows[rIdx]...)
				if cond != nil {
					v, err := evalExpr(cond, out, combined)
					if err != nil {
						return nil, err
					}
					if !isTrue(v) {
						continue
					}
				}
				part.rel.rows = append(part.rel.rows, combined)
				if e.CaptureProvenance {
					p := make([]RowRef, 0, len(left.prov[lIdx])+len(right.prov[rIdx]))
					p = append(p, left.prov[lIdx]...)
					p = append(p, right.prov[rIdx]...)
					part.rel.prov = append(part.rel.prov, p)
				}
			}
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}
	for _, part := range chunks {
		stats.RowsJoined += part.joined
		out.rows = append(out.rows, part.rel.rows...)
		out.prov = append(out.prov, part.rel.prov...)
	}
	stats.HashJoins++
	return out, nil
}
