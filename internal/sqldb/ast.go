package sqldb

import (
	"fmt"
	"strings"

	"github.com/reliable-cda/cda/internal/storage"
)

// Expr is a SQL expression AST node. Render() re-serializes the node
// to SQL text — used by the explanation layer ("here is the code that
// produced this") and the NL2SQL equivalence checks.
type Expr interface {
	Render() string
}

// Literal is a constant value.
type Literal struct {
	Val storage.Value
}

// Render serializes the literal; strings are quoted with ” escaping.
func (l *Literal) Render() string {
	if l.Val.Kind == storage.KindString {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// ColumnRef references a column, optionally qualified by table alias.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

// Render serializes the reference.
func (c *ColumnRef) Render() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Star is the bare `*` select item (and COUNT(*) argument).
type Star struct{}

// Render returns "*".
func (s *Star) Render() string { return "*" }

// BinaryExpr applies an infix operator: arithmetic (+ - * / %),
// comparison (= != < <= > >=), logic (AND OR), or LIKE.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// Render serializes with full parenthesization, which keeps
// re-parsing unambiguous.
func (b *BinaryExpr) Render() string {
	return "(" + b.Left.Render() + " " + b.Op + " " + b.Right.Render() + ")"
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

// Render serializes the operator prefix.
func (u *UnaryExpr) Render() string {
	if u.Op == "NOT" {
		return "(NOT " + u.Expr.Render() + ")"
	}
	return "(-" + u.Expr.Render() + ")"
}

// InExpr tests membership in a literal list, with optional negation.
type InExpr struct {
	Expr Expr
	List []Expr
	Not  bool
}

// Render serializes the IN list.
func (in *InExpr) Render() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.Render()
	}
	op := " IN ("
	if in.Not {
		op = " NOT IN ("
	}
	return "(" + in.Expr.Render() + op + strings.Join(parts, ", ") + "))"
}

// BetweenExpr tests lo <= expr <= hi, with optional negation.
type BetweenExpr struct {
	Expr   Expr
	Lo, Hi Expr
	Not    bool
}

// Render serializes the BETWEEN clause.
func (b *BetweenExpr) Render() string {
	op := " BETWEEN "
	if b.Not {
		op = " NOT BETWEEN "
	}
	return "(" + b.Expr.Render() + op + b.Lo.Render() + " AND " + b.Hi.Render() + ")"
}

// IsNullExpr tests for NULL, with optional negation.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

// Render serializes the IS [NOT] NULL test.
func (i *IsNullExpr) Render() string {
	if i.Not {
		return "(" + i.Expr.Render() + " IS NOT NULL)"
	}
	return "(" + i.Expr.Render() + " IS NULL)"
}

// FuncExpr is an aggregate call: COUNT/SUM/AVG/MIN/MAX. COUNT(*) has
// Arg == &Star{}. Distinct applies to COUNT(DISTINCT x).
type FuncExpr struct {
	Name     string // upper-case
	Arg      Expr
	Distinct bool
}

// Render serializes the call.
func (f *FuncExpr) Render() string {
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + f.Arg.Render() + ")"
}

// ScalarExpr is a scalar function call: LOWER, UPPER, LENGTH, ABS,
// ROUND, COALESCE.
type ScalarExpr struct {
	Name string // upper-case
	Args []Expr
}

// Render serializes the call.
func (s *ScalarExpr) Render() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.Render()
	}
	return s.Name + "(" + strings.Join(parts, ", ") + ")"
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OutputName returns the column name the item produces.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if c, ok := s.Expr.(*ColumnRef); ok {
		return c.Column
	}
	return s.Expr.Render()
}

// JoinClause is one JOIN ... ON ... segment. Only inner joins are
// planned; LEFT parses but falls back to inner semantics with a parse
// warning recorded on the statement.
type JoinClause struct {
	Table string
	Alias string
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	SelStar  bool // SELECT * shortcut
	From     string
	FromAl   string
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
	Warnings []string
}

// Render re-serializes the statement to canonical SQL.
func (s *SelectStmt) Render() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if s.SelStar {
		sb.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(it.Expr.Render())
			if it.Alias != "" {
				sb.WriteString(" AS " + it.Alias)
			}
		}
	}
	sb.WriteString(" FROM " + s.From)
	if s.FromAl != "" && !strings.EqualFold(s.FromAl, s.From) {
		sb.WriteString(" " + s.FromAl)
	}
	for _, j := range s.Joins {
		sb.WriteString(" JOIN " + j.Table)
		if j.Alias != "" && !strings.EqualFold(j.Alias, j.Table) {
			sb.WriteString(" " + j.Alias)
		}
		sb.WriteString(" ON " + j.On.Render())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.Render())
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keys[i] = g.Render()
		}
		sb.WriteString(" GROUP BY " + strings.Join(keys, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.Render())
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.Expr.Render()
			if o.Desc {
				keys[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	if s.Offset > 0 {
		sb.WriteString(fmt.Sprintf(" OFFSET %d", s.Offset))
	}
	return sb.String()
}

// HasAggregates reports whether any select item or HAVING clause uses
// an aggregate function.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if containsAggregate(it.Expr) {
			return true
		}
	}
	return containsAggregate(s.Having)
}

func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *FuncExpr:
		return true
	case *BinaryExpr:
		return containsAggregate(x.Left) || containsAggregate(x.Right)
	case *UnaryExpr:
		return containsAggregate(x.Expr)
	case *InExpr:
		if containsAggregate(x.Expr) {
			return true
		}
		for _, it := range x.List {
			if containsAggregate(it) {
				return true
			}
		}
		return false
	case *BetweenExpr:
		return containsAggregate(x.Expr) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	case *IsNullExpr:
		return containsAggregate(x.Expr)
	case *ScalarExpr:
		for _, a := range x.Args {
			if containsAggregate(a) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// columnRefs collects every ColumnRef in the expression tree.
func columnRefs(e Expr, out *[]*ColumnRef) {
	switch x := e.(type) {
	case nil:
	case *ColumnRef:
		*out = append(*out, x)
	case *BinaryExpr:
		columnRefs(x.Left, out)
		columnRefs(x.Right, out)
	case *UnaryExpr:
		columnRefs(x.Expr, out)
	case *InExpr:
		columnRefs(x.Expr, out)
		for _, it := range x.List {
			columnRefs(it, out)
		}
	case *BetweenExpr:
		columnRefs(x.Expr, out)
		columnRefs(x.Lo, out)
		columnRefs(x.Hi, out)
	case *IsNullExpr:
		columnRefs(x.Expr, out)
	case *FuncExpr:
		columnRefs(x.Arg, out)
	case *ScalarExpr:
		for _, a := range x.Args {
			columnRefs(a, out)
		}
	}
}

// ColumnRefs returns every column reference in the statement, for
// schema linking and validation.
func (s *SelectStmt) ColumnRefs() []*ColumnRef {
	var out []*ColumnRef
	for _, it := range s.Items {
		columnRefs(it.Expr, &out)
	}
	columnRefs(s.Where, &out)
	for _, g := range s.GroupBy {
		columnRefs(g, &out)
	}
	columnRefs(s.Having, &out)
	for _, o := range s.OrderBy {
		columnRefs(o.Expr, &out)
	}
	for _, j := range s.Joins {
		columnRefs(j.On, &out)
	}
	return out
}
