package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/parallel"
	"github.com/reliable-cda/cda/internal/storage"
)

// RowRef identifies one base-table row: the provenance atom.
type RowRef struct {
	Table string
	Row   int
}

// Stats reports executor effort for the efficiency experiments.
type Stats struct {
	RowsScanned int
	// RowsJoined counts row pairs examined by join operators (for a
	// hash join, only the candidate matches).
	RowsJoined int
	RowsOutput int
	// HashJoins counts joins executed with the build+probe strategy.
	HashJoins int
	// PushedPredicates counts WHERE conjuncts applied at scan time.
	PushedPredicates int
}

// Result is an executed query result. Prov[i] holds the why-provenance
// of Rows[i]: the base rows whose values contributed to it.
type Result struct {
	Columns []string
	Rows    [][]storage.Value
	Prov    [][]RowRef
	Stmt    *SelectStmt
	Stats   Stats
}

// Fingerprint returns an order-insensitive multiset digest of the
// result, used by the NL2SQL verifier to compare candidate queries.
func (r *Result) Fingerprint() string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.Kind.String() + ":" + v.String()
		}
		lines[i] = strings.Join(parts, "\x1f")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\x1e")
}

// relation is the executor's intermediate representation: a bag of
// rows over (alias, column) pairs, each row carrying provenance.
type relation struct {
	aliases []string // per column
	names   []string // per column
	rows    [][]storage.Value
	prov    [][]RowRef
}

func (rel *relation) resolve(ref *ColumnRef) (int, error) {
	return resolveColumn(rel.aliases, rel.names, ref)
}

// columnResolver abstracts column lookup over a relation schema; both
// the row engine's relation and the columnar vrel implement it, so the
// planner (pushdown, equi-join detection) serves both executors.
type columnResolver interface {
	resolve(ref *ColumnRef) (int, error)
}

// resolveColumn finds the unique column matching ref
// (case-insensitive, optionally alias-qualified).
func resolveColumn(aliases, names []string, ref *ColumnRef) (int, error) {
	found := -1
	for i := range names {
		if !strings.EqualFold(names[i], ref.Column) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(aliases[i], ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", ref.Render())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", ref.Render())
	}
	return found, nil
}

// FaultHook is the chaos-injection seam (see internal/faults): when
// non-nil it is consulted at the top of every Execute and may return
// an injected transient error or add latency. Production deployments
// leave it nil.
type FaultHook interface {
	Inject(op string) error
}

// Engine executes parsed statements against a database.
type Engine struct {
	DB *storage.Database
	// Faults, when non-nil, injects deterministic chaos faults into
	// statement execution.
	Faults FaultHook
	// CaptureProvenance controls whether per-row provenance is
	// recorded. Disabling it is the E4 "provenance off" baseline.
	CaptureProvenance bool
	// DisableOptimizations turns off predicate pushdown and hash
	// joins, keeping the naive plan (correctness cross-checks and the
	// optimizer ablation bench).
	DisableOptimizations bool
	// Workers bounds the goroutines used by the parallel operators
	// (filter scans and hash-join probes): 0 = GOMAXPROCS, 1 =
	// serial. Parallel execution is deterministic by construction —
	// chunk outputs merge in row order — so Result (rows, provenance,
	// Fingerprint) and Stats are byte-identical to the serial
	// executor's.
	Workers int
	// ParallelThreshold is the input row count below which operators
	// stay serial (0 = parallel.DefaultSerialThreshold). Tests set 1
	// to force the parallel path on small fixtures.
	ParallelThreshold int
	// RowOracle forces the legacy row-at-a-time executor. The default
	// (false) runs the vectorized columnar engine; the row path is
	// kept as the differential-testing oracle — same Result, Stats,
	// Prov, Fingerprint, and errors, enforced by the fuzz and
	// determinism suites.
	RowOracle bool
}

// execChunkFactor oversubscribes parallel chunks (workers × factor)
// so skewed chunks — hash-join probes over clustered keys, filters
// with uneven selectivity — stop gating the whole pool on the slowest
// worker. Results are unaffected: chunk outputs merge in chunk order.
const execChunkFactor = 8

// parOptions assembles the fan-out knobs for the parallel operators.
func (e *Engine) parOptions() parallel.Options {
	return parallel.Options{Workers: e.Workers, SerialThreshold: e.ParallelThreshold, ChunkFactor: execChunkFactor}
}

// NewEngine creates an engine with provenance capture enabled.
func NewEngine(db *storage.Database) *Engine {
	return &Engine{DB: db, CaptureProvenance: true}
}

// Query parses and executes SQL text.
func (e *Engine) Query(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(stmt)
}

// Execute runs a parsed statement. The columnar engine is the
// default; RowOracle selects the legacy row-at-a-time path (the
// differential-testing oracle). Both produce byte-identical results.
func (e *Engine) Execute(stmt *SelectStmt) (*Result, error) {
	if e.Faults != nil {
		if err := e.Faults.Inject("sqldb.execute"); err != nil {
			return nil, err
		}
	}
	if e.RowOracle {
		return e.executeRow(stmt)
	}
	return e.executeVec(stmt)
}

// executeRow is the row-at-a-time pipeline: scan → pushdown → joins →
// residual filter → aggregation/projection.
func (e *Engine) executeRow(stmt *SelectStmt) (*Result, error) {
	var stats Stats

	rel, err := e.scan(stmt.From, stmt.FromAl, &stats)
	if err != nil {
		return nil, err
	}
	var wherePreds []Expr
	if stmt.Where != nil {
		if containsAggregate(stmt.Where) {
			return nil, fmt.Errorf("sql: aggregates are not allowed in WHERE")
		}
		wherePreds = conjuncts(stmt.Where)
	}
	// Predicate pushdown onto the base scan.
	if !e.DisableOptimizations && len(stmt.Joins) > 0 {
		// (With no joins, the final filter is the scan filter anyway.)
		var pushed []Expr
		pushed, wherePreds = pushDown(wherePreds, rel)
		stats.PushedPredicates += len(pushed)
		rel, err = e.filterRelation(rel, pushed)
		if err != nil {
			return nil, err
		}
	}
	for _, jc := range stmt.Joins {
		right, err := e.scan(jc.Table, jc.Alias, &stats)
		if err != nil {
			return nil, err
		}
		if !e.DisableOptimizations {
			var pushed []Expr
			pushed, wherePreds = pushDown(wherePreds, right)
			stats.PushedPredicates += len(pushed)
			right, err = e.filterRelation(right, pushed)
			if err != nil {
				return nil, err
			}
			if li, ri, residual, ok := equiJoinKey(jc.On, rel, right); ok {
				rel, err = e.hashJoin(rel, right, li, ri, residual, &stats)
				if err != nil {
					return nil, err
				}
				continue
			}
		}
		rel, err = e.join(rel, right, jc.On, &stats)
		if err != nil {
			return nil, err
		}
	}
	if cond := conjoin(wherePreds); cond != nil {
		rel, err = e.filterRelation(rel, wherePreds)
		if err != nil {
			return nil, err
		}
	}

	var res *Result
	if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
		res, err = e.executeAggregate(stmt, rel)
	} else {
		res, err = e.executeProjection(stmt, rel)
	}
	if err != nil {
		return nil, err
	}
	return finishResult(stmt, res, &stats), nil
}

// finishResult applies the post-projection stages shared by both
// engines (and the streaming snapshots): DISTINCT, OFFSET, LIMIT, and
// the final stats stamp.
func finishResult(stmt *SelectStmt, res *Result, stats *Stats) *Result {
	if stmt.Distinct {
		res = distinct(res)
	}
	if stmt.Offset > 0 {
		skip := stmt.Offset
		if skip > len(res.Rows) {
			skip = len(res.Rows)
		}
		res.Rows = res.Rows[skip:]
		if res.Prov != nil {
			res.Prov = res.Prov[skip:]
		}
	}
	if stmt.Limit >= 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
		if res.Prov != nil {
			res.Prov = res.Prov[:stmt.Limit]
		}
	}
	stats.RowsOutput = len(res.Rows)
	res.Stats = *stats
	res.Stmt = stmt
	return res
}

func (e *Engine) scan(table, alias string, stats *Stats) (*relation, error) {
	t, err := e.DB.Get(table)
	if err != nil {
		return nil, err
	}
	if alias == "" {
		alias = table
	}
	rel := &relation{}
	for _, c := range t.Schema() {
		rel.aliases = append(rel.aliases, alias)
		rel.names = append(rel.names, c.Name)
	}
	n := t.NumRows()
	stats.RowsScanned += n
	rel.rows = make([][]storage.Value, n)
	for i := 0; i < n; i++ {
		rel.rows[i] = t.Row(i)
	}
	if e.CaptureProvenance {
		rel.prov = make([][]RowRef, n)
		for i := 0; i < n; i++ {
			rel.prov[i] = []RowRef{{Table: t.Name, Row: i}}
		}
	}
	return rel, nil
}

func (e *Engine) join(left, right *relation, on Expr, stats *Stats) (*relation, error) {
	out := &relation{
		aliases: append(append([]string{}, left.aliases...), right.aliases...),
		names:   append(append([]string{}, left.names...), right.names...),
	}
	for li, lrow := range left.rows {
		for ri, rrow := range right.rows {
			stats.RowsJoined++
			combined := make([]storage.Value, 0, len(lrow)+len(rrow))
			combined = append(combined, lrow...)
			combined = append(combined, rrow...)
			v, err := evalExpr(on, out, combined)
			if err != nil {
				return nil, err
			}
			if !isTrue(v) {
				continue
			}
			out.rows = append(out.rows, combined)
			if e.CaptureProvenance {
				p := make([]RowRef, 0, len(left.prov[li])+len(right.prov[ri]))
				p = append(p, left.prov[li]...)
				p = append(p, right.prov[ri]...)
				out.prov = append(out.prov, p)
			}
		}
	}
	return out, nil
}

// executeProjection handles non-aggregate SELECTs, including ORDER BY
// keys evaluated in the same scope as the projections.
func (e *Engine) executeProjection(stmt *SelectStmt, rel *relation) (*Result, error) {
	res := &Result{}
	if stmt.SelStar {
		res.Columns = append(res.Columns, rel.names...)
	} else {
		for _, it := range stmt.Items {
			res.Columns = append(res.Columns, it.OutputName())
		}
	}

	type keyed struct {
		row  []storage.Value
		prov []RowRef
		keys []storage.Value
	}
	var out []keyed
	orderExprs := e.orderExprs(stmt)
	for i, row := range rel.rows {
		var projected []storage.Value
		if stmt.SelStar {
			projected = row
		} else {
			projected = make([]storage.Value, len(stmt.Items))
			for j, it := range stmt.Items {
				v, err := evalExpr(it.Expr, rel, row)
				if err != nil {
					return nil, err
				}
				projected[j] = v
			}
		}
		k := keyed{row: projected}
		if e.CaptureProvenance {
			k.prov = rel.prov[i]
		}
		for _, oe := range orderExprs {
			v, err := evalExpr(oe, rel, row)
			if err != nil {
				return nil, err
			}
			k.keys = append(k.keys, v)
		}
		out = append(out, k)
	}
	if len(orderExprs) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			return compareKeySlices(out[i].keys, out[j].keys, stmt.OrderBy) < 0
		})
	}
	for _, k := range out {
		res.Rows = append(res.Rows, k.row)
		if e.CaptureProvenance {
			res.Prov = append(res.Prov, k.prov)
		}
	}
	return res, nil
}

// orderExprs resolves ORDER BY items, substituting references to
// select-item aliases with the aliased expression.
func (e *Engine) orderExprs(stmt *SelectStmt) []Expr {
	out := make([]Expr, len(stmt.OrderBy))
	for i, oi := range stmt.OrderBy {
		out[i] = substituteAliases(oi.Expr, stmt.Items)
	}
	return out
}

func substituteAliases(expr Expr, items []SelectItem) Expr {
	ref, ok := expr.(*ColumnRef)
	if !ok || ref.Table != "" {
		return expr
	}
	for _, it := range items {
		if it.Alias != "" && strings.EqualFold(it.Alias, ref.Column) {
			return it.Expr
		}
	}
	return expr
}

// compareKeySlices compares two ORDER BY key tuples under the given
// directions. Incomparable values fall back to string comparison so
// sorting is always total.
func compareKeySlices(a, b []storage.Value, order []OrderItem) int {
	for i := range a {
		c, err := a[i].Compare(b[i])
		if err != nil {
			c = strings.Compare(a[i].String(), b[i].String())
		}
		if c != 0 {
			if order[i].Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

func distinct(res *Result) *Result {
	seen := make(map[string]int) // fingerprint -> output index
	out := &Result{Columns: res.Columns, Stmt: res.Stmt, Stats: res.Stats}
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.Kind.String() + ":" + v.String()
		}
		key := strings.Join(parts, "\x1f")
		if idx, dup := seen[key]; dup {
			// Merge provenance of duplicates: the output row is
			// witnessed by every duplicate's sources.
			if res.Prov != nil {
				out.Prov[idx] = mergeRefs(out.Prov[idx], res.Prov[i])
			}
			continue
		}
		seen[key] = len(out.Rows)
		out.Rows = append(out.Rows, row)
		if res.Prov != nil {
			out.Prov = append(out.Prov, res.Prov[i])
		}
	}
	return out
}

func mergeRefs(a, b []RowRef) []RowRef {
	seen := make(map[RowRef]struct{}, len(a)+len(b))
	out := make([]RowRef, 0, len(a)+len(b))
	for _, r := range a {
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	for _, r := range b {
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	return out
}
