package sqldb

import (
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/storage"
)

func TestScalarLowerUpper(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT LOWER(name), UPPER(name) FROM employees WHERE id = 1")
	if res.Rows[0][0].S != "ada" || res.Rows[0][1].S != "ADA" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestScalarInWhere(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name FROM employees WHERE LOWER(name) = 'bob'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestScalarLength(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name FROM employees WHERE LENGTH(name) = 3 ORDER BY name")
	if len(res.Rows) != 4 { // Ada, Bob, Dan, Eve
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestScalarAbsRound(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT ABS(0 - salary), ROUND(salary / 7, 1) FROM employees WHERE id = 1")
	if res.Rows[0][0].F != 120 {
		t.Errorf("abs = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].F != 17.1 {
		t.Errorf("round = %v", res.Rows[0][1])
	}
	res = mustQuery(t, e, "SELECT ABS(0 - id) FROM employees WHERE id = 2")
	if res.Rows[0][0].Kind != storage.KindInt || res.Rows[0][0].I != 2 {
		t.Errorf("int abs = %v", res.Rows[0][0])
	}
}

func TestScalarCoalesce(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT COALESCE(salary, 0) FROM employees WHERE id = 5")
	if res.Rows[0][0].Kind != storage.KindInt || res.Rows[0][0].I != 0 {
		t.Errorf("coalesce = %v", res.Rows[0][0])
	}
	res = mustQuery(t, e, "SELECT COALESCE(salary, 0) FROM employees WHERE id = 1")
	if res.Rows[0][0].F != 120 {
		t.Errorf("coalesce non-null = %v", res.Rows[0][0])
	}
}

func TestScalarNullPropagation(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT ROUND(salary) FROM employees WHERE id = 5")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("null propagation = %v", res.Rows[0][0])
	}
}

func TestScalarInsideAggregate(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT MAX(LENGTH(name)) FROM employees")
	if res.Rows[0][0].I != 4 { // Cleo
		t.Errorf("max length = %v", res.Rows[0][0])
	}
}

func TestScalarWithGroupByKey(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT dept_id, ROUND(AVG(salary)) FROM employees GROUP BY dept_id ORDER BY dept_id")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].F != 105 {
		t.Errorf("rounded avg = %v", res.Rows[0][1])
	}
}

func TestScalarArityErrors(t *testing.T) {
	e := NewEngine(testDB(t))
	for _, q := range []string{
		"SELECT LOWER() FROM employees",
		"SELECT LOWER(name, name) FROM employees",
		"SELECT ROUND(salary, 1, 2) FROM employees",
		"SELECT COALESCE() FROM employees",
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestScalarTypeErrors(t *testing.T) {
	e := NewEngine(testDB(t))
	for _, q := range []string{
		"SELECT LOWER(salary) FROM employees",
		"SELECT ABS(name) FROM employees",
		"SELECT LENGTH(id) FROM employees",
		"SELECT ROUND(name) FROM employees",
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestScalarRenderRoundTrip(t *testing.T) {
	q := "SELECT COALESCE(LOWER(name), 'x') FROM employees WHERE (LENGTH(name) > 2)"
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	r1 := stmt.Render()
	stmt2, err := Parse(r1)
	if err != nil {
		t.Fatalf("re-parse %q: %v", r1, err)
	}
	if r2 := stmt2.Render(); r1 != r2 {
		t.Errorf("render fixpoint failed:\n%s\n%s", r1, r2)
	}
}

func TestNonScalarIdentWithParenFails(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Query("SELECT frobnicate(name) FROM employees"); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestLimitOffset(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name FROM employees ORDER BY id LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Bob" || res.Rows[1][0].S != "Cleo" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Offset past the end yields empty.
	res = mustQuery(t, e, "SELECT name FROM employees LIMIT 5 OFFSET 99")
	if len(res.Rows) != 0 {
		t.Errorf("past-end rows = %v", res.Rows)
	}
	// Offset without limit.
	res = mustQuery(t, e, "SELECT name FROM employees ORDER BY id OFFSET 3")
	if len(res.Rows) != 2 {
		t.Errorf("offset-only rows = %v", res.Rows)
	}
	// Render round-trip includes OFFSET.
	stmt, err := Parse("SELECT name FROM employees LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.Render(), "OFFSET 1") {
		t.Errorf("render = %q", stmt.Render())
	}
	if _, err := Parse("SELECT name FROM employees OFFSET x"); err == nil {
		t.Error("bad OFFSET must error")
	}
	if _, err := Parse("SELECT name FROM employees OFFSET -1"); err == nil {
		t.Error("negative OFFSET must error")
	}
}
