package sqldb

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/reliable-cda/cda/internal/storage"
)

// e7StreamQuery is the E7-shaped workload: join + filter + grouped
// aggregation + ordering, the pipeline the ablation bench exercises.
const e7StreamQuery = "SELECT f.grp, d.label, COUNT(*) AS n, AVG(f.v) AS av " +
	"FROM facts f JOIN dims d ON f.k = d.k WHERE f.v > 30 " +
	"GROUP BY f.grp, d.label ORDER BY f.grp, d.label"

func collectStream(t *testing.T, e *Engine, ctx context.Context, q string, opts StreamOptions) ([]Partial, error) {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	var parts []Partial
	serr := e.ExecStream(ctx, stmt, opts, func(p Partial) error {
		parts = append(parts, p)
		return nil
	})
	return parts, serr
}

// TestExecStreamTightensAndConverges: the stream must emit at least
// two snapshots on the E7 workload, completeness must be
// non-decreasing and end at 1 with Done set, and the final snapshot
// must be byte-identical to Execute — Rows, Prov, Stats, Fingerprint.
func TestExecStreamTightensAndConverges(t *testing.T) {
	db := genJoinDB(4000, 200, 7)
	e := NewEngine(db)
	stmt, err := Parse(e7StreamQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	parts, serr := collectStream(t, e, context.Background(), e7StreamQuery, StreamOptions{})
	if serr != nil {
		t.Fatalf("ExecStream: %v", serr)
	}
	if len(parts) < 2 {
		t.Fatalf("expected >= 2 partial snapshots, got %d", len(parts))
	}
	last := -1.0
	for i, p := range parts {
		if p.Completeness < last {
			t.Fatalf("snapshot %d: completeness %v < previous %v", i, p.Completeness, last)
		}
		last = p.Completeness
		if p.Done != (i == len(parts)-1) {
			t.Fatalf("snapshot %d: Done=%v misplaced", i, p.Done)
		}
		if p.Result == nil {
			t.Fatalf("snapshot %d: nil result", i)
		}
	}
	if last != 1.0 {
		t.Fatalf("final completeness %v, want 1", last)
	}
	final := parts[len(parts)-1].Result
	if final.Fingerprint() != want.Fingerprint() {
		t.Fatal("final snapshot fingerprint differs from Execute")
	}
	if !reflect.DeepEqual(final.Rows, want.Rows) {
		t.Fatal("final snapshot rows differ from Execute")
	}
	if !reflect.DeepEqual(final.Prov, want.Prov) {
		t.Fatal("final snapshot provenance differs from Execute")
	}
	if final.Stats != want.Stats {
		t.Fatalf("final snapshot stats %+v, want %+v", final.Stats, want.Stats)
	}
}

// TestExecStreamPartialsAreExactPrefixAnswers: each snapshot must be
// the exact answer to the query restricted to the driving-table prefix
// consumed so far — not an approximation.
func TestExecStreamPartialsAreExactPrefixAnswers(t *testing.T) {
	db := genJoinDB(1000, 50, 3)
	e := NewEngine(db)
	const batch = 250
	parts, serr := collectStream(t, e, context.Background(), e7StreamQuery, StreamOptions{BatchRows: batch})
	if serr != nil {
		t.Fatal(serr)
	}
	if len(parts) != 4 {
		t.Fatalf("expected 4 snapshots at BatchRows=%d over 1000 rows, got %d", batch, len(parts))
	}
	// Reproduce each prefix answer with a prefix copy of the driving
	// table and a plain Execute.
	facts, err := db.Get("facts")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		hi := (i + 1) * batch
		pdb := storage.NewDatabase("prefix")
		pt := storage.NewTable("facts", facts.Schema())
		for r := 0; r < hi; r++ {
			pt.MustAppendRow(facts.Row(r)...)
		}
		pdb.Put(pt)
		dims, err := db.Get("dims")
		if err != nil {
			t.Fatal(err)
		}
		pdb.Put(dims)
		pe := NewEngine(pdb)
		want, err := pe.Query(e7StreamQuery)
		if err != nil {
			t.Fatal(err)
		}
		if p.Result.Fingerprint() != want.Fingerprint() {
			t.Fatalf("snapshot %d is not the exact prefix answer", i)
		}
		if !reflect.DeepEqual(p.Result.Rows, want.Rows) {
			t.Fatalf("snapshot %d rows differ from prefix answer", i)
		}
	}
}

// TestExecStreamCancellation: cancelling the context mid-stream stops
// the feed with ctx.Err() before the Done snapshot arrives.
func TestExecStreamCancellation(t *testing.T) {
	db := genJoinDB(4000, 200, 7)
	e := NewEngine(db)
	stmt, err := Parse(e7StreamQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var parts []Partial
	serr := e.ExecStream(ctx, stmt, StreamOptions{BatchRows: 500}, func(p Partial) error {
		parts = append(parts, p)
		if len(parts) == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(serr, context.Canceled) {
		t.Fatalf("ExecStream error = %v, want context.Canceled", serr)
	}
	if len(parts) != 2 {
		t.Fatalf("expected exactly 2 snapshots before cancellation, got %d", len(parts))
	}
	for _, p := range parts {
		if p.Done {
			t.Fatal("cancelled stream must not emit a Done snapshot")
		}
		if p.Completeness >= 1 {
			t.Fatalf("cancelled stream completeness %v, want < 1", p.Completeness)
		}
	}
}

// TestExecStreamEmitError: a consumer error aborts the stream and is
// returned verbatim.
func TestExecStreamEmitError(t *testing.T) {
	db := genJoinDB(2000, 100, 5)
	e := NewEngine(db)
	stmt, err := Parse("SELECT grp, COUNT(*) FROM facts GROUP BY grp ORDER BY grp")
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("consumer full")
	calls := 0
	serr := e.ExecStream(context.Background(), stmt, StreamOptions{BatchRows: 100}, func(Partial) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(serr, sentinel) {
		t.Fatalf("ExecStream error = %v, want sentinel", serr)
	}
	if calls != 3 {
		t.Fatalf("emit called %d times, want 3", calls)
	}
}

// TestExecStreamEmptyTable: an empty driving table still emits exactly
// one complete, Done snapshot.
func TestExecStreamEmptyTable(t *testing.T) {
	db := storage.NewDatabase("empty")
	tb := storage.NewTable("facts", storage.Schema{
		{Name: "k", Kind: storage.KindInt},
		{Name: "v", Kind: storage.KindFloat},
		{Name: "grp", Kind: storage.KindString},
	})
	db.Put(tb)
	e := NewEngine(db)
	parts, serr := collectStream(t, e, context.Background(),
		"SELECT grp, COUNT(*) FROM facts GROUP BY grp", StreamOptions{})
	if serr != nil {
		t.Fatal(serr)
	}
	if len(parts) != 1 || !parts[0].Done || parts[0].Completeness != 1 {
		t.Fatalf("empty table: got %+v, want one Done snapshot at completeness 1", parts)
	}
	if len(parts[0].Result.Rows) != 0 {
		t.Fatalf("empty table produced rows: %v", parts[0].Result.Rows)
	}
}

// TestExecStreamMatchesExecuteAcrossBatchSizes: the final snapshot is
// invariant to the batch size, including degenerate single-row
// batches.
func TestExecStreamMatchesExecuteAcrossBatchSizes(t *testing.T) {
	db := genJoinDB(500, 40, 9)
	e := NewEngine(db)
	for _, q := range parallelPropQueries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.Execute(stmt)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		for _, batch := range []int{1, 7, 100, 500, 10000} {
			parts, serr := collectStream(t, e, context.Background(), q, StreamOptions{BatchRows: batch})
			if serr != nil {
				t.Fatalf("%q batch=%d: %v", q, batch, serr)
			}
			final := parts[len(parts)-1]
			if !final.Done {
				t.Fatalf("%q batch=%d: last snapshot not Done", q, batch)
			}
			if final.Result.Fingerprint() != want.Fingerprint() ||
				!reflect.DeepEqual(final.Result.Rows, want.Rows) ||
				!reflect.DeepEqual(final.Result.Prov, want.Prov) ||
				final.Result.Stats != want.Stats {
				t.Fatalf("%q batch=%d: final snapshot diverges from Execute", q, batch)
			}
		}
	}
}
