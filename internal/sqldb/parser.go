package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/reliable-cda/cda/internal/storage"
)

// Parse compiles a SELECT statement from SQL text.
func Parse(query string) (*SelectStmt, error) {
	toks, err := Lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{query: query, toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().Type == TokSymbol && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Type != TokEOF {
		return nil, errAt(query, p.peek().Pos, "unexpected trailing input")
	}
	return stmt, nil
}

type parser struct {
	query string
	toks  []Token
	pos   int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().Type == TokKeyword && p.peek().Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errAt(p.query, p.peek().Pos, "expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.peek().Type == TokSymbol && p.peek().Text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return errAt(p.query, p.peek().Pos, "expected %q", s)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	// Projections.
	if p.peek().Type == TokSymbol && p.peek().Text == "*" {
		p.next()
		stmt.SelStar = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				if p.peek().Type != TokIdent {
					return nil, errAt(p.query, p.peek().Pos, "expected alias after AS")
				}
				item.Alias = p.next().Text
			} else if p.peek().Type == TokIdent {
				// Bare alias: SELECT salary s FROM ...
				item.Alias = p.next().Text
			}
			stmt.Items = append(stmt.Items, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.peek().Type != TokIdent {
		return nil, errAt(p.query, p.peek().Pos, "expected table name")
	}
	stmt.From = p.next().Text
	if p.peek().Type == TokIdent {
		stmt.FromAl = p.next().Text
	} else {
		stmt.FromAl = stmt.From
	}

	// Joins.
	for {
		left := false
		if p.acceptKeyword("INNER") {
			// INNER JOIN
		} else if p.acceptKeyword("LEFT") {
			left = true
		}
		if !p.acceptKeyword("JOIN") {
			if left {
				return nil, errAt(p.query, p.peek().Pos, "expected JOIN after LEFT")
			}
			break
		}
		if p.peek().Type != TokIdent {
			return nil, errAt(p.query, p.peek().Pos, "expected table name after JOIN")
		}
		jc := JoinClause{Table: p.next().Text}
		if p.peek().Type == TokIdent {
			jc.Alias = p.next().Text
		} else {
			jc.Alias = jc.Table
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		jc.On = on
		if left {
			stmt.Warnings = append(stmt.Warnings, "LEFT JOIN executed with inner-join semantics")
		}
		stmt.Joins = append(stmt.Joins, jc)
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, oi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.peek().Type != TokNumber {
			return nil, errAt(p.query, p.peek().Pos, "expected number after LIMIT")
		}
		t := p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, errAt(p.query, t.Pos, "invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		if p.peek().Type != TokNumber {
			return nil, errAt(p.query, p.peek().Pos, "expected number after OFFSET")
		}
		t := p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, errAt(p.query, t.Pos, "invalid OFFSET %q", t.Text)
		}
		stmt.Offset = n
	}
	return stmt, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     := orExpr
//	orExpr   := andExpr { OR andExpr }
//	andExpr  := notExpr { AND notExpr }
//	notExpr  := NOT notExpr | predicate
//	predicate:= additive [ compOp additive | IN (...) | LIKE additive
//	             | BETWEEN additive AND additive | IS [NOT] NULL ]
//	additive := term { (+|-) term }
//	term     := factor { (*|/|%) factor }
//	factor   := - factor | primary
//	primary  := literal | funcCall | columnRef | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	if p.peek().Type == TokSymbol {
		switch p.peek().Text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			op := p.next().Text
			if op == "<>" {
				op = "!="
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	not := false
	if p.peek().Type == TokKeyword && p.peek().Text == "NOT" {
		// Lookahead for NOT IN / NOT LIKE / NOT BETWEEN.
		if p.pos+1 < len(p.toks) {
			nt := p.toks[p.pos+1]
			if nt.Type == TokKeyword && (nt.Text == "IN" || nt.Text == "LIKE" || nt.Text == "BETWEEN") {
				p.next()
				not = true
			}
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := Expr(&BinaryExpr{Op: "LIKE", Left: left, Right: right})
		if not {
			like = &UnaryExpr{Op: "NOT", Expr: like}
		}
		return like, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Not: isNot}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().Type == TokSymbol && (p.peek().Text == "+" || p.peek().Text == "-") {
		op := p.next().Text
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().Type == TokSymbol && (p.peek().Text == "*" || p.peek().Text == "/" || p.peek().Text == "%") {
		op := p.next().Text
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Expr, error) {
	if p.peek().Type == TokSymbol && p.peek().Text == "-" {
		p.next()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately.
		if lit, ok := e.(*Literal); ok {
			switch lit.Val.Kind {
			case storage.KindInt:
				return &Literal{Val: storage.Int(-lit.Val.I)}, nil
			case storage.KindFloat:
				return &Literal{Val: storage.Float(-lit.Val.F)}, nil
			}
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

var aggregateNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// scalarNames are the supported scalar functions; they lex as plain
// identifiers and are recognized by the following '('.
var scalarNames = map[string]bool{
	"LOWER": true, "UPPER": true, "LENGTH": true,
	"ABS": true, "ROUND": true, "COALESCE": true,
}

func validateScalarArity(se *ScalarExpr) error {
	n := len(se.Args)
	switch se.Name {
	case "LOWER", "UPPER", "LENGTH", "ABS":
		if n != 1 {
			return fmt.Errorf("%s takes exactly 1 argument, got %d", se.Name, n)
		}
	case "ROUND":
		if n != 1 && n != 2 {
			return fmt.Errorf("ROUND takes 1 or 2 arguments, got %d", n)
		}
	case "COALESCE":
		if n < 1 {
			return fmt.Errorf("COALESCE needs at least 1 argument")
		}
	}
	return nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Type {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, errAt(p.query, t.Pos, "invalid number %q", t.Text)
			}
			return &Literal{Val: storage.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(p.query, t.Pos, "invalid number %q", t.Text)
		}
		return &Literal{Val: storage.Int(i)}, nil
	case TokString:
		p.next()
		return &Literal{Val: storage.Str(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Val: storage.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: storage.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: storage.Bool(false)}, nil
		}
		if aggregateNames[t.Text] {
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			fe := &FuncExpr{Name: t.Text}
			fe.Distinct = p.acceptKeyword("DISTINCT")
			if p.peek().Type == TokSymbol && p.peek().Text == "*" {
				if t.Text != "COUNT" {
					return nil, errAt(p.query, p.peek().Pos, "%s(*) is not valid", t.Text)
				}
				p.next()
				fe.Arg = &Star{}
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fe.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fe, nil
		}
		return nil, errAt(p.query, t.Pos, "unexpected keyword %s", t.Text)
	case TokIdent:
		p.next()
		name := t.Text
		if scalarNames[strings.ToUpper(name)] && p.peek().Type == TokSymbol && p.peek().Text == "(" {
			p.next() // consume "("
			se := &ScalarExpr{Name: strings.ToUpper(name)}
			if !p.acceptSymbol(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					se.Args = append(se.Args, arg)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			if err := validateScalarArity(se); err != nil {
				return nil, errAt(p.query, t.Pos, "%v", err)
			}
			return se, nil
		}
		if p.acceptSymbol(".") {
			if p.peek().Type == TokSymbol && p.peek().Text == "*" {
				// table.* is only meaningful at the projection level; we
				// reject it in expressions for simplicity.
				return nil, errAt(p.query, p.peek().Pos, "qualified * is not supported in expressions")
			}
			if p.peek().Type != TokIdent {
				return nil, errAt(p.query, p.peek().Pos, "expected column after %q.", name)
			}
			col := p.next().Text
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errAt(p.query, t.Pos, "unexpected token %q", t.Text)
}
