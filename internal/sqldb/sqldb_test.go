package sqldb

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/reliable-cda/cda/internal/storage"
)

func testDB(t testing.TB) *storage.Database {
	t.Helper()
	db := storage.NewDatabase("hr")
	emp := storage.NewTable("employees", storage.Schema{
		{Name: "id", Kind: storage.KindInt},
		{Name: "name", Kind: storage.KindString},
		{Name: "dept_id", Kind: storage.KindInt},
		{Name: "salary", Kind: storage.KindFloat},
		{Name: "senior", Kind: storage.KindBool},
	})
	emp.MustAppendRow(storage.Int(1), storage.Str("Ada"), storage.Int(10), storage.Float(120), storage.Bool(true))
	emp.MustAppendRow(storage.Int(2), storage.Str("Bob"), storage.Int(10), storage.Float(90), storage.Bool(false))
	emp.MustAppendRow(storage.Int(3), storage.Str("Cleo"), storage.Int(20), storage.Float(100), storage.Bool(true))
	emp.MustAppendRow(storage.Int(4), storage.Str("Dan"), storage.Int(20), storage.Float(80), storage.Bool(false))
	emp.MustAppendRow(storage.Int(5), storage.Str("Eve"), storage.Int(30), storage.Null(), storage.Bool(false))
	db.Put(emp)

	dept := storage.NewTable("departments", storage.Schema{
		{Name: "id", Kind: storage.KindInt},
		{Name: "dname", Kind: storage.KindString},
	})
	dept.MustAppendRow(storage.Int(10), storage.Str("Engineering"))
	dept.MustAppendRow(storage.Int(20), storage.Str("Sales"))
	dept.MustAppendRow(storage.Int(30), storage.Str("HR"))
	db.Put(dept)
	return db
}

func mustQuery(t testing.TB, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t WHERE x >= 1.5e2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenType
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Type)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", "FROM", "t", "WHERE", "x", ">=", "1.5e2", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != TokString {
		t.Error("escaped string not lexed as string")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string must error")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("bad character must error")
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM employees",
		"SELECT name, salary FROM employees WHERE (salary > 85) ORDER BY salary DESC LIMIT 2",
		"SELECT DISTINCT dept_id FROM employees",
		"SELECT dept_id, COUNT(*) AS n FROM employees GROUP BY dept_id HAVING (COUNT(*) > 1)",
		"SELECT e.name, d.dname FROM employees e JOIN departments d ON (e.dept_id = d.id)",
		"SELECT name FROM employees WHERE (name LIKE 'A%')",
		"SELECT name FROM employees WHERE (dept_id IN (10, 20))",
		"SELECT name FROM employees WHERE (salary BETWEEN 80 AND 100)",
		"SELECT name FROM employees WHERE (salary IS NULL)",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		// Render must re-parse to an identical render (fixpoint).
		r1 := stmt.Render()
		stmt2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", r1, err)
		}
		if r2 := stmt2.Render(); r1 != r2 {
			t.Errorf("render not a fixpoint:\n  %s\n  %s", r1, r2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM employees",
		"SELECT FROM employees",
		"SELECT * employees",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT -1",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t GROUP",
		"SELECT * FROM t ORDER salary",
		"SELECT * FROM t trailing garbage here",
		"SELECT a FROM t WHERE a IN 1",
		"SELECT a FROM t JOIN",
		"SELECT a FROM t JOIN u",
		"SELECT a.b.c FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestSelectStar(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT * FROM employees")
	if len(res.Rows) != 5 || len(res.Columns) != 5 {
		t.Fatalf("shape = %dx%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Row provenance: each output row traces to exactly its base row.
	for i, p := range res.Prov {
		if len(p) != 1 || p[0].Table != "employees" || p[0].Row != i {
			t.Errorf("prov[%d] = %v", i, p)
		}
	}
}

func TestWhereFilter(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name FROM employees WHERE salary > 85 AND senior = TRUE")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	got := []string{res.Rows[0][0].S, res.Rows[1][0].S}
	if got[0] != "Ada" || got[1] != "Cleo" {
		t.Errorf("names = %v", got)
	}
}

func TestWhereNullSemantics(t *testing.T) {
	e := NewEngine(testDB(t))
	// Eve has NULL salary: excluded by both predicates and their negation.
	r1 := mustQuery(t, e, "SELECT name FROM employees WHERE salary > 0")
	r2 := mustQuery(t, e, "SELECT name FROM employees WHERE NOT (salary > 0)")
	if len(r1.Rows)+len(r2.Rows) != 4 {
		t.Errorf("NULL row leaked into %d+%d rows", len(r1.Rows), len(r2.Rows))
	}
	r3 := mustQuery(t, e, "SELECT name FROM employees WHERE salary IS NULL")
	if len(r3.Rows) != 1 || r3.Rows[0][0].S != "Eve" {
		t.Errorf("IS NULL = %v", r3.Rows)
	}
}

func TestArithmeticAndAliases(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name, salary * 2 AS double_pay FROM employees WHERE id = 1")
	if res.Columns[1] != "double_pay" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].F != 240 {
		t.Errorf("double_pay = %v", res.Rows[0][1])
	}
}

func TestIntegerDivisionPromotes(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT id / 2 FROM employees WHERE id = 3")
	if res.Rows[0][0].Kind != storage.KindFloat || res.Rows[0][0].F != 1.5 {
		t.Errorf("3/2 = %v", res.Rows[0][0])
	}
}

func TestDivisionByZero(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Query("SELECT salary / 0 FROM employees"); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := e.Query("SELECT id % 0 FROM employees"); err == nil {
		t.Error("modulo by zero must error")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name, salary FROM employees WHERE salary IS NOT NULL ORDER BY salary DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Ada" || res.Rows[1][0].S != "Cleo" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name, salary * -1 AS neg FROM employees WHERE salary IS NOT NULL ORDER BY neg")
	if res.Rows[0][0].S != "Ada" {
		t.Errorf("order-by-alias first row = %v", res.Rows[0])
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT dept_id, name FROM employees ORDER BY dept_id ASC, name DESC")
	if res.Rows[0][1].S != "Bob" || res.Rows[1][1].S != "Ada" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT DISTINCT dept_id FROM employees ORDER BY dept_id")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Provenance of the merged dept 10 row covers both employees.
	if len(res.Prov[0]) != 2 {
		t.Errorf("merged provenance = %v", res.Prov[0])
	}
}

func TestAggregatesNoGroup(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT COUNT(*), COUNT(salary), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM employees")
	row := res.Rows[0]
	if row[0].I != 5 || row[1].I != 4 {
		t.Errorf("counts = %v %v", row[0], row[1])
	}
	if row[2].F != 390 || row[3].F != 97.5 || row[4].F != 80 || row[5].F != 120 {
		t.Errorf("aggs = %v", row)
	}
	// Group provenance covers all five base rows.
	if len(res.Prov[0]) != 5 {
		t.Errorf("agg provenance = %v", res.Prov[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT dept_id, COUNT(*) AS n, AVG(salary) AS pay FROM employees GROUP BY dept_id HAVING COUNT(*) > 1 ORDER BY dept_id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 10 || res.Rows[0][1].I != 2 || res.Rows[0][2].F != 105 {
		t.Errorf("group 10 = %v", res.Rows[0])
	}
	if res.Rows[1][0].I != 20 || res.Rows[1][2].F != 90 {
		t.Errorf("group 20 = %v", res.Rows[1])
	}
}

func TestGroupValidation(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Query("SELECT name, COUNT(*) FROM employees GROUP BY dept_id"); err == nil {
		t.Error("non-grouped column must be rejected")
	}
	if _, err := e.Query("SELECT COUNT(*) FROM employees WHERE COUNT(*) > 1"); err == nil {
		t.Error("aggregate in WHERE must be rejected")
	}
	if _, err := e.Query("SELECT * FROM employees GROUP BY dept_id"); err == nil {
		t.Error("SELECT * with GROUP BY must be rejected")
	}
}

func TestAggregateExpression(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT SUM(salary) / COUNT(salary) FROM employees")
	if res.Rows[0][0].F != 97.5 {
		t.Errorf("sum/count = %v", res.Rows[0][0])
	}
}

func TestCountDistinct(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT COUNT(DISTINCT dept_id) FROM employees")
	if res.Rows[0][0].I != 3 {
		t.Errorf("count distinct = %v", res.Rows[0][0])
	}
}

func TestJoin(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT e.name, d.dname FROM employees e JOIN departments d ON e.dept_id = d.id WHERE d.dname = 'Engineering' ORDER BY e.name")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "Ada" || res.Rows[0][1].S != "Engineering" {
		t.Errorf("row = %v", res.Rows[0])
	}
	// Join provenance: one ref per joined table.
	for _, p := range res.Prov {
		tables := map[string]bool{}
		for _, r := range p {
			tables[r.Table] = true
		}
		if !tables["employees"] || !tables["departments"] {
			t.Errorf("join provenance = %v", p)
		}
	}
}

func TestJoinGroupBy(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT d.dname, COUNT(*) AS n FROM employees e JOIN departments d ON e.dept_id = d.id GROUP BY d.dname ORDER BY d.dname")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "Engineering" || res.Rows[0][1].I != 2 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestLike(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name FROM employees WHERE name LIKE '%e%' ORDER BY name")
	// Cleo, Eve (case-insensitive; Ada has no e... Cleo yes, Eve yes).
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Cleo" || res.Rows[1][0].S != "Eve" {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT name FROM employees WHERE name LIKE '_ob'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Bob" {
		t.Errorf("underscore match = %v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT name FROM employees WHERE name NOT LIKE '%a%'")
	// Not containing a/A: Bob, Cleo, Eve.
	if len(res.Rows) != 3 {
		t.Errorf("not-like rows = %v", res.Rows)
	}
}

func TestInAndBetween(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name FROM employees WHERE dept_id IN (10, 30) ORDER BY name")
	if len(res.Rows) != 3 {
		t.Errorf("in rows = %v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT name FROM employees WHERE dept_id NOT IN (10, 30) ORDER BY name")
	if len(res.Rows) != 2 {
		t.Errorf("not-in rows = %v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT name FROM employees WHERE salary BETWEEN 90 AND 110 ORDER BY name")
	if len(res.Rows) != 2 {
		t.Errorf("between rows = %v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT name FROM employees WHERE salary NOT BETWEEN 90 AND 110")
	if len(res.Rows) != 2 { // Ada 120, Dan 80 (Eve NULL excluded)
		t.Errorf("not-between rows = %v", res.Rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Query("SELECT id FROM employees e JOIN departments d ON e.dept_id = d.id"); err == nil {
		t.Error("ambiguous id must error")
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Query("SELECT * FROM missing"); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := e.Query("SELECT missing FROM employees"); err == nil {
		t.Error("unknown column must error")
	}
}

func TestStringConcat(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name + '!' FROM employees WHERE id = 1")
	if res.Rows[0][0].S != "Ada!" {
		t.Errorf("concat = %v", res.Rows[0][0])
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	e := NewEngine(testDB(t))
	a := mustQuery(t, e, "SELECT name FROM employees ORDER BY name")
	b := mustQuery(t, e, "SELECT name FROM employees ORDER BY salary")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint must ignore row order")
	}
	c := mustQuery(t, e, "SELECT name FROM employees WHERE id > 1")
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different result sets must differ")
	}
}

func TestProvenanceToggle(t *testing.T) {
	e := NewEngine(testDB(t))
	e.CaptureProvenance = false
	res := mustQuery(t, e, "SELECT name FROM employees WHERE salary > 85")
	if res.Prov != nil {
		t.Error("provenance captured while disabled")
	}
}

func TestStatsCounters(t *testing.T) {
	q := "SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.id"
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, q)
	if res.Stats.RowsScanned != 8 { // 5 + 3
		t.Errorf("scanned = %d", res.Stats.RowsScanned)
	}
	// The hash join only examines the 5 candidate matches.
	if res.Stats.RowsJoined != 5 || res.Stats.HashJoins != 1 {
		t.Errorf("joined = %d hashJoins = %d", res.Stats.RowsJoined, res.Stats.HashJoins)
	}
	if res.Stats.RowsOutput != 5 {
		t.Errorf("output = %d", res.Stats.RowsOutput)
	}
	// The naive plan examines the full cross product.
	naive := NewEngine(testDB(t))
	naive.DisableOptimizations = true
	res = mustQuery(t, naive, q)
	if res.Stats.RowsJoined != 15 || res.Stats.HashJoins != 0 {
		t.Errorf("naive joined = %d hashJoins = %d", res.Stats.RowsJoined, res.Stats.HashJoins)
	}
}

func TestLimitZero(t *testing.T) {
	e := NewEngine(testDB(t))
	res := mustQuery(t, e, "SELECT name FROM employees LIMIT 0")
	if len(res.Rows) != 0 {
		t.Errorf("limit 0 rows = %v", res.Rows)
	}
}

func TestLeftJoinWarning(t *testing.T) {
	stmt, err := Parse("SELECT e.name FROM employees e LEFT JOIN departments d ON e.dept_id = d.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Warnings) != 1 {
		t.Errorf("warnings = %v", stmt.Warnings)
	}
}

func TestLikeMatchTable(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"HELLO", "hello", true},
		{"ab", "a%b", true},
		{"ab", "_", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: LIKE with pattern == literal string (no wildcards) behaves
// as case-insensitive equality.
func TestLikeLiteralProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every result row's provenance is non-empty and references
// only existing base rows, for a family of generated filters.
func TestProvenanceSoundProperty(t *testing.T) {
	db := testDB(t)
	e := NewEngine(db)
	f := func(threshold uint8) bool {
		q := "SELECT name FROM employees WHERE id > " + storage.Int(int64(threshold%6)).String()
		res, err := e.Query(q)
		if err != nil {
			return false
		}
		emp, _ := db.Get("employees")
		for _, p := range res.Prov {
			if len(p) == 0 {
				return false
			}
			for _, r := range p {
				if r.Table != "employees" || r.Row < 0 || r.Row >= emp.NumRows() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: COUNT(*) equals the number of rows SELECT * returns under
// the same WHERE clause.
func TestCountMatchesRowsProperty(t *testing.T) {
	e := NewEngine(testDB(t))
	f := func(th uint8) bool {
		cond := " WHERE salary > " + storage.Int(int64(th)).String()
		all, err := e.Query("SELECT * FROM employees" + cond)
		if err != nil {
			return false
		}
		cnt, err := e.Query("SELECT COUNT(*) FROM employees" + cond)
		if err != nil {
			return false
		}
		return cnt.Rows[0][0].I == int64(len(all.Rows))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
