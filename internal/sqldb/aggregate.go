package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/storage"
)

// group collects the rows sharing one GROUP BY key tuple.
type group struct {
	key     []storage.Value
	rowIdxs []int
}

// executeAggregate handles SELECTs with aggregates and/or GROUP BY.
// With no GROUP BY the whole (filtered) relation forms one group.
// HAVING and ORDER BY expressions are evaluated in group scope, where
// aggregate calls compute over the group and plain column references
// must be group keys.
func (e *Engine) executeAggregate(stmt *SelectStmt, rel *relation) (*Result, error) {
	if stmt.SelStar {
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
	}
	// Validate: non-aggregate select items must appear in GROUP BY.
	for _, it := range stmt.Items {
		if err := validateGroupExpr(it.Expr, stmt.GroupBy); err != nil {
			return nil, err
		}
	}

	groups := buildGroups(stmt.GroupBy, rel)
	res := &Result{}
	for _, it := range stmt.Items {
		res.Columns = append(res.Columns, it.OutputName())
	}

	type keyed struct {
		row  []storage.Value
		prov []RowRef
		keys []storage.Value
	}
	orderExprs := e.orderExprs(stmt)
	var out []keyed
	for _, g := range groups {
		if stmt.Having != nil {
			hv, err := evalGroupExpr(stmt.Having, rel, g)
			if err != nil {
				return nil, err
			}
			if !isTrue(hv) {
				continue
			}
		}
		row := make([]storage.Value, len(stmt.Items))
		for j, it := range stmt.Items {
			v, err := evalGroupExpr(it.Expr, rel, g)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		k := keyed{row: row}
		if e.CaptureProvenance {
			k.prov = groupProvenance(rel, g)
		}
		for _, oe := range orderExprs {
			v, err := evalGroupExpr(oe, rel, g)
			if err != nil {
				return nil, err
			}
			k.keys = append(k.keys, v)
		}
		out = append(out, k)
	}
	if len(orderExprs) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			return compareKeySlices(out[i].keys, out[j].keys, stmt.OrderBy) < 0
		})
	}
	for _, k := range out {
		res.Rows = append(res.Rows, k.row)
		if e.CaptureProvenance {
			res.Prov = append(res.Prov, k.prov)
		}
	}
	return res, nil
}

// validateGroupExpr rejects select items that reference columns
// outside aggregates without those columns being GROUP BY keys.
func validateGroupExpr(e Expr, groupBy []Expr) error {
	switch x := e.(type) {
	case nil, *Literal, *Star:
		return nil
	case *FuncExpr:
		return nil // aggregates may reference anything
	case *ColumnRef:
		for _, g := range groupBy {
			if exprEqual(g, x) {
				return nil
			}
		}
		return fmt.Errorf("sql: column %q must appear in GROUP BY or inside an aggregate", x.Render())
	case *BinaryExpr:
		if err := validateGroupExpr(x.Left, groupBy); err != nil {
			return err
		}
		return validateGroupExpr(x.Right, groupBy)
	case *UnaryExpr:
		return validateGroupExpr(x.Expr, groupBy)
	case *InExpr:
		if err := validateGroupExpr(x.Expr, groupBy); err != nil {
			return err
		}
		for _, it := range x.List {
			if err := validateGroupExpr(it, groupBy); err != nil {
				return err
			}
		}
		return nil
	case *BetweenExpr:
		if err := validateGroupExpr(x.Expr, groupBy); err != nil {
			return err
		}
		if err := validateGroupExpr(x.Lo, groupBy); err != nil {
			return err
		}
		return validateGroupExpr(x.Hi, groupBy)
	case *IsNullExpr:
		return validateGroupExpr(x.Expr, groupBy)
	case *ScalarExpr:
		for _, a := range x.Args {
			if err := validateGroupExpr(a, groupBy); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("sql: unsupported expression %T in aggregate query", e)
	}
}

// exprEqual compares two expressions by canonical rendering, which is
// sound because Render is deterministic and fully parenthesized.
func exprEqual(a, b Expr) bool {
	return strings.EqualFold(a.Render(), b.Render())
}

func buildGroups(groupBy []Expr, rel *relation) []*group {
	if len(groupBy) == 0 {
		g := &group{}
		for i := range rel.rows {
			g.rowIdxs = append(g.rowIdxs, i)
		}
		return []*group{g}
	}
	index := make(map[string]*group)
	var order []*group
	for i, row := range rel.rows {
		key := make([]storage.Value, len(groupBy))
		parts := make([]string, len(groupBy))
		for j, ge := range groupBy {
			v, err := evalExpr(ge, rel, row)
			if err != nil {
				// Surface evaluation errors lazily via a sentinel group;
				// in practice GROUP BY keys are column refs validated
				// earlier, so treat errors as NULL keys.
				v = storage.Null()
			}
			key[j] = v
			parts[j] = v.Kind.String() + ":" + v.String()
		}
		ks := strings.Join(parts, "\x1f")
		g, ok := index[ks]
		if !ok {
			g = &group{key: key}
			index[ks] = g
			order = append(order, g)
		}
		g.rowIdxs = append(g.rowIdxs, i)
	}
	return order
}

func groupProvenance(rel *relation, g *group) []RowRef {
	var out []RowRef
	seen := make(map[RowRef]struct{})
	for _, i := range g.rowIdxs {
		for _, r := range rel.prov[i] {
			if _, ok := seen[r]; !ok {
				seen[r] = struct{}{}
				out = append(out, r)
			}
		}
	}
	return out
}

// evalGroupExpr evaluates an expression in group scope: FuncExpr nodes
// aggregate over the group's rows; everything else evaluates against
// the group's first row (valid because validation restricts bare
// columns to group keys, which are constant within a group).
func evalGroupExpr(e Expr, rel *relation, g *group) (storage.Value, error) {
	switch x := e.(type) {
	case *FuncExpr:
		return evalAggregate(x, rel, g)
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		if len(g.rowIdxs) == 0 {
			return storage.Null(), nil
		}
		return evalExpr(x, rel, rel.rows[g.rowIdxs[0]])
	case *BinaryExpr:
		// Rebuild with group-evaluated leaves: handle aggregates nested
		// in arithmetic, e.g. SUM(x)/COUNT(*).
		l, err := evalGroupExpr(x.Left, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		r, err := evalGroupExpr(x.Right, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		lit := &BinaryExpr{Op: x.Op, Left: &Literal{Val: l}, Right: &Literal{Val: r}}
		return evalExpr(lit, rel, nil)
	case *UnaryExpr:
		v, err := evalGroupExpr(x.Expr, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		return evalExpr(&UnaryExpr{Op: x.Op, Expr: &Literal{Val: v}}, rel, nil)
	case *InExpr:
		v, err := evalGroupExpr(x.Expr, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			iv, err := evalGroupExpr(it, rel, g)
			if err != nil {
				return storage.Null(), err
			}
			list[i] = &Literal{Val: iv}
		}
		return evalExpr(&InExpr{Expr: &Literal{Val: v}, List: list, Not: x.Not}, rel, nil)
	case *BetweenExpr:
		v, err := evalGroupExpr(x.Expr, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		lo, err := evalGroupExpr(x.Lo, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		hi, err := evalGroupExpr(x.Hi, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		return evalExpr(&BetweenExpr{
			Expr: &Literal{Val: v}, Lo: &Literal{Val: lo}, Hi: &Literal{Val: hi}, Not: x.Not,
		}, rel, nil)
	case *IsNullExpr:
		v, err := evalGroupExpr(x.Expr, rel, g)
		if err != nil {
			return storage.Null(), err
		}
		return storage.Bool(v.IsNull() != x.Not), nil
	case *ScalarExpr:
		args := make([]storage.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalGroupExpr(a, rel, g)
			if err != nil {
				return storage.Null(), err
			}
			args[i] = v
		}
		return evalScalar(x.Name, args)
	default:
		return storage.Null(), fmt.Errorf("sql: unsupported expression %T in group scope", e)
	}
}

func evalAggregate(f *FuncExpr, rel *relation, g *group) (storage.Value, error) {
	if _, isStar := f.Arg.(*Star); isStar {
		if f.Name != "COUNT" {
			return storage.Null(), fmt.Errorf("sql: %s(*) is not valid", f.Name)
		}
		return storage.Int(int64(len(g.rowIdxs))), nil
	}
	// Gather non-NULL argument values over the group.
	var vals []storage.Value
	for _, i := range g.rowIdxs {
		v, err := evalExpr(f.Arg, rel, rel.rows[i])
		if err != nil {
			return storage.Null(), err
		}
		if v.IsNull() {
			continue
		}
		vals = append(vals, v)
	}
	if f.Distinct {
		vals = dedupValues(vals)
	}
	return finishAggregate(f.Name, vals)
}

// dedupValues removes duplicate values in first-appearance order,
// keyed by kind-tagged rendering (the DISTINCT aggregate semantics).
func dedupValues(vals []storage.Value) []storage.Value {
	seen := make(map[string]struct{}, len(vals))
	dedup := vals[:0]
	for _, v := range vals {
		k := v.Kind.String() + ":" + v.String()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		dedup = append(dedup, v)
	}
	return dedup
}

// finishAggregate folds gathered non-NULL argument values. It is
// shared by the row and vectorized engines so accumulation order —
// float summation order, MIN/MAX comparison order — is one piece of
// code, not two that could drift.
func finishAggregate(name string, vals []storage.Value) (storage.Value, error) {
	switch name {
	case "COUNT":
		return storage.Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return storage.Null(), nil
		}
		var sum float64
		allInt := true
		for _, v := range vals {
			fv, ok := v.AsFloat()
			if !ok || v.Kind == storage.KindString || v.Kind == storage.KindBool {
				return storage.Null(), fmt.Errorf("sql: %s over non-numeric value %s", name, v.Kind)
			}
			if v.Kind != storage.KindInt {
				allInt = false
			}
			sum += fv
		}
		if name == "AVG" {
			return storage.Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return storage.Int(int64(sum)), nil
		}
		return storage.Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return storage.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := v.Compare(best)
			if err != nil {
				return storage.Null(), err
			}
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return storage.Null(), fmt.Errorf("sql: unknown aggregate %s", name)
	}
}
