package sqldb_test

import (
	"fmt"

	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
)

func Example() {
	// Build a table, run a query, inspect the rows AND the provenance.
	t := storage.NewTable("cities", storage.Schema{
		{Name: "name", Kind: storage.KindString},
		{Name: "country", Kind: storage.KindString},
		{Name: "pop", Kind: storage.KindInt},
	})
	t.MustAppendRow(storage.Str("Zurich"), storage.Str("CH"), storage.Int(434008))
	t.MustAppendRow(storage.Str("Geneva"), storage.Str("CH"), storage.Int(203856))
	t.MustAppendRow(storage.Str("Lyon"), storage.Str("FR"), storage.Int(522969))
	db := storage.NewDatabase("demo")
	db.Put(t)

	eng := sqldb.NewEngine(db)
	res, err := eng.Query("SELECT country, COUNT(*) AS n FROM cities GROUP BY country ORDER BY country")
	if err != nil {
		panic(err)
	}
	for i, row := range res.Rows {
		fmt.Printf("%s: %s (from %d base rows)\n", row[0], row[1], len(res.Prov[i]))
	}
	// Output:
	// CH: 2 (from 2 base rows)
	// FR: 1 (from 1 base rows)
}

func ExampleParse() {
	stmt, err := sqldb.Parse("select name from cities where pop > 400000 limit 1")
	if err != nil {
		panic(err)
	}
	fmt.Println(stmt.Render())
	// Output:
	// SELECT name FROM cities WHERE (pop > 400000) LIMIT 1
}
