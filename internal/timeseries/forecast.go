package timeseries

import (
	"fmt"
	"math"
)

// Forecast is a point prediction with a central prediction interval —
// analytics answers carry explicit uncertainty (P4) rather than bare
// numbers.
type Forecast struct {
	// Horizon steps ahead, 1-based.
	Values []float64
	Lower  []float64
	Upper  []float64
	// Level is the nominal coverage of [Lower, Upper] (e.g. 0.9).
	Level float64
	// Method names the model used ("seasonal-naive+drift" or
	// "naive+drift" when no seasonality was found).
	Method string
}

// ForecastSeries predicts `horizon` future points with a
// seasonal-naive-plus-drift model: the last observed seasonal cycle
// repeats, shifted by the fitted linear trend. Prediction intervals
// come from the in-sample one-step residual spread, widened with the
// square root of the lead time (random-walk error growth). period 0
// (or 1) selects the non-seasonal naive+drift model.
func ForecastSeries(xs []float64, period, horizon int, level float64) (*Forecast, error) {
	n := len(xs)
	if horizon < 1 {
		return nil, fmt.Errorf("timeseries: horizon must be >= 1")
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("timeseries: level must be in (0,1)")
	}
	if period > 1 && n < 2*period {
		return nil, ErrInsufficient
	}
	if n < 4 {
		return nil, ErrInsufficient
	}
	slope, _ := olsLine(xs)

	predict := func(step int) float64 {
		if period > 1 {
			// Last full cycle value at the same phase, plus drift.
			idx := n - period + ((step - 1) % period)
			cycles := float64((step-1)/period + 1)
			return xs[idx] + slope*float64(period)*cycles
		}
		return xs[n-1] + slope*float64(step)
	}

	// In-sample one-step residuals of the same rule.
	var resid []float64
	start := 1
	if period > 1 {
		start = period
	}
	for i := start; i < n; i++ {
		var fit float64
		if period > 1 {
			fit = xs[i-period] + slope*float64(period)
		} else {
			fit = xs[i-1] + slope
		}
		resid = append(resid, xs[i]-fit)
	}
	sd := math.Sqrt(Variance(resid))
	if sd == 0 {
		sd = 1e-9
	}
	z := stdNormalQuantile(0.5 + level/2)

	f := &Forecast{Level: level, Method: "seasonal-naive+drift"}
	if period <= 1 {
		f.Method = "naive+drift"
	}
	for h := 1; h <= horizon; h++ {
		v := predict(h)
		var lead float64
		if period > 1 {
			lead = float64((h-1)/period + 1)
		} else {
			lead = float64(h)
		}
		half := z * sd * math.Sqrt(lead)
		f.Values = append(f.Values, v)
		f.Lower = append(f.Lower, v-half)
		f.Upper = append(f.Upper, v+half)
	}
	return f, nil
}

// stdNormalQuantile inverts the standard normal CDF with a bisection
// on Erf — precise enough for interval construction and dependency
// free.
func stdNormalQuantile(p float64) float64 {
	lo, hi := -10.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if stdNormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Anomaly is one point flagged by residual analysis.
type Anomaly struct {
	Index int
	Value float64
	// Z is the residual's standard score.
	Z float64
}

// DetectAnomalies decomposes the series at the period and flags
// points whose residual exceeds `threshold` standard deviations —
// "uncovering unexpected patterns" with an auditable criterion.
// period <= 1 uses detrended-only residuals.
func DetectAnomalies(xs []float64, period int, threshold float64) ([]Anomaly, error) {
	if threshold <= 0 {
		threshold = 3
	}
	var resid []float64
	var idx []int
	if period > 1 {
		dec, err := Decompose(xs, period)
		if err != nil {
			return nil, err
		}
		for i, r := range dec.Residual {
			if math.IsNaN(r) {
				continue
			}
			resid = append(resid, r)
			idx = append(idx, i)
		}
	} else {
		if len(xs) < 4 {
			return nil, ErrInsufficient
		}
		d := detrendLinear(xs)
		for i, r := range d {
			resid = append(resid, r)
			idx = append(idx, i)
		}
	}
	sd := math.Sqrt(Variance(resid))
	if sd == 0 {
		return nil, nil
	}
	m := Mean(resid)
	var out []Anomaly
	for j, r := range resid {
		z := (r - m) / sd
		if math.Abs(z) >= threshold {
			out = append(out, Anomaly{Index: idx[j], Value: xs[idx[j]], Z: z})
		}
	}
	return out, nil
}
