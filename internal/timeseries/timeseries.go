// Package timeseries implements the analytical routines the Figure 1
// dialogue exercises: trend extraction, seasonality detection with a
// confidence score, classical additive decomposition, and
// data-sufficiency checks ("I am only reporting data for the last 10
// years since there is no sufficient data earlier").
//
// Every analysis returns both a result and an explicit quantification
// of how trustworthy it is, in line with P4 (Soundness): seasonality
// detection reports the seasonal-strength confidence, trend detection
// reports a t-statistic-based confidence, and callers are expected to
// abstain when confidence is low.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficient is returned when a series is too short for the
// requested analysis.
var ErrInsufficient = errors.New("timeseries: insufficient data")

// MinPointsPerPeriod is the minimum number of full cycles required
// before a seasonality estimate is considered meaningful.
const MinPointsPerPeriod = 2

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than 2 points).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// MovingAverage returns the centered moving average with the given
// window. For even windows it uses the standard 2×MA convention.
// Edges where the window does not fit are NaN.
func MovingAverage(xs []float64, window int) ([]float64, error) {
	if window < 2 {
		return nil, fmt.Errorf("timeseries: window must be >= 2, got %d", window)
	}
	if len(xs) < window+1 {
		return nil, ErrInsufficient
	}
	n := len(xs)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	if window%2 == 1 {
		half := window / 2
		for i := half; i < n-half; i++ {
			var s float64
			for j := i - half; j <= i+half; j++ {
				s += xs[j]
			}
			out[i] = s / float64(window)
		}
		return out, nil
	}
	// Even window: average of two adjacent window means (2×MA).
	half := window / 2
	for i := half; i < n-half; i++ {
		var s float64
		// Weighted: endpoints half weight.
		s += xs[i-half] / 2
		s += xs[i+half] / 2
		for j := i - half + 1; j <= i+half-1; j++ {
			s += xs[j]
		}
		out[i] = s / float64(window)
	}
	return out, nil
}

// ACF returns autocorrelations for lags 1..maxLag.
func ACF(xs []float64, maxLag int) ([]float64, error) {
	n := len(xs)
	if maxLag < 1 {
		return nil, fmt.Errorf("timeseries: maxLag must be >= 1")
	}
	if n < maxLag+2 {
		return nil, ErrInsufficient
	}
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	out := make([]float64, maxLag)
	if denom == 0 {
		return out, nil // constant series: zero autocorrelation by convention
	}
	for lag := 1; lag <= maxLag; lag++ {
		var num float64
		for i := lag; i < n; i++ {
			num += (xs[i] - m) * (xs[i-lag] - m)
		}
		out[lag-1] = num / denom
	}
	return out, nil
}

// Seasonality is the outcome of seasonal-period detection.
type Seasonality struct {
	// Period is the detected seasonal period in samples (0 when no
	// significant seasonality was found).
	Period int
	// Confidence in [0,1] is the seasonal strength of the decomposition
	// at the detected period: 1 - Var(residual)/Var(detrended),
	// clipped at 0 (Hyndman's F_s). It is the number the Figure 1
	// dialogue reports ("confidence 90%").
	Confidence float64
	// ACFPeak is the autocorrelation at the detected period.
	ACFPeak float64
	// Significant reports whether the ACF peak clears the Bartlett
	// 95% significance band ±1.96/√n.
	Significant bool
}

// DetectSeasonality searches periods 2..maxPeriod for the strongest
// significant ACF peak and scores it with seasonal strength. It
// requires at least MinPointsPerPeriod full cycles of the candidate
// period within the series.
func DetectSeasonality(xs []float64, maxPeriod int) (*Seasonality, error) {
	n := len(xs)
	if maxPeriod < 2 {
		return nil, fmt.Errorf("timeseries: maxPeriod must be >= 2")
	}
	if n < 2*maxPeriod || n < 8 {
		return nil, ErrInsufficient
	}
	// Work on the detrended series so a strong trend does not mask or
	// fake periodicity.
	detrended := detrendLinear(xs)
	acf, err := ACF(detrended, maxPeriod)
	if err != nil {
		return nil, err
	}
	band := 1.96 / math.Sqrt(float64(n))
	type candidate struct {
		period   int
		strength float64
		acf      float64
	}
	var cands []candidate
	for p := 2; p <= maxPeriod; p++ {
		if n/p < MinPointsPerPeriod {
			break
		}
		r := acf[p-1]
		// Require a local ACF peak to skip lags that merely ride a
		// neighbour's correlation.
		if p >= 3 && (r <= acf[p-2] || (p <= maxPeriod-1 && r <= acf[p])) {
			continue
		}
		if r <= band {
			continue
		}
		strength, derr := seasonalStrength(xs, p)
		if derr != nil {
			continue
		}
		cands = append(cands, candidate{period: p, strength: strength, acf: r})
	}
	if len(cands) == 0 {
		return &Seasonality{}, nil
	}
	// Multiples of the true period score as well as the fundamental
	// (a period-24 decomposition reproduces a period-6 pattern four
	// times over), so among candidates whose strength is within a
	// small tolerance of the best we prefer the SMALLEST period.
	best := cands[0]
	for _, c := range cands[1:] {
		if c.strength > best.strength {
			best = c
		}
	}
	const tolerance = 0.03
	chosen := best
	for _, c := range cands {
		if c.strength >= best.strength-tolerance && c.period < chosen.period {
			chosen = c
		}
	}
	return &Seasonality{
		Period:      chosen.period,
		Confidence:  chosen.strength,
		ACFPeak:     chosen.acf,
		Significant: true,
	}, nil
}

// detrendLinear removes the OLS line from the series.
func detrendLinear(xs []float64) []float64 {
	slope, intercept := olsLine(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x - (intercept + slope*float64(i))
	}
	return out
}

func olsLine(xs []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if n < 2 {
		return 0, Mean(xs)
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range xs {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return 0, Mean(xs)
	}
	slope = (n*sumXY - sumX*sumY) / denom
	intercept = (sumY - slope*sumX) / n
	return slope, intercept
}

// seasonalStrength decomposes at period p and returns
// max(0, 1 - Var(remainder)/Var(detrended)).
func seasonalStrength(xs []float64, period int) (float64, error) {
	dec, err := Decompose(xs, period)
	if err != nil {
		return 0, err
	}
	var detr, rem []float64
	for i := range xs {
		if math.IsNaN(dec.Trend[i]) {
			continue
		}
		detr = append(detr, xs[i]-dec.Trend[i])
		rem = append(rem, dec.Residual[i])
	}
	vd := Variance(detr)
	if vd == 0 {
		return 0, nil
	}
	s := 1 - Variance(rem)/vd
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s, nil
}

// Decomposition holds the classical additive components; Trend is NaN
// at the edges the moving average cannot cover.
type Decomposition struct {
	Period   int
	Trend    []float64
	Seasonal []float64
	Residual []float64
}

// Decompose performs classical additive decomposition at the given
// period: centered-MA trend, phase-averaged seasonal component
// normalized to zero mean, and the residual remainder.
func Decompose(xs []float64, period int) (*Decomposition, error) {
	if period < 2 {
		return nil, fmt.Errorf("timeseries: period must be >= 2, got %d", period)
	}
	if len(xs) < MinPointsPerPeriod*period {
		return nil, ErrInsufficient
	}
	trend, err := MovingAverage(xs, period)
	if err != nil {
		return nil, err
	}
	n := len(xs)
	// Phase averages of detrended values.
	sums := make([]float64, period)
	counts := make([]int, period)
	for i := 0; i < n; i++ {
		if math.IsNaN(trend[i]) {
			continue
		}
		ph := i % period
		sums[ph] += xs[i] - trend[i]
		counts[ph]++
	}
	seasonalByPhase := make([]float64, period)
	var total float64
	for ph := range seasonalByPhase {
		if counts[ph] > 0 {
			seasonalByPhase[ph] = sums[ph] / float64(counts[ph])
		}
		total += seasonalByPhase[ph]
	}
	// Normalize to zero mean so trend+seasonal+residual is unbiased.
	adj := total / float64(period)
	for ph := range seasonalByPhase {
		seasonalByPhase[ph] -= adj
	}
	dec := &Decomposition{
		Period:   period,
		Trend:    trend,
		Seasonal: make([]float64, n),
		Residual: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		dec.Seasonal[i] = seasonalByPhase[i%period]
		if math.IsNaN(trend[i]) {
			dec.Residual[i] = math.NaN()
		} else {
			dec.Residual[i] = xs[i] - trend[i] - dec.Seasonal[i]
		}
	}
	return dec, nil
}

// DecomposeRobust performs the additive decomposition with
// median-based seasonal estimates: phase medians instead of phase
// means, so isolated anomalies do not contaminate the seasonal
// component. Prefer it when the series may contain outliers.
func DecomposeRobust(xs []float64, period int) (*Decomposition, error) {
	if period < 2 {
		return nil, fmt.Errorf("timeseries: period must be >= 2, got %d", period)
	}
	if len(xs) < MinPointsPerPeriod*period {
		return nil, ErrInsufficient
	}
	trend, err := MovingAverage(xs, period)
	if err != nil {
		return nil, err
	}
	n := len(xs)
	byPhase := make([][]float64, period)
	for i := 0; i < n; i++ {
		if math.IsNaN(trend[i]) {
			continue
		}
		ph := i % period
		byPhase[ph] = append(byPhase[ph], xs[i]-trend[i])
	}
	seasonalByPhase := make([]float64, period)
	var total float64
	for ph := range seasonalByPhase {
		seasonalByPhase[ph] = median(byPhase[ph])
		total += seasonalByPhase[ph]
	}
	adj := total / float64(period)
	for ph := range seasonalByPhase {
		seasonalByPhase[ph] -= adj
	}
	dec := &Decomposition{
		Period:   period,
		Trend:    trend,
		Seasonal: make([]float64, n),
		Residual: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		dec.Seasonal[i] = seasonalByPhase[i%period]
		if math.IsNaN(trend[i]) {
			dec.Residual[i] = math.NaN()
		} else {
			dec.Residual[i] = xs[i] - trend[i] - dec.Seasonal[i]
		}
	}
	return dec, nil
}

// median returns the middle value (mean of the two middle values for
// even counts); 0 for empty input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// TrendDirection classifies the overall trend.
type TrendDirection int

// Trend directions.
const (
	TrendStable TrendDirection = iota
	TrendIncreasing
	TrendDecreasing
)

// String names the direction.
func (d TrendDirection) String() string {
	switch d {
	case TrendIncreasing:
		return "increasing"
	case TrendDecreasing:
		return "decreasing"
	default:
		return "stable"
	}
}

// TrendResult reports the fitted linear trend with a confidence.
type TrendResult struct {
	Slope      float64
	Intercept  float64
	Direction  TrendDirection
	Confidence float64 // 1 - p-value-ish score from the slope t-statistic
}

// DetectTrend fits an OLS line and classifies the direction using the
// slope's t-statistic; |t| < 2 is treated as stable.
func DetectTrend(xs []float64) (*TrendResult, error) {
	n := len(xs)
	if n < 3 {
		return nil, ErrInsufficient
	}
	slope, intercept := olsLine(xs)
	// Standard error of the slope.
	var sse, sxx float64
	mx := float64(n-1) / 2
	for i, y := range xs {
		fit := intercept + slope*float64(i)
		sse += (y - fit) * (y - fit)
		sxx += (float64(i) - mx) * (float64(i) - mx)
	}
	res := &TrendResult{Slope: slope, Intercept: intercept}
	if sse == 0 || sxx == 0 {
		// Perfect fit (or degenerate x): direction from the sign.
		res.Confidence = 1
		switch {
		case slope > 0:
			res.Direction = TrendIncreasing
		case slope < 0:
			res.Direction = TrendDecreasing
		}
		if slope == 0 {
			res.Direction = TrendStable
			res.Confidence = 1
		}
		return res, nil
	}
	se := math.Sqrt(sse / float64(n-2) / sxx)
	tstat := slope / se
	res.Confidence = clamp01(2*stdNormalCDF(math.Abs(tstat)) - 1)
	switch {
	case tstat > 2:
		res.Direction = TrendIncreasing
	case tstat < -2:
		res.Direction = TrendDecreasing
	default:
		res.Direction = TrendStable
	}
	return res, nil
}

func stdNormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SufficiencyReport explains whether a series supports a seasonal
// analysis at the candidate period, and if not, why — the text the
// Figure 1 system uses to say it restricted its analysis window.
type SufficiencyReport struct {
	OK          bool
	Points      int
	Needed      int
	Explanation string
}

// CheckSufficiency verifies the series has at least MinPointsPerPeriod
// full cycles of the period.
func CheckSufficiency(n, period int) SufficiencyReport {
	needed := MinPointsPerPeriod * period
	if period < 2 {
		return SufficiencyReport{OK: false, Points: n, Needed: 4,
			Explanation: "a seasonal period must span at least 2 samples"}
	}
	if n >= needed {
		return SufficiencyReport{OK: true, Points: n, Needed: needed,
			Explanation: fmt.Sprintf("%d points cover %d+ full cycles of period %d", n, MinPointsPerPeriod, period)}
	}
	return SufficiencyReport{OK: false, Points: n, Needed: needed,
		Explanation: fmt.Sprintf("only %d points available but %d are needed for period %d", n, needed, period)}
}
