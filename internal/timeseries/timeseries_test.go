package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// seasonalSeries builds trend + sin seasonality(period) + noise.
func seasonalSeries(n, period int, trendSlope, amp, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 100 + trendSlope*float64(i) +
			amp*math.Sin(2*math.Pi*float64(i)/float64(period)) +
			noise*rng.NormFloat64()
	}
	return xs
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance([]float64{2, 4}); got != 1 {
		t.Errorf("Variance = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton != 0")
	}
}

func TestMovingAverageOdd(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ma, err := MovingAverage(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ma[0]) || !math.IsNaN(ma[4]) {
		t.Error("edges must be NaN")
	}
	for i := 1; i <= 3; i++ {
		if ma[i] != float64(i+1) {
			t.Errorf("ma[%d] = %v", i, ma[i])
		}
	}
}

func TestMovingAverageEven(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ma, err := MovingAverage(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2x4-MA at index 2: (1/2 + 2 + 3 + 4 + 5/2)/4 = 3
	if math.Abs(ma[2]-3) > 1e-12 {
		t.Errorf("ma[2] = %v", ma[2])
	}
	if !math.IsNaN(ma[0]) || !math.IsNaN(ma[1]) || !math.IsNaN(ma[5]) {
		t.Error("edge NaNs wrong for even window")
	}
}

func TestMovingAverageErrors(t *testing.T) {
	if _, err := MovingAverage([]float64{1, 2, 3}, 1); err == nil {
		t.Error("window 1 must error")
	}
	if _, err := MovingAverage([]float64{1, 2}, 3); err != ErrInsufficient {
		t.Errorf("short series: %v", err)
	}
}

func TestACFPeriodic(t *testing.T) {
	xs := seasonalSeries(120, 6, 0, 10, 0.1, 1)
	acf, err := ACF(xs, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Strong positive autocorrelation at lag 6 and 12.
	if acf[5] < 0.8 || acf[11] < 0.7 {
		t.Errorf("acf[6]=%v acf[12]=%v", acf[5], acf[11])
	}
	// Anticorrelation at half period.
	if acf[2] > 0 {
		t.Errorf("acf[3]=%v, want negative", acf[2])
	}
}

func TestACFConstantSeries(t *testing.T) {
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = 7
	}
	acf, err := ACF(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range acf {
		if r != 0 {
			t.Errorf("constant series acf = %v", acf)
		}
	}
}

func TestACFErrors(t *testing.T) {
	if _, err := ACF([]float64{1, 2}, 0); err == nil {
		t.Error("maxLag 0 must error")
	}
	if _, err := ACF([]float64{1, 2}, 5); err != ErrInsufficient {
		t.Errorf("short: %v", err)
	}
}

func TestDetectSeasonalityPeriod6(t *testing.T) {
	// The Figure 1 scenario: monthly indicator, seasonal period 6,
	// moderate noise so confidence lands near 0.9.
	xs := seasonalSeries(120, 6, 0.1, 8, 2.0, 42)
	s, err := DetectSeasonality(xs, 24)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != 6 {
		t.Fatalf("period = %d, want 6 (conf %v)", s.Period, s.Confidence)
	}
	if !s.Significant {
		t.Error("period-6 peak should be significant")
	}
	if s.Confidence < 0.7 || s.Confidence > 1 {
		t.Errorf("confidence = %v", s.Confidence)
	}
}

func TestDetectSeasonalityNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s, err := DetectSeasonality(xs, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Pure noise: either nothing found or a weak accidental peak.
	if s.Period != 0 && s.Confidence > 0.5 {
		t.Errorf("noise produced period %d conf %v", s.Period, s.Confidence)
	}
}

func TestDetectSeasonalityWithStrongTrend(t *testing.T) {
	// A steep trend must not mask the seasonality (we detrend first).
	xs := seasonalSeries(120, 12, 3.0, 10, 1.0, 3)
	s, err := DetectSeasonality(xs, 24)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != 12 {
		t.Errorf("period = %d, want 12", s.Period)
	}
}

func TestDetectSeasonalityInsufficient(t *testing.T) {
	xs := seasonalSeries(10, 6, 0, 5, 0.1, 1)
	if _, err := DetectSeasonality(xs, 12); err != ErrInsufficient {
		t.Errorf("want ErrInsufficient, got %v", err)
	}
	if _, err := DetectSeasonality(xs, 1); err == nil {
		t.Error("maxPeriod 1 must error")
	}
}

func TestDecomposeReconstruction(t *testing.T) {
	xs := seasonalSeries(60, 6, 0.5, 5, 0.5, 9)
	dec, err := Decompose(xs, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.IsNaN(dec.Trend[i]) {
			if !math.IsNaN(dec.Residual[i]) {
				t.Errorf("residual defined where trend is not, i=%d", i)
			}
			continue
		}
		sum := dec.Trend[i] + dec.Seasonal[i] + dec.Residual[i]
		if math.Abs(sum-xs[i]) > 1e-9 {
			t.Errorf("reconstruction off at %d: %v vs %v", i, sum, xs[i])
		}
	}
	// Seasonal component repeats with the period.
	for i := 0; i+6 < len(xs); i++ {
		if dec.Seasonal[i] != dec.Seasonal[i+6] {
			t.Errorf("seasonal not periodic at %d", i)
		}
	}
	// Seasonal component has (approximately) zero mean over one period.
	var s float64
	for i := 0; i < 6; i++ {
		s += dec.Seasonal[i]
	}
	if math.Abs(s) > 1e-9 {
		t.Errorf("seasonal mean = %v", s/6)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose([]float64{1, 2, 3}, 1); err == nil {
		t.Error("period 1 must error")
	}
	if _, err := Decompose([]float64{1, 2, 3}, 6); err != ErrInsufficient {
		t.Errorf("short: %v", err)
	}
}

func TestDetectTrendDirections(t *testing.T) {
	up := make([]float64, 50)
	down := make([]float64, 50)
	rng := rand.New(rand.NewSource(4))
	for i := range up {
		up[i] = float64(i) + rng.NormFloat64()
		down[i] = -2*float64(i) + rng.NormFloat64()
	}
	ru, err := DetectTrend(up)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Direction != TrendIncreasing || ru.Confidence < 0.95 {
		t.Errorf("up trend = %+v", ru)
	}
	rd, _ := DetectTrend(down)
	if rd.Direction != TrendDecreasing {
		t.Errorf("down trend = %+v", rd)
	}
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	rf, _ := DetectTrend(flat)
	if rf.Direction != TrendStable {
		t.Errorf("flat trend = %+v", rf)
	}
}

func TestDetectTrendPerfectLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	r, err := DetectTrend(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Direction != TrendIncreasing || r.Confidence != 1 || math.Abs(r.Slope-1) > 1e-12 {
		t.Errorf("perfect line = %+v", r)
	}
	xs = []float64{5, 5, 5, 5}
	r, _ = DetectTrend(xs)
	if r.Direction != TrendStable {
		t.Errorf("constant = %+v", r)
	}
}

func TestDetectTrendInsufficient(t *testing.T) {
	if _, err := DetectTrend([]float64{1, 2}); err != ErrInsufficient {
		t.Errorf("want ErrInsufficient, got %v", err)
	}
}

func TestCheckSufficiency(t *testing.T) {
	r := CheckSufficiency(120, 6)
	if !r.OK || r.Needed != 12 {
		t.Errorf("sufficiency = %+v", r)
	}
	r = CheckSufficiency(10, 6)
	if r.OK {
		t.Errorf("10 points should not suffice for period 6: %+v", r)
	}
	if r.Explanation == "" {
		t.Error("missing explanation")
	}
	r = CheckSufficiency(100, 1)
	if r.OK {
		t.Error("period 1 must be rejected")
	}
}

func TestTrendDirectionString(t *testing.T) {
	if TrendIncreasing.String() != "increasing" || TrendDecreasing.String() != "decreasing" || TrendStable.String() != "stable" {
		t.Error("direction strings wrong")
	}
}

// Property: ACF values lie in [-1, 1].
func TestACFBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		acf, err := ACF(xs, 20)
		if err != nil {
			return false
		}
		for _, r := range acf {
			if r < -1.000001 || r > 1.000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: decomposition confidence (seasonal strength) is monotone
// in the signal-to-noise ratio.
func TestConfidenceMonotoneInSNR(t *testing.T) {
	low := seasonalSeries(120, 6, 0, 8, 8.0, 5)  // noisy
	high := seasonalSeries(120, 6, 0, 8, 0.5, 5) // clean
	sl, err := DetectSeasonality(low, 12)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := DetectSeasonality(high, 12)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Confidence <= sl.Confidence {
		t.Errorf("clean conf %v <= noisy conf %v", sh.Confidence, sl.Confidence)
	}
}
