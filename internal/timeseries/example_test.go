package timeseries_test

import (
	"fmt"
	"math"

	"github.com/reliable-cda/cda/internal/timeseries"
)

func ExampleDetectSeasonality() {
	// A clean series with period 4.
	xs := make([]float64, 48)
	for i := range xs {
		xs[i] = 100 + 10*math.Sin(2*math.Pi*float64(i)/4)
	}
	s, err := timeseries.DetectSeasonality(xs, 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("period %d, confidence %.2f\n", s.Period, s.Confidence)
	// Output:
	// period 4, confidence 1.00
}

func ExampleForecastSeries() {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	f, err := timeseries.ForecastSeries(xs, 0, 2, 0.9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: t+1 = %.0f, t+2 = %.0f\n", f.Method, f.Values[0], f.Values[1])
	// Output:
	// naive+drift: t+1 = 9, t+2 = 10
}
