package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func TestForecastSeasonalShape(t *testing.T) {
	xs := seasonalSeries(120, 6, 0.1, 8, 1.0, 2)
	f, err := ForecastSeries(xs, 6, 12, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Values) != 12 || len(f.Lower) != 12 || len(f.Upper) != 12 {
		t.Fatalf("lengths = %d %d %d", len(f.Values), len(f.Lower), len(f.Upper))
	}
	if f.Method != "seasonal-naive+drift" {
		t.Errorf("method = %q", f.Method)
	}
	// The forecast must repeat the seasonal phase: steps 1 and 7 share
	// a phase, separated by one period of drift.
	if math.Abs((f.Values[6]-f.Values[0])-(f.Values[7]-f.Values[1])) > 1e-9 {
		t.Error("seasonal structure not preserved")
	}
	// Intervals contain the point forecast and widen with lead time.
	for h := range f.Values {
		if !(f.Lower[h] < f.Values[h] && f.Values[h] < f.Upper[h]) {
			t.Fatalf("interval broken at h=%d", h)
		}
	}
	w0 := f.Upper[0] - f.Lower[0]
	w11 := f.Upper[11] - f.Lower[11]
	if w11 <= w0 {
		t.Errorf("intervals not widening: %v vs %v", w0, w11)
	}
}

func TestForecastCoverage(t *testing.T) {
	// Empirical coverage of the 90% interval on held-out data should
	// be near nominal across many series.
	rngSeeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	total, covered := 0, 0
	for _, seed := range rngSeeds {
		xs := seasonalSeries(132, 6, 0.1, 8, 2.0, seed)
		train, test := xs[:120], xs[120:]
		f, err := ForecastSeries(train, 6, len(test), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		for h, actual := range test {
			total++
			if f.Lower[h] <= actual && actual <= f.Upper[h] {
				covered++
			}
		}
	}
	cov := float64(covered) / float64(total)
	if cov < 0.8 || cov > 1.0 {
		t.Errorf("empirical coverage = %v, want ≈0.9", cov)
	}
}

func TestForecastNonSeasonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 10 + 0.5*float64(i) + rng.NormFloat64()
	}
	f, err := ForecastSeries(xs, 0, 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Method != "naive+drift" {
		t.Errorf("method = %q", f.Method)
	}
	// Drift continues the trend.
	if f.Values[4] <= f.Values[0] {
		t.Errorf("drift lost: %v", f.Values)
	}
}

func TestForecastErrors(t *testing.T) {
	xs := seasonalSeries(120, 6, 0, 5, 1, 1)
	if _, err := ForecastSeries(xs, 6, 0, 0.9); err == nil {
		t.Error("horizon 0 must error")
	}
	if _, err := ForecastSeries(xs, 6, 5, 0); err == nil {
		t.Error("level 0 must error")
	}
	if _, err := ForecastSeries(xs, 6, 5, 1); err == nil {
		t.Error("level 1 must error")
	}
	if _, err := ForecastSeries(xs[:8], 6, 5, 0.9); err != ErrInsufficient {
		t.Errorf("short seasonal: %v", err)
	}
	if _, err := ForecastSeries(xs[:3], 0, 5, 0.9); err != ErrInsufficient {
		t.Errorf("short: %v", err)
	}
}

func TestStdNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.9599}, {0.95, 1.6449}, {0.025, -1.9599},
	}
	for _, c := range cases {
		if got := stdNormalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDetectAnomaliesPlanted(t *testing.T) {
	xs := seasonalSeries(120, 6, 0.1, 8, 0.8, 4)
	xs[60] += 25 // planted spike
	xs[90] -= 25 // planted dip
	got, err := DetectAnomalies(xs, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, a := range got {
		found[a.Index] = true
	}
	if !found[60] || !found[90] {
		t.Errorf("planted anomalies not found: %v", got)
	}
	if len(got) > 6 {
		t.Errorf("too many false positives: %v", got)
	}
	// Signs.
	for _, a := range got {
		if a.Index == 60 && a.Z <= 0 {
			t.Error("spike should have positive z")
		}
		if a.Index == 90 && a.Z >= 0 {
			t.Error("dip should have negative z")
		}
	}
}

func TestDetectAnomaliesClean(t *testing.T) {
	xs := seasonalSeries(120, 6, 0.1, 8, 0.5, 5)
	got, err := DetectAnomalies(xs, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("clean series flagged: %v", got)
	}
}

func TestDetectAnomaliesNonSeasonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = float64(i) + rng.NormFloat64()
	}
	xs[30] += 15
	got, err := DetectAnomalies(xs, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, a := range got {
		if a.Index == 30 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("non-seasonal anomaly missed: %v", got)
	}
}

func TestDetectAnomaliesConstant(t *testing.T) {
	xs := make([]float64, 24)
	got, err := DetectAnomalies(xs, 6, 3)
	if err != nil || got != nil {
		t.Errorf("constant series: %v %v", got, err)
	}
	if _, err := DetectAnomalies(xs[:2], 0, 3); err != ErrInsufficient {
		t.Errorf("short: %v", err)
	}
}

func TestDecomposeRobustResistsOutliers(t *testing.T) {
	xs := seasonalSeries(120, 6, 0, 8, 0.5, 11)
	xs[30] += 60 // gross outlier at phase 0
	classical, err := Decompose(xs, 6)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := DecomposeRobust(xs, 6)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Decompose(seasonalSeries(120, 6, 0, 8, 0.5, 11), 6)
	if err != nil {
		t.Fatal(err)
	}
	// The robust seasonal component at the contaminated phase must sit
	// closer to the clean reference than the classical one does.
	phase := 30 % 6
	errClassical := math.Abs(classical.Seasonal[phase] - clean.Seasonal[phase])
	errRobust := math.Abs(robust.Seasonal[phase] - clean.Seasonal[phase])
	if errRobust >= errClassical {
		t.Errorf("robust error %v >= classical %v", errRobust, errClassical)
	}
	// Reconstruction still holds.
	for i := range xs {
		if math.IsNaN(robust.Trend[i]) {
			continue
		}
		sum := robust.Trend[i] + robust.Seasonal[i] + robust.Residual[i]
		if math.Abs(sum-xs[i]) > 1e-9 {
			t.Fatalf("robust reconstruction off at %d", i)
		}
	}
}

func TestDecomposeRobustErrors(t *testing.T) {
	if _, err := DecomposeRobust([]float64{1, 2, 3}, 1); err == nil {
		t.Error("period 1 must error")
	}
	if _, err := DecomposeRobust([]float64{1, 2, 3}, 6); err != ErrInsufficient {
		t.Errorf("short: %v", err)
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Error("even median")
	}
}
