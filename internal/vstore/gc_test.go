package vstore

import (
	"fmt"
	"sync"
	"testing"

	"github.com/reliable-cda/cda/internal/faults"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/storage"
)

func TestGCCollectsOrphansKeepsReachable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	db := demoDB(300)
	c, err := s.CommitDatabase("db/main", db, 0)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	live, err := s.Closure(c.Hash)
	if err != nil {
		t.Fatalf("closure: %v", err)
	}
	// Orphans: chunks never referenced by any root.
	var orphans []Hash
	for i := 0; i < 5; i++ {
		orphans = append(orphans, mustPut(t, s, "leaf", nil, fmt.Sprintf(`["orphan-%d"]`, i)))
	}
	stats, err := s.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if stats.Swept != len(orphans) {
		t.Fatalf("swept %d, want %d", stats.Swept, len(orphans))
	}
	if stats.Live != len(live) {
		t.Fatalf("live %d, want %d", stats.Live, len(live))
	}
	for _, h := range orphans {
		if s.Has(h) {
			t.Fatalf("orphan %s survived", h)
		}
	}
	if _, err := s.MaterializeDatabase(c.Tree); err != nil {
		t.Fatalf("materialize after GC: %v", err)
	}

	// The pack rewrite must survive a reopen with only live chunks.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Errorf("close reopened: %v", err)
		}
	}()
	if n := r.NumChunks(); n != len(live) {
		t.Fatalf("reopened with %d chunks, want %d", n, len(live))
	}
	if _, err := r.MaterializeDatabase(c.Tree); err != nil {
		t.Fatalf("materialize after reopen: %v", err)
	}
}

func TestGCSparesDeleteRootThenRecommit(t *testing.T) {
	s := NewMemory()
	db := demoDB(50)
	c, err := s.CommitDatabase("db/a", db, 0)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := s.DeleteRoot("db/a"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatalf("GC: %v", err)
	}
	if s.Has(c.Tree) {
		t.Fatalf("unreferenced tree survived GC")
	}
	// Re-encoding after collection rebuilds the same addresses.
	c2, err := s.CommitDatabase("db/a", db, 0)
	if err != nil {
		t.Fatalf("recommit: %v", err)
	}
	if c2.Tree != c.Tree {
		t.Fatalf("content address changed across GC: %s vs %s", c.Tree, c2.Tree)
	}
}

// gateHook blocks GC between its mark and sweep phases so a test can
// interleave a commit at exactly the dangerous point.
type gateHook struct {
	markDone chan struct{} // closed when GC finishes marking
	release  chan struct{} // GC sweeps only after this closes
	once     sync.Once
}

func (g *gateHook) Inject(op string) error {
	if op == "vstore.gc.sweep" {
		g.once.Do(func() { close(g.markDone) })
		<-g.release
	}
	return nil
}

// TestGCConcurrentCommitMidSweep is the satellite gate: a root
// published after the mark phase snapshot — whose tree re-uses chunks
// that were unreachable when marking ran — must keep its full closure.
func TestGCConcurrentCommitMidSweep(t *testing.T) {
	gate := &gateHook{markDone: make(chan struct{}), release: make(chan struct{})}
	s, err := Open(Config{Faults: gate})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db := demoDB(300)
	// Encode the tree but do NOT commit it: at mark time every one of
	// its chunks is an unreachable candidate.
	tree, err := s.EncodeDatabase(db, 0)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	done := make(chan GCStats, 1)
	go func() {
		stats, gerr := s.GC()
		if gerr != nil {
			t.Errorf("GC: %v", gerr)
		}
		done <- stats
	}()

	<-gate.markDone
	// Mark is complete and found nothing; publish the root now.
	c, err := s.Commit("db/raced", tree, 0)
	if err != nil {
		t.Fatalf("commit mid-sweep: %v", err)
	}
	close(gate.release)
	stats := <-done

	if stats.Rescans == 0 {
		t.Fatalf("sweep did not re-scan the newly published head; stats=%+v", stats)
	}
	if stats.Swept != 0 {
		t.Fatalf("sweep collected %d chunks of a published root", stats.Swept)
	}
	if !s.HasClosure(c.Hash) {
		t.Fatalf("closure of the mid-sweep commit is incomplete")
	}
	if _, err := s.MaterializeDatabase(c.Tree); err != nil {
		t.Fatalf("materialize after racing GC: %v", err)
	}
}

// TestGCEpochBarrierSparesInFlightEncode covers the other half of the
// race: chunks stored mid-sweep whose root is committed only after GC
// finishes. The epoch write barrier must spare them even though no
// root reaches them during the sweep.
func TestGCEpochBarrierSparesInFlightEncode(t *testing.T) {
	gate := &gateHook{markDone: make(chan struct{}), release: make(chan struct{})}
	s, err := Open(Config{Faults: gate})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Seed one orphan BEFORE the sweep epoch so the sweep has real work.
	orphan := mustPut(t, s, "leaf", nil, `["pre-sweep orphan"]`)

	done := make(chan GCStats, 1)
	go func() {
		stats, gerr := s.GC()
		if gerr != nil {
			t.Errorf("GC: %v", gerr)
		}
		done <- stats
	}()

	<-gate.markDone
	// Encode a tree between mark and sweep; commit only after GC ends.
	db := demoDB(300)
	tree, err := s.EncodeDatabase(db, 0)
	if err != nil {
		t.Fatalf("encode mid-sweep: %v", err)
	}
	close(gate.release)
	stats := <-done

	if stats.Swept != 1 || s.Has(orphan) {
		t.Fatalf("pre-sweep orphan not collected exactly: stats=%+v has=%v", stats, s.Has(orphan))
	}
	if stats.Spared == 0 {
		t.Fatalf("epoch barrier spared nothing; stats=%+v", stats)
	}
	c, err := s.Commit("db/late", tree, 0)
	if err != nil {
		t.Fatalf("commit after GC: %v", err)
	}
	if !s.HasClosure(c.Hash) {
		t.Fatalf("in-flight encode lost chunks to the sweep")
	}
	if _, err := s.MaterializeDatabase(tree); err != nil {
		t.Fatalf("materialize: %v", err)
	}
}

// TestGCUnderConcurrentCommitSeeded hammers GC against committers
// under the race detector with seeded fault-injector interleavings
// (latency faults on vstore ops shift the phase boundaries run to
// run, but each seed is deterministic).
func TestGCUnderConcurrentCommitSeeded(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := faults.New(faults.Config{
				Seed: seed,
				PerBackend: map[string]faults.Rates{
					"vstore": {Latency: 0.5},
				},
			}, resilience.NewWallClock())
			s, err := Open(Config{Faults: inj})
			if err != nil {
				t.Fatalf("open: %v", err)
			}

			const writers = 3
			const commitsPerWriter = 8
			var wg sync.WaitGroup
			errs := make(chan error, writers+1)
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					db := demoDB(200 + w)
					tab, gerr := db.Get("metrics")
					if gerr != nil {
						errs <- gerr
						return
					}
					root := fmt.Sprintf("db/w%d", w)
					for k := 0; k < commitsPerWriter; k++ {
						tab.Column(2)[(k*17+w)%tab.NumRows()] = storage.Float(float64(seed) + float64(k))
						if _, cerr := s.CommitDatabase(root, db, k); cerr != nil {
							errs <- fmt.Errorf("writer %d commit %d: %w", w, k, cerr)
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					if _, gerr := s.GC(); gerr != nil {
						errs <- fmt.Errorf("GC round %d: %w", i, gerr)
						return
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Every committed version of every root must still be fully
			// materializable — no reachable chunk was ever collected.
			for _, root := range s.Roots() {
				log, err := s.Log(root)
				if err != nil {
					t.Fatalf("log %s: %v", root, err)
				}
				for _, c := range log {
					if !s.HasClosure(c.Hash) {
						t.Fatalf("root %s commit turn %d lost chunks", root, c.Turn)
					}
					if _, err := s.MaterializeDatabase(c.Tree); err != nil {
						t.Fatalf("root %s turn %d materialize: %v", root, c.Turn, err)
					}
				}
			}
		})
	}
}
