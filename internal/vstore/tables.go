package vstore

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/storage"
)

// Merkle encoding of internal/storage databases.
//
// Layout (parent refs point down):
//
//	commit ─▶ db ─▶ table (per table, sorted by name)
//	                  └▶ leaf (per column, per row range, column-major)
//
// Leaves hold up to LeafRows values of ONE column, so editing one row
// rewrites one leaf per column plus the table, db, and commit nodes —
// O(columns · log-ish path), not O(table). Content addressing makes
// the unchanged leaves free: the encoder re-puts them, the store
// dedups by hash (and the re-put arms the GC write barrier).

// DefaultLeafRows is the row span of one column leaf.
const DefaultLeafRows = 256

// colDef mirrors storage.ColumnDef with stable JSON tags.
type colDef struct {
	Name string       `json:"name"`
	Kind storage.Kind `json:"kind"`
	Desc string       `json:"desc,omitempty"`
}

// tableData is the data field of a "table" chunk. Refs are the column
// leaves, column-major: all leaves of column 0, then column 1, …
type tableData struct {
	Name     string   `json:"name"`
	Desc     string   `json:"desc,omitempty"`
	Schema   []colDef `json:"schema"`
	Rows     int      `json:"rows"`
	LeafRows int      `json:"leafRows"`
}

// dbData is the data field of a "db" chunk. Refs are the table chunks
// aligned with Tables (canonically sorted by lowercased name, so two
// databases with equal content hash equally regardless of
// registration order).
type dbData struct {
	Name   string   `json:"name"`
	Tables []string `json:"tables"`
}

// leavesPerCol returns the leaf count covering rows.
func leavesPerCol(rows, leafRows int) int {
	if rows == 0 {
		return 0
	}
	return (rows + leafRows - 1) / leafRows
}

// EncodeTable stores a table as a Merkle tree and returns the table
// chunk's address.
func (s *Store) EncodeTable(t *storage.Table, leafRows int) (Hash, error) {
	release := s.Pin()
	defer release()
	if leafRows <= 0 {
		leafRows = DefaultLeafRows
	}
	rows := t.NumRows()
	schema := t.Schema()
	nLeaves := leavesPerCol(rows, leafRows)
	refs := make([]Hash, 0, nLeaves*len(schema))
	for c := 0; c < len(schema); c++ {
		col := t.Column(c)
		for l := 0; l < nLeaves; l++ {
			lo := l * leafRows
			hi := lo + leafRows
			if hi > rows {
				hi = rows
			}
			data, err := json.Marshal(col[lo:hi])
			if err != nil {
				return "", fmt.Errorf("vstore: encode leaf %s[%d][%d:%d]: %w", t.Name, c, lo, hi, err)
			}
			h, err := s.Put("leaf", nil, data)
			if err != nil {
				return "", err
			}
			refs = append(refs, h)
		}
	}
	meta := tableData{Name: t.Name, Desc: t.Description, Rows: rows, LeafRows: leafRows}
	for _, cd := range schema {
		meta.Schema = append(meta.Schema, colDef{Name: cd.Name, Kind: cd.Kind, Desc: cd.Description})
	}
	data, err := json.Marshal(meta)
	if err != nil {
		return "", fmt.Errorf("vstore: encode table %s: %w", t.Name, err)
	}
	return s.Put("table", refs, data)
}

// EncodeDatabase stores every table of db and returns the db chunk's
// address. Tables are encoded in canonical (lowercased-name) order.
func (s *Store) EncodeDatabase(db *storage.Database, leafRows int) (Hash, error) {
	release := s.Pin()
	defer release()
	tables := db.Tables()
	sort.Slice(tables, func(i, j int) bool {
		return strings.ToLower(tables[i].Name) < strings.ToLower(tables[j].Name)
	})
	meta := dbData{Name: db.Name, Tables: make([]string, 0, len(tables))}
	refs := make([]Hash, 0, len(tables))
	for _, t := range tables {
		h, err := s.EncodeTable(t, leafRows)
		if err != nil {
			return "", err
		}
		refs = append(refs, h)
		meta.Tables = append(meta.Tables, t.Name)
	}
	data, err := json.Marshal(meta)
	if err != nil {
		return "", fmt.Errorf("vstore: encode db %s: %w", db.Name, err)
	}
	return s.Put("db", refs, data)
}

// CommitDatabase encodes db and commits it to the named root at the
// given turn, returning the new commit.
func (s *Store) CommitDatabase(root string, db *storage.Database, turn int) (Commit, error) {
	// The pin spans encode AND commit: without it a GC round between
	// the two could sweep the freshly encoded tree.
	release := s.Pin()
	defer release()
	tree, err := s.EncodeDatabase(db, DefaultLeafRows)
	if err != nil {
		return Commit{}, err
	}
	return s.Commit(root, tree, turn)
}

// MaterializeTable rebuilds a table from its chunk address.
func (s *Store) MaterializeTable(h Hash) (*storage.Table, error) {
	var meta tableData
	kind, err := s.Data(h, &meta)
	if err != nil {
		return nil, err
	}
	if kind != "table" {
		return nil, fmt.Errorf("vstore: chunk %s is %q, want table", h, kind)
	}
	refs, err := s.Refs(h)
	if err != nil {
		return nil, err
	}
	nLeaves := leavesPerCol(meta.Rows, meta.LeafRows)
	if len(refs) != nLeaves*len(meta.Schema) {
		return nil, fmt.Errorf("vstore: table chunk %s has %d leaves, want %d", h, len(refs), nLeaves*len(meta.Schema))
	}
	schema := make(storage.Schema, 0, len(meta.Schema))
	for _, cd := range meta.Schema {
		schema = append(schema, storage.ColumnDef{Name: cd.Name, Kind: cd.Kind, Description: cd.Desc})
	}
	cols := make([][]storage.Value, len(schema))
	for c := range schema {
		col := make([]storage.Value, 0, meta.Rows)
		for l := 0; l < nLeaves; l++ {
			var vals []storage.Value
			leafKind, err := s.Data(refs[c*nLeaves+l], &vals)
			if err != nil {
				return nil, err
			}
			if leafKind != "leaf" {
				return nil, fmt.Errorf("vstore: chunk %s is %q, want leaf", refs[c*nLeaves+l], leafKind)
			}
			col = append(col, vals...)
		}
		if len(col) != meta.Rows {
			return nil, fmt.Errorf("vstore: table %s column %d has %d rows, want %d", meta.Name, c, len(col), meta.Rows)
		}
		cols[c] = col
	}
	t := storage.NewTable(meta.Name, schema)
	t.Description = meta.Desc
	for r := 0; r < meta.Rows; r++ {
		row := make([]storage.Value, len(schema))
		for c := range schema {
			row[c] = cols[c][r]
		}
		if err := t.AppendRow(row); err != nil {
			return nil, fmt.Errorf("vstore: materialize table %s row %d: %w", meta.Name, r, err)
		}
	}
	return t, nil
}

// MaterializeDatabase rebuilds a database from a db or commit chunk
// address — an immutable snapshot ready for internal/sqldb execution.
func (s *Store) MaterializeDatabase(h Hash) (*storage.Database, error) {
	h, err := s.resolveTree(h)
	if err != nil {
		return nil, err
	}
	var meta dbData
	kind, err := s.Data(h, &meta)
	if err != nil {
		return nil, err
	}
	if kind != "db" {
		return nil, fmt.Errorf("vstore: chunk %s is %q, want db", h, kind)
	}
	refs, err := s.Refs(h)
	if err != nil {
		return nil, err
	}
	if len(refs) != len(meta.Tables) {
		return nil, fmt.Errorf("vstore: db chunk %s has %d refs, %d names", h, len(refs), len(meta.Tables))
	}
	db := storage.NewDatabase(meta.Name)
	for _, ref := range refs {
		t, err := s.MaterializeTable(ref)
		if err != nil {
			return nil, err
		}
		db.Put(t)
	}
	return db, nil
}

// DatabaseAsOf materializes the snapshot of a root as of the given
// turn — the time-travel read path.
func (s *Store) DatabaseAsOf(root string, turn int) (*storage.Database, Commit, error) {
	c, err := s.AsOf(root, turn)
	if err != nil {
		return nil, Commit{}, err
	}
	db, err := s.MaterializeDatabase(c.Tree)
	if err != nil {
		return nil, Commit{}, err
	}
	return db, c, nil
}

// ResolveTree follows a commit chunk to the tree it pins; non-commit
// chunks pass through unchanged.
func (s *Store) ResolveTree(h Hash) (Hash, error) { return s.resolveTree(h) }

// resolveTree follows a commit chunk to its tree; other kinds pass
// through unchanged.
func (s *Store) resolveTree(h Hash) (Hash, error) {
	kind, err := s.Kind(h)
	if err != nil {
		return "", err
	}
	if kind != "commit" {
		return h, nil
	}
	refs, err := s.Refs(h)
	if err != nil {
		return "", err
	}
	if len(refs) != 1 {
		return "", fmt.Errorf("vstore: commit chunk %s has %d refs, want 1", h, len(refs))
	}
	return refs[0], nil
}
