package vstore

import (
	"encoding/json"
	"fmt"
	"sort"
)

// commitData is the data field of a commit chunk. The parent lives
// here (data, not refs) on purpose: a commit's ref closure is exactly
// one version, so shipping a version never drags history behind it.
type commitData struct {
	Parent Hash  `json:"parent,omitempty"`
	Turn   int   `json:"turn"`
	Stamp  int64 `json:"stamp"`
}

// Commit appends a new version to the named root, pinning tree (which
// must already be stored). It writes a commit chunk and durably
// publishes the updated root log, returning the new commit.
func (s *Store) Commit(root string, tree Hash, turn int) (Commit, error) {
	if s.cfg.Faults != nil {
		if err := s.cfg.Faults.Inject("vstore.commit"); err != nil {
			return Commit{}, err
		}
	}
	if !s.Has(tree) {
		return Commit{}, fmt.Errorf("vstore: commit %q: tree %w: %s", root, ErrUnknownChunk, tree)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var parent Hash
	if log := s.roots[root]; len(log) > 0 {
		last := log[len(log)-1]
		if last.Tree == tree && last.Turn == turn {
			// Idempotent re-commit (recovery replay, batch re-apply):
			// the head already pins this exact state.
			return last, nil
		}
		parent = last.Hash
	}
	stamp := s.stamp + 1
	data, err := json.Marshal(commitData{Parent: parent, Turn: turn, Stamp: stamp})
	if err != nil {
		return Commit{}, fmt.Errorf("vstore: encode commit for %q: %w", root, err)
	}
	payload, err := encodeEnvelope("commit", []Hash{tree}, data)
	if err != nil {
		return Commit{}, err
	}
	h := hashBytes(payload)
	if c, ok := s.chunks[h]; ok {
		c.epoch = s.epoch
	} else {
		if err := s.appendPack([][]byte{payload}); err != nil {
			return Commit{}, err
		}
		s.chunks[h] = &chunk{data: payload, refs: []Hash{tree}, epoch: s.epoch}
	}
	c := Commit{Hash: h, Tree: tree, Parent: parent, Turn: turn, Stamp: stamp}
	s.roots[root] = append(s.roots[root], c)
	s.stamp = stamp
	if err := s.publishRoots(); err != nil {
		// Roll back the in-memory log so memory and disk agree; the
		// commit chunk stays in the pack as a GC-able orphan.
		s.roots[root] = s.roots[root][:len(s.roots[root])-1]
		if len(s.roots[root]) == 0 {
			delete(s.roots, root)
		}
		s.stamp = stamp - 1
		return Commit{}, err
	}
	return c, nil
}

// AdoptCommit appends an existing commit chunk — typically shipped
// from another store — to the named root, preserving the commit's
// identity (hash, turn, stamp) so the two stores agree on version
// addresses. The chunk and its tree must already be present (ship
// chunks first, adopt after). Adopting the current head again is a
// no-op.
func (s *Store) AdoptCommit(root string, h Hash) (Commit, error) {
	var data commitData
	kind, err := s.Data(h, &data)
	if err != nil {
		return Commit{}, err
	}
	if kind != "commit" {
		return Commit{}, fmt.Errorf("vstore: adopt %s into %q: chunk is %q, want commit", h, root, kind)
	}
	refs, err := s.Refs(h)
	if err != nil {
		return Commit{}, err
	}
	if len(refs) != 1 {
		return Commit{}, fmt.Errorf("vstore: adopt %s: commit has %d refs, want 1", h, len(refs))
	}
	c := Commit{Hash: h, Tree: refs[0], Parent: data.Parent, Turn: data.Turn, Stamp: data.Stamp}
	s.mu.Lock()
	defer s.mu.Unlock()
	if log := s.roots[root]; len(log) > 0 && log[len(log)-1].Hash == h {
		return log[len(log)-1], nil
	}
	s.roots[root] = append(s.roots[root], c)
	savedStamp := s.stamp
	if c.Stamp > s.stamp {
		// Keep the local stamp sequence monotone past adopted commits.
		s.stamp = c.Stamp
	}
	if err := s.publishRoots(); err != nil {
		s.roots[root] = s.roots[root][:len(s.roots[root])-1]
		if len(s.roots[root]) == 0 {
			delete(s.roots, root)
		}
		s.stamp = savedStamp
		return Commit{}, err
	}
	return c, nil
}

// Head returns the latest commit on a root.
func (s *Store) Head(root string) (Commit, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log := s.roots[root]
	if len(log) == 0 {
		return Commit{}, fmt.Errorf("%w: %q", ErrUnknownRoot, root)
	}
	return log[len(log)-1], nil
}

// Log returns a root's full commit log, oldest first.
func (s *Store) Log(root string) ([]Commit, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log := s.roots[root]
	if len(log) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRoot, root)
	}
	return append([]Commit(nil), log...), nil
}

// Roots lists the root names, sorted.
func (s *Store) Roots() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.roots))
	for name := range s.roots {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AsOf resolves the latest commit on a root whose Turn is <= turn —
// "the version the system saw at turn N". Commits are appended with
// non-decreasing turns, so this is the last matching log entry.
func (s *Store) AsOf(root string, turn int) (Commit, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log := s.roots[root]
	if len(log) == 0 {
		return Commit{}, fmt.Errorf("%w: %q", ErrUnknownRoot, root)
	}
	for i := len(log) - 1; i >= 0; i-- {
		if log[i].Turn <= turn {
			return log[i], nil
		}
	}
	return Commit{}, fmt.Errorf("vstore: root %q has no commit at or before turn %d", root, turn)
}

// CommitByHash finds a commit entry anywhere in the root logs.
func (s *Store) CommitByHash(h Hash) (Commit, string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.roots))
	for name := range s.roots {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, c := range s.roots[name] {
			if c.Hash == h {
				return c, name, nil
			}
		}
	}
	return Commit{}, "", fmt.Errorf("vstore: no root commit %s", h)
}

// DeleteRoot drops a root's log (its chunks become GC candidates) and
// durably publishes the change.
func (s *Store) DeleteRoot(root string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roots[root]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRoot, root)
	}
	saved := s.roots[root]
	delete(s.roots, root)
	if err := s.publishRoots(); err != nil {
		s.roots[root] = saved
		return err
	}
	return nil
}

// TruncateLog keeps only the last keep commits of a root (retention
// for long-lived session roots); the trimmed commits' chunks become
// GC candidates unless shared.
func (s *Store) TruncateLog(root string, keep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := s.roots[root]
	if len(log) == 0 {
		return fmt.Errorf("%w: %q", ErrUnknownRoot, root)
	}
	if keep < 1 {
		keep = 1
	}
	if len(log) <= keep {
		return nil
	}
	saved := log
	s.roots[root] = append([]Commit(nil), log[len(log)-keep:]...)
	if err := s.publishRoots(); err != nil {
		s.roots[root] = saved
		return err
	}
	return nil
}
