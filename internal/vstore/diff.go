package vstore

import (
	"fmt"
	"sort"
	"strings"
)

// TableDiff describes how one table changed between two versions.
type TableDiff struct {
	Table string `json:"table"`
	// Added / Removed mark the whole table appearing or disappearing.
	Added   bool `json:"added,omitempty"`
	Removed bool `json:"removed,omitempty"`
	// SchemaChanged marks a column-definition change; row diffs are
	// not attempted across schemas.
	SchemaChanged bool `json:"schemaChanged,omitempty"`
	// ChangedRows lists indices (ascending) whose values differ over
	// the shared row prefix.
	ChangedRows []int `json:"changedRows,omitempty"`
	// RowsAdded / RowsRemoved count rows beyond the shared prefix.
	RowsAdded   int `json:"rowsAdded,omitempty"`
	RowsRemoved int `json:"rowsRemoved,omitempty"`
}

// DiffReport lists per-table changes between two versions, sorted by
// table name. An empty Tables slice means the versions are identical.
type DiffReport struct {
	From   Hash        `json:"from"`
	To     Hash        `json:"to"`
	Tables []TableDiff `json:"tables,omitempty"`
}

// Diff compares two versions (db or commit chunk addresses). The
// Merkle structure keeps it O(changed data): identical subtree hashes
// are skipped without decoding; only differing leaves are compared
// row by row.
func (s *Store) Diff(from, to Hash) (DiffReport, error) {
	rep := DiffReport{From: from, To: to}
	a, err := s.resolveTree(from)
	if err != nil {
		return rep, err
	}
	b, err := s.resolveTree(to)
	if err != nil {
		return rep, err
	}
	if a == b {
		return rep, nil
	}
	aTabs, err := s.dbTables(a)
	if err != nil {
		return rep, err
	}
	bTabs, err := s.dbTables(b)
	if err != nil {
		return rep, err
	}
	names := make([]string, 0, len(aTabs)+len(bTabs))
	for n := range aTabs {
		names = append(names, n)
	}
	for n := range bTabs {
		if _, ok := aTabs[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		ah, inA := aTabs[n]
		bh, inB := bTabs[n]
		switch {
		case !inA:
			rep.Tables = append(rep.Tables, TableDiff{Table: n, Added: true})
		case !inB:
			rep.Tables = append(rep.Tables, TableDiff{Table: n, Removed: true})
		case ah != bh:
			td, err := s.diffTable(n, ah, bh)
			if err != nil {
				return rep, err
			}
			rep.Tables = append(rep.Tables, td)
		}
	}
	return rep, nil
}

// dbTables maps lowercased table name → table chunk for a db chunk.
func (s *Store) dbTables(h Hash) (map[string]Hash, error) {
	var meta dbData
	kind, err := s.Data(h, &meta)
	if err != nil {
		return nil, err
	}
	if kind != "db" {
		return nil, fmt.Errorf("vstore: chunk %s is %q, want db", h, kind)
	}
	refs, err := s.Refs(h)
	if err != nil {
		return nil, err
	}
	if len(refs) != len(meta.Tables) {
		return nil, fmt.Errorf("vstore: db chunk %s has %d refs, %d names", h, len(refs), len(meta.Tables))
	}
	out := make(map[string]Hash, len(refs))
	for i, name := range meta.Tables {
		out[strings.ToLower(name)] = refs[i]
	}
	return out, nil
}

// diffTable compares two versions of one table.
func (s *Store) diffTable(name string, ah, bh Hash) (TableDiff, error) {
	td := TableDiff{Table: name}
	var am, bm tableData
	if _, err := s.Data(ah, &am); err != nil {
		return td, err
	}
	if _, err := s.Data(bh, &bm); err != nil {
		return td, err
	}
	if !schemaEqual(am.Schema, bm.Schema) {
		td.SchemaChanged = true
		return td, nil
	}
	if bm.Rows > am.Rows {
		td.RowsAdded = bm.Rows - am.Rows
	}
	if am.Rows > bm.Rows {
		td.RowsRemoved = am.Rows - bm.Rows
	}
	common := am.Rows
	if bm.Rows < common {
		common = bm.Rows
	}
	if common == 0 || am.LeafRows != bm.LeafRows {
		// Different chunking parameters defeat leaf-level pruning;
		// fall back to whole-table comparison over the shared prefix.
		if common > 0 {
			return s.diffRowsFull(td, ah, bh, common)
		}
		return td, nil
	}
	aRefs, err := s.Refs(ah)
	if err != nil {
		return td, err
	}
	bRefs, err := s.Refs(bh)
	if err != nil {
		return td, err
	}
	aLeaves := leavesPerCol(am.Rows, am.LeafRows)
	bLeaves := leavesPerCol(bm.Rows, bm.LeafRows)
	nCols := len(am.Schema)
	commonLeaves := leavesPerCol(common, am.LeafRows)
	changed := map[int]bool{}
	for l := 0; l < commonLeaves; l++ {
		lo := l * am.LeafRows
		hi := lo + am.LeafRows
		if hi > common {
			hi = common
		}
		for c := 0; c < nCols; c++ {
			la := aRefs[c*aLeaves+l]
			lb := bRefs[c*bLeaves+l]
			if la == lb {
				continue
			}
			if err := s.diffLeaf(la, lb, lo, hi, changed); err != nil {
				return td, err
			}
		}
	}
	td.ChangedRows = sortedKeys(changed)
	return td, nil
}

// diffLeaf compares two column leaves over rows [lo, hi) and records
// differing absolute row indices.
func (s *Store) diffLeaf(la, lb Hash, lo, hi int, changed map[int]bool) error {
	var av, bv []rawValue
	if _, err := s.Data(la, &av); err != nil {
		return err
	}
	if _, err := s.Data(lb, &bv); err != nil {
		return err
	}
	n := hi - lo
	for i := 0; i < n; i++ {
		if i >= len(av) || i >= len(bv) {
			// Tail leaf of the longer version; rows beyond the shared
			// prefix are already counted as added/removed.
			break
		}
		if av[i] != bv[i] {
			changed[lo+i] = true
		}
	}
	return nil
}

// diffRowsFull materializes both versions and compares the shared row
// prefix cell by cell (fallback when chunking parameters differ).
func (s *Store) diffRowsFull(td TableDiff, ah, bh Hash, common int) (TableDiff, error) {
	at, err := s.MaterializeTable(ah)
	if err != nil {
		return td, err
	}
	bt, err := s.MaterializeTable(bh)
	if err != nil {
		return td, err
	}
	for r := 0; r < common; r++ {
		for c := 0; c < at.NumCols(); c++ {
			if at.At(r, c) != bt.At(r, c) {
				td.ChangedRows = append(td.ChangedRows, r)
				break
			}
		}
	}
	return td, nil
}

// rawValue mirrors storage.Value for comparison without importing the
// coercing Equal (a diff must be exact, not numerically tolerant).
type rawValue struct {
	Kind int     `json:"Kind"`
	I    int64   `json:"I"`
	F    float64 `json:"F"`
	S    string  `json:"S"`
	B    bool    `json:"B"`
}

func schemaEqual(a, b []colDef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
