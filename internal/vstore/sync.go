package vstore

import "sort"

// Have/want chunk negotiation: the replica drives. It walks a wanted
// version's ref graph over the chunks it already has; every reference
// it cannot resolve is the next "want" frontier. The primary answers
// with exactly those packets; the replica installs them and walks
// again. The loop terminates because every round either resolves the
// frontier or descends one tree level, and trees are finite — and it
// ships only missing chunks, so a replica that already holds most of
// a snapshot (structural sharing with its previous one) transfers
// only the delta.

// WantList returns the missing-chunk frontier for target: the sorted
// set of addresses that are referenced on paths from target through
// chunks this store already holds, but are absent locally. An empty
// result means the full closure of target is present. limit > 0 caps
// the result (batched negotiation); 0 means unlimited.
func (s *Store) WantList(target Hash, limit int) []Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	missing := map[Hash]bool{}
	seen := map[Hash]bool{target: true}
	stack := []Hash{target}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, ok := s.chunks[h]
		if !ok {
			missing[h] = true
			continue
		}
		for _, ref := range c.refs {
			if !seen[ref] {
				seen[ref] = true
				stack = append(stack, ref)
			}
		}
	}
	out := make([]Hash, 0, len(missing))
	for h := range missing {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// HasClosure reports whether every chunk reachable from target is
// present locally.
func (s *Store) HasClosure(target Hash) bool {
	return len(s.WantList(target, 1)) == 0
}

// Closure returns every address reachable from target (including
// target), sorted — the full-transfer fallback and test oracle. It
// fails with ErrUnknownChunk if any part of the closure is absent.
func (s *Store) Closure(target Hash) ([]Hash, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[Hash]bool{target: true}
	stack := []Hash{target}
	var out []Hash
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, ok := s.chunks[h]
		if !ok {
			return nil, &missingError{h}
		}
		out = append(out, h)
		for _, ref := range c.refs {
			if !seen[ref] {
				seen[ref] = true
				stack = append(stack, ref)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// missingError wraps ErrUnknownChunk with the address.
type missingError struct{ h Hash }

func (e *missingError) Error() string { return "vstore: unknown chunk " + string(e.h) }
func (e *missingError) Unwrap() error { return ErrUnknownChunk }

// AddPackets installs a batch of shipped chunks.
func (s *Store) AddPackets(ps []Packet) error {
	for _, p := range ps {
		if err := s.AddPacket(p); err != nil {
			return err
		}
	}
	return nil
}

// PullFrom copies the closure of target from src into s using the
// negotiation loop, returning how many chunks were transferred. It is
// the in-process form of the protocol the cluster router runs over
// HTTP; tests and single-process callers use it directly.
func (s *Store) PullFrom(src *Store, target Hash, batch int) (int, error) {
	moved := 0
	for {
		want := s.WantList(target, batch)
		if len(want) == 0 {
			return moved, nil
		}
		packets, err := src.Packets(want)
		if err != nil {
			return moved, err
		}
		if err := s.AddPackets(packets); err != nil {
			return moved, err
		}
		moved += len(packets)
	}
}
