package vstore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
)

// The time-travel correctness gate (acceptance criterion): commit K
// versions of a table with seeded edits, then
//
//   - every version's AsOf snapshot yields sqldb results byte-identical
//     to results captured against the live database at commit time;
//   - Diff between adjacent versions reports exactly the seeded edits;
//   - chunk growth per commit is O(delta), not O(table) — structural
//     sharing is real, not cosmetic.

const ttRows = 4100 // ~17 leaves per column at DefaultLeafRows

var ttQueries = []string{
	"SELECT id, region, value FROM metrics ORDER BY id",
	"SELECT region, COUNT(*) AS n FROM metrics GROUP BY region ORDER BY region",
	"SELECT region, SUM(value) AS total FROM metrics GROUP BY region ORDER BY region",
	"SELECT id, value FROM metrics WHERE value > 400 ORDER BY id DESC LIMIT 25",
}

// renderResult serializes a query result byte-exactly.
func renderResult(res *sqldb.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.Kind.String())
			sb.WriteByte(':')
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func runQueries(t *testing.T, db *storage.Database) []string {
	t.Helper()
	eng := sqldb.NewEngine(db)
	out := make([]string, len(ttQueries))
	for i, q := range ttQueries {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		out[i] = renderResult(res)
	}
	return out
}

// seededEdit is one applied change, the oracle for Diff.
type seededEdit struct {
	changedRows []int
	rowsAdded   int
}

// applyEdit mutates the live table at seeded row indices and appends
// a few rows, returning the oracle.
func applyEdit(t *testing.T, tab *storage.Table, rng *rand.Rand, nEdits, nAppends int) seededEdit {
	t.Helper()
	rows := tab.NumRows()
	changed := map[int]bool{}
	for len(changed) < nEdits {
		changed[rng.Intn(rows)] = true
	}
	for r := range changed {
		tab.Column(2)[r] = storage.Float(float64(rng.Intn(100000)) / 7.0)
	}
	for i := 0; i < nAppends; i++ {
		tab.MustAppendRow(
			storage.Int(int64(rows+i)),
			storage.Str("appended"),
			storage.Float(float64(rng.Intn(1000))),
		)
	}
	return seededEdit{changedRows: sortedKeys(changed), rowsAdded: nAppends}
}

func TestTimeTravelGate(t *testing.T) {
	s := NewMemory()
	rng := rand.New(rand.NewSource(20260808))
	db := demoDB(ttRows)
	tab, err := db.Get("metrics")
	if err != nil {
		t.Fatalf("get table: %v", err)
	}

	const K = 6
	var (
		commits  []Commit
		captured [][]string
		edits    []seededEdit // edits[k] transformed version k into k+1
		chunksAt []int
	)
	for k := 0; k < K; k++ {
		if k > 0 {
			edits = append(edits, applyEdit(t, tab, rng, 2+k%3, k%2))
		}
		c, err := s.CommitDatabase("db/main", db, k)
		if err != nil {
			t.Fatalf("commit version %d: %v", k, err)
		}
		commits = append(commits, c)
		captured = append(captured, runQueries(t, db))
		chunksAt = append(chunksAt, s.NumChunks())
	}

	// 1. Every version's AsOf snapshot reproduces its captured results
	// byte for byte.
	for k := 0; k < K; k++ {
		snap, c, err := s.DatabaseAsOf("db/main", k)
		if err != nil {
			t.Fatalf("DatabaseAsOf(%d): %v", k, err)
		}
		if c.Hash != commits[k].Hash {
			t.Fatalf("AsOf(%d) resolved %s, want %s", k, c.Hash, commits[k].Hash)
		}
		got := runQueries(t, snap)
		for i := range ttQueries {
			if got[i] != captured[k][i] {
				t.Fatalf("version %d query %q drifted:\nat commit time:\n%s\nvia AsOf:\n%s",
					k, ttQueries[i], captured[k][i], got[i])
			}
		}
	}

	// 2. Diff between adjacent versions reports exactly the seeded
	// edits.
	for k := 1; k < K; k++ {
		rep, err := s.Diff(commits[k-1].Hash, commits[k].Hash)
		if err != nil {
			t.Fatalf("Diff(%d,%d): %v", k-1, k, err)
		}
		if len(rep.Tables) != 1 || rep.Tables[0].Table != "metrics" {
			t.Fatalf("Diff(%d,%d) tables = %+v, want exactly metrics", k-1, k, rep.Tables)
		}
		td := rep.Tables[0]
		want := edits[k-1]
		if fmt.Sprint(td.ChangedRows) != fmt.Sprint(want.changedRows) {
			t.Fatalf("Diff(%d,%d) changed rows = %v, want %v", k-1, k, td.ChangedRows, want.changedRows)
		}
		if td.RowsAdded != want.rowsAdded || td.RowsRemoved != 0 {
			t.Fatalf("Diff(%d,%d) rows added/removed = %d/%d, want %d/0",
				k-1, k, td.RowsAdded, td.RowsRemoved, want.rowsAdded)
		}
	}
	// Self-diff is empty.
	rep, err := s.Diff(commits[2].Hash, commits[2].Hash)
	if err != nil || len(rep.Tables) != 0 {
		t.Fatalf("self diff = %+v, %v; want empty", rep, err)
	}

	// 3. Structural sharing: the first commit writes the whole table
	// (many chunks); each delta commit writes O(delta) chunks — the
	// edited leaves plus the table/db/commit spine — far fewer than a
	// fresh encoding would.
	full := chunksAt[0]
	minLeaves := ttRows / DefaultLeafRows // per column
	// At least the id and value columns have all-distinct leaves (the
	// region column's periodic leaves dedup amongst themselves).
	if full < 2*minLeaves {
		t.Fatalf("initial commit wrote %d chunks; table should span at least %d leaves", full, 2*minLeaves)
	}
	for k := 1; k < K; k++ {
		delta := chunksAt[k] - chunksAt[k-1]
		// Worst case per seeded edit: ~4 distinct value leaves + 1 id
		// leaf + 1 region leaf (appends) + table + db + commit.
		if delta > full/2 {
			t.Fatalf("commit %d grew the store by %d chunks (full table is %d): O(table), not O(delta)",
				k, delta, full)
		}
		if delta > 12 {
			t.Fatalf("commit %d grew the store by %d chunks, want <= 12 for <=4 seeded edits", k, delta)
		}
	}
}

func TestMaterializePreservesSchemaMetadata(t *testing.T) {
	s := NewMemory()
	db := demoDB(10)
	tab, err := db.Get("metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	tab.Description = "per-region metric samples"
	c, err := s.CommitDatabase("db/main", db, 0)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	got, err := s.MaterializeDatabase(c.Hash) // commit hash resolves to tree
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	gt, err := got.Get("metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if gt.Description != "per-region metric samples" {
		t.Fatalf("table description lost: %q", gt.Description)
	}
	if gt.Schema()[1].Description != "sales region" {
		t.Fatalf("column description lost: %+v", gt.Schema()[1])
	}
	if gt.Schema()[2].Kind != storage.KindFloat {
		t.Fatalf("column kind lost: %+v", gt.Schema()[2])
	}
}

func TestEncodeDatabaseCanonicalOrder(t *testing.T) {
	s := NewMemory()
	mk := func(names ...string) *storage.Database {
		db := storage.NewDatabase("demo")
		for _, n := range names {
			tab := storage.NewTable(n, storage.Schema{{Name: "x", Kind: storage.KindInt}})
			tab.MustAppendRow(storage.Int(1))
			db.Put(tab)
		}
		return db
	}
	a, err := s.EncodeDatabase(mk("alpha", "beta"), 0)
	if err != nil {
		t.Fatalf("encode a: %v", err)
	}
	b, err := s.EncodeDatabase(mk("beta", "alpha"), 0)
	if err != nil {
		t.Fatalf("encode b: %v", err)
	}
	if a != b {
		t.Fatalf("registration order leaked into the hash: %s vs %s", a, b)
	}
}
