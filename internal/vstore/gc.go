package vstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// GC is mark-and-sweep collection of chunks unreachable from any
// commit of any root. It is safe to run concurrently with Put,
// AddPacket, and Commit; two mechanisms keep a racing commit's chunks
// alive:
//
//   - Epoch write barrier with pins. Every Put/AddPacket — including
//     a dedup hit on content already stored — re-touches the chunk's
//     epoch, and a multi-chunk write (encode + commit) holds a Pin
//     recording the epoch it started at. The sweep spares any chunk
//     touched at or after the oldest active pin (or its own epoch if
//     no pin is active), so a tree being encoded mid-sweep — or
//     across several sweeps — survives even though nothing reachable
//     points at it yet. Encoders always Put every node of the tree
//     they build (dedup makes the unchanged ones free), which is
//     exactly what arms the barrier.
//
//   - Head re-scan under the sweep lock. Marking runs without the
//     write lock, so a root can be committed after the mark set was
//     computed. The sweep phase re-reads the root logs under the
//     exclusive lock and marks any commits that appeared since, then
//     deletes. A commit that starts after the sweep takes the lock
//     simply waits for it.
//
// The surviving chunks are rewritten into a fresh pack (temp + fsync
// + rename + dir fsync) so on-disk space is actually reclaimed.

// GCStats reports what a collection did.
type GCStats struct {
	Live    int // chunks retained as reachable
	Spared  int // unreachable but epoch-protected (in-flight commits)
	Swept   int // chunks deleted
	Rescans int // heads discovered by the under-lock re-scan
}

// GC collects unreachable chunks and compacts the pack file.
func (s *Store) GC() (GCStats, error) {
	// Phase 1: open a new epoch and snapshot the current heads.
	s.mu.Lock()
	s.epoch++
	sweepEpoch := s.epoch
	heads := s.headsLocked()
	s.mu.Unlock()

	if s.cfg.Faults != nil {
		if err := s.cfg.Faults.Inject("vstore.gc.mark"); err != nil {
			return GCStats{}, err
		}
	}

	// Phase 2: mark, read-locked per step so writers keep flowing.
	marked := map[Hash]bool{}
	s.markFrom(heads, marked)

	if s.cfg.Faults != nil {
		if err := s.cfg.Faults.Inject("vstore.gc.sweep"); err != nil {
			return GCStats{}, err
		}
	}

	// Phase 3: sweep under the exclusive lock, after re-marking from
	// any head committed while phase 2 ran.
	s.mu.Lock()
	defer s.mu.Unlock()
	var stats GCStats
	for _, h := range s.headsLocked() {
		if !marked[h] {
			stats.Rescans++
			s.markFromLocked(h, marked)
		}
	}
	// The barrier guard: everything written at or after the oldest
	// active pin's epoch is an in-flight write and must survive.
	guard := sweepEpoch
	for _, e := range s.pins {
		if e < guard {
			guard = e
		}
	}
	doomed := make([]Hash, 0)
	for h, c := range s.chunks {
		switch {
		case marked[h]:
			stats.Live++
		case c.epoch >= guard:
			stats.Spared++
		default:
			doomed = append(doomed, h)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	for _, h := range doomed {
		delete(s.chunks, h)
	}
	stats.Swept = len(doomed)
	if stats.Swept > 0 {
		if err := s.rewritePackLocked(); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// Pin marks the start of a multi-chunk write and returns its release.
// While held, no chunk put at or after the pin's epoch is swept —
// even across multiple GC rounds — closing the window where an
// encode's early chunks are collected before its root is committed.
// Release exactly once the root is durably committed (or the write
// abandoned); the release function is idempotent.
func (s *Store) Pin() func() {
	s.mu.Lock()
	id := s.pinSeq
	s.pinSeq++
	s.pins[id] = s.epoch
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.pins, id)
			s.mu.Unlock()
		})
	}
}

// headsLocked lists every commit hash of every root. Caller holds
// s.mu (either mode).
func (s *Store) headsLocked() []Hash {
	names := make([]string, 0, len(s.roots)) // cdalint:ignore racy-access -- *Locked helper: caller holds s.mu
	for name := range s.roots {              // cdalint:ignore racy-access -- *Locked helper: caller holds s.mu
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Hash
	for _, name := range names {
		for _, c := range s.roots[name] { // cdalint:ignore racy-access -- *Locked helper: caller holds s.mu
			out = append(out, c.Hash)
		}
	}
	return out
}

// markFrom walks the ref graph from the given heads, taking the read
// lock per chunk fetch so it can interleave with writers.
func (s *Store) markFrom(heads []Hash, marked map[Hash]bool) {
	stack := append([]Hash(nil), heads...)
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if marked[h] {
			continue
		}
		s.mu.RLock()
		c, ok := s.chunks[h]
		var refs []Hash
		if ok {
			refs = append(refs, c.refs...)
		}
		s.mu.RUnlock()
		if !ok {
			continue
		}
		marked[h] = true
		stack = append(stack, refs...)
	}
}

// markFromLocked is markFrom for the sweep phase; caller holds the
// exclusive lock.
func (s *Store) markFromLocked(head Hash, marked map[Hash]bool) {
	stack := []Hash{head}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if marked[h] {
			continue
		}
		c, ok := s.chunks[h] // cdalint:ignore racy-access -- *Locked helper: caller holds s.mu exclusively
		if !ok {
			continue
		}
		marked[h] = true
		stack = append(stack, c.refs...)
	}
}

// rewritePackLocked rebuilds the pack from the surviving index (temp
// + fsync + rename + dir fsync). Caller holds s.mu exclusively.
func (s *Store) rewritePackLocked() error {
	if s.pack == nil {
		return nil
	}
	path := filepath.Join(s.cfg.Dir, packName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("vstore: create pack temp %s: %w", tmp, err)
	}
	hashes := make([]Hash, 0, len(s.chunks)) // cdalint:ignore racy-access -- *Locked helper: caller holds s.mu exclusively
	for h := range s.chunks {                // cdalint:ignore racy-access -- *Locked helper: caller holds s.mu exclusively
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, h := range hashes {
		if _, err := f.Write(packFrame(s.chunks[h].data)); err != nil { // cdalint:ignore racy-access -- *Locked helper: caller holds s.mu exclusively
			cerr := f.Close()
			if cerr != nil {
				return fmt.Errorf("vstore: rewrite pack %s: %v (and close: %v)", tmp, err, cerr)
			}
			return fmt.Errorf("vstore: rewrite pack %s: %w", tmp, err)
		}
	}
	if !s.cfg.NoFsync {
		if err := f.Sync(); err != nil {
			cerr := f.Close()
			if cerr != nil {
				return fmt.Errorf("vstore: fsync pack %s: %v (and close: %v)", tmp, err, cerr)
			}
			return fmt.Errorf("vstore: fsync pack %s: %w", tmp, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("vstore: close pack temp %s: %w", tmp, err)
	}
	// cdalint:ignore fsync-order -- NoFsync is a benchmark-only escape
	// hatch; with fsync on, Sync precedes the rename as required.
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("vstore: publish pack %s: %w", path, err)
	}
	if !s.cfg.NoFsync {
		if err := syncDir(s.cfg.Dir); err != nil {
			return err
		}
	}
	old := s.pack
	s.pack = nil
	if err := old.Close(); err != nil {
		return fmt.Errorf("vstore: close old pack: %w", err)
	}
	reopened, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("vstore: reopen pack %s: %w", path, err)
	}
	s.pack = reopened
	s.packN = len(hashes)
	return nil
}
