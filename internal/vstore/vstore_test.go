package vstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/reliable-cda/cda/internal/storage"
)

func mustPut(t *testing.T, s *Store, kind string, refs []Hash, data string) Hash {
	t.Helper()
	var d []byte
	if data != "" {
		d = []byte(data)
	}
	h, err := s.Put(kind, refs, d)
	if err != nil {
		t.Fatalf("Put(%s): %v", kind, err)
	}
	return h
}

func TestPutDedupsByContent(t *testing.T) {
	s := NewMemory()
	a := mustPut(t, s, "leaf", nil, `[1,2,3]`)
	b := mustPut(t, s, "leaf", nil, `[1,2,3]`)
	if a != b {
		t.Fatalf("identical content got different hashes: %s vs %s", a, b)
	}
	if n := s.NumChunks(); n != 1 {
		t.Fatalf("NumChunks = %d, want 1 (dedup)", n)
	}
	c := mustPut(t, s, "leaf", nil, `[1,2,4]`)
	if c == a {
		t.Fatalf("different content got the same hash")
	}
}

func TestChunkRoundTrip(t *testing.T) {
	s := NewMemory()
	leaf := mustPut(t, s, "leaf", nil, `[1,2]`)
	node := mustPut(t, s, "table", []Hash{leaf}, `{"rows":2}`)
	kind, err := s.Kind(node)
	if err != nil || kind != "table" {
		t.Fatalf("Kind = %q, %v; want table", kind, err)
	}
	refs, err := s.Refs(node)
	if err != nil || len(refs) != 1 || refs[0] != leaf {
		t.Fatalf("Refs = %v, %v; want [%s]", refs, err, leaf)
	}
	var data struct {
		Rows int `json:"rows"`
	}
	if _, err := s.Data(node, &data); err != nil || data.Rows != 2 {
		t.Fatalf("Data = %+v, %v", data, err)
	}
	if _, err := s.Kind(Hash("feed")); !errors.Is(err, ErrUnknownChunk) {
		t.Fatalf("Kind(absent) err = %v, want ErrUnknownChunk", err)
	}
}

func TestCommitLogAndAsOf(t *testing.T) {
	s := NewMemory()
	t1 := mustPut(t, s, "db", nil, `{"v":1}`)
	t2 := mustPut(t, s, "db", nil, `{"v":2}`)
	t3 := mustPut(t, s, "db", nil, `{"v":3}`)
	c1, err := s.Commit("db/main", t1, 0)
	if err != nil {
		t.Fatalf("commit 1: %v", err)
	}
	c2, err := s.Commit("db/main", t2, 3)
	if err != nil {
		t.Fatalf("commit 2: %v", err)
	}
	c3, err := s.Commit("db/main", t3, 7)
	if err != nil {
		t.Fatalf("commit 3: %v", err)
	}
	if c1.Parent != "" || c2.Parent != c1.Hash || c3.Parent != c2.Hash {
		t.Fatalf("parent chain broken: %+v %+v %+v", c1, c2, c3)
	}
	if !(c1.Stamp < c2.Stamp && c2.Stamp < c3.Stamp) {
		t.Fatalf("stamps not increasing: %d %d %d", c1.Stamp, c2.Stamp, c3.Stamp)
	}
	head, err := s.Head("db/main")
	if err != nil || head.Hash != c3.Hash {
		t.Fatalf("Head = %+v, %v; want c3", head, err)
	}
	for _, tc := range []struct {
		turn int
		want Hash
	}{{0, c1.Hash}, {2, c1.Hash}, {3, c2.Hash}, {6, c2.Hash}, {7, c3.Hash}, {100, c3.Hash}} {
		got, err := s.AsOf("db/main", tc.turn)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", tc.turn, err)
		}
		if got.Hash != tc.want {
			t.Fatalf("AsOf(%d) = %s, want %s", tc.turn, got.Hash, tc.want)
		}
	}
	if _, err := s.AsOf("db/main", -1); err == nil {
		t.Fatalf("AsOf before first commit should fail")
	}
	if _, err := s.Head("nope"); !errors.Is(err, ErrUnknownRoot) {
		t.Fatalf("Head(absent root) err = %v, want ErrUnknownRoot", err)
	}
	if _, err := s.Commit("db/main", Hash("beef"), 9); !errors.Is(err, ErrUnknownChunk) {
		t.Fatalf("Commit(absent tree) err = %v, want ErrUnknownChunk", err)
	}
	got, name, err := s.CommitByHash(c2.Hash)
	if err != nil || name != "db/main" || got.Turn != 3 {
		t.Fatalf("CommitByHash = %+v, %q, %v", got, name, err)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	leaf := mustPut(t, s, "leaf", nil, `[42]`)
	tree := mustPut(t, s, "db", []Hash{leaf}, `{"v":1}`)
	c, err := s.Commit("db/main", tree, 5)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Errorf("close reopened: %v", err)
		}
	}()
	if !r.Has(leaf) || !r.Has(tree) || !r.Has(c.Hash) {
		t.Fatalf("chunks lost across reopen")
	}
	head, err := r.Head("db/main")
	if err != nil || head.Hash != c.Hash || head.Turn != 5 {
		t.Fatalf("Head after reopen = %+v, %v", head, err)
	}
	// Stamps continue where the previous incarnation stopped.
	tree2 := mustPut(t, r, "db", nil, `{"v":2}`)
	c2, err := r.Commit("db/main", tree2, 6)
	if err != nil {
		t.Fatalf("commit after reopen: %v", err)
	}
	if c2.Stamp <= c.Stamp {
		t.Fatalf("stamp regressed across reopen: %d then %d", c.Stamp, c2.Stamp)
	}
}

func TestTornPackTailTruncates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	good := mustPut(t, s, "leaf", nil, `[1]`)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Simulate a crash mid-append: a valid header promising more
	// payload bytes than were written.
	path := filepath.Join(dir, packName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open pack: %v", err)
	}
	torn := packFrame([]byte(`{"k":"leaf","d":[9,9,9]}`))
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatalf("write torn frame: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close pack: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read pack: %v", err)
	}

	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if !r.Has(good) {
		t.Fatalf("valid prefix lost")
	}
	if n := r.NumChunks(); n != 1 {
		t.Fatalf("NumChunks = %d, want 1", n)
	}
	// The torn tail is physically truncated, so the next append
	// produces a clean frame boundary.
	next := mustPut(t, r, "leaf", nil, `[2]`)
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read pack after: %v", err)
	}
	if len(after) >= len(before)+packHeaderSize {
		t.Fatalf("torn tail not truncated: %d bytes then %d", len(before), len(after))
	}
	rr, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer func() {
		if err := rr.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if !rr.Has(good) || !rr.Has(next) {
		t.Fatalf("chunks lost after truncate+append")
	}
}

func TestCorruptPackFrameStopsScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustPut(t, s, "leaf", nil, `[1]`)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	path := filepath.Join(dir, packName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip a payload byte: CRC mismatch must drop the frame.
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if n := r.NumChunks(); n != 0 {
		t.Fatalf("NumChunks = %d, want 0 after CRC-failed frame", n)
	}
}

func TestPacketsVerifyHashes(t *testing.T) {
	s := NewMemory()
	h := mustPut(t, s, "leaf", nil, `[7]`)
	p, err := s.PacketOf(h)
	if err != nil {
		t.Fatalf("PacketOf: %v", err)
	}
	dst := NewMemory()
	if err := dst.AddPacket(p); err != nil {
		t.Fatalf("AddPacket: %v", err)
	}
	if !dst.Has(h) {
		t.Fatalf("packet not installed")
	}
	forged := Packet{Hash: p.Hash, Data: append(bytes.Clone(p.Data), ' ')}
	if err := dst.AddPacket(forged); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("forged packet err = %v, want ErrBadPacket", err)
	}
}

func TestWantListAndPullFromShipOnlyDelta(t *testing.T) {
	src := NewMemory()
	db := demoDB(2000)
	c1, err := src.CommitDatabase("db/main", db, 0)
	if err != nil {
		t.Fatalf("commit v1: %v", err)
	}

	dst := NewMemory()
	if got := dst.WantList(c1.Hash, 0); len(got) != 1 || got[0] != c1.Hash {
		t.Fatalf("WantList on empty store = %v, want just the target", got)
	}
	moved1, err := dst.PullFrom(src, c1.Hash, 8)
	if err != nil {
		t.Fatalf("PullFrom v1: %v", err)
	}
	if !dst.HasClosure(c1.Hash) {
		t.Fatalf("closure incomplete after pull")
	}
	closure, err := src.Closure(c1.Hash)
	if err != nil {
		t.Fatalf("Closure: %v", err)
	}
	if moved1 != len(closure) {
		t.Fatalf("moved %d chunks, closure has %d", moved1, len(closure))
	}

	// Small edit → second version; the pull must ship only the delta.
	tab, err := db.Get("metrics")
	if err != nil {
		t.Fatalf("get table: %v", err)
	}
	tab.Column(2)[5] = storage.Float(999.5)
	c2, err := src.CommitDatabase("db/main", db, 1)
	if err != nil {
		t.Fatalf("commit v2: %v", err)
	}
	moved2, err := dst.PullFrom(src, c2.Hash, 8)
	if err != nil {
		t.Fatalf("PullFrom v2: %v", err)
	}
	if moved2 >= moved1/2 {
		t.Fatalf("delta pull moved %d chunks (full transfer was %d); negotiation is not sharing structure", moved2, moved1)
	}
	got, err := dst.MaterializeDatabase(c2.Tree)
	if err != nil {
		t.Fatalf("materialize on replica: %v", err)
	}
	gt, err := got.Get("metrics")
	if err != nil {
		t.Fatalf("replica table: %v", err)
	}
	if !gt.At(5, 2).Equal(storage.Float(999.5)) {
		t.Fatalf("replica row 5 = %v, want 999.5", gt.At(5, 2))
	}
}

func TestDeleteRootAndTruncateLog(t *testing.T) {
	s := NewMemory()
	tr := mustPut(t, s, "db", nil, `{"v":1}`)
	if _, err := s.Commit("a", tr, 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := s.Commit("a", tr, 1); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := s.Commit("a", tr, 2); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := s.TruncateLog("a", 2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	log, err := s.Log("a")
	if err != nil || len(log) != 2 || log[0].Turn != 1 {
		t.Fatalf("Log after truncate = %+v, %v", log, err)
	}
	if err := s.DeleteRoot("a"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := s.Log("a"); !errors.Is(err, ErrUnknownRoot) {
		t.Fatalf("Log after delete err = %v", err)
	}
	if err := s.DeleteRoot("a"); !errors.Is(err, ErrUnknownRoot) {
		t.Fatalf("double delete err = %v", err)
	}
}

// demoDB builds a deterministic 3-column table for codec tests.
func demoDB(rows int) *storage.Database {
	db := storage.NewDatabase("demo")
	t := storage.NewTable("metrics", storage.Schema{
		{Name: "id", Kind: storage.KindInt},
		{Name: "region", Kind: storage.KindString, Description: "sales region"},
		{Name: "value", Kind: storage.KindFloat},
	})
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			storage.Int(int64(i)),
			storage.Str(regions[i%len(regions)]),
			storage.Float(float64(i)*1.5),
		)
	}
	db.Put(t)
	return db
}
