// Package vstore is the content-addressed, versioned store underlying
// the repo's time-travel and cheap-replica-catch-up features (P3
// provenance, P4 reproducibility at scale): every piece of analytical
// state — storage tables, session transcripts, shard snapshots — is
// encoded as a Merkle tree of immutable chunks addressed by the
// SHA-256 of their bytes, so two encodings of equal state share every
// chunk, and committing a new version after a small change writes
// only the changed chunks plus the path to the root.
//
// The store keeps three things:
//
//   - chunks: immutable byte payloads in an in-memory index, mirrored
//     to a CRC-framed append-only pack file (torn tails from a crash
//     truncate cleanly on open, exactly like the session store's WAL);
//   - roots: named version lines ("db/main", "session/s0001",
//     "shard/03"), each a commit log of (commit hash, parent hash,
//     turn number, wall-free logical stamp), published atomically
//     (temp file + fsync + rename + parent-dir fsync);
//   - a garbage collector: mark-and-sweep from every commit of every
//     root, with an epoch write barrier so chunks put or re-touched
//     while a sweep is running are never collected (see gc.go).
//
// A chunk's payload is a self-describing JSON envelope
// {"k": kind, "r": [child hashes], "d": data}, so replication can
// walk a tree generically (have/want negotiation over chunk hashes)
// without knowing the schema of what it is shipping.
package vstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Hash is a chunk address: the lowercase hex SHA-256 of the chunk's
// payload bytes.
type Hash string

// Packet is one chunk as shipped over the wire: its address plus the
// exact payload bytes. The receiver re-hashes the bytes, so a corrupt
// or forged packet is rejected rather than installed.
type Packet struct {
	Hash Hash   `json:"hash"`
	Data []byte `json:"data"`
}

// Commit is one entry of a root's version log.
type Commit struct {
	// Hash addresses the commit chunk (kind "commit", refs = [Tree]).
	Hash Hash `json:"hash"`
	// Tree is the data root this commit pins (a db, session, or shard
	// snapshot chunk).
	Tree Hash `json:"tree"`
	// Parent is the previous commit on this root ("" for the first).
	// Parents are recorded here and in the commit chunk's data — not
	// in its refs — so fetching one version's closure never drags the
	// whole history across the wire.
	Parent Hash `json:"parent,omitempty"`
	// Turn is the caller's logical position (committed turn count,
	// replication cursor, …) at commit time; AsOf resolves against it.
	Turn int `json:"turn"`
	// Stamp is the store-wide logical commit sequence — wall-free, so
	// two runs of one seeded scenario stamp identically.
	Stamp int64 `json:"stamp"`
}

// FaultHook is the chaos seam (see internal/faults): when non-nil it
// is consulted on put, commit, and GC phase boundaries and may return
// an injected error or add seeded latency — the interleaving source
// the GC-under-concurrent-commit tests drive.
type FaultHook interface {
	Inject(op string) error
}

// Config assembles a Store.
type Config struct {
	// Dir is the data directory; empty runs the store memory-only.
	Dir string
	// NoFsync skips fsync on pack appends and root publishes —
	// benchmarks only.
	NoFsync bool
	// Faults, when non-nil, injects deterministic chaos faults into
	// vstore operations ("vstore.put", "vstore.commit",
	// "vstore.gc.mark", "vstore.gc.sweep"). Leave nil in production.
	Faults FaultHook
}

// ErrUnknownChunk is returned by Get/Packet for an absent address.
var ErrUnknownChunk = errors.New("vstore: unknown chunk")

// ErrUnknownRoot is returned for an absent root name.
var ErrUnknownRoot = errors.New("vstore: unknown root")

// ErrBadPacket is returned when a packet's bytes do not hash to its
// claimed address.
var ErrBadPacket = errors.New("vstore: packet bytes do not match hash")

// chunk is one stored chunk plus its GC bookkeeping.
type chunk struct {
	data []byte
	refs []Hash
	// epoch is the GC epoch the chunk was last put or re-touched in;
	// the sweep spares any chunk touched at or after the sweep's own
	// epoch (the write barrier for in-flight commits).
	epoch uint64
}

// envelope is the chunk payload schema.
type envelope struct {
	K string          `json:"k"`
	R []Hash          `json:"r,omitempty"`
	D json.RawMessage `json:"d,omitempty"`
}

// Store is the content-addressed chunk store. Safe for concurrent
// use: chunks are immutable once put, and the index, roots, and pack
// file are guarded by one mutex.
type Store struct {
	cfg Config

	mu     sync.RWMutex
	chunks map[Hash]*chunk
	roots  map[string][]Commit
	stamp  int64  // store-wide logical commit sequence
	epoch  uint64 // GC epoch counter (see gc.go)
	pins   map[uint64]uint64
	pinSeq uint64
	pack   *os.File
	packN  int // frames in the pack (rewrite bookkeeping)
}

// Pack framing: [magic 1B][payload length uint32 LE][payload crc32
// uint32 LE][payload]. The payload is one chunk envelope; its address
// is recomputed on load, so the pack needs no separate hash column.
const (
	packMagic      = byte(0xC6)
	packHeaderSize = 1 + 4 + 4
)

const (
	packName  = "chunks.pack"
	rootsName = "roots.json"
)

// rootsDoc is the on-disk roots.json schema.
type rootsDoc struct {
	Stamp int64               `json:"stamp"`
	Roots map[string][]Commit `json:"roots"`
}

// Open builds a store over cfg.Dir (created if needed), loading the
// pack and roots files; an empty Dir is memory-only.
func Open(cfg Config) (*Store, error) {
	s := &Store{cfg: cfg, chunks: map[Hash]*chunk{}, roots: map[string][]Commit{}, pins: map[uint64]uint64{}}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("vstore: create %s: %w", cfg.Dir, err)
	}
	if err := s.loadRoots(); err != nil {
		return nil, err
	}
	if err := s.openPack(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewMemory builds a memory-only store; it cannot fail.
func NewMemory() *Store {
	s, err := Open(Config{})
	if err != nil {
		// Unreachable: every error path in Open touches the data
		// directory, and there is none.
		// cdalint:ignore bare-panic -- impossible-by-construction guard.
		panic(fmt.Sprintf("vstore: memory-only open failed: %v", err))
	}
	return s
}

func (s *Store) loadRoots(
// (split for line length only)
) error {
	path := filepath.Join(s.cfg.Dir, rootsName)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("vstore: read %s: %w", path, err)
	}
	var doc rootsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		// roots.json is published atomically; damage means something
		// outside the store's crash model touched it.
		return fmt.Errorf("vstore: decode %s: %w", path, err)
	}
	s.stamp = doc.Stamp // cdalint:ignore racy-access -- Open-time load, before the store is published
	for name, log := range doc.Roots {
		s.roots[name] = log // cdalint:ignore racy-access -- Open-time load, before the store is published
	}
	return nil
}

// openPack opens (creating if absent) the chunk pack, scans it into
// the index, and truncates any torn tail left by a crash mid-append.
func (s *Store) openPack() error {
	path := filepath.Join(s.cfg.Dir, packName)
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("vstore: read pack %s: %w", path, err)
	}
	valid := s.scanPack(raw)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("vstore: open pack %s: %w", path, err)
	}
	if valid < int64(len(raw)) {
		if terr := f.Truncate(valid); terr != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("vstore: truncate torn pack tail %s: %w", path, terr), cerr)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("vstore: seek pack %s: %w", path, err), cerr)
	}
	s.pack = f
	return nil
}

// scanPack indexes the longest valid frame prefix of raw and returns
// the byte offset of the end of the last complete frame.
func (s *Store) scanPack(raw []byte) int64 {
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) < packHeaderSize || rest[0] != packMagic {
			return off
		}
		n := binary.LittleEndian.Uint32(rest[1:5])
		sum := binary.LittleEndian.Uint32(rest[5:9])
		if uint32(len(rest)-packHeaderSize) < n {
			return off
		}
		payload := rest[packHeaderSize : packHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return off
		}
		var env envelope
		if err := json.Unmarshal(payload, &env); err != nil {
			return off
		}
		data := append([]byte(nil), payload...)
		s.chunks[hashBytes(data)] = &chunk{data: data, refs: env.R} // cdalint:ignore racy-access -- Open-time load, before the store is published
		s.packN++
		off += int64(packHeaderSize) + int64(n)
	}
}

// hashBytes addresses a payload.
func hashBytes(b []byte) Hash {
	sum := sha256.Sum256(b)
	return Hash(hex.EncodeToString(sum[:]))
}

// frame wraps a payload in the pack framing.
func packFrame(payload []byte) []byte {
	buf := make([]byte, packHeaderSize+len(payload))
	buf[0] = packMagic
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[packHeaderSize:], payload)
	return buf
}

// appendPack writes payloads durably to the pack. Caller holds s.mu.
func (s *Store) appendPack(payloads [][]byte) error {
	if s.pack == nil || len(payloads) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		buf.Write(packFrame(p))
	}
	if _, err := s.pack.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("vstore: append pack: %w", err)
	}
	if !s.cfg.NoFsync {
		if err := s.pack.Sync(); err != nil {
			return fmt.Errorf("vstore: fsync pack: %w", err)
		}
	}
	s.packN += len(payloads)
	return nil
}

// encode renders an envelope canonically (json.Marshal of a struct is
// field-ordered, so equal envelopes hash equally).
func encodeEnvelope(kind string, refs []Hash, data []byte) ([]byte, error) {
	env := envelope{K: kind, R: refs, D: data}
	payload, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("vstore: encode %s chunk: %w", kind, err)
	}
	return payload, nil
}

// Put stores one chunk, returning its address. Re-putting identical
// content is free (content addressing dedups) but still re-touches
// the chunk's GC epoch — the write barrier that keeps a tree being
// committed mid-sweep alive. data must be valid JSON (or nil).
func (s *Store) Put(kind string, refs []Hash, data []byte) (Hash, error) {
	if s.cfg.Faults != nil {
		if err := s.cfg.Faults.Inject("vstore.put"); err != nil {
			return "", err
		}
	}
	payload, err := encodeEnvelope(kind, refs, data)
	if err != nil {
		return "", err
	}
	h := hashBytes(payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chunks[h]; ok {
		c.epoch = s.epoch
		return h, nil
	}
	if err := s.appendPack([][]byte{payload}); err != nil {
		return "", err
	}
	s.chunks[h] = &chunk{data: payload, refs: refs, epoch: s.epoch}
	return h, nil
}

// AddPacket installs a chunk shipped from another store, verifying
// its address.
func (s *Store) AddPacket(p Packet) error {
	if hashBytes(p.Data) != p.Hash {
		return fmt.Errorf("%w: %s", ErrBadPacket, p.Hash)
	}
	var env envelope
	if err := json.Unmarshal(p.Data, &env); err != nil {
		return fmt.Errorf("vstore: decode packet %s: %w", p.Hash, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chunks[p.Hash]; ok {
		c.epoch = s.epoch
		return nil
	}
	data := append([]byte(nil), p.Data...)
	if err := s.appendPack([][]byte{data}); err != nil {
		return err
	}
	s.chunks[p.Hash] = &chunk{data: data, refs: env.R, epoch: s.epoch}
	return nil
}

// Has reports whether the chunk is present.
func (s *Store) Has(h Hash) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.chunks[h]
	return ok
}

// get decodes one chunk's envelope. Callers treat the returned data
// as read-only.
func (s *Store) get(h Hash) (envelope, error) {
	s.mu.RLock()
	c, ok := s.chunks[h]
	s.mu.RUnlock()
	if !ok {
		return envelope{}, fmt.Errorf("%w: %s", ErrUnknownChunk, h)
	}
	var env envelope
	if err := json.Unmarshal(c.data, &env); err != nil {
		return envelope{}, fmt.Errorf("vstore: decode chunk %s: %w", h, err)
	}
	return env, nil
}

// Kind returns a chunk's envelope kind.
func (s *Store) Kind(h Hash) (string, error) {
	env, err := s.get(h)
	if err != nil {
		return "", err
	}
	return env.K, nil
}

// Refs returns a chunk's child addresses.
func (s *Store) Refs(h Hash) ([]Hash, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.chunks[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChunk, h)
	}
	return append([]Hash(nil), c.refs...), nil
}

// Data unmarshals a chunk's data field into out and returns its kind.
func (s *Store) Data(h Hash, out any) (string, error) {
	env, err := s.get(h)
	if err != nil {
		return "", err
	}
	if out != nil && env.D != nil {
		if err := json.Unmarshal(env.D, out); err != nil {
			return env.K, fmt.Errorf("vstore: decode %s chunk %s data: %w", env.K, h, err)
		}
	}
	return env.K, nil
}

// PacketOf exports one chunk in wire form.
func (s *Store) PacketOf(h Hash) (Packet, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.chunks[h]
	if !ok {
		return Packet{}, fmt.Errorf("%w: %s", ErrUnknownChunk, h)
	}
	return Packet{Hash: h, Data: append([]byte(nil), c.data...)}, nil
}

// Packets exports several chunks in wire form (replication fetch).
func (s *Store) Packets(hs []Hash) ([]Packet, error) {
	out := make([]Packet, 0, len(hs))
	for _, h := range hs {
		p, err := s.PacketOf(h)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// NumChunks reports the index size (structural-sharing assertions).
func (s *Store) NumChunks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// syncDir fsyncs a directory so a rename into it survives a crash on
// filesystems that do not order directory updates with data writes.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("vstore: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		cerr := d.Close()
		return errors.Join(fmt.Errorf("vstore: fsync dir %s: %w", dir, err), cerr)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("vstore: close dir %s: %w", dir, err)
	}
	return nil
}

// publishRoots atomically replaces roots.json (temp + fsync + rename
// + dir fsync). Caller holds s.mu.
func (s *Store) publishRoots() error {
	if s.cfg.Dir == "" {
		return nil
	}
	doc := rootsDoc{Stamp: s.stamp, Roots: s.roots} // cdalint:ignore racy-access -- *Locked-style helper: caller holds s.mu
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("vstore: encode roots: %w", err)
	}
	path := filepath.Join(s.cfg.Dir, rootsName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("vstore: create roots temp %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("vstore: write roots %s: %w", tmp, err), cerr)
	}
	if !s.cfg.NoFsync {
		if err := f.Sync(); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("vstore: fsync roots %s: %w", tmp, err), cerr)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("vstore: close roots %s: %w", tmp, err)
	}
	// cdalint:ignore fsync-order -- NoFsync is a benchmark-only escape
	// hatch that deliberately skips the Sync; production callers always
	// keep fsync on, so the durable-write protocol holds.
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("vstore: publish roots %s: %w", path, err)
	}
	if s.cfg.NoFsync {
		return nil
	}
	return syncDir(s.cfg.Dir)
}

// Close releases the pack file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pack == nil {
		return nil
	}
	err := s.pack.Close()
	s.pack = nil
	if err != nil {
		return fmt.Errorf("vstore: close pack: %w", err)
	}
	return nil
}
