package chaos

import (
	"context"
	"regexp"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/faults"
)

// turnHeader matches the "NNN role" prefix sessionstore.Transcript
// gives each turn; answer bodies may hold newlines, so counting these
// is the only safe way to count turns in a rendered transcript.
var turnHeader = regexp.MustCompile(`(?m)^[0-9]{3} `)

func countTurns(transcript string) int {
	return len(turnHeader.FindAllString(transcript, -1))
}

// TestKillRecoverByteIdentical is the recovery contract under a clean
// kill: every committed turn survives, byte for byte, and nothing
// uncommitted leaks in.
func TestKillRecoverByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		res, err := KillRecover(context.Background(), KillRecoverScenario{
			Seed: seed, KillAfter: 5, Dir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Committed != 5 || res.Killed {
			t.Fatalf("seed %d: committed=%d killed=%t, want 5/false", seed, res.Committed, res.Killed)
		}
		if res.Recovered != res.PreCrash {
			t.Errorf("seed %d: recovered transcript differs from pre-crash:\npre:  %q\npost: %q",
				seed, res.PreCrash, res.Recovered)
		}
		if !strings.HasPrefix(res.Final, res.Recovered) {
			t.Errorf("seed %d: final transcript does not extend the recovered one", seed)
		}
		// 5 user turns committed -> 10 transcript entries.
		if n := countTurns(res.PreCrash); n != 10 {
			t.Errorf("seed %d: pre-crash transcript has %d turns, want 10", seed, n)
		}
	}
}

// TestKillRecoverUnderTornWrites drives the crash injector: the kill
// lands mid-append at a seeded byte, and recovery must still serve
// exactly the committed prefix — a rolled-back torn turn never
// reappears, a committed one never vanishes.
func TestKillRecoverUnderTornWrites(t *testing.T) {
	killedSomewhere := false
	for seed := int64(1); seed <= 8; seed++ {
		res, err := KillRecover(context.Background(), KillRecoverScenario{
			Seed: seed, CrashRate: 0.25, KillAfter: 8, Dir: t.TempDir(),
			Rates: faults.Rates{Error: 0.1},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Killed {
			killedSomewhere = true
		}
		if res.Recovered != res.PreCrash {
			t.Errorf("seed %d (killed=%t committed=%d): recovery diverged:\npre:  %q\npost: %q",
				seed, res.Killed, res.Committed, res.PreCrash, res.Recovered)
		}
		if res.SessionID != "" && countTurns(res.Recovered) != 2*res.Committed {
			t.Errorf("seed %d: %d committed turns but %d recovered entries",
				seed, res.Committed, countTurns(res.Recovered))
		}
	}
	if !killedSomewhere {
		t.Error("crash rate 0.25 never killed across 8 seeds — injector not wired?")
	}
}

// TestKillRecoverDeterministic is the determinism gate: one scenario
// run twice (fresh directories, same seed) must render byte-identical
// transcripts, faults and kill point included.
func TestKillRecoverDeterministic(t *testing.T) {
	scenarios := []KillRecoverScenario{
		{Seed: 1, KillAfter: 5},
		{Seed: 3, CrashRate: 0.25, KillAfter: 8},
		{Seed: 5, CrashRate: 0.25, Rates: faults.Rates{Error: 0.2, Latency: 0.1}, KillAfter: 6},
		{Seed: 11, CrashRate: 1, KillAfter: 4}, // always torn: kill point is the first append
	}
	for _, sc := range scenarios {
		a := sc
		a.Dir = t.TempDir()
		resA, err := KillRecover(context.Background(), a)
		if err != nil {
			t.Fatalf("seed %d run A: %v", sc.Seed, err)
		}
		b := sc
		b.Dir = t.TempDir()
		resB, err := KillRecover(context.Background(), b)
		if err != nil {
			t.Fatalf("seed %d run B: %v", sc.Seed, err)
		}
		if resA.Transcript != resB.Transcript {
			t.Errorf("seed %d: kill-and-recover transcripts diverge across identical runs:\nA: %q\nB: %q",
				sc.Seed, resA.Transcript, resB.Transcript)
		}
		if resA.Recovered != resA.PreCrash {
			t.Errorf("seed %d: recovery not byte-identical", sc.Seed)
		}
	}
}
