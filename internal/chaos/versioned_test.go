package chaos

import (
	"context"
	"strings"
	"testing"
)

func runClusterVersioned(t *testing.T, sc ClusterVersionedScenario) *ClusterVersionedResult {
	t.Helper()
	sc.PrimaryDir, sc.ReplicaDir = t.TempDir(), t.TempDir()
	res, err := ClusterKillRecoverVersioned(context.Background(), sc)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.Seed, err)
	}
	return res
}

// TestClusterKillRecoverVersioned is the versioned failover gate: a
// replica partitioned past the compaction horizon catches up through
// chunk negotiation (not inline snapshots), agrees with the primary
// on the shard root's commit identity, and — promoted after the kill
// — serves and finishes the dialogue.
func TestClusterKillRecoverVersioned(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		res := runClusterVersioned(t, ClusterVersionedScenario{
			Seed: seed, PartitionAfter: 2, PartitionTurns: 4,
		})
		if res.Committed != len(SwissTurns()) {
			t.Errorf("seed %d: committed %d of %d turns", seed, res.Committed, len(SwissTurns()))
		}
		if res.ChunksNegotiated <= 0 {
			t.Errorf("seed %d: heal moved %d chunks — the versioned path never fired",
				seed, res.ChunksNegotiated)
		}
		if !res.ShardRootsMatch {
			t.Errorf("seed %d: shard root heads diverged across nodes after the heal", seed)
		}
		if !strings.Contains(res.Transcript, "promoted=true") {
			t.Errorf("seed %d: transcript does not record the promotion", seed)
		}
		if res.RootLog == "" {
			t.Errorf("seed %d: promoted replica has no session version log", seed)
		}
	}
}

// TestClusterKillRecoverVersionedDeterministic: two runs of one seed
// must render byte-identical transcripts AND byte-identical per-turn
// root hashes — content addressing makes version identity a pure
// function of the conversation.
func TestClusterKillRecoverVersionedDeterministic(t *testing.T) {
	for _, sc := range []ClusterVersionedScenario{
		{Seed: 5, PartitionAfter: 2, PartitionTurns: 4},
		{Seed: 31, PartitionAfter: 1, PartitionTurns: 5},
	} {
		a := runClusterVersioned(t, sc)
		b := runClusterVersioned(t, sc)
		if a.Transcript != b.Transcript {
			t.Errorf("seed %d: versioned kill/recover not deterministic:\n--- run 1\n%s\n--- run 2\n%s",
				sc.Seed, a.Transcript, b.Transcript)
		}
		if a.RootLog != b.RootLog {
			t.Errorf("seed %d: per-turn root hashes differ across runs:\n--- run 1\n%s\n--- run 2\n%s",
				sc.Seed, a.RootLog, b.RootLog)
		}
	}
}
