package chaos

import (
	"context"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/faults"
)

func runClusterKill(t *testing.T, sc ClusterScenario) *ClusterKillResult {
	t.Helper()
	sc.PrimaryDir, sc.ReplicaDir = t.TempDir(), t.TempDir()
	res, err := ClusterKillRecover(context.Background(), sc)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.Seed, err)
	}
	return res
}

// TestClusterKillRecover is the failover acceptance gate: a primary
// killed mid-dialogue (planned, between turns) hands its member over
// to the replica, which serves the byte-identical committed
// transcript and finishes every turn.
func TestClusterKillRecover(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		res := runClusterKill(t, ClusterScenario{Seed: seed, KillAfter: 4})
		if res.TornKill {
			t.Fatalf("seed %d: unplanned torn kill with CrashRate 0", seed)
		}
		if res.Committed != len(SwissTurns()) {
			t.Errorf("seed %d: committed %d of %d turns", seed, res.Committed, len(SwissTurns()))
		}
		if !res.PromotedAtKill {
			t.Fatalf("seed %d: promotion never observed", seed)
		}
		if res.Promoted != res.PreKill {
			t.Errorf("seed %d: promoted replica diverged from committed prefix:\npre-kill:\n%s\npromoted:\n%s",
				seed, res.PreKill, res.Promoted)
		}
		if !strings.Contains(res.Transcript, "promoted=true") {
			t.Errorf("seed %d: transcript does not record the promotion", seed)
		}
	}
}

// TestClusterKillRecoverTornWrite arms the torn-write fault so the
// kill lands mid-commit at a seeded byte: the half-written turn must
// never surface anywhere — not on the recovered replica, not in the
// final transcript.
func TestClusterKillRecoverTornWrite(t *testing.T) {
	sawTorn, sawTornCreate := false, false
	for _, seed := range []int64{2, 8, 11, 13, 29} {
		res := runClusterKill(t, ClusterScenario{
			Seed: seed, CrashRate: 0.15, KillAfter: 6,
		})
		if res.TornKill {
			sawTorn = true
		}
		if res.TornKill && !res.PromotedAtKill {
			// Creation itself was torn: the dialogue restarted on the
			// promoted replica with a fresh id.
			sawTornCreate = true
		}
		if res.PromotedAtKill && res.Promoted != res.PreKill {
			t.Errorf("seed %d: promoted replica diverged:\npre-kill:\n%s\npromoted:\n%s",
				seed, res.PreKill, res.Promoted)
		}
		if res.Committed != len(SwissTurns()) {
			t.Errorf("seed %d: committed %d of %d turns", seed, res.Committed, len(SwissTurns()))
		}
	}
	if !sawTorn {
		t.Error("no seed produced a torn-write kill; raise CrashRate or adjust seeds")
	}
	if !sawTornCreate {
		t.Error("no seed tore the session creation itself; adjust seeds to keep that path covered")
	}
}

// TestClusterKillRecoverDeterministic runs each scenario twice (fresh
// dirs both times) and requires byte-identical rendered transcripts —
// the cluster extension of the crash-recovery determinism gate.
func TestClusterKillRecoverDeterministic(t *testing.T) {
	for _, sc := range []ClusterScenario{
		{Seed: 5, KillAfter: 3},
		{Seed: 13, CrashRate: 0.08, Rates: faults.Rates{Error: 0.1, Latency: 0.1}},
		{Seed: 99, CrashRate: 0.04, KillAfter: 6, Rates: faults.Rates{Error: 0.05}},
	} {
		a := runClusterKill(t, sc)
		b := runClusterKill(t, sc)
		if a.Transcript != b.Transcript {
			t.Errorf("seed %d: cluster kill/recover not deterministic:\n--- run 1\n%s\n--- run 2\n%s",
				sc.Seed, a.Transcript, b.Transcript)
		}
	}
}

func runClusterPartition(t *testing.T, sc ClusterPartitionScenario) *ClusterPartitionResult {
	t.Helper()
	sc.PrimaryDir, sc.ReplicaDir = t.TempDir(), t.TempDir()
	res, err := ClusterPartitionHeal(context.Background(), sc)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.Seed, err)
	}
	return res
}

// TestClusterPartitionHeal pins the partition contract: commits never
// fail while the replica is away, the healed replica is observably
// stale mid-catch-up, and after full catch-up it serves the primary's
// transcript byte-identically — no committed turn lost.
func TestClusterPartitionHeal(t *testing.T) {
	for _, seed := range []int64{1, 21, 63} {
		res := runClusterPartition(t, ClusterPartitionScenario{
			Seed: seed, PartitionAfter: 3, PartitionTurns: 4,
		})
		if res.Committed != len(SwissTurns()) {
			t.Errorf("seed %d: committed %d of %d turns — the partition lost writes",
				seed, res.Committed, len(SwissTurns()))
		}
		if res.LagAtHeal <= 0 {
			t.Errorf("seed %d: lag at heal = %d, want > 0", seed, res.LagAtHeal)
		}
		if !res.MidCatchUpStale {
			t.Errorf("seed %d: mid-catch-up replica page not stamped stale:\n%s", seed, res.MidCatchUp)
		}
		if res.ReplicaFinal != res.Final {
			t.Errorf("seed %d: caught-up replica diverged:\nprimary:\n%s\nreplica:\n%s",
				seed, res.Final, res.ReplicaFinal)
		}
	}
}

// TestClusterPartitionHealDeterministic: two runs, byte-identical.
func TestClusterPartitionHealDeterministic(t *testing.T) {
	for _, sc := range []ClusterPartitionScenario{
		{Seed: 2, PartitionAfter: 2, PartitionTurns: 5},
		{Seed: 31, PartitionAfter: 4, PartitionTurns: 3, Rates: faults.Rates{Error: 0.1, Latency: 0.1}},
	} {
		a := runClusterPartition(t, sc)
		b := runClusterPartition(t, sc)
		if a.Transcript != b.Transcript {
			t.Errorf("seed %d: partition/heal not deterministic:\n--- run 1\n%s\n--- run 2\n%s",
				sc.Seed, a.Transcript, b.Transcript)
		}
	}
}
