package chaos

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/reliable-cda/cda/internal/cluster"
	"github.com/reliable-cda/cda/internal/faults"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/server"
	"github.com/reliable-cda/cda/internal/sessionstore"
)

// ClusterScenario configures one deterministic cluster chaos replay:
// a one-member ring (a primary/replica pair of durable stores, each
// with its own seeded system — two "processes") fronted by a router
// whose failover breaker trips on the first node-level failure. The
// kill arrives either as a seeded torn WAL write mid-commit
// (CrashRate) or as a clean kill after KillAfter committed turns —
// both pure functions of the seed, so two runs of one scenario render
// byte-identical transcripts.
type ClusterScenario struct {
	// Seed drives both systems, the fault injector, and the kill point.
	Seed int64
	// Rates are backend fault probabilities during turns.
	Rates faults.Rates
	// CrashRate is the probability each primary WAL append is torn
	// mid-write, killing the primary at that exact byte.
	CrashRate float64
	// KillAfter is the committed-turn count before the planned clean
	// kill (default: half the dialogue). A torn write may kill earlier.
	KillAfter int
	// PrimaryDir and ReplicaDir are the two nodes' data directories
	// (fresh temp dirs; paths never enter the rendered transcript).
	PrimaryDir, ReplicaDir string
	// SnapshotEvery is both stores' compaction cadence (default 4).
	SnapshotEvery int
}

// ClusterKillResult bundles one kill/failover replay's outputs.
type ClusterKillResult struct {
	SessionID string
	// Committed is the number of turns durably committed (and shipped)
	// before the kill.
	Committed int
	// TornKill reports whether an injected torn write killed the
	// primary before the planned clean kill.
	TornKill bool
	// PreKill is the canonical transcript after the last pre-kill
	// commit — the state the replica must serve after promotion.
	PreKill string
	// Promoted is the transcript the promoted replica serves
	// immediately after failover. Contract: Promoted == PreKill.
	Promoted string
	// PromotedAtKill reports whether Promoted was captured at the kill
	// moment (false only when creation itself was torn — the dialogue
	// then starts on the replica and there is no pre-kill state to
	// compare).
	PromotedAtKill bool
	// Final is the transcript after the promoted node finished the
	// dialogue (the killed turn re-asked, every turn answered).
	Final string
	// Transcript is the canonical rendering of the whole run for
	// run-twice determinism diffing.
	Transcript string
}

// newClusterMember assembles the pair of local nodes for one member.
// Each node gets its own system (separate processes don't share rng
// position) built from the same seed; only the primary's store is
// wired to the crash injector — the replica survives the scenario.
func newClusterMember(sc ClusterScenario, crash bool) (cluster.Member, *cluster.LocalNode, *cluster.LocalNode, *faults.Injector, *faults.Injector, error) {
	perBackend := map[string]faults.Rates{}
	if crash {
		perBackend["wal"] = faults.Rates{Crash: sc.CrashRate}
	}
	psys, pinj := newSwissSystem(Scenario{Seed: sc.Seed, Rates: sc.Rates, PerBackend: perBackend})
	rsys, rinj := newSwissSystem(Scenario{Seed: sc.Seed, Rates: sc.Rates})
	pstore, err := sessionstore.Open(sessionstore.Config{
		Dir: sc.PrimaryDir, Shards: 4, SnapshotEvery: sc.SnapshotEvery, Faults: pinj})
	if err != nil {
		return cluster.Member{}, nil, nil, nil, nil, fmt.Errorf("chaos: open primary store: %w", err)
	}
	rstore, err := sessionstore.Open(sessionstore.Config{
		Dir: sc.ReplicaDir, Shards: 4, SnapshotEvery: sc.SnapshotEvery})
	if err != nil {
		return cluster.Member{}, nil, nil, nil, nil, fmt.Errorf("chaos: open replica store: %w", err)
	}
	pn := cluster.NewLocalNode("m1-primary", pstore, psys)
	rn := cluster.NewLocalNode("m1-replica", rstore, rsys)
	return cluster.Member{Name: "m1", Primary: pn, Replica: rn}, pn, rn, pinj, rinj, nil
}

// renderPage renders a transcript page canonically, mirroring
// sessionstore.Transcript's format plus the staleness stamp, so pages
// are byte-comparable across runs and across nodes.
func renderPage(page server.TranscriptPage) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%d offset=%d stale=%t lag=%d source=%s\n",
		page.Total, page.Offset, page.Stale, page.LagRecords, page.Source)
	for i, t := range page.Turns {
		fmt.Fprintf(&sb, "%03d %s", page.Offset+i, t.Role)
		if t.Role == "user" {
			fmt.Fprintf(&sb, " intent=%s", t.Intent)
		} else {
			fmt.Fprintf(&sb, " conf=%s", strconv.FormatFloat(t.Confidence, 'g', -1, 64))
		}
		sb.WriteString(" | ")
		sb.WriteString(t.Text)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// fullPage reads a session's entire transcript through the router.
func fullPage(ctx context.Context, r *cluster.Router, id string, preferReplica bool) (string, error) {
	page, err := r.Transcript(ctx, id, 0, server.MaxPageLimit, preferReplica)
	if err != nil {
		return "", err
	}
	return renderPage(page), nil
}

// ClusterKillRecover runs one kill/failover scenario. Errors are
// harness failures; the recovery contract (Promoted == PreKill, Final
// complete, run-twice byte-identical) is asserted by the tests on the
// result.
func ClusterKillRecover(ctx context.Context, sc ClusterScenario) (*ClusterKillResult, error) {
	if sc.PrimaryDir == "" || sc.ReplicaDir == "" {
		return nil, errors.New("chaos: ClusterKillRecover needs primary and replica data dirs")
	}
	if sc.SnapshotEvery <= 0 {
		sc.SnapshotEvery = 4
	}
	turns := SwissTurns()
	if sc.KillAfter <= 0 || sc.KillAfter >= len(turns) {
		sc.KillAfter = len(turns) / 2
	}
	member, pn, _, pinj, rinj, err := newClusterMember(sc, true)
	if err != nil {
		return nil, err
	}
	router, err := cluster.NewRouter(cluster.Config{
		Members: []cluster.Member{member},
		Breaker: resilience.BreakerConfig{FailureThreshold: 1},
		ShipMax: 8,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build router: %w", err)
	}
	res := &ClusterKillResult{}

	// Session creation can itself be torn; the retry lands on the
	// promoted replica and the dialogue starts there.
	id, err := router.CreateSession(ctx)
	if errors.Is(err, cluster.ErrNodeDown) {
		res.TornKill = true
		id, err = router.CreateSession(ctx)
	}
	if err != nil {
		return nil, fmt.Errorf("chaos: create cluster session: %w", err)
	}
	res.SessionID = id
	res.PreKill, err = fullPage(ctx, router, id, false)
	if err != nil {
		return nil, err
	}

	killed := res.TornKill
	for i := 0; i < len(turns); i++ {
		if !killed && res.Committed == sc.KillAfter {
			// The planned kill: the primary dies between turns, with
			// everything committed so far already shipped.
			pn.Kill()
			killed = true
		}
		_, aerr := router.Ask(ctx, id, turns[i])
		if errors.Is(aerr, cluster.ErrNodeDown) {
			// The kill moment (torn write mid-commit, or the clean kill's
			// first observed failure). The breaker trips at threshold 1,
			// the replica is promoted, and the same turn is re-asked once
			// — at the conversation level nothing was committed.
			if !killed {
				res.TornKill, killed = true, true
			}
			if res.Promoted == "" {
				res.Promoted, err = fullPage(ctx, router, id, false)
				if err != nil {
					return nil, fmt.Errorf("chaos: promoted read: %w", err)
				}
				res.PromotedAtKill = true
			}
			_, aerr = router.Ask(ctx, id, turns[i])
		}
		if aerr != nil {
			return nil, fmt.Errorf("chaos: cluster turn %d %q: %w", i, turns[i], aerr)
		}
		res.Committed++
		if !killed {
			res.PreKill, err = fullPage(ctx, router, id, false)
			if err != nil {
				return nil, err
			}
		}
	}
	if res.Promoted == "" {
		// The kill landed between turns and the next ask succeeded on
		// the promoted replica without an observed failure — read the
		// promoted state now. (Reachable only if no turn remained; keep
		// the field total regardless.)
		res.Promoted, err = fullPage(ctx, router, id, false)
		if err != nil {
			return nil, err
		}
	}
	res.Final, err = fullPage(ctx, router, id, false)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d killafter=%d committed=%d torn=%t session=%s\n",
		sc.Seed, sc.KillAfter, res.Committed, res.TornKill, res.SessionID)
	fmt.Fprintf(&sb, "--- pre-kill\n%s--- promoted\n%s--- final\n%s", res.PreKill, res.Promoted, res.Final)
	for _, st := range router.Status(ctx) {
		fmt.Fprintf(&sb, "member %s: active=%s promoted=%t breaker=%s\n",
			st.Name, st.Active, st.Promoted, st.Breaker)
	}
	for _, phase := range []struct {
		name string
		inj  *faults.Injector
	}{{"primary", pinj}, {"replica", rinj}} {
		counts := phase.inj.Snapshot()
		for _, op := range phase.inj.Ops() {
			c := counts[op]
			fmt.Fprintf(&sb, "faults[%s] %s: calls=%d errors=%d latencies=%d corrupted=%d crashed=%d\n",
				phase.name, op, c.Calls, c.Errors, c.Latencies, c.Corrupted, c.Crashes)
		}
	}
	res.Transcript = sb.String()
	return res, nil
}

// ClusterPartitionScenario configures one partition-and-heal replay:
// the replica is partitioned away mid-dialogue, commits continue on
// the primary (replication degrades, writes never do), and after the
// heal the replica catches up in bounded steps — observably stale
// mid-way, byte-identical at the end.
type ClusterPartitionScenario struct {
	// Seed drives both systems and every fault draw.
	Seed int64
	// Rates are backend fault probabilities during turns.
	Rates faults.Rates
	// PartitionAfter is the committed-turn count before the partition
	// (default 3).
	PartitionAfter int
	// PartitionTurns is how many turns commit while the replica is
	// away (default 3, clamped to the dialogue's remainder).
	PartitionTurns int
	// PrimaryDir and ReplicaDir are the nodes' data directories.
	PrimaryDir, ReplicaDir string
	// SnapshotEvery is both stores' compaction cadence (default 64 —
	// large enough that the partition backlog stays in WAL frames, so
	// the heal exercises bounded frame catch-up; the snapshot-transfer
	// fallback below the compaction horizon is covered by the
	// sessionstore replication tests).
	SnapshotEvery int
}

// ClusterPartitionResult bundles one partition replay's outputs.
type ClusterPartitionResult struct {
	SessionID string
	// Committed is the total committed turns (every turn of the
	// dialogue — the partition must lose none).
	Committed int
	// LagAtHeal is the replica's record lag the moment the partition
	// heals (> 0, or the partition did nothing).
	LagAtHeal int64
	// MidCatchUp is the replica-served page after one bounded ship
	// step — stamped stale, holding a committed prefix.
	MidCatchUp string
	// MidCatchUpStale reports whether that page carried the stamp.
	MidCatchUpStale bool
	// Final is the primary's transcript after the full dialogue.
	Final string
	// ReplicaFinal is the replica's transcript after full catch-up.
	// Contract: ReplicaFinal == Final (modulo the page's source field,
	// which names the serving node and is excluded from the render).
	ReplicaFinal string
	// Transcript is the canonical run rendering for determinism diffs.
	Transcript string
}

// ClusterPartitionHeal runs one partition scenario.
func ClusterPartitionHeal(ctx context.Context, sc ClusterPartitionScenario) (*ClusterPartitionResult, error) {
	if sc.PrimaryDir == "" || sc.ReplicaDir == "" {
		return nil, errors.New("chaos: ClusterPartitionHeal needs primary and replica data dirs")
	}
	if sc.SnapshotEvery <= 0 {
		sc.SnapshotEvery = 64
	}
	turns := SwissTurns()
	if sc.PartitionAfter <= 0 || sc.PartitionAfter >= len(turns) {
		sc.PartitionAfter = 3
	}
	if sc.PartitionTurns <= 0 {
		sc.PartitionTurns = 3
	}
	if sc.PartitionAfter+sc.PartitionTurns > len(turns) {
		sc.PartitionTurns = len(turns) - sc.PartitionAfter
	}
	member, _, rn, _, _, err := newClusterMember(ClusterScenario{
		Seed: sc.Seed, Rates: sc.Rates, PrimaryDir: sc.PrimaryDir,
		ReplicaDir: sc.ReplicaDir, SnapshotEvery: sc.SnapshotEvery}, false)
	if err != nil {
		return nil, err
	}
	router, err := cluster.NewRouter(cluster.Config{
		Members: []cluster.Member{member},
		ShipMax: 8,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build router: %w", err)
	}
	res := &ClusterPartitionResult{}
	id, err := router.CreateSession(ctx)
	if err != nil {
		return nil, fmt.Errorf("chaos: create cluster session: %w", err)
	}
	res.SessionID = id
	shard := rn.Store().ShardIndex(id)

	ask := func(i int) error {
		if _, aerr := router.Ask(ctx, id, turns[i]); aerr != nil {
			return fmt.Errorf("chaos: cluster turn %d %q: %w", i, turns[i], aerr)
		}
		res.Committed++
		return nil
	}
	for i := 0; i < sc.PartitionAfter; i++ {
		if err := ask(i); err != nil {
			return nil, err
		}
	}
	rn.SetPartitioned(true)
	for i := sc.PartitionAfter; i < sc.PartitionAfter+sc.PartitionTurns; i++ {
		if err := ask(i); err != nil {
			return nil, err
		}
	}
	rn.SetPartitioned(false)
	// Lag at heal, measured store-to-store: the committed records the
	// replica has never seen.
	res.LagAtHeal = member.Primary.(*cluster.LocalNode).Store().ReplicationCursor(shard) -
		rn.Store().ReplicationCursor(shard)

	// One bounded ship step: the replica now KNOWS it is behind (the
	// applied batch carries the primary's cursor) and stamps its pages.
	if _, err := router.ShipStep(ctx, "m1", shard, 1); err != nil {
		return nil, fmt.Errorf("chaos: ship step: %w", err)
	}
	midPage, err := router.Transcript(ctx, id, 0, server.MaxPageLimit, true)
	if err != nil {
		return nil, fmt.Errorf("chaos: mid-catch-up read: %w", err)
	}
	res.MidCatchUpStale = midPage.Stale
	res.MidCatchUp = renderPage(midPage)

	if err := router.CatchUp(ctx, "m1"); err != nil {
		return nil, fmt.Errorf("chaos: catch up: %w", err)
	}
	// The healed member keeps serving the rest of the dialogue with
	// replication restored.
	for i := sc.PartitionAfter + sc.PartitionTurns; i < len(turns); i++ {
		if err := ask(i); err != nil {
			return nil, err
		}
	}
	res.Final, err = fullPage(ctx, router, id, false)
	if err != nil {
		return nil, err
	}
	res.ReplicaFinal, err = fullPage(ctx, router, id, true)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d partitionAfter=%d partitionTurns=%d committed=%d lagAtHeal=%d midStale=%t session=%s\n",
		sc.Seed, sc.PartitionAfter, sc.PartitionTurns, res.Committed, res.LagAtHeal, res.MidCatchUpStale, res.SessionID)
	fmt.Fprintf(&sb, "--- mid-catch-up\n%s--- final\n%s--- replica-final\n%s",
		res.MidCatchUp, res.Final, res.ReplicaFinal)
	for _, st := range router.Status(ctx) {
		fmt.Fprintf(&sb, "member %s: active=%s promoted=%t breaker=%s lag=%d\n",
			st.Name, st.Active, st.Promoted, st.Breaker, st.ReplicaLag)
	}
	res.Transcript = sb.String()
	return res, nil
}
