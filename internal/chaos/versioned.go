package chaos

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"github.com/reliable-cda/cda/internal/cluster"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/vstore"
)

// ClusterVersionedScenario configures the versioned kill/recover
// replay: both nodes run content-addressed version stores, the
// replica is partitioned past the primary's compaction horizon so the
// heal MUST go through the versioned snapshot path (root hash +
// chunk negotiation, not inline JSON), and the primary is killed
// afterwards so the promoted replica — caught up via negotiated
// chunks — serves and finishes the dialogue.
type ClusterVersionedScenario struct {
	// Seed drives both systems deterministically.
	Seed int64
	// PartitionAfter is the committed-turn count before the partition
	// (default 2).
	PartitionAfter int
	// PartitionTurns is how many turns commit while the replica is
	// away (default 4 — with SnapshotEvery 4 that pushes the backlog
	// below the compaction horizon, forcing the versioned transfer).
	PartitionTurns int
	// PrimaryDir and ReplicaDir are the nodes' data directories; each
	// node's version store lives in a "vstore" subdirectory.
	PrimaryDir, ReplicaDir string
	// SnapshotEvery is both stores' compaction cadence (default 4).
	SnapshotEvery int
}

// ClusterVersionedResult bundles one versioned kill/recover replay.
type ClusterVersionedResult struct {
	SessionID string
	// Committed is the total committed turns (the full dialogue).
	Committed int
	// ChunksNegotiated is how many chunks the heal moved to the
	// replica (> 0, or the versioned path never fired).
	ChunksNegotiated int
	// ShardRootsMatch reports whether, after the heal, both nodes'
	// version stores agree on the shard root head — commit hash
	// identity preserved across the ship.
	ShardRootsMatch bool
	// Final is the promoted replica's transcript after the full
	// dialogue.
	Final string
	// RootLog is the canonical per-turn version rendering from the
	// promoted replica: one "turn=N tree=<hash>" line per session
	// commit. Two runs of one seed must render it byte-identically.
	RootLog string
	// Transcript is the canonical run rendering for determinism diffs.
	Transcript string
}

// newVersionedMember assembles a primary/replica pair whose session
// stores both maintain version roots in their own chunk stores.
func newVersionedMember(sc ClusterVersionedScenario) (cluster.Member, *cluster.LocalNode, *cluster.LocalNode, *vstore.Store, *vstore.Store, error) {
	psys, _ := newSwissSystem(Scenario{Seed: sc.Seed})
	rsys, _ := newSwissSystem(Scenario{Seed: sc.Seed})
	pvs, err := vstore.Open(vstore.Config{Dir: filepath.Join(sc.PrimaryDir, "vstore")})
	if err != nil {
		return cluster.Member{}, nil, nil, nil, nil, fmt.Errorf("chaos: open primary vstore: %w", err)
	}
	rvs, err := vstore.Open(vstore.Config{Dir: filepath.Join(sc.ReplicaDir, "vstore")})
	if err != nil {
		return cluster.Member{}, nil, nil, nil, nil, fmt.Errorf("chaos: open replica vstore: %w", err)
	}
	pstore, err := sessionstore.Open(sessionstore.Config{
		Dir: sc.PrimaryDir, Shards: 4, SnapshotEvery: sc.SnapshotEvery, Versions: pvs})
	if err != nil {
		return cluster.Member{}, nil, nil, nil, nil, fmt.Errorf("chaos: open primary store: %w", err)
	}
	rstore, err := sessionstore.Open(sessionstore.Config{
		Dir: sc.ReplicaDir, Shards: 4, SnapshotEvery: sc.SnapshotEvery, Versions: rvs})
	if err != nil {
		return cluster.Member{}, nil, nil, nil, nil, fmt.Errorf("chaos: open replica store: %w", err)
	}
	pn := cluster.NewLocalNode("m1-primary", pstore, psys)
	rn := cluster.NewLocalNode("m1-replica", rstore, rsys)
	return cluster.Member{Name: "m1", Primary: pn, Replica: rn}, pn, rn, pvs, rvs, nil
}

// ClusterKillRecoverVersioned runs one versioned kill/recover
// scenario: partition the replica past the compaction horizon, heal
// through chunk-negotiated versioned catch-up, kill the primary, and
// finish the dialogue on the promoted replica.
func ClusterKillRecoverVersioned(ctx context.Context, sc ClusterVersionedScenario) (*ClusterVersionedResult, error) {
	if sc.PrimaryDir == "" || sc.ReplicaDir == "" {
		return nil, errors.New("chaos: ClusterKillRecoverVersioned needs primary and replica data dirs")
	}
	if sc.SnapshotEvery <= 0 {
		sc.SnapshotEvery = 4
	}
	turns := SwissTurns()
	if sc.PartitionAfter <= 0 {
		sc.PartitionAfter = 2
	}
	if sc.PartitionTurns <= 0 {
		sc.PartitionTurns = 4
	}
	if sc.PartitionAfter+sc.PartitionTurns >= len(turns) {
		return nil, fmt.Errorf("chaos: partition window [%d,%d) leaves no post-kill turns in a %d-turn dialogue",
			sc.PartitionAfter, sc.PartitionAfter+sc.PartitionTurns, len(turns))
	}
	member, pn, rn, pvs, rvs, err := newVersionedMember(sc)
	if err != nil {
		return nil, err
	}
	router, err := cluster.NewRouter(cluster.Config{
		Members: []cluster.Member{member},
		Breaker: resilience.BreakerConfig{FailureThreshold: 1},
		ShipMax: 8,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build router: %w", err)
	}
	res := &ClusterVersionedResult{}
	id, err := router.CreateSession(ctx)
	if err != nil {
		return nil, fmt.Errorf("chaos: create cluster session: %w", err)
	}
	res.SessionID = id
	shard := rn.Store().ShardIndex(id)

	ask := func(i int) error {
		_, aerr := router.Ask(ctx, id, turns[i])
		if errors.Is(aerr, cluster.ErrNodeDown) {
			// The kill moment: breaker trips at threshold 1, the replica
			// is promoted, the turn is re-asked once.
			_, aerr = router.Ask(ctx, id, turns[i])
		}
		if aerr != nil {
			return fmt.Errorf("chaos: cluster turn %d %q: %w", i, turns[i], aerr)
		}
		res.Committed++
		return nil
	}
	for i := 0; i < sc.PartitionAfter; i++ {
		if err := ask(i); err != nil {
			return nil, err
		}
	}
	rn.SetPartitioned(true)
	for i := sc.PartitionAfter; i < sc.PartitionAfter+sc.PartitionTurns; i++ {
		if err := ask(i); err != nil {
			return nil, err
		}
	}
	rn.SetPartitioned(false)

	// Heal below the compaction horizon: the batch carries a snapshot
	// root, the first apply fails typed on the missing closure, and the
	// router negotiates exactly the delta before re-applying. Chunk
	// growth on the replica measures what actually moved.
	chunksBefore := rvs.NumChunks()
	if err := router.CatchUp(ctx, "m1"); err != nil {
		return nil, fmt.Errorf("chaos: versioned catch up: %w", err)
	}
	res.ChunksNegotiated = rvs.NumChunks() - chunksBefore
	ph, perr := pvs.Head(sessionstore.ShardRoot(shard))
	rh, rerr := rvs.Head(sessionstore.ShardRoot(shard))
	res.ShardRootsMatch = perr == nil && rerr == nil && ph.Hash == rh.Hash && ph.Tree == rh.Tree

	// Kill the primary; the next ask promotes the replica — whose
	// state below the horizon arrived exclusively as negotiated chunks.
	pn.Kill()
	for i := sc.PartitionAfter + sc.PartitionTurns; i < len(turns); i++ {
		if err := ask(i); err != nil {
			return nil, err
		}
	}
	res.Final, err = fullPage(ctx, router, id, false)
	if err != nil {
		return nil, err
	}

	// Per-turn version roots from the promoted replica: tree hashes,
	// not commit hashes, because the replica's commit log legitimately
	// starts at install time while tree addresses are content-equal
	// across nodes and across runs.
	log, err := rn.Store().SessionVersions(id)
	if err != nil {
		return nil, fmt.Errorf("chaos: session versions on replica: %w", err)
	}
	var rl strings.Builder
	for _, c := range log {
		fmt.Fprintf(&rl, "turn=%d tree=%s\n", c.Turn, c.Tree)
	}
	res.RootLog = rl.String()

	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d partitionAfter=%d partitionTurns=%d committed=%d negotiated=%d shardRootsMatch=%t session=%s\n",
		sc.Seed, sc.PartitionAfter, sc.PartitionTurns, res.Committed, res.ChunksNegotiated, res.ShardRootsMatch, res.SessionID)
	fmt.Fprintf(&sb, "--- final\n%s--- session roots\n%s", res.Final, res.RootLog)
	for _, st := range router.Status(ctx) {
		fmt.Fprintf(&sb, "member %s: active=%s promoted=%t breaker=%s\n",
			st.Name, st.Active, st.Promoted, st.Breaker)
	}
	res.Transcript = sb.String()
	return res, nil
}
