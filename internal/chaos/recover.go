package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/faults"
	"github.com/reliable-cda/cda/internal/sessionstore"
)

// KillRecoverScenario configures one deterministic kill-and-recover
// replay: a Figure 1 dialogue runs through a durable session store,
// the process is "killed" (the store is abandoned un-closed, possibly
// mid-append via an injected torn write), a fresh store recovers the
// directory, and the dialogue finishes on the recovered state. The
// whole run — fault draws, kill point, recovered bytes — is a pure
// function of the seed, so two runs of one scenario must render
// byte-identical transcripts (the crash-recovery determinism gate in
// scripts/check.sh diffs exactly that).
type KillRecoverScenario struct {
	// Seed drives the domain, the system, and every fault draw.
	Seed int64
	// Rates are backend fault probabilities during turns (the
	// degradation ladder keeps answering under them).
	Rates faults.Rates
	// CrashRate is the probability each WAL append is torn mid-write,
	// killing the process at that exact byte (op "wal.append").
	CrashRate float64
	// KillAfter is the number of user turns attempted before the
	// planned kill (default: half the dialogue). An injected torn
	// write may kill earlier.
	KillAfter int
	// Dir is the store's data directory (the caller provides a fresh
	// temp dir; two runs of one scenario use two dirs and must still
	// render identical transcripts — the path never enters the render).
	Dir string
	// SnapshotEvery is the store's compaction cadence (default 4, low
	// enough that recovery exercises snapshot + WAL replay, not just
	// the WAL).
	SnapshotEvery int
}

// KillRecoverResult bundles one replay's outputs.
type KillRecoverResult struct {
	SessionID string
	// Committed is the number of user turns durably committed before
	// the kill (== KillAfter unless a torn write killed earlier).
	Committed int
	// Killed reports whether an injected torn write cut the run short.
	Killed bool
	// PreCrash is the canonical transcript at the moment of the kill —
	// committed turns only; a rolled-back torn turn never appears.
	PreCrash string
	// Recovered is the transcript the reopened store serves. The
	// recovery contract: Recovered == PreCrash, byte for byte.
	Recovered string
	// Final is the transcript after the recovered process finished the
	// remaining turns.
	Final string
	// Transcript is the canonical rendering of the whole run for
	// determinism diffing.
	Transcript string
}

// KillRecover runs one scenario. Errors are harness failures (the
// scenario could not run), never assertions about recovery — tests
// make those on the result.
func KillRecover(ctx context.Context, sc KillRecoverScenario) (*KillRecoverResult, error) {
	if sc.Dir == "" {
		return nil, errors.New("chaos: KillRecover needs a data dir")
	}
	turns := SwissTurns()
	if sc.KillAfter <= 0 || sc.KillAfter > len(turns) {
		sc.KillAfter = len(turns) / 2
	}
	if sc.SnapshotEvery <= 0 {
		sc.SnapshotEvery = 4
	}
	res := &KillRecoverResult{}

	// Phase 1: the doomed process. One injector drives backend faults
	// and WAL torn writes from one seeded stream.
	sys, inj := newSwissSystem(Scenario{
		Seed:       sc.Seed,
		Rates:      sc.Rates,
		PerBackend: map[string]faults.Rates{"wal": {Crash: sc.CrashRate}},
	})
	st, err := sessionstore.Open(sessionstore.Config{
		Dir: sc.Dir, Shards: 4, SnapshotEvery: sc.SnapshotEvery, Faults: inj,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: open store: %w", err)
	}
	entry, err := st.NewSession()
	switch {
	case errors.Is(err, sessionstore.ErrCrashed):
		// Killed while logging the session's creation: nothing durable.
		res.Killed = true
	case err != nil:
		return nil, fmt.Errorf("chaos: create session: %w", err)
	default:
		res.SessionID = entry.ID
	}
	for i := 0; !res.Killed && i < sc.KillAfter; i++ {
		doErr := entry.Do(func(sess *dialogue.Session) error {
			if _, rerr := sys.Respond(ctx, sess, turns[i]); rerr != nil {
				return fmt.Errorf("chaos: turn %d %q: %w", i, turns[i], rerr)
			}
			return st.CommitTurn(entry)
		})
		if errors.Is(doErr, sessionstore.ErrCrashed) {
			// The torn write killed the process; the store rolled the
			// in-memory pair back to the durable prefix.
			res.Killed = true
			break
		}
		if doErr != nil {
			return nil, doErr
		}
		res.Committed++
	}
	if entry != nil {
		transcriptErr := entry.Do(func(sess *dialogue.Session) error {
			res.PreCrash = sessionstore.Transcript(sess)
			return nil
		})
		if transcriptErr != nil {
			return nil, transcriptErr
		}
	}
	// The kill: st is abandoned — never Closed, never compacted.

	// Phase 2: recovery. A fresh process opens the directory; torn
	// tails truncate, snapshots replay, tombstones hold.
	st2, err := sessionstore.Open(sessionstore.Config{
		Dir: sc.Dir, Shards: 4, SnapshotEvery: sc.SnapshotEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: recover store: %w", err)
	}
	entry2 := (*sessionstore.Entry)(nil)
	if res.SessionID != "" {
		e, status := st2.Get(res.SessionID)
		if status != sessionstore.Found {
			return nil, fmt.Errorf("chaos: recovered store lost session %s (status %v)", res.SessionID, status)
		}
		entry2 = e
		recErr := entry2.Do(func(sess *dialogue.Session) error {
			res.Recovered = sessionstore.Transcript(sess)
			return nil
		})
		if recErr != nil {
			return nil, recErr
		}
	} else {
		// Creation itself was killed: the recovered process starts the
		// conversation from scratch.
		e, nerr := st2.NewSession()
		if nerr != nil {
			return nil, fmt.Errorf("chaos: recreate session: %w", nerr)
		}
		entry2 = e
		res.SessionID = e.ID
	}

	// Phase 3: the recovered process finishes the dialogue. Same seed
	// rebuilds the system deterministically (a real restart loses rng
	// position the same way); WAL crashes are off — this process
	// survives.
	sys2, inj2 := newSwissSystem(Scenario{Seed: sc.Seed, Rates: sc.Rates})
	for i := res.Committed; i < len(turns); i++ {
		doErr := entry2.Do(func(sess *dialogue.Session) error {
			if _, rerr := sys2.Respond(ctx, sess, turns[i]); rerr != nil {
				return fmt.Errorf("chaos: recovered turn %d %q: %w", i, turns[i], rerr)
			}
			return st2.CommitTurn(entry2)
		})
		if doErr != nil {
			return nil, doErr
		}
	}
	finalErr := entry2.Do(func(sess *dialogue.Session) error {
		res.Final = sessionstore.Transcript(sess)
		return nil
	})
	if finalErr != nil {
		return nil, finalErr
	}
	if err := st2.Close(); err != nil {
		return nil, fmt.Errorf("chaos: close recovered store: %w", err)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "killafter=%d committed=%d killed=%t session=%s\n",
		sc.KillAfter, res.Committed, res.Killed, res.SessionID)
	fmt.Fprintf(&sb, "--- pre-crash\n%s--- recovered\n%s--- final\n%s", res.PreCrash, res.Recovered, res.Final)
	for _, phase := range []struct {
		name string
		inj  *faults.Injector
	}{{"doomed", inj}, {"recovered", inj2}} {
		counts := phase.inj.Snapshot()
		for _, op := range phase.inj.Ops() {
			c := counts[op]
			fmt.Fprintf(&sb, "faults[%s] %s: calls=%d errors=%d latencies=%d corrupted=%d crashed=%d\n",
				phase.name, op, c.Calls, c.Errors, c.Latencies, c.Corrupted, c.Crashes)
		}
	}
	res.Transcript = sb.String()
	return res, nil
}
