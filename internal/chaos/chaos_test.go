package chaos

import (
	"context"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/faults"
)

// sweepRates are the fault-rate settings the property tests sweep;
// the check gate runs this file under -race at every setting.
var sweepRates = []float64{0.05, 0.2, 0.5}

func mustSwiss(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := ReplaySwiss(context.Background(), sc)
	if err != nil {
		t.Fatalf("ReplaySwiss(%+v): %v", sc, err)
	}
	return res
}

func mustNL2SQL(t *testing.T, sc Scenario, n int) *Result {
	t.Helper()
	res, err := ReplayNL2SQL(context.Background(), sc, n)
	if err != nil {
		t.Fatalf("ReplayNL2SQL(%+v): %v", sc, err)
	}
	return res
}

func scenario(seed int64, rate float64) Scenario {
	return Scenario{
		Seed:         seed,
		Rates:        faults.Rates{Error: rate, Latency: rate / 2, Corrupt: rate / 2},
		FaultStorage: true,
	}
}

// checkDegradation asserts the ladder's contract against a fault-free
// baseline of the same seed: every degraded answer is stamped, not
// abstained, capped below every verified answer's confidence, and
// strictly below its own fault-free twin when that twin answered.
func checkDegradation(t *testing.T, label string, base, faulted *Result) {
	t.Helper()
	for i, a := range faulted.Answers {
		if a.Degraded == "" {
			continue
		}
		if a.Abstained {
			t.Errorf("%s turn %d: degraded answer must not abstain", label, i)
		}
		if a.Confidence > 0.45 {
			t.Errorf("%s turn %d: degraded confidence %.3f above the ladder cap", label, i, a.Confidence)
		}
		if !strings.Contains(a.Text, "verified answer") {
			t.Errorf("%s turn %d: degraded answer does not say why: %q", label, i, a.Text)
		}
		twin := base.Answers[i]
		if twin.Degraded == "" && !twin.Abstained && a.Confidence >= twin.Confidence {
			t.Errorf("%s turn %d: degraded confidence %.3f not below fault-free %.3f",
				label, i, a.Confidence, twin.Confidence)
		}
	}
}

// TestSwissSweep replays the extended Figure 1 dialogue at every
// fault-rate setting: no errors, byte-identical transcripts for the
// same seed, and every degraded answer carries lowered confidence.
func TestSwissSweep(t *testing.T) {
	base := mustSwiss(t, Scenario{Seed: 7})
	for i, a := range base.Answers {
		if a.Degraded != "" {
			t.Fatalf("fault-free turn %d unexpectedly degraded (%s)", i, a.Degraded)
		}
	}
	for _, rate := range sweepRates {
		sc := scenario(7, rate)
		r1 := mustSwiss(t, sc)
		r2 := mustSwiss(t, sc)
		if r1.Transcript != r2.Transcript {
			t.Fatalf("rate %.2f: same seed produced different transcripts:\n%s\n=== vs ===\n%s",
				rate, r1.Transcript, r2.Transcript)
		}
		checkDegradation(t, "swiss", base, r1)
	}
}

// TestSwissSeedSensitivity: different seeds draw different faults —
// the injector is live, not a no-op (at 50% error the transcripts of
// two seeds diverging is the expected case; identical transcripts
// would suggest the chaos seam is disconnected).
func TestSwissSeedSensitivity(t *testing.T) {
	r7 := mustSwiss(t, scenario(7, 0.5))
	r8 := mustSwiss(t, scenario(8, 0.5))
	if r7.Transcript == r8.Transcript {
		t.Fatal("seeds 7 and 8 produced identical transcripts at 50% fault rate; injector appears dead")
	}
	var injected int64
	for _, c := range r7.Faults {
		injected += c.Errors + c.Latencies + c.Corrupted
	}
	if injected == 0 {
		t.Fatal("no faults injected at 50% rate")
	}
}

// TestNL2SQLSweep runs the synthetic NL2SQL workload — the catalog
// tier is empty there, so the ladder bottoms out in the no-pointer
// answer — under the same sweep.
func TestNL2SQLSweep(t *testing.T) {
	const n = 12
	base := mustNL2SQL(t, Scenario{Seed: 11}, n)
	for _, rate := range sweepRates {
		sc := scenario(11, rate)
		r1 := mustNL2SQL(t, sc, n)
		r2 := mustNL2SQL(t, sc, n)
		if r1.Transcript != r2.Transcript {
			t.Fatalf("rate %.2f: same seed produced different NL2SQL transcripts", rate)
		}
		checkDegradation(t, "nl2sql", base, r1)
	}
}

// TestTotalOutage: with every backend failing 100% of the time the
// system still answers every turn — query turns bottom out at the
// catalog tier of the ladder, and nothing panics or errors.
func TestTotalOutage(t *testing.T) {
	res := mustSwiss(t, Scenario{Seed: 3, Rates: faults.Rates{Error: 1}, FaultStorage: true})
	degraded := 0
	for i, a := range res.Answers {
		if a == nil {
			t.Fatalf("turn %d: nil answer", i)
		}
		if a.Degraded != "" {
			degraded++
			if a.Degraded != core.DegradedCatalog {
				t.Errorf("turn %d: expected catalog tier under total outage, got %q", i, a.Degraded)
			}
			if a.Confidence > 0.25 {
				t.Errorf("turn %d: catalog-tier confidence %.3f above cap", i, a.Confidence)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("total outage produced no degraded answers; ladder never engaged")
	}
}

// TestDegradedProvenanceCited: a degraded answer that offers pointers
// still carries a provenance graph citing them — even outage answers
// stay traceable.
func TestDegradedProvenanceCited(t *testing.T) {
	res := mustSwiss(t, Scenario{Seed: 3, Rates: faults.Rates{Error: 1}, FaultStorage: true})
	for i, a := range res.Answers {
		if a.Degraded == "" || !strings.Contains(a.Text, "\n- ") {
			continue
		}
		if a.Provenance == nil || a.AnswerNode == "" {
			t.Errorf("turn %d: degraded answer with pointers lacks provenance", i)
		}
	}
}

// TestBreakerTripsUnderSustainedFailure: a 100% error rate must trip
// at least one circuit during the replay — fail-fast is part of the
// determinism contract (open circuits skip injector draws, and the
// transcript stays reproducible regardless).
func TestBreakerTripsUnderSustainedFailure(t *testing.T) {
	res := mustSwiss(t, Scenario{Seed: 5, Rates: faults.Rates{Error: 1}, FaultStorage: true})
	if len(res.Breakers) == 0 {
		t.Fatal("no breakers registered during replay")
	}
	open := 0
	for _, st := range res.Breakers {
		if st.String() != "closed" {
			open++
		}
	}
	if open == 0 {
		t.Fatalf("no breaker left closed state under sustained failure: %v", res.Breakers)
	}
}
