// Package chaos is the deterministic fault-sweep harness: it replays
// the paper's Figure 1 Swiss-workforce dialogue and the synthetic
// NL2SQL workload through a core.System whose backends are wrapped by
// a seeded fault injector (internal/faults) on a virtual clock
// (internal/resilience). Because every source of randomness — fault
// draws, injected latency, retry jitter, model confidence — is a pure
// function of the scenario seed, one scenario replays to a
// byte-identical transcript every time, faults included. The property
// tests in this package sweep fault rates and assert the reliability
// invariants the tentpole promises: no panics or races, every
// degraded answer is annotated with lowered confidence, and identical
// seeds produce identical transcripts.
package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/faults"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/workload"
)

// Scenario configures one deterministic chaos replay.
type Scenario struct {
	// Seed drives the domain, the system, and the fault injector.
	Seed int64
	// Rates are the default per-operation fault probabilities applied
	// to every backend.
	Rates faults.Rates
	// PerBackend overrides Rates for specific backends ("sqldb",
	// "nlmodel", "embed", "textindex", "storage").
	PerBackend map[string]faults.Rates
	// FaultStorage additionally wires the injector into the storage
	// layer's Get path (the deepest backend the SQL engine touches).
	FaultStorage bool
}

// Result bundles one replay's outputs for the property tests.
type Result struct {
	Turns   []string
	Answers []*core.Answer
	// Transcript is the canonical rendering of the whole dialogue plus
	// the fault and breaker tallies; two replays of one scenario must
	// produce byte-identical transcripts.
	Transcript string
	// Faults is the injector's per-operation tally after the replay.
	Faults map[string]faults.Counts
	// Breakers is each backend circuit's final state.
	Breakers map[string]resilience.BreakerState
}

// SwissTurns is the Figure 1 dialogue extended with structured query
// turns so the replay exercises the NL2SQL pipeline — the path the
// degradation ladder protects — alongside discovery, description,
// choice, and analysis.
func SwissTurns() []string {
	return append(workload.Figure1Turns(),
		"how many employment where canton is Zurich",
		"how many employment where employment_type is full_time",
		"list the canton of employment",
	)
}

// newSwissSystem builds the Figure 1 world on a virtual clock with the
// scenario's fault injector threaded through every backend.
func newSwissSystem(sc Scenario) (*core.System, *faults.Injector) {
	clock := resilience.NewVirtualClock()
	inj := faults.New(faults.Config{
		Seed:       sc.Seed,
		Default:    sc.Rates,
		PerBackend: sc.PerBackend,
	}, clock)
	dom := workload.NewSwissDomain(sc.Seed)
	if sc.FaultStorage {
		dom.DB.Faults = inj
	}
	sys := core.New(core.Config{
		DB:        dom.DB,
		Catalog:   dom.Catalog,
		KG:        dom.KG,
		Vocab:     dom.Vocab,
		Documents: dom.Documents,
		Now:       dom.Now,
		Seed:      sc.Seed,
		Clock:     clock,
		Faults:    inj,
	})
	return sys, inj
}

// ReplaySwiss replays the extended Figure 1 dialogue in one session
// under the scenario's faults. Respond must never return an error on
// an uncancelled context — outages surface as degraded answers, not
// failures — so any error here is a harness-level failure.
func ReplaySwiss(ctx context.Context, sc Scenario) (*Result, error) {
	sys, inj := newSwissSystem(sc)
	return replay(ctx, sys, inj, SwissTurns())
}

// ReplayNL2SQL replays n generated workload questions through a
// system built over the synthetic benchmark tables (no catalog, no
// documents — the ladder's catalog tier is intentionally empty, the
// worst case for graceful degradation).
func ReplayNL2SQL(ctx context.Context, sc Scenario, n int) (*Result, error) {
	clock := resilience.NewVirtualClock()
	inj := faults.New(faults.Config{
		Seed:       sc.Seed,
		Default:    sc.Rates,
		PerBackend: sc.PerBackend,
	}, clock)
	w := workload.GenNL2SQL(n, 0.3, sc.Seed)
	if sc.FaultStorage {
		w.DB.Faults = inj
	}
	sys := core.New(core.Config{
		DB:     w.DB,
		Vocab:  w.Vocab,
		Seed:   sc.Seed,
		Clock:  clock,
		Faults: inj,
	})
	turns := make([]string, 0, len(w.Pairs))
	for _, qa := range w.Pairs {
		turns = append(turns, qa.Question)
	}
	return replay(ctx, sys, inj, turns)
}

func replay(ctx context.Context, sys *core.System, inj *faults.Injector, turns []string) (*Result, error) {
	sess := sys.NewSession()
	res := &Result{Turns: turns}
	for i, turn := range turns {
		ans, err := sys.Respond(ctx, sess, turn)
		if err != nil {
			return nil, fmt.Errorf("chaos: turn %d %q: %w", i, turn, err)
		}
		res.Answers = append(res.Answers, ans)
	}
	res.Breakers = sys.BreakerStates()
	res.Faults = inj.Snapshot()
	res.Transcript = renderTranscript(res, inj)
	return res, nil
}

// renderTranscript produces the canonical byte-comparable rendering:
// every turn with its answer annotations, then the fault tallies and
// breaker states in sorted order.
func renderTranscript(res *Result, inj *faults.Injector) string {
	var sb strings.Builder
	for i, turn := range res.Turns {
		a := res.Answers[i]
		fmt.Fprintf(&sb, "U%02d: %s\n", i+1, turn)
		fmt.Fprintf(&sb, "S%02d: conf=%.6f abstained=%t degraded=%q\n", i+1, a.Confidence, a.Abstained, a.Degraded)
		fmt.Fprintf(&sb, "%s\n---\n", a.Text)
	}
	for _, op := range inj.Ops() {
		c := res.Faults[op]
		fmt.Fprintf(&sb, "faults %s: calls=%d errors=%d latencies=%d corrupted=%d crashed=%d\n",
			op, c.Calls, c.Errors, c.Latencies, c.Corrupted, c.Crashes)
	}
	for _, name := range sortedKeys(res.Breakers) {
		fmt.Fprintf(&sb, "breaker %s: %s\n", name, res.Breakers[name])
	}
	return sb.String()
}

func sortedKeys(m map[string]resilience.BreakerState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
