// Package bias implements the bias-identification machinery the
// paper's Grounding section calls for: since conversation logs feed
// back into training and retrieval, the system must "counteract the
// effect of any bias present in these logs" using "approaches such as
// CADS (Corpus Assisted Discourse Analysis) and sentiment analysis".
//
// Two tools are provided:
//
//   - a lexicon-based sentiment scorer with negation handling; and
//   - a corpus-assisted association analysis: for each descriptor
//     term, the informative-Dirichlet-prior log-odds ratio (Monroe et
//     al.) of occurring within a window of a target group term versus
//     the rest of the corpus, with a z-score for significance.
//
// A Finding is a significant association between a group term and a
// negatively connoted descriptor — the "connoted or discriminatory
// language" the system should surface for human review (the paper
// stresses human involvement; this package flags, it does not
// censor).
package bias

import (
	"fmt"
	"math"
	"sort"

	"github.com/reliable-cda/cda/internal/textindex"
)

// Lexicon holds positive and negative sentiment word sets.
type Lexicon struct {
	Pos map[string]bool
	Neg map[string]bool
}

// DefaultLexicon returns a compact general-purpose sentiment lexicon.
func DefaultLexicon() *Lexicon {
	pos := []string{
		"good", "great", "excellent", "reliable", "skilled", "strong",
		"competent", "productive", "honest", "efficient", "qualified",
		"successful", "innovative", "diligent", "capable", "trusted",
		"positive", "helpful", "accurate", "fair",
	}
	neg := []string{
		"bad", "poor", "lazy", "unreliable", "weak", "incompetent",
		"unproductive", "dishonest", "inefficient", "unqualified",
		"criminal", "dangerous", "aggressive", "inferior", "failed",
		"negative", "useless", "inaccurate", "unfair", "hostile",
	}
	lex := &Lexicon{Pos: map[string]bool{}, Neg: map[string]bool{}}
	for _, w := range pos {
		lex.Pos[w] = true
	}
	for _, w := range neg {
		lex.Neg[w] = true
	}
	return lex
}

var negators = map[string]bool{"not": true, "no": true, "never": true, "hardly": true}

// Sentiment scores text in [-1, 1]: (pos − neg) / (pos + neg) with a
// preceding negator flipping a word's polarity. Returns 0 for text
// with no sentiment-bearing words.
func (l *Lexicon) Sentiment(text string) float64 {
	toks := textindex.Tokenize(text)
	var pos, neg float64
	for i, tok := range toks {
		var polarity float64
		switch {
		case l.Pos[tok]:
			polarity = 1
		case l.Neg[tok]:
			polarity = -1
		default:
			continue
		}
		if i > 0 && negators[toks[i-1]] {
			polarity = -polarity
		}
		if polarity > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos+neg == 0 {
		return 0
	}
	return (pos - neg) / (pos + neg)
}

// TermPolarity returns +1/-1/0 for a single lexicon word.
func (l *Lexicon) TermPolarity(term string) float64 {
	switch {
	case l.Pos[term]:
		return 1
	case l.Neg[term]:
		return -1
	default:
		return 0
	}
}

// Association is one (group term, descriptor) co-occurrence measure.
type Association struct {
	Group string
	Term  string
	// LogOdds is the informative-Dirichlet log-odds ratio of the term
	// in group-term contexts vs the background.
	LogOdds float64
	// Z is LogOdds divided by its estimated standard deviation;
	// |Z| > ~1.96 marks a significant association.
	Z float64
	// CountNear is the term's frequency within the window of the
	// group term.
	CountNear int
	// Sentiment is the descriptor's lexicon polarity.
	Sentiment float64
}

// Analyzer configures the corpus analysis.
type Analyzer struct {
	// Window is the token distance around a group term that counts
	// as "near" (default 5).
	Window int
	// MinCount drops descriptors seen fewer times near the group
	// term (default 2).
	MinCount int
	// Alpha is the Dirichlet prior pseudo-count (default 0.01 per
	// background frequency unit).
	Alpha float64
	// Lexicon scores descriptor polarity (default DefaultLexicon).
	Lexicon *Lexicon
}

// NewAnalyzer returns an analyzer with defaults.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Window: 5, MinCount: 2, Alpha: 0.01, Lexicon: DefaultLexicon()}
}

func (a *Analyzer) window() int {
	if a.Window <= 0 {
		return 5
	}
	return a.Window
}

func (a *Analyzer) minCount() int {
	if a.MinCount <= 0 {
		return 2
	}
	return a.MinCount
}

func (a *Analyzer) lexicon() *Lexicon {
	if a.Lexicon == nil {
		return DefaultLexicon()
	}
	return a.Lexicon
}

// Associations computes, for every descriptor co-occurring with the
// group term, its log-odds ratio vs the background corpus, sorted by
// descending Z.
func (a *Analyzer) Associations(corpus []string, group string) []Association {
	w := a.window()
	near := map[string]int{} // term counts within the window of group
	far := map[string]int{}  // term counts elsewhere
	var nearTotal, farTotal int
	for _, doc := range corpus {
		toks := textindex.Tokenize(doc)
		// Mark positions near the group term.
		isNear := make([]bool, len(toks))
		for i, tok := range toks {
			if tok != group {
				continue
			}
			for j := maxInt(0, i-w); j <= minInt(len(toks)-1, i+w); j++ {
				isNear[j] = true
			}
		}
		for i, tok := range toks {
			if tok == group || textindex.Stopwords[tok] {
				continue
			}
			if isNear[i] {
				near[tok]++
				nearTotal++
			} else {
				far[tok]++
				farTotal++
			}
		}
	}
	if nearTotal == 0 {
		return nil
	}
	lex := a.lexicon()
	var out []Association
	for term, cNear := range near {
		if cNear < a.minCount() {
			continue
		}
		cFar := far[term]
		// Informative Dirichlet prior proportional to overall term
		// frequency.
		prior := a.Alpha * float64(cNear+cFar+1)
		lo := math.Log((float64(cNear)+prior)/(float64(nearTotal)+prior*2-float64(cNear)-prior)) -
			math.Log((float64(cFar)+prior)/(float64(farTotal)+prior*2-float64(cFar)-prior))
		variance := 1/(float64(cNear)+prior) + 1/(float64(cFar)+prior)
		z := lo / math.Sqrt(variance)
		out = append(out, Association{
			Group: group, Term: term, LogOdds: lo, Z: z,
			CountNear: cNear, Sentiment: lex.TermPolarity(term),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z > out[j].Z
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// Finding is a flagged biased association.
type Finding struct {
	Association
	Reason string
}

// SignificanceZ is the threshold above which an association is
// treated as statistically meaningful.
const SignificanceZ = 1.96

// Findings flags significant associations between any group term and
// a negatively connoted descriptor, across the corpus.
func (a *Analyzer) Findings(corpus []string, groupTerms []string) []Finding {
	var out []Finding
	for _, g := range groupTerms {
		for _, assoc := range a.Associations(corpus, g) {
			if assoc.Z >= SignificanceZ && assoc.Sentiment < 0 {
				out = append(out, Finding{
					Association: assoc,
					Reason: fmt.Sprintf(
						"negative descriptor %q significantly associated with group term %q (z=%.2f)",
						assoc.Term, g, assoc.Z),
				})
			}
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
