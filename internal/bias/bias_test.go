package bias

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSentimentBasic(t *testing.T) {
	lex := DefaultLexicon()
	cases := []struct {
		text string
		want float64
	}{
		{"the results are excellent and reliable", 1},
		{"this is bad and unreliable", -1},
		{"good but dangerous", 0},
		{"plain statement about data", 0},
	}
	for _, c := range cases {
		if got := lex.Sentiment(c.text); got != c.want {
			t.Errorf("Sentiment(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestSentimentNegation(t *testing.T) {
	lex := DefaultLexicon()
	if got := lex.Sentiment("the model is not good"); got != -1 {
		t.Errorf("negated positive = %v", got)
	}
	if got := lex.Sentiment("never bad results"); got != 1 {
		t.Errorf("negated negative = %v", got)
	}
}

func TestTermPolarity(t *testing.T) {
	lex := DefaultLexicon()
	if lex.TermPolarity("reliable") != 1 || lex.TermPolarity("lazy") != -1 || lex.TermPolarity("table") != 0 {
		t.Error("polarity lookup wrong")
	}
}

// biasedCorpus builds logs in which `group` systematically co-occurs
// with a negative descriptor, against a neutral background.
func biasedCorpus(group, descriptor string, n int) []string {
	var docs []string
	for i := 0; i < n; i++ {
		docs = append(docs, "the "+group+" applicants are "+descriptor+" workers in this market")
		docs = append(docs, "employment statistics show stable trends across cantons and sectors")
		docs = append(docs, "the survey covers monthly indicators of labour demand")
	}
	return docs
}

func TestAssociationsDetectPlantedBias(t *testing.T) {
	a := NewAnalyzer()
	corpus := biasedCorpus("northerners", "lazy", 10)
	assocs := a.Associations(corpus, "northerners")
	if len(assocs) == 0 {
		t.Fatal("no associations found")
	}
	var lazy *Association
	for i := range assocs {
		if assocs[i].Term == "lazy" {
			lazy = &assocs[i]
		}
	}
	if lazy == nil {
		t.Fatalf("planted descriptor not found in %v", assocs)
	}
	if lazy.Z < SignificanceZ {
		t.Errorf("planted bias z = %v, below significance", lazy.Z)
	}
	if lazy.Sentiment != -1 {
		t.Errorf("sentiment = %v", lazy.Sentiment)
	}
	// Background words must not be significantly associated.
	for _, as := range assocs {
		if as.Term == "statistics" && as.Z >= SignificanceZ {
			t.Errorf("background word flagged: %+v", as)
		}
	}
}

func TestAssociationsNoGroupMentions(t *testing.T) {
	a := NewAnalyzer()
	if got := a.Associations([]string{"nothing about the target here"}, "martians"); got != nil {
		t.Errorf("associations = %v", got)
	}
}

func TestFindingsFlagOnlyNegativeSignificant(t *testing.T) {
	a := NewAnalyzer()
	// Positive association must NOT be flagged.
	posCorpus := biasedCorpus("southerners", "skilled", 10)
	if got := a.Findings(posCorpus, []string{"southerners"}); len(got) != 0 {
		t.Errorf("positive association flagged: %v", got)
	}
	negCorpus := biasedCorpus("northerners", "lazy", 10)
	got := a.Findings(negCorpus, []string{"northerners"})
	if len(got) == 0 {
		t.Fatal("planted negative bias not flagged")
	}
	if got[0].Term != "lazy" || !strings.Contains(got[0].Reason, "northerners") {
		t.Errorf("finding = %+v", got[0])
	}
}

func TestFindingsUnbiasedCorpusClean(t *testing.T) {
	a := NewAnalyzer()
	var corpus []string
	for i := 0; i < 20; i++ {
		corpus = append(corpus,
			"the northerners and southerners work in many sectors",
			"cantonal employment varies with the season",
		)
	}
	if got := a.Findings(corpus, []string{"northerners", "southerners"}); len(got) != 0 {
		t.Errorf("unbiased corpus flagged: %v", got)
	}
}

func TestMinCountSuppression(t *testing.T) {
	a := NewAnalyzer()
	a.MinCount = 5
	corpus := biasedCorpus("northerners", "lazy", 2) // only 2 co-occurrences
	if got := a.Findings(corpus, []string{"northerners"}); len(got) != 0 {
		t.Errorf("below-min-count association flagged: %v", got)
	}
}

// Property: sentiment is always within [-1, 1].
func TestSentimentBoundsProperty(t *testing.T) {
	lex := DefaultLexicon()
	f := func(s string) bool {
		v := lex.Sentiment(s)
		return v >= -1 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: associations are antisymmetric-ish — a term concentrated
// near the group term has positive log-odds; the same corpus with the
// descriptor moved to background flips the sign.
func TestLogOddsSignProperty(t *testing.T) {
	a := NewAnalyzer()
	near := biasedCorpus("group", "lazy", 8)
	assocsNear := a.Associations(near, "group")
	for _, as := range assocsNear {
		if as.Term == "lazy" && as.LogOdds <= 0 {
			t.Errorf("near descriptor log-odds = %v", as.LogOdds)
		}
	}
	var far []string
	for i := 0; i < 8; i++ {
		far = append(far, "the group applicants are steady workers")
		far = append(far, "elsewhere the lazy afternoons pass slowly with lazy rivers")
	}
	for _, as := range a.Associations(far, "group") {
		if as.Term == "lazy" && as.LogOdds >= 0 {
			t.Errorf("background descriptor log-odds = %v", as.LogOdds)
		}
	}
}
