package docqa

import (
	"strings"
	"testing"
)

func fixtureStore() *Store {
	s := NewStore()
	s.Add(Document{
		ID: "method", Source: "https://arbeit.swiss/methodology",
		Text: "The Swiss Labour Market Barometer is computed from a monthly survey. " +
			"Experts in 22 cantonal employment centers report their expectations. " +
			"Responses are aggregated into a diffusion index.",
	})
	s.Add(Document{
		ID: "coverage", Source: "https://bfs.admin.ch/notes",
		Text: "Employment statistics cover employees older than 15 years. " +
			"Part-time and full-time positions are counted separately.",
	})
	s.Add(Document{
		ID: "chocolate", Source: "https://chocosuisse.ch",
		Text: "Chocolate exports rose steadily over the last decade.",
	})
	return s
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("One. Two! Three? trailing")
	if len(got) != 4 || got[0] != "One." || got[3] != "trailing" {
		t.Errorf("sentences = %v", got)
	}
	if got := SplitSentences(""); got != nil {
		t.Errorf("empty = %v", got)
	}
}

func TestAskExtractsCorrectSentence(t *testing.T) {
	s := fixtureStore()
	ans := s.Ask("how is the barometer computed?")
	if ans == nil {
		t.Fatal("no answer")
	}
	if ans.DocID != "method" {
		t.Errorf("doc = %q", ans.DocID)
	}
	if !strings.Contains(ans.Sentence, "monthly survey") {
		t.Errorf("sentence = %q", ans.Sentence)
	}
	if ans.Source != "https://arbeit.swiss/methodology" {
		t.Errorf("source = %q", ans.Source)
	}
	if ans.Score <= 0 || ans.Score > 1 {
		t.Errorf("score = %v", ans.Score)
	}
}

func TestAskSecondDocument(t *testing.T) {
	s := fixtureStore()
	ans := s.Ask("what age do employment statistics cover?")
	if ans == nil || ans.DocID != "coverage" {
		t.Fatalf("answer = %+v", ans)
	}
	if !strings.Contains(ans.Sentence, "older than 15") {
		t.Errorf("sentence = %q", ans.Sentence)
	}
}

func TestAskRefusesOffTopic(t *testing.T) {
	s := fixtureStore()
	if ans := s.Ask("qqq zzz xxx vvv"); ans != nil {
		t.Errorf("off-topic answered: %+v", ans)
	}
}

func TestAskEmptyStore(t *testing.T) {
	if ans := NewStore().Ask("anything"); ans != nil {
		t.Errorf("empty store answered: %+v", ans)
	}
}

func TestMarginReflectsAmbiguity(t *testing.T) {
	s := NewStore()
	s.Add(Document{ID: "a", Text: "The barometer is computed from a survey of experts."})
	s.Add(Document{ID: "b", Text: "The barometer is computed from a survey of analysts."})
	ambiguous := s.Ask("how is the barometer computed")

	s2 := fixtureStore()
	clear := s2.Ask("how is the barometer computed from the monthly survey of experts")
	if ambiguous == nil || clear == nil {
		t.Fatal("missing answers")
	}
	if ambiguous.Margin >= clear.Margin {
		t.Errorf("ambiguous margin %v >= clear %v", ambiguous.Margin, clear.Margin)
	}
}

func TestAskDeterministic(t *testing.T) {
	s := fixtureStore()
	a := s.Ask("how is the barometer computed?")
	b := s.Ask("how is the barometer computed?")
	if a.Sentence != b.Sentence || a.Score != b.Score {
		t.Error("not deterministic")
	}
}

func TestOverlapF1(t *testing.T) {
	if got := overlapF1("barometer survey", "The barometer is a survey."); got <= 0 {
		t.Errorf("overlap = %v", got)
	}
	if got := overlapF1("", "text"); got != 0 {
		t.Errorf("empty question overlap = %v", got)
	}
	if got := overlapF1("the of a", "the of a"); got != 0 {
		t.Errorf("stopword-only overlap = %v", got)
	}
}
