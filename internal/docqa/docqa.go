// Package docqa implements the document side of the Figure 1
// "Document & Data Retrieval" box: extractive question answering over
// a text corpus. Instead of generating an answer (which could
// hallucinate), the system retrieves candidate documents with hybrid
// lexical+dense search and returns a verbatim sentence, cited back to
// its document — answers are grounded by construction (P2/P4).
package docqa

import (
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/embed"
	"github.com/reliable-cda/cda/internal/textindex"
)

// Document is one indexed text with a citable source.
type Document struct {
	ID     string
	Text   string
	Source string // URI or publication, cited in provenance
}

// Answer is one extractive result.
type Answer struct {
	Sentence string
	DocID    string
	Source   string
	// Score is the sentence's match quality in [0,1] (token-overlap
	// F1 against the question, blended with dense similarity).
	Score float64
	// Margin is the gap to the runner-up sentence, a confidence
	// signal: ambiguous corpora produce small margins.
	Margin float64
}

// MinScore is the minimum blended sentence score required to answer;
// below it the store refuses rather than returning a barely-related
// sentence (P4: refrain when certainty is insufficient).
const MinScore = 0.08

// Store indexes documents for extractive QA.
type Store struct {
	docs  []Document
	byID  map[string]int
	lex   *textindex.Index
	dense *embed.DenseIndex
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		byID:  map[string]int{},
		lex:   textindex.NewIndex(),
		dense: embed.NewDenseIndex(nil),
	}
}

// Add indexes one document (replacing any previous one with the same
// ID is not supported; IDs should be unique).
func (s *Store) Add(d Document) {
	s.byID[d.ID] = len(s.docs)
	s.docs = append(s.docs, d)
	s.lex.Add(textindex.Document{ID: d.ID, Text: d.Text})
	s.dense.Add(embed.Item{ID: d.ID, Text: d.Text})
}

// Len returns the number of indexed documents.
func (s *Store) Len() int { return len(s.docs) }

// SplitSentences performs rule-based sentence segmentation on '.',
// '!', '?' boundaries, keeping abbreviation-free simplicity.
func SplitSentences(text string) []string {
	var out []string
	var sb strings.Builder
	for _, r := range text {
		sb.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			if s := strings.TrimSpace(sb.String()); s != "" {
				out = append(out, s)
			}
			sb.Reset()
		}
	}
	if s := strings.TrimSpace(sb.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// overlapF1 scores a sentence against the question by content-token
// F1.
func overlapF1(question, sentence string) float64 {
	q := map[string]bool{}
	for _, t := range textindex.TokenizeContent(question) {
		q[t] = true
	}
	if len(q) == 0 {
		return 0
	}
	sToks := textindex.TokenizeContent(sentence)
	if len(sToks) == 0 {
		return 0
	}
	hit := 0
	seen := map[string]bool{}
	for _, t := range sToks {
		if q[t] && !seen[t] {
			hit++
			seen[t] = true
		}
	}
	if hit == 0 {
		return 0
	}
	precision := float64(hit) / float64(len(sToks))
	recall := float64(hit) / float64(len(q))
	return 2 * precision * recall / (precision + recall)
}

// Ask retrieves the top documents (hybrid) and extracts the best
// sentence. Returns nil when nothing scores above zero — the store
// refuses to answer rather than guessing.
func (s *Store) Ask(question string) *Answer {
	if len(s.docs) == 0 {
		return nil
	}
	denseHits := s.dense.Search(question, 5)
	lexHits := s.lex.Search(question, 5)
	fused := embed.Hybrid(denseHits, lexHits, 5)

	type cand struct {
		sentence string
		doc      int
		score    float64
	}
	var cands []cand
	emb := embed.NewEmbedder()
	qv := emb.EmbedText(question)
	for _, h := range fused {
		di, ok := s.byID[h.ID]
		if !ok {
			continue
		}
		for _, sent := range SplitSentences(s.docs[di].Text) {
			f1 := overlapF1(question, sent)
			sim := embed.Similarity(qv, emb.EmbedText(sent))
			score := 0.7*f1 + 0.3*sim
			if score >= MinScore {
				cands = append(cands, cand{sentence: sent, doc: di, score: score})
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].sentence < cands[j].sentence
	})
	best := cands[0]
	margin := best.score
	if len(cands) > 1 {
		margin = best.score - cands[1].score
	}
	return &Answer{
		Sentence: best.sentence,
		DocID:    s.docs[best.doc].ID,
		Source:   s.docs[best.doc].Source,
		Score:    clamp01(best.score),
		Margin:   clamp01(margin),
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
