package core

import (
	"context"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/workload"
)

func TestFollowUpQueryCarriesContext(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	a1 := respond(t, s, sess, "how many employment where canton is Zurich")
	if a1.Abstained {
		t.Fatalf("turn 1 abstained: %+v", a1)
	}
	a2 := respond(t, s, sess, "and in Bern?")
	if a2.Abstained {
		t.Fatalf("follow-up abstained: %+v", a2)
	}
	if !strings.Contains(a2.Code, "Bern") || !strings.Contains(a2.Code, "employment") {
		t.Errorf("follow-up sql = %q", a2.Code)
	}
	if !strings.Contains(a2.Text, "20") {
		t.Errorf("follow-up text = %q", a2.Text)
	}
	// Aggregate pivot follow-up.
	a3 := respond(t, s, sess, "what is the total employees in employment where canton is Geneva")
	if a3.Abstained {
		t.Fatalf("turn 3 abstained: %+v", a3)
	}
	a4 := respond(t, s, sess, "and the maximum employees")
	if a4.Abstained {
		t.Fatalf("agg follow-up abstained: %+v", a4)
	}
	if !strings.Contains(a4.Code, "MAX") || !strings.Contains(a4.Code, "Geneva") {
		t.Errorf("agg follow-up sql = %q", a4.Code)
	}
}

func TestFollowUpWithoutContextClarifies(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "and in Bern?")
	if !ans.Abstained || ans.Clarification == "" {
		t.Errorf("answer = %+v", ans)
	}
}

func TestFollowUpNotCached(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	respond(t, s, sess, "how many employment where canton is Zurich")
	a := respond(t, s, sess, "and in Bern?")
	// Different context, same follow-up text: a second session asking
	// about barometer must not get the cached Bern answer.
	sess2 := s.NewSession()
	respond(t, s, sess2, "how many barometer")
	b := respond(t, s, sess2, "and in Bern?")
	if b.Code == a.Code && !b.Abstained {
		t.Errorf("follow-up answer leaked across contexts: %q", b.Code)
	}
}

func TestAskAndRefineYes(t *testing.T) {
	// Moderate noise so verification agreement often lands between 0
	// and the threshold, triggering the refine question.
	s := swissSystem(t, func(c *Config) {
		c.HallucinationRate = 0.28
		c.Fabrications = []string{"bogus1", "bogus2"}
		c.AbstainBelow = 0.97
	})
	questions := []string{
		"how many employment where canton is Zurich",
		"what is the average value in barometer",
		"what is the total employees in employment",
		"how many employment where canton is Bern",
		"what is the maximum value in barometer",
	}
	var refined bool
	for _, q := range questions {
		sess := s.NewSession()
		ans := respond(t, s, sess, q)
		if ans.Clarification == "" || !strings.Contains(ans.Clarification, "Shall I run with it?") {
			continue
		}
		refined = true
		confirmed, err := s.Respond(context.Background(), sess, "yes")
		if err != nil {
			t.Fatal(err)
		}
		if confirmed.Abstained {
			t.Errorf("confirmed answer abstained: %+v", confirmed)
		}
		if confirmed.Text == "" || confirmed.Confidence <= ans.Confidence {
			t.Errorf("confirmation did not boost: %v -> %v", ans.Confidence, confirmed.Confidence)
		}
	}
	if !refined {
		t.Skip("no refine exchange triggered at this noise level; ask-and-refine path untested here")
	}
}

func TestAskAndRefineNo(t *testing.T) {
	s := swissSystem(t, func(c *Config) {
		c.HallucinationRate = 0.28
		c.Fabrications = []string{"bogus1", "bogus2"}
		c.AbstainBelow = 0.97
	})
	for _, q := range []string{
		"how many employment where canton is Zurich",
		"what is the average value in barometer",
		"how many employment where canton is Bern",
	} {
		sess := s.NewSession()
		ans := respond(t, s, sess, q)
		if !strings.Contains(ans.Clarification, "Shall I run with it?") {
			continue
		}
		declined, err := s.Respond(context.Background(), sess, "no, that is wrong")
		if err != nil {
			t.Fatal(err)
		}
		if !declined.Abstained || declined.Clarification == "" {
			t.Errorf("declined = %+v", declined)
		}
		// A second "yes" must not resurrect the discarded candidate.
		again, _ := s.Respond(context.Background(), sess, "yes")
		if !again.Abstained {
			t.Errorf("stale pending answer resurrected: %+v", again)
		}
		return
	}
	t.Skip("no refine exchange triggered at this noise level")
}

func TestConfirmWithoutPending(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "yes")
	if !ans.Abstained || !strings.Contains(ans.Text, "nothing pending") {
		t.Errorf("answer = %+v", ans)
	}
}

func TestIntentFollowUpClassification(t *testing.T) {
	for _, text := range []string{"and in Bern?", "what about Geneva", "and the maximum salary"} {
		if got := dialogue.ClassifyIntent(text); got != dialogue.IntentFollowUp {
			t.Errorf("ClassifyIntent(%q) = %v", text, got)
		}
	}
	for _, text := range []string{"yes", "No, I meant Bern", "exactly"} {
		if got := dialogue.ClassifyIntent(text); got != dialogue.IntentConfirm {
			t.Errorf("ClassifyIntent(%q) = %v", text, got)
		}
	}
}

func TestAnalyzeForecastIntent(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	respond(t, s, sess, "Give me an overview of the working force in Switzerland")
	respond(t, s, sess, "I am interested in the barometer")
	ans := respond(t, s, sess, "can you forecast the seasonal trend for the next months")
	if ans.Abstained {
		t.Fatalf("forecast abstained: %+v", ans)
	}
	if !strings.Contains(ans.Text, "prediction intervals") || !strings.Contains(ans.Text, "t+6") {
		t.Errorf("forecast text = %q", ans.Text)
	}
	if !strings.Contains(ans.Code, "ForecastSeries") {
		t.Errorf("forecast code = %q", ans.Code)
	}
	if len(ans.Explanation.Sources) == 0 {
		t.Error("forecast missing sources")
	}
}

func TestAnalyzeAnomalyIntent(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	respond(t, s, sess, "Give me an overview of the working force in Switzerland")
	respond(t, s, sess, "I am interested in the barometer")
	ans := respond(t, s, sess, "are there any anomalies in the data?")
	if ans.Abstained {
		t.Fatalf("anomaly analysis abstained: %+v", ans)
	}
	if !strings.Contains(ans.Text, "anomal") {
		t.Errorf("anomaly text = %q", ans.Text)
	}
	if !strings.Contains(ans.Code, "DetectAnomalies") {
		t.Errorf("anomaly code = %q", ans.Code)
	}
	if ans.Provenance == nil || !ans.Provenance.CheckInvertibility().Invertible {
		t.Error("anomaly provenance not invertible")
	}
}

func TestDescribeDocQAFallback(t *testing.T) {
	d := workload.NewSwissDomain(1)
	s := New(Config{
		DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents,
		Now: d.Now, Seed: 1,
	})
	sess := s.NewSession()
	// Not a KG entity or dataset name: answered from the methodology
	// document, verbatim and cited.
	ans := respond(t, s, sess, "explain the diffusion index used for hiring expectations")
	if ans.Abstained {
		t.Fatalf("docqa fallback abstained: %+v", ans)
	}
	if !strings.Contains(ans.Text, "diffusion index") {
		t.Errorf("text = %q", ans.Text)
	}
	found := false
	for _, src := range ans.Explanation.Sources {
		if strings.Contains(src, "arbeit.swiss") {
			found = true
		}
	}
	if !found {
		t.Errorf("sources = %v", ans.Explanation.Sources)
	}
	// Gibberish still abstains.
	none := respond(t, s, sess, "explain the quux frobnication constant")
	if !none.Abstained {
		t.Errorf("gibberish answered: %+v", none)
	}
}
