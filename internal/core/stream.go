package core

import (
	"context"

	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/sqldb"
)

// Streaming partial answers: long analytical questions can surface an
// early, explicitly-incomplete view of the result while the full
// pipeline finishes. Each partial carries a completeness bound (the
// fraction of the data consumed) and a confidence that is the verified
// translation's confidence scaled by completeness — so the confidence
// shown to the user only ever tightens upward toward the committed
// answer's, mirroring how the progressive (ProS-style) retrieval tier
// reports early hits.

// PartialAnswer is one streaming snapshot of a query answer.
type PartialAnswer struct {
	// Text is the rendered result over the data consumed so far.
	Text string
	// Completeness is the fraction of the driving table consumed, in
	// [0, 1], non-decreasing across snapshots.
	Completeness float64
	// Confidence is the translation confidence scaled by completeness;
	// it reaches the committed answer's consistency evidence at 1.
	Confidence float64
	// Done marks the final snapshot, whose Text equals the committed
	// answer's rendered result.
	Done bool
}

type partialEmitterKey struct{}

// WithPartialEmitter attaches a partial-answer consumer to the
// context. Query turns that reach the verified NL2SQL pipeline stream
// snapshots to it; all other turn kinds ignore it.
func WithPartialEmitter(ctx context.Context, emit func(PartialAnswer)) context.Context {
	return context.WithValue(ctx, partialEmitterKey{}, emit)
}

// partialEmitter extracts the attached consumer, or nil.
func partialEmitter(ctx context.Context) func(PartialAnswer) {
	emit, _ := ctx.Value(partialEmitterKey{}).(func(PartialAnswer))
	return emit
}

// RespondStream is Respond with streaming partial snapshots for query
// turns: onPartial observes a monotone sequence of increasingly
// complete answers before the final annotated Answer returns. Answers
// served from the singleflight cache (or turn kinds that never touch
// the SQL engine) return without partials — the feed is advisory, the
// returned Answer is the contract.
func (s *System) RespondStream(ctx context.Context, sess *dialogue.Session, userText string, onPartial func(PartialAnswer)) (*Answer, error) {
	if onPartial != nil {
		ctx = WithPartialEmitter(ctx, onPartial)
	}
	return s.Respond(ctx, sess, userText)
}

// streamPartials re-executes the verified SQL through the streaming
// engine when the caller attached an emitter. The committed answer was
// already produced and verified; the stream is a progressive view of
// the same result, so any failure here (cancellation mid-stream, an
// injected fault on the re-execution) simply ends the feed early — the
// degradation ladder and error handling of the main path are not
// involved.
func (s *System) streamPartials(ctx context.Context, sql string, confidence float64) {
	emit := partialEmitter(ctx)
	if emit == nil || s.engine == nil || sql == "" {
		return
	}
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return
	}
	serr := s.engine.ExecStream(ctx, stmt, sqldb.StreamOptions{}, func(p sqldb.Partial) error {
		emit(PartialAnswer{
			Text:         renderResult(p.Result),
			Completeness: p.Completeness,
			Confidence:   p.Completeness * confidence,
			Done:         p.Done,
		})
		return nil
	})
	if serr != nil {
		// Advisory stream: the verified answer is unaffected.
		return
	}
}
