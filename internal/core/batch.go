package core

import (
	"context"
	"hash/fnv"
	"math/rand"

	"github.com/reliable-cda/cda/internal/parallel"
)

// RespondBatch answers a slice of independent questions concurrently
// over `workers` goroutines (0 = GOMAXPROCS, 1 = serial), returning
// the answers in input order. Each question runs in its own fresh
// session, and its model-confidence stream is seeded from (Seed,
// question text) rather than drawn from the system's shared stream —
// so every answer is a pure function of the question, independent of
// worker count, batch order, and of which concurrent caller wins a
// singleflight race in the answer cache. Duplicate questions in one
// batch therefore produce identical answers. The first error (by
// question index) aborts the batch. Cancelling ctx aborts the batch
// with ctx.Err(); in-flight questions observe the cancellation at
// their next context check.
func (s *System) RespondBatch(ctx context.Context, questions []string, workers int) ([]*Answer, error) {
	answers := make([]*Answer, len(questions))
	o := parallel.Options{Workers: workers, SerialThreshold: 1}
	err := parallel.ForEach(len(questions), o, func(i int) error {
		sess := s.NewSession()
		rng := rand.New(rand.NewSource(s.cfg.Seed ^ hashString(questions[i])))
		ans, err := s.respond(ctx, sess, questions[i], rng)
		if err != nil {
			return err
		}
		answers[i] = ans
		return nil
	})
	if err != nil {
		return nil, err
	}
	return answers, nil
}

func hashString(s string) int64 {
	h := fnv.New64a()
	// cdalint:ignore dropped-error -- hash.Hash.Write never fails.
	h.Write([]byte(s))
	return int64(h.Sum64())
}
