package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/explain"
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/timeseries"
	"github.com/reliable-cda/cda/internal/uncertainty"
)

// expandedQuestion runs vocabulary expansion when grounding is on.
func (s *System) expandedQuestion(text string) string {
	if s.cfg.DisableGrounding || s.cfg.Vocab == nil {
		return text
	}
	return s.cfg.Vocab.Expand(text)
}

// groundingStrength scores how well the question grounded, feeding
// the evidence combiner.
func (s *System) groundingStrength(text string) float64 {
	if s.grounder == nil {
		return 0
	}
	rep := s.grounder.Ground(text)
	if !rep.Grounded() {
		return 0
	}
	best := 0.0
	for _, l := range rep.Entities {
		if l.Score > best {
			best = l.Score
		}
	}
	for _, l := range rep.Schema {
		if l.Score > best {
			best = l.Score
		}
	}
	return best
}

// discover handles dataset-discovery turns (Figure 1, turn 1).
func (s *System) discover(sess *dialogue.Session, text string, rng *rand.Rand) (*Answer, error) {
	ans := &Answer{}
	if s.cfg.Catalog == nil {
		ans.Abstained = true
		ans.Text = "No data catalog is connected, so I cannot search for datasets."
		return ans, nil
	}
	expanded := s.expandedQuestion(text)
	recs := s.cfg.Catalog.Search(expanded, 3, s.cfg.Now)
	if len(recs) == 0 {
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		ans.Text = "I could not find any dataset matching your question."
		return s.finalize(ans, rng), nil
	}

	g := provenance.NewGraph()
	ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "dataset recommendations for: " + text})
	q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "catalog search",
		Meta: map[string]string{"query": "catalog.Search(" + quoteShort(expanded) + ")"}})
	if err := g.DerivedFrom(ansNode, q); err != nil {
		return nil, err
	}
	var offers []dialogue.Offer
	var lines []string
	for _, r := range recs {
		src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: r.Dataset.Name,
			Meta: map[string]string{"uri": r.Dataset.Source, "dataset": r.Dataset.ID}})
		if err := g.DerivedFrom(q, src); err != nil {
			return nil, err
		}
		offers = append(offers, dialogue.Offer{ID: r.Dataset.ID, Label: r.Dataset.Name})
		lines = append(lines, fmt.Sprintf("- %s: %s (%s)", r.Dataset.Name, firstSentence(r.Dataset.Description), r.Reason))
	}
	var sb strings.Builder
	if expanded != text {
		sb.WriteString("I am assuming you are interested in " + assumption(expanded, text) + ".\n")
	}
	sb.WriteString("Our data sources contain:\n" + strings.Join(lines, "\n"))
	ans.Text = sb.String()
	if len(offers) > 1 {
		ans.Clarification = "Which of these would you prefer?"
		sess.SetOffers(offers, &dialogue.Clarification{Question: ans.Clarification, Options: offers})
	} else {
		sess.SetOffers(offers, nil)
		sess.Choose(offers[0])
	}
	ans.Provenance = g
	ans.AnswerNode = ansNode
	ans.Evidence = uncertainty.Evidence{
		Consistency:       recs[0].Relevance,
		GroundingStrength: s.groundingStrength(text),
		Verified:          true, // catalog lookup is deterministic and cited
	}
	return s.finalize(ans, rng), nil
}

// assumption extracts what the expansion added, for the "I am
// assuming..." preamble.
func assumption(expanded, original string) string {
	add := strings.TrimPrefix(expanded, original)
	add = strings.Trim(add, " ()")
	if add == "" {
		return "the topic of your question"
	}
	return "data about " + strings.ReplaceAll(add, ";", " or")
}

func firstSentence(s string) string {
	if i := strings.IndexAny(s, ".;"); i > 0 {
		return s[:i]
	}
	return s
}

func quoteShort(s string) string {
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return "\"" + s + "\""
}

// describe handles "what is X?" turns (Figure 1, turn 2).
func (s *System) describe(sess *dialogue.Session, text string, rng *rand.Rand) (*Answer, error) {
	ans := &Answer{}
	// Prefer a KG entity; fall back to an offered/known dataset.
	var entity string
	if s.grounder != nil {
		if links := s.grounder.LinkEntities(text); len(links) > 0 {
			entity = links[0].Entity
		}
	}
	var ds *catalog.Dataset
	if offer, ok := sess.ResolveOffer(text); ok && s.cfg.Catalog != nil {
		if d, err := s.cfg.Catalog.Get(offer.ID); err == nil {
			ds = d
		}
	}
	if entity == "" && ds == nil {
		// Fall back to extractive document QA: a verbatim, cited
		// sentence or nothing.
		if s.docs != nil {
			if hit := s.docs.Ask(text); hit != nil {
				g := provenance.NewGraph()
				ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "extract for: " + text})
				src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: hit.DocID,
					Meta: map[string]string{"uri": hit.Source}})
				if err := g.DerivedFrom(ansNode, src); err != nil {
					return nil, err
				}
				ans.Text = hit.Sentence
				ans.Provenance = g
				ans.AnswerNode = ansNode
				ans.Evidence = uncertainty.Evidence{
					Consistency:       hit.Score,
					GroundingStrength: hit.Score + hit.Margin,
					Verified:          true, // verbatim extraction from a cited document
				}
				return s.finalize(ans, rng), nil
			}
		}
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		ans.Text = "I do not have grounded knowledge about that; could you point me to a dataset or concept I know?"
		return s.finalize(ans, rng), nil
	}

	g := provenance.NewGraph()
	var parts []string
	ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "description for: " + text})
	if entity != "" && s.cfg.KG != nil {
		parts = append(parts, s.cfg.KG.Describe(entity))
		for _, srcName := range s.cfg.KG.Sources(entity) {
			src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: srcName,
				Meta: map[string]string{"uri": uriish(srcName)}})
			if err := g.DerivedFrom(ansNode, src); err != nil {
				return nil, err
			}
		}
	}
	if ds != nil {
		parts = append(parts, catalog.Describe(ds))
		src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: ds.Name,
			Meta: map[string]string{"uri": ds.Source, "dataset": ds.ID}})
		if err := g.DerivedFrom(ansNode, src); err != nil {
			return nil, err
		}
	}
	ans.Text = strings.Join(parts, "\n")
	ans.Provenance = g
	ans.AnswerNode = ansNode
	ans.Evidence = uncertainty.Evidence{
		Consistency:       1, // lookups are stable under resampling
		GroundingStrength: s.groundingStrength(text),
		Verified:          true,
	}
	return s.finalize(ans, rng), nil
}

func uriish(s string) string {
	if strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") {
		return s
	}
	return ""
}

// choose handles "I am interested in X" turns (Figure 1, turn 3).
func (s *System) choose(sess *dialogue.Session, text string, rng *rand.Rand) (*Answer, error) {
	ans := &Answer{}
	offer, ok := sess.ResolveOffer(text)
	if !ok {
		ans.Clarification = "I did not catch which option you meant; could you name it?"
		ans.Text = ans.Clarification
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		ans.Abstained = true
		return ans, nil
	}
	sess.Choose(offer)
	ds, err := s.datasetByID(offer.ID)
	if err != nil {
		return nil, err
	}
	g := provenance.NewGraph()
	ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "overview of " + ds.Name})
	src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: ds.Name,
		Meta: map[string]string{"uri": ds.Source, "dataset": ds.ID}})
	if err := g.DerivedFrom(ansNode, src); err != nil {
		return nil, err
	}
	var shape string
	if ds.Table != nil {
		// The profile-grounded summary: every number is computed from
		// the data, so the overview cannot hallucinate.
		shape = "\n" + explain.DescribeTable(ds.Table)
	}
	ans.Text = fmt.Sprintf("Sure, here is the overview of the data from %s.%s", ds.Source, shape)
	ans.Provenance = g
	ans.AnswerNode = ansNode
	ans.Evidence = uncertainty.Evidence{Consistency: 1, GroundingStrength: 1, Verified: true}
	return s.finalize(ans, rng), nil
}

func (s *System) datasetByID(id string) (*catalog.Dataset, error) {
	if s.cfg.Catalog == nil {
		return nil, fmt.Errorf("core: no catalog configured")
	}
	return s.cfg.Catalog.Get(id)
}

// analyze handles analytical turns (Figure 1, turn 4): seasonality
// and trend over the focused dataset.
func (s *System) analyze(sess *dialogue.Session, text string, rng *rand.Rand) (*Answer, error) {
	ans := &Answer{}
	dsID := sess.Focus
	if dsID == "" {
		if offer, ok := sess.ResolveOffer(text); ok {
			dsID = offer.ID
		}
	}
	if dsID == "" {
		ans.Clarification = "Which dataset should I analyze? Ask for an overview first, then pick one."
		ans.Text = ans.Clarification
		ans.Abstained = true
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, nil
	}
	ds, err := s.datasetByID(dsID)
	if err != nil {
		return nil, err
	}
	if ds.Table == nil {
		ans.Abstained = true
		ans.Text = fmt.Sprintf("The dataset %s has no loaded data I can analyze.", ds.Name)
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, nil
	}
	col, vals, err := firstNumericColumn(ds)
	if err != nil {
		ans.Abstained = true
		ans.Text = fmt.Sprintf("I could not find a numeric column to analyze in %s.", ds.Name)
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, nil
	}

	maxPeriod := len(vals) / timeseries.MinPointsPerPeriod
	if maxPeriod > 24 {
		maxPeriod = 24
	}
	suff := timeseries.CheckSufficiency(len(vals), 2)
	if !suff.OK || maxPeriod < 2 {
		ans.Abstained = true
		ans.Text = "There is not enough data for a seasonality analysis: " + suff.Explanation
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, nil
	}
	season, err := timeseries.DetectSeasonality(vals, maxPeriod)
	if err != nil {
		return nil, err
	}
	trend, err := timeseries.DetectTrend(vals)
	if err != nil {
		return nil, err
	}

	lower := strings.ToLower(text)
	switch {
	case strings.Contains(lower, "forecast") || strings.Contains(lower, "predict"):
		return s.analyzeForecast(ds, col, vals, season, rng)
	case strings.Contains(lower, "anomal") || strings.Contains(lower, "outlier"):
		return s.analyzeAnomalies(ds, col, vals, season, rng)
	}

	sqlText := fmt.Sprintf("SELECT %s FROM %s", col, ds.Table.Name)
	g := provenance.NewGraph()
	src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: ds.Name,
		Meta: map[string]string{"uri": ds.Source, "dataset": ds.ID}})
	q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "load series",
		Meta: map[string]string{"query": sqlText}})
	comp := g.AddNode(provenance.Node{Kind: provenance.KindComputation, Label: "seasonal decomposition",
		Meta: map[string]string{"code": analysisSnippet(col, ds.Table.Name, season.Period)}})
	var label string
	if season.Period > 0 {
		label = fmt.Sprintf("seasonal period %d (confidence %.0f%%)", season.Period, season.Confidence*100)
	} else {
		label = "no significant seasonality"
	}
	ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: label})
	for _, e := range [][2]string{{q, src}, {comp, q}, {ansNode, comp}} {
		if err := g.DerivedFrom(e[0], e[1]); err != nil {
			return nil, err
		}
	}

	var sb strings.Builder
	if season.Period > 0 {
		fmt.Fprintf(&sb, "There is seasonality in %s: the best fitted seasonal period is %d (confidence %.0f%%).",
			ds.Name, season.Period, season.Confidence*100)
	} else {
		fmt.Fprintf(&sb, "I found no statistically significant seasonality in %s.", ds.Name)
	}
	fmt.Fprintf(&sb, " The overall trend is %s", trend.Direction)
	if trend.Direction != timeseries.TrendStable {
		fmt.Fprintf(&sb, " (slope %.3f per step, confidence %.0f%%)", trend.Slope, trend.Confidence*100)
	}
	sb.WriteString(".")
	fmt.Fprintf(&sb, " I am reporting on %d points; components were computed only where enough data was present.", len(vals))
	fmt.Fprintf(&sb, "\nSeries: %s", explain.Sparkline(vals, 60))
	if season.Period > 0 {
		if dec, derr := timeseries.Decompose(vals, season.Period); derr == nil {
			fmt.Fprintf(&sb, "\nTrend:  %s", explain.Sparkline(dec.Trend, 60))
			fmt.Fprintf(&sb, "\nSeason: %s", explain.Sparkline(dec.Seasonal[:min(len(dec.Seasonal), 3*season.Period)], 60))
		}
	}
	ans.Text = sb.String()
	ans.Code = analysisSnippet(col, ds.Table.Name, season.Period)
	ans.Explanation.Caveats = append(ans.Explanation.Caveats,
		"trend estimates at the series edges are excluded (moving-average window)",
		suff.Explanation)
	ans.Provenance = g
	ans.AnswerNode = ansNode
	conf := season.Confidence
	if season.Period == 0 {
		conf = trend.Confidence
	}
	ans.Evidence = uncertainty.Evidence{
		Consistency:       conf,
		GroundingStrength: 1,
		Verified:          true, // deterministic computation over cited data
	}
	return s.finalize(ans, rng), nil
}

// analyzeForecast answers forecast requests with explicit prediction
// intervals (P4: the uncertainty of the prediction is part of the
// answer).
func (s *System) analyzeForecast(ds *catalog.Dataset, col string, vals []float64, season *timeseries.Seasonality, rng *rand.Rand) (*Answer, error) {
	ans := &Answer{}
	const horizon = 6
	const level = 0.9
	f, err := timeseries.ForecastSeries(vals, season.Period, horizon, level)
	if err != nil {
		ans.Abstained = true
		ans.Text = "I cannot produce a trustworthy forecast: " + err.Error()
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Forecast for %s (%s, %.0f%% prediction intervals, method %s):",
		ds.Name, col, level*100, f.Method)
	for h := range f.Values {
		fmt.Fprintf(&sb, "\n  t+%d: %.2f  [%.2f, %.2f]", h+1, f.Values[h], f.Lower[h], f.Upper[h])
	}
	code := fmt.Sprintf("timeseries.ForecastSeries(series, %d, %d, %.2f)", season.Period, horizon, level)
	ans.Text = sb.String()
	ans.Code = code
	g, ansNode, err := s.analysisProvenance(ds, col, "forecast", code,
		fmt.Sprintf("%d-step forecast with %.0f%% intervals", horizon, level*100))
	if err != nil {
		return nil, err
	}
	ans.Provenance = g
	ans.AnswerNode = ansNode
	conf := season.Confidence
	if season.Period == 0 {
		conf = 0.7 // naive+drift without seasonal structure
	}
	ans.Evidence = uncertainty.Evidence{Consistency: conf, GroundingStrength: 1, Verified: true}
	return s.finalize(ans, rng), nil
}

// analyzeAnomalies answers outlier requests with the auditable
// z-score criterion.
func (s *System) analyzeAnomalies(ds *catalog.Dataset, col string, vals []float64, season *timeseries.Seasonality, rng *rand.Rand) (*Answer, error) {
	ans := &Answer{}
	const threshold = 3.0
	anomalies, err := timeseries.DetectAnomalies(vals, season.Period, threshold)
	if err != nil {
		ans.Abstained = true
		ans.Text = "I cannot run a reliable anomaly analysis: " + err.Error()
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, nil
	}
	var sb strings.Builder
	if len(anomalies) == 0 {
		fmt.Fprintf(&sb, "No anomalies in %s (%s): every residual stays within %.0f standard deviations.",
			ds.Name, col, threshold)
	} else {
		fmt.Fprintf(&sb, "Found %d anomalous point(s) in %s (%s), residuals beyond %.0fσ:", len(anomalies), ds.Name, col, threshold)
		for _, a := range anomalies {
			fmt.Fprintf(&sb, "\n  index %d: value %.2f (z = %+.1f)", a.Index, a.Value, a.Z)
		}
	}
	code := fmt.Sprintf("timeseries.DetectAnomalies(series, %d, %.1f)", season.Period, threshold)
	ans.Text = sb.String()
	ans.Code = code
	g, ansNode, err := s.analysisProvenance(ds, col, "anomaly detection", code,
		fmt.Sprintf("%d anomalies at %.0fσ", len(anomalies), threshold))
	if err != nil {
		return nil, err
	}
	ans.Provenance = g
	ans.AnswerNode = ansNode
	ans.Evidence = uncertainty.Evidence{Consistency: 1, GroundingStrength: 1, Verified: true}
	return s.finalize(ans, rng), nil
}

// analysisProvenance builds the source → query → computation → answer
// chain shared by all analysis answers.
func (s *System) analysisProvenance(ds *catalog.Dataset, col, compLabel, code, answerLabel string) (*provenance.Graph, string, error) {
	g := provenance.NewGraph()
	src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: ds.Name,
		Meta: map[string]string{"uri": ds.Source, "dataset": ds.ID}})
	q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "load series",
		Meta: map[string]string{"query": fmt.Sprintf("SELECT %s FROM %s", col, ds.Table.Name)}})
	comp := g.AddNode(provenance.Node{Kind: provenance.KindComputation, Label: compLabel,
		Meta: map[string]string{"code": code}})
	ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: answerLabel})
	for _, e := range [][2]string{{q, src}, {comp, q}, {ansNode, comp}} {
		if err := g.DerivedFrom(e[0], e[1]); err != nil {
			return nil, "", err
		}
	}
	return g, ansNode, nil
}

func firstNumericColumn(ds *catalog.Dataset) (string, []float64, error) {
	for _, c := range ds.Table.Schema() {
		if c.Kind == storage.KindFloat {
			vals, _, err := ds.Table.FloatColumn(c.Name)
			if err == nil && len(vals) > 0 {
				return c.Name, vals, nil
			}
		}
	}
	return "", nil, fmt.Errorf("core: no numeric column in %s", ds.Table.Name)
}

func analysisSnippet(col, table string, period int) string {
	return fmt.Sprintf(`series := engine.Query("SELECT %s FROM %s")
dec, err := timeseries.Decompose(series, %d)
// dec.Trend, dec.Seasonal, dec.Residual`, col, table, period)
}

// Session-memo keys owned by the core orchestrator.
const (
	memoLastFrame     = "core.lastFrame"     // *nl2sql.Frame
	memoPendingAnswer = "core.pendingAnswer" // *Answer awaiting confirmation
)

// query handles structured-fact turns — including elliptical
// follow-ups ("and in Bern?") — through the verified NL2SQL pipeline.
// Self-contained questions go through the optimizer's singleflight
// answer cache: concurrent sessions asking the same question share
// one pipeline run, and a stampede on a cold key computes once.
func (s *System) query(ctx context.Context, sess *dialogue.Session, text string, rng *rand.Rand) (*Answer, error) {
	if s.translator == nil {
		return &Answer{Abstained: true, Text: "No database is connected."}, nil
	}
	// Follow-ups depend on conversation context and must bypass the
	// text-keyed answer cache.
	if _, freshErr := nl2sql.ParseIntent(text); freshErr != nil {
		ans, _, err := s.queryUncached(ctx, sess, text, rng)
		return ans, err
	}
	// A caller served from the cache (or from another caller's flight)
	// skips its own session-memo updates, exactly as cache hits always
	// have. The cache shares one *Answer across callers, so each caller
	// gets a shallow copy — per-session suggestion attachment must not
	// race on the shared value.
	ans, err := s.cache.Do(ctx, text, func() (*Answer, bool, error) {
		return s.queryUncached(ctx, sess, text, rng)
	})
	if ans == nil || err != nil {
		return nil, err
	}
	cp := *ans
	return &cp, nil
}

// queryUncached runs the full NL2SQL pipeline for one question. The
// second result reports whether the answer may be cached and shared:
// only final committed answers are; clarifications, abstentions, and
// pending ask-and-refine exchanges carry session side effects and are
// recomputed per caller.
func (s *System) queryUncached(ctx context.Context, sess *dialogue.Session, text string, rng *rand.Rand) (*Answer, bool, error) {
	var prevFrame *nl2sql.Frame
	if f, ok := sess.Memo[memoLastFrame].(*nl2sql.Frame); ok {
		prevFrame = f
	}
	ans := &Answer{}
	tr, frame, err := s.translate(ctx, text, prevFrame)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// A cancelled request is not an outage: propagate, never
			// degrade and never cache.
			return nil, false, err
		}
		if infrastructureFailure(err) {
			// Retries exhausted or circuit open: walk the degradation
			// ladder. Degraded answers are never cached — the next
			// caller should get the verified pipeline back as soon as
			// it heals.
			deg, derr := s.degrade(ctx, text, err)
			return deg, false, derr
		}
		ans.Clarification = "I could not map that question to the data; try 'how many …', 'what is the average … in …', or 'list the … of …'."
		ans.Text = ans.Clarification
		ans.Abstained = true
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, false, nil
	}
	sess.Memo[memoLastFrame] = frame
	if tr.Abstained {
		ans.Abstained = true
		ans.Text = "I could not produce a query I can verify against the data, so I would rather not guess."
		ans.Code = tr.SQL
		ans.Evidence = uncertainty.Evidence{Unverifiable: true}
		return ans, false, nil
	}
	ans.Code = tr.SQL
	ans.Text = renderResult(tr.Result)
	if tr.Result != nil {
		// Stream partial snapshots to an attached emitter (see
		// stream.go); a no-op when the caller did not opt in.
		s.streamPartials(ctx, tr.SQL, tr.Confidence)
	}

	g := provenance.NewGraph()
	q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "generated SQL",
		Meta: map[string]string{"query": tr.SQL}})
	ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "result of: " + text})
	if err := g.DerivedFrom(ansNode, q); err != nil {
		return nil, false, err
	}
	for _, tbl := range tablesOf(tr) {
		meta := map[string]string{"dataset": tbl}
		if s.cfg.Catalog != nil {
			if ds, err := s.cfg.Catalog.Get(tbl); err == nil {
				meta["uri"] = ds.Source
			}
		}
		src := g.AddNode(provenance.Node{ID: "source:" + tbl, Kind: provenance.KindSource, Label: tbl, Meta: meta})
		if err := g.DerivedFrom(q, src); err != nil {
			return nil, false, err
		}
	}
	ans.Provenance = g
	ans.AnswerNode = ansNode
	verified := tr.Result != nil && !s.cfg.DisableVerification
	ans.Evidence = uncertainty.Evidence{
		Consistency:       tr.Confidence,
		GroundingStrength: s.groundingStrength(text),
		Verified:          verified,
		Unverifiable:      tr.Result == nil,
	}
	out := s.finalize(ans, rng)
	// Ask-and-refine (the paper's "ask-and-refine dialogues"): when
	// the evidence fell just short of the threshold but a verifiable
	// candidate exists, show it and ask instead of silently
	// abstaining. A "yes" turn then commits the pending answer.
	if out.Abstained && tr.Result != nil && !tr.Abstained {
		pending := *out
		pending.Abstained = false
		pending.Evidence.Verified = true // user confirmation counts as verification
		pending.Confidence = s.combiner.Combine(pending.Evidence)
		// Explicit user confirmation supersedes the abstention policy.
		if pending.Confidence < s.policy.Threshold {
			pending.Confidence = s.policy.Threshold
		}
		pending.Text = renderResult(tr.Result)
		sess.Memo[memoPendingAnswer] = &pending
		out.Clarification = fmt.Sprintf(
			"I am only %.0f%% confident. My best interpretation is:\n  %s\nShall I run with it? (yes/no)",
			out.Confidence*100, tr.SQL)
		out.Text = out.Clarification
		return out, false, nil
	}
	return out, true, nil
}

// confirm resolves a pending ask-and-refine exchange.
func (s *System) confirm(sess *dialogue.Session, text string) *Answer {
	pending, ok := sess.Memo[memoPendingAnswer].(*Answer)
	delete(sess.Memo, memoPendingAnswer)
	if !ok {
		return &Answer{
			Abstained:     true,
			Clarification: "There is nothing pending to confirm.",
			Text:          "There is nothing pending to confirm.",
		}
	}
	lower := strings.ToLower(strings.TrimSpace(text))
	if strings.HasPrefix(lower, "yes") || strings.HasPrefix(lower, "correct") || strings.HasPrefix(lower, "exactly") {
		return pending
	}
	return &Answer{
		Abstained:     true,
		Clarification: "Understood — could you rephrase the question with the exact column or value you mean?",
		Text:          "Understood — could you rephrase the question with the exact column or value you mean?",
	}
}

// tablesOf extracts the base tables of a translation's provenance.
func tablesOf(tr *nl2sql.Translation) []string { return tr.Tables() }

// unknown handles unclassifiable turns.
func (s *System) unknown(sess *dialogue.Session, text string) *Answer {
	return &Answer{
		Abstained:     true,
		Clarification: "I did not understand; you can ask me to find datasets, describe one, run an analysis, or answer a data question.",
		Text:          "I did not understand; you can ask me to find datasets, describe one, run an analysis, or answer a data question.",
	}
}
