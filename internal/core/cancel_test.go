package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/reliable-cda/cda/internal/faults"
	"github.com/reliable-cda/cda/internal/resilience"
)

// blockingClock parks every Sleep until the caller's context dies and
// signals when the first sleeper arrives — the deterministic way to
// catch Respond mid-retry without real timers.
type blockingClock struct {
	sleeping chan struct{}
}

func newBlockingClock() *blockingClock {
	return &blockingClock{sleeping: make(chan struct{}, 1)}
}

func (c *blockingClock) Now() time.Duration { return 0 }

func (c *blockingClock) Sleep(ctx context.Context, d time.Duration) error {
	select {
	case c.sleeping <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return ctx.Err()
}

// TestCancelledRespondReturnsPromptly: cancelling an in-flight Respond
// surfaces context.Canceled as soon as the pipeline reaches its next
// cancellation point, and the session transcript gains no partial
// turn — the turn either fully happened or never happened.
func TestCancelledRespondReturnsPromptly(t *testing.T) {
	clock := newBlockingClock()
	inj := faults.New(faults.Config{Seed: 1, Default: faults.Rates{Error: 1}}, clock)
	s := swissSystem(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Faults = inj
	})
	sess := s.NewSession()

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		ans *Answer
		err error
	}
	done := make(chan result, 1)
	go func() {
		ans, err := s.Respond(ctx, sess, "how many employment where canton is Zurich")
		done <- result{ans, err}
	}()

	// The 100% error rate forces a retry; the retrier's backoff sleep
	// parks on the blocking clock, which tells us Respond is in
	// flight. Cancel it there.
	select {
	case <-clock.sleeping:
	case <-time.After(5 * time.Second):
		t.Fatal("Respond never reached the retry backoff")
	}
	cancel()

	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("Respond after cancel: ans=%+v err=%v, want context.Canceled", r.ans, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Respond did not return promptly after cancellation")
	}
	if len(sess.Turns) != 0 {
		t.Fatalf("cancelled turn leaked into the transcript: %+v", sess.Turns)
	}
}

// TestCancelledBatchAborts: a dead context aborts RespondBatch with
// ctx.Err() before any work runs.
func TestCancelledBatchAborts(t *testing.T) {
	s := swissSystem(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RespondBatch(ctx, []string{"how many employment"}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("RespondBatch on cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestDeadlineExceededPropagates: an already-expired deadline is
// reported as context.DeadlineExceeded, not absorbed by the
// degradation ladder — a timeout is not an outage.
func TestDeadlineExceededPropagates(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.Respond(ctx, sess, "how many employment"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Respond with expired deadline: %v, want context.DeadlineExceeded", err)
	}
	if len(sess.Turns) != 0 {
		t.Fatalf("expired turn leaked into the transcript: %+v", sess.Turns)
	}
}

// TestOpenBreakerFailsFastWithoutClockAdvance: once the nl2sql
// circuit opens, further queries degrade immediately without waiting
// on backoff — the fail-fast half of the resilience contract.
func TestOpenBreakerFailsFastWithoutClockAdvance(t *testing.T) {
	clock := resilience.NewVirtualClock()
	inj := faults.New(faults.Config{Seed: 1, Default: faults.Rates{Error: 1}}, clock)
	s := swissSystem(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Faults = inj
	})
	sess := s.NewSession()
	// Drive the breaker open with repeated failing queries.
	for i := 0; i < 4; i++ {
		ans := respond(t, s, sess, "how many employment where canton is Zurich")
		if ans.Degraded == "" {
			t.Fatalf("query %d under 100%% faults was not degraded: %+v", i, ans)
		}
	}
	states := s.BreakerStates()
	if states["nl2sql"].String() != "open" {
		t.Fatalf("nl2sql breaker = %v, want open (states: %v)", states["nl2sql"], states)
	}
	before := clock.Now()
	ans := respond(t, s, sess, "how many employment where canton is Bern")
	if ans.Degraded == "" {
		t.Fatal("open breaker should force a degraded answer")
	}
	if clock.Now() != before {
		t.Fatalf("fail-fast path advanced the clock: %v -> %v", before, clock.Now())
	}
}
