package core

import (
	"context"
	"strings"
	"testing"
)

// TestRespondStreamEmitsPartials: a verified query turn streams at
// least two increasingly-complete snapshots before the final answer,
// with confidence scaled by completeness, ending in a Done snapshot.
func TestRespondStreamEmitsPartials(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	var parts []PartialAnswer
	ans, err := s.RespondStream(context.Background(), sess,
		"how many employment where canton is Zurich",
		func(p PartialAnswer) { parts = append(parts, p) })
	if err != nil {
		t.Fatal(err)
	}
	if ans.Abstained {
		t.Fatalf("abstained: %+v", ans)
	}
	if len(parts) < 2 {
		t.Fatalf("expected >= 2 partial snapshots, got %d", len(parts))
	}
	last := -1.0
	for i, p := range parts {
		if p.Completeness < last {
			t.Fatalf("partial %d: completeness %v < previous %v", i, p.Completeness, last)
		}
		last = p.Completeness
		if p.Confidence > p.Completeness {
			// Confidence is translation confidence (<= 1) scaled by
			// completeness, so it can never exceed the bound itself.
			t.Fatalf("partial %d: confidence %v exceeds completeness %v", i, p.Confidence, p.Completeness)
		}
		if p.Done != (i == len(parts)-1) {
			t.Fatalf("partial %d: Done=%v misplaced", i, p.Done)
		}
	}
	final := parts[len(parts)-1]
	if final.Completeness != 1 {
		t.Fatalf("final completeness %v, want 1", final.Completeness)
	}
	if final.Text == "" {
		t.Fatal("final partial has empty text")
	}
	// The final snapshot renders the same committed result the answer
	// itself reports (the answer text carries extra annotations).
	if !strings.Contains(ans.Text, strings.Split(final.Text, "\n")[0]) {
		t.Fatalf("final partial text %q not reflected in answer %q", final.Text, ans.Text)
	}
}

// TestRespondStreamNilCallback degrades to a plain Respond.
func TestRespondStreamNilCallback(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans, err := s.RespondStream(context.Background(), sess,
		"how many employment where canton is Zurich", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Abstained || !strings.Contains(ans.Text, "20") {
		t.Fatalf("unexpected answer: %+v", ans)
	}
}

// TestRespondStreamDoesNotChangeAnswers: the streaming feed is
// advisory — the committed answer must be identical with and without
// an attached consumer.
func TestRespondStreamDoesNotChangeAnswers(t *testing.T) {
	const q = "how many employment where canton is Zurich"
	plain := swissSystem(t, nil)
	plainAns := respond(t, plain, plain.NewSession(), q)

	streamed := swissSystem(t, nil)
	ans, err := streamed.RespondStream(context.Background(), streamed.NewSession(), q, func(PartialAnswer) {})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != plainAns.Text {
		t.Fatalf("streaming changed the answer:\nwith:    %q\nwithout: %q", ans.Text, plainAns.Text)
	}
	if ans.Confidence != plainAns.Confidence {
		t.Fatalf("streaming changed confidence: %v vs %v", ans.Confidence, plainAns.Confidence)
	}
}

// TestRespondStreamNonQueryTurnsEmitNothing: turns that never reach
// the SQL engine ignore the emitter entirely.
func TestRespondStreamNonQueryTurnsEmitNothing(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	var parts []PartialAnswer
	ans, err := s.RespondStream(context.Background(), sess,
		"what data do you have about unemployment",
		func(p PartialAnswer) { parts = append(parts, p) })
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text == "" {
		t.Fatal("empty answer")
	}
	if len(parts) != 0 {
		t.Fatalf("discovery turn emitted %d partials", len(parts))
	}
}
