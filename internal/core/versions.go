package core

import (
	"fmt"

	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/vstore"
)

// DefaultDataRoot is the vstore root name the analytical database is
// versioned under when Config.DataRoot is empty.
const DefaultDataRoot = "data"

// dataRoot resolves the configured root name.
func (s *System) dataRoot() string {
	if s.cfg.DataRoot != "" {
		return s.cfg.DataRoot
	}
	return DefaultDataRoot
}

// CommitData publishes the current analytical database as an
// immutable version at the given turn. The caller decides when data
// changes warrant a new version (ingest, refresh, turn boundary);
// structural sharing makes an unchanged re-commit a cheap no-op (the
// head already pins the same tree). Returns ErrNoVersions-style
// failure when the system is unversioned.
func (s *System) CommitData(turn int) (vstore.Commit, error) {
	if s.cfg.Versions == nil {
		return vstore.Commit{}, fmt.Errorf("core: no version store configured")
	}
	if s.cfg.DB == nil {
		return vstore.Commit{}, fmt.Errorf("core: no database to version")
	}
	return s.cfg.Versions.CommitDatabase(s.dataRoot(), s.cfg.DB, turn)
}

// DataVersion returns the hash of the data root's head commit, or ""
// when the system is unversioned or nothing was committed yet.
func (s *System) DataVersion() string {
	if s.cfg.Versions == nil {
		return ""
	}
	head, err := s.cfg.Versions.Head(s.dataRoot())
	if err != nil {
		return ""
	}
	return string(head.Hash)
}

// DataAsOf materializes the immutable database snapshot the system
// saw at the given turn — the time-travel read path callers hand to
// sqldb.NewEngine to re-execute historical queries against historical
// data.
func (s *System) DataAsOf(turn int) (*storage.Database, vstore.Commit, error) {
	if s.cfg.Versions == nil {
		return nil, vstore.Commit{}, fmt.Errorf("core: no version store configured")
	}
	return s.cfg.Versions.DatabaseAsOf(s.dataRoot(), turn)
}

// stampDataRoot records the data version an answer was computed
// against: on the Answer itself (wire field) and in the provenance
// answer node's metadata, so the provenance chain pins not just which
// tables fed the answer but which immutable version of them.
func (s *System) stampDataRoot(ans *Answer) {
	root := s.DataVersion()
	if root == "" {
		return
	}
	ans.DataRoot = root
	if ans.Provenance == nil || ans.AnswerNode == "" {
		return
	}
	node, ok := ans.Provenance.Node(ans.AnswerNode)
	if !ok {
		return
	}
	if node.Meta == nil {
		node.Meta = map[string]string{}
	}
	node.Meta["data_root"] = root
	// Re-adding an existing ID replaces label/meta and keeps edges.
	ans.Provenance.AddNode(node)
}
