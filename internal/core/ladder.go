package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/uncertainty"
)

// Degraded-answer confidence caps. The ladder reports strictly less
// confidence the further it falls: a dense-retrieval pointer beats a
// lexical one beats a bare catalog listing, and all of them sit below
// any verified answer (verified answers that clear the abstention
// policy are at or above the 0.5 default threshold).
const (
	degradedVectorConfidence  = 0.45
	degradedTextConfidence    = 0.35
	degradedCatalogConfidence = 0.25
)

// Degradation-tier names stamped into Answer.Degraded.
const (
	DegradedVector  = "vector"
	DegradedText    = "text"
	DegradedCatalog = "catalog"
)

// translate runs the NL2SQL pipeline behind the resilience executor:
// transient backend faults are retried with backoff, repeated failures
// trip the "nl2sql" circuit breaker, and an open circuit fails fast.
// Application-level failures (an unparseable question) carry no
// infrastructure signal — they bypass retry and leave the breaker
// untouched, so a user typing unmappable questions cannot trip it.
func (s *System) translate(ctx context.Context, text string, prev *nl2sql.Frame) (*nl2sql.Translation, *nl2sql.Frame, error) {
	var (
		tr      *nl2sql.Translation
		frame   *nl2sql.Frame
		permErr error
	)
	err := s.exec.Do(ctx, "nl2sql", func() error {
		t, f, err := s.translator.TranslateWithContext(text, prev)
		if err != nil && !resilience.IsTransient(err) &&
			!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			permErr = err
			return nil
		}
		if err != nil {
			return err
		}
		tr, frame, permErr = t, f, nil
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if permErr != nil {
		return nil, nil, permErr
	}
	return tr, frame, nil
}

// infrastructureFailure reports whether err is a backend outage the
// degradation ladder should absorb (retries exhausted on a transient
// fault, or an open circuit) rather than a user-facing condition.
func infrastructureFailure(err error) bool {
	return resilience.IsTransient(err) || errors.Is(err, resilience.ErrOpen)
}

// degrade walks the graceful-degradation ladder after the verified
// pipeline failed unrecoverably: dense retrieval over the fallback
// snapshot (tier "vector"), then lexical BM25 (tier "text"), then a
// bare catalog listing (tier "catalog"). Each tier reports strictly
// less confidence, every answer is stamped Degraded and says why, and
// none of them pretends to be a verified result. Context errors
// propagate — a cancelled request is not an outage.
func (s *System) degrade(ctx context.Context, text string, cause error) (*Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	preamble := "I cannot compute a verified answer right now (" + degradeReason(cause) + ")."

	// Tier 1: dense retrieval over the catalog/document snapshot.
	var denseIDs []string
	derr := s.exec.Do(ctx, "embed", func() error {
		hits, err := s.fallbackDense.TrySearch(text, 3)
		if err != nil {
			return err
		}
		denseIDs = denseIDs[:0]
		for _, h := range hits {
			if h.Score > 0 {
				denseIDs = append(denseIDs, h.ID)
			}
		}
		return nil
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if derr == nil && len(denseIDs) > 0 {
		return s.degradedAnswer(DegradedVector, degradedVectorConfidence, text, preamble,
			"semantically closest grounded sources", denseIDs), nil
	}

	// Tier 2: lexical BM25 over the same snapshot.
	var textIDs []string
	terr := s.exec.Do(ctx, "textindex", func() error {
		hits, err := s.fallbackText.TrySearch(text, 3)
		if err != nil {
			return err
		}
		textIDs = textIDs[:0]
		for _, h := range hits {
			textIDs = append(textIDs, h.ID)
		}
		return nil
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if terr == nil && len(textIDs) > 0 {
		return s.degradedAnswer(DegradedText, degradedTextConfidence, text, preamble,
			"keyword-matching grounded sources", textIDs), nil
	}

	// Tier 3: the catalog listing needs no backend at all.
	var ids []string
	if s.cfg.Catalog != nil {
		for _, d := range s.cfg.Catalog.List() {
			ids = append(ids, d.ID)
			if len(ids) == 3 {
				break
			}
		}
	}
	return s.degradedAnswer(DegradedCatalog, degradedCatalogConfidence, text, preamble,
		"datasets the catalog lists", ids), nil
}

// degradeReason renders the outage cause without leaking internals.
func degradeReason(cause error) string {
	if errors.Is(cause, resilience.ErrOpen) {
		return "a backend is cooling down after repeated failures"
	}
	return "a backend is temporarily unavailable"
}

// degradedAnswer assembles one ladder answer: capped confidence, the
// Degraded stamp, unverifiable evidence, and provenance citing the
// fallback sources so even an outage answer stays traceable.
func (s *System) degradedAnswer(tier string, confidence float64, question, preamble, what string, ids []string) *Answer {
	ans := &Answer{Degraded: tier, Confidence: confidence}
	ans.Evidence = uncertainty.Evidence{Unverifiable: true}
	var sb strings.Builder
	sb.WriteString(preamble)
	if len(ids) == 0 {
		sb.WriteString(" I have no grounded pointers to offer; please retry shortly.")
		ans.Text = sb.String()
		return ans
	}
	fmt.Fprintf(&sb, " The %s are:", what)
	g := provenance.NewGraph()
	ansNode := g.AddNode(provenance.Node{Kind: provenance.KindAnswer,
		Label: "degraded (" + tier + ") pointer for: " + text60(question)})
	q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "fallback " + tier + " search"})
	for _, id := range ids {
		label := s.fallbackLabels[id]
		if label == "" {
			label = id
		}
		sb.WriteString("\n- " + label)
		src := g.AddNode(provenance.Node{ID: "source:" + id, Kind: provenance.KindSource, Label: id,
			Meta: map[string]string{"dataset": id}})
		// cdalint:ignore dropped-error -- nodes were just created in
		// this graph, DerivedFrom cannot fail on them.
		g.DerivedFrom(q, src)
	}
	// cdalint:ignore dropped-error -- same: both nodes exist.
	g.DerivedFrom(ansNode, q)
	fmt.Fprintf(&sb, "\n(Degraded answer — confidence capped at %.0f%%; retry for a verified result.)", confidence*100)
	ans.Text = sb.String()
	ans.Provenance = g
	ans.AnswerNode = ansNode
	return ans
}

func text60(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
