// Package core implements the paper's primary contribution: the
// reliable Conversational Data Analytics system of Figure 1, wiring
// the conversational exploration layer (internal/dialogue,
// internal/guidance), the computational infrastructure
// (internal/sqldb, internal/vectorindex, internal/textindex,
// internal/timeseries, internal/optimizer), and the NL model layer
// (internal/nlmodel, internal/nl2sql) over the data layer
// (internal/storage, internal/kg, internal/catalog), with grounding
// (internal/ground), provenance (internal/provenance), explanation
// assembly (internal/explain), and uncertainty quantification
// (internal/uncertainty).
//
// Every answer the system emits carries the paper's ⓔ annotations: a
// confidence score, a provenance graph that is checked for
// losslessness before the answer leaves the pipeline, and an
// explanation with code and sources. When the combined evidence does
// not clear the abstention policy the system refrains from answering
// and says why (P4 Soundness).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/docqa"
	"github.com/reliable-cda/cda/internal/embed"
	"github.com/reliable-cda/cda/internal/explain"
	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/guidance"
	"github.com/reliable-cda/cda/internal/kg"
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/optimizer"
	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/textindex"
	"github.com/reliable-cda/cda/internal/uncertainty"
	"github.com/reliable-cda/cda/internal/vstore"
)

// Config assembles a System.
type Config struct {
	DB      *storage.Database
	Catalog *catalog.Catalog
	KG      *kg.Store
	Vocab   *ground.Vocabulary
	// Documents feed the extractive document-QA fallback for
	// "what/how is X?" questions the KG and catalog cannot answer.
	Documents []docqa.Document
	// Now is the logical epoch used for dataset freshness.
	Now int
	// Seed drives every stochastic component deterministically.
	Seed int64
	// HallucinationRate configures the simulated LLM channel in the
	// NL2SQL path (0 = perfect model).
	HallucinationRate float64
	// Fabrications is the hallucination token pool.
	Fabrications []string
	// AbstainBelow is the confidence threshold of the abstention
	// policy (default 0.5 when zero).
	AbstainBelow float64
	// DisableGuidance turns off next-step suggestions (E6/E8
	// ablation).
	DisableGuidance bool
	// DisableGrounding turns off the grounding layer (E3/E8
	// ablation).
	DisableGrounding bool
	// DisableProvenance turns off provenance capture (E4/E8
	// ablation).
	DisableProvenance bool
	// DisableVerification turns off NL2SQL execution verification
	// (E8 ablation).
	DisableVerification bool
	// CacheSize bounds the holistic optimizer's answer cache
	// (default 256).
	CacheSize int
	// Clock is the time source for resilience backoff and injected
	// latency (default: the wall clock). Chaos tests pass a
	// resilience.VirtualClock so fault sweeps are instant and
	// deterministic.
	Clock resilience.Clock
	// Versions, when set, gives the system a content-addressed
	// version store (internal/vstore): CommitData publishes immutable
	// snapshots of DB under DataRoot, and every answer is stamped with
	// the data root hash it was computed against — the provenance
	// chain then pins not just which tables, but which VERSION of
	// them.
	Versions *vstore.Store
	// DataRoot names the version root CommitData publishes to
	// (default DefaultDataRoot).
	DataRoot string
	// Resilience tunes retry and circuit-breaker behavior for the
	// backend executor (zero value = library defaults).
	Resilience resilience.Options
	// Faults, when non-nil, is the deterministic chaos injector
	// attached to every backend the system constructs (see
	// internal/faults). Leave nil in production.
	Faults FaultInjector
}

// FaultInjector is the chaos seam the system threads through to its
// backends; *faults.Injector implements it.
type FaultInjector interface {
	Inject(op string) error
	CorruptTokens(op string, toks []string) []string
}

// Answer is the annotated system response (layer ⓔ of Figure 1).
type Answer struct {
	Text       string
	Code       string
	Confidence float64
	Abstained  bool
	// Clarification is non-empty when the system asks back instead of
	// answering (P5 Guidance / P2 Grounding interplay).
	Clarification string
	Suggestions   string
	Explanation   explain.Explanation
	Provenance    *provenance.Graph
	AnswerNode    string
	// Evidence exposes the soundness signals for calibration
	// experiments.
	Evidence uncertainty.Evidence
	// Degraded names the fallback tier that produced this answer when
	// the verified pipeline was unavailable ("vector", "text", or
	// "catalog"); empty for answers from the full pipeline. Degraded
	// answers always report a confidence below any verified answer's
	// and are exempt from the abstention policy — stating a low-
	// confidence pointer with an explicit caveat beats refusing
	// outright during an outage (P4 Soundness under partial failure).
	Degraded string
	// DataRoot is the hash of the data-version commit the answer was
	// computed against (empty on unversioned deployments). Replaying
	// the answer's query against vstore.DatabaseAsOf of this commit
	// reproduces the result byte-for-byte.
	DataRoot string
}

// System is the reliable CDA system.
type System struct {
	cfg        Config
	grounder   *ground.Grounder
	engine     *sqldb.Engine
	translator *nl2sql.Translator
	guide      *guidance.Graph
	combiner   uncertainty.Combiner
	policy     uncertainty.Policy
	rawConf    nlmodel.RawConfidence
	cache      *optimizer.Cache[*Answer]
	docs       *docqa.Store
	exec       *resilience.Executor
	// fallbackDense and fallbackText are the degradation ladder's
	// retrieval tiers: catalog descriptions and document snippets in
	// a dense index (tier 1) and a BM25 index (tier 2), consulted
	// only when the verified pipeline is unavailable.
	fallbackDense *embed.DenseIndex
	fallbackText  *textindex.Index
	// fallbackLabels maps a fallback-index hit ID to the human label
	// rendered in degraded answers.
	fallbackLabels map[string]string
	rngMu          sync.Mutex // guards rng (rand.Rand is not goroutine-safe)
	rng            *rand.Rand
}

// DefaultAbstainBelow is the abstention threshold used when the
// config leaves AbstainBelow zero. The graceful-degradation ladder's
// confidence caps (ladder.go) must stay below it so a degraded answer
// never outranks the abstention line; cdalint's confidence-bounds
// rule checks that relationship.
const DefaultAbstainBelow = 0.5

// New builds a System from the config.
func New(cfg Config) *System {
	if cfg.AbstainBelow == 0 {
		cfg.AbstainBelow = DefaultAbstainBelow
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.Vocab == nil {
		cfg.Vocab = ground.NewVocabulary()
	}
	s := &System{
		cfg:      cfg,
		combiner: uncertainty.DefaultCombiner(),
		policy:   uncertainty.Policy{Threshold: cfg.AbstainBelow},
		rawConf:  nlmodel.RawConfidence{Base: 0.9, Noise: 0.04},
		cache:    optimizer.NewCache[*Answer](cfg.CacheSize),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.NewWallClock()
		s.cfg.Clock = cfg.Clock
	}
	s.exec = resilience.NewExecutor(cfg.Resilience, cfg.Clock, cfg.Seed)
	if !cfg.DisableGrounding {
		s.grounder = ground.NewGrounder(cfg.KG, cfg.DB, cfg.Vocab)
	}
	if cfg.DB != nil {
		s.engine = sqldb.NewEngine(cfg.DB)
		s.engine.CaptureProvenance = !cfg.DisableProvenance
		s.translator = nl2sql.NewTranslator(cfg.DB, s.grounder, cfg.Seed)
		s.translator.Channel = nlmodel.Channel{
			HallucinationRate: cfg.HallucinationRate,
			Fabrications:      cfg.Fabrications,
		}
		opts := nl2sql.DefaultOptions()
		opts.UseGrounding = !cfg.DisableGrounding
		opts.UseVerification = !cfg.DisableVerification
		s.translator.Options = opts
	}
	if len(cfg.Documents) > 0 {
		s.docs = docqa.NewStore()
		for _, d := range cfg.Documents {
			s.docs.Add(d)
		}
	}
	s.buildFallbackIndexes()
	if cfg.Faults != nil {
		// Thread the chaos seam through every backend this system
		// constructed. The caller's DB and catalog are shared objects;
		// the harness decides whether to fault those.
		if s.engine != nil {
			s.engine.Faults = cfg.Faults
		}
		if s.translator != nil {
			s.translator.Faults = cfg.Faults
		}
		if s.fallbackDense != nil {
			s.fallbackDense.Faults = cfg.Faults
		}
		if s.fallbackText != nil {
			s.fallbackText.Faults = cfg.Faults
		}
	}
	s.guide = guidance.NewGraph()
	seedGuidance(s.guide)
	return s
}

// buildFallbackIndexes snapshots the catalog descriptions and document
// snippets into the degradation ladder's retrieval tiers. The indexes
// are tiny (one entry per dataset/document) and built eagerly so a
// backend outage cannot also take down the fallback path.
func (s *System) buildFallbackIndexes() {
	s.fallbackDense = embed.NewDenseIndex(nil)
	s.fallbackText = textindex.NewIndex()
	s.fallbackLabels = map[string]string{}
	if s.cfg.Catalog != nil {
		for _, d := range s.cfg.Catalog.List() {
			text := d.Name + " " + d.Description
			s.fallbackDense.Add(embed.Item{ID: d.ID, Text: text})
			s.fallbackText.Add(textindex.Document{ID: d.ID, Text: text})
			s.fallbackLabels[d.ID] = d.Name + " — " + firstSentence(d.Description)
		}
	}
	for _, d := range s.cfg.Documents {
		s.fallbackDense.Add(embed.Item{ID: d.ID, Text: d.Text})
		s.fallbackText.Add(textindex.Document{ID: d.ID, Text: d.Text})
		s.fallbackLabels[d.ID] = "document " + d.ID + " — " + firstSentence(d.Text)
	}
}

// BreakerStates exposes the executor's per-backend circuit-breaker
// states for observability (the chaos harness and the server's
// health endpoint read it).
func (s *System) BreakerStates() map[string]resilience.BreakerState {
	return s.exec.BreakerStates()
}

// seedGuidance pre-trains the interaction graph with the canonical
// successful exploration routes so a fresh system already guides
// sensibly; Record() keeps learning from live sessions.
func seedGuidance(g *guidance.Graph) {
	for i := 0; i < 8; i++ {
		g.Record([]guidance.Action{
			guidance.ActDiscover, guidance.ActClarify, guidance.ActDescribe, guidance.ActAnalyze,
		}, true)
		g.Record([]guidance.Action{
			guidance.ActDiscover, guidance.ActClarify, guidance.ActQuery,
		}, true)
	}
	for i := 0; i < 4; i++ {
		g.Record([]guidance.Action{guidance.ActAnalyze}, false)
		g.Record([]guidance.Action{guidance.ActQuery}, false)
	}
}

// Guide exposes the interaction graph (E6 records outcomes on it).
func (s *System) Guide() *guidance.Graph { return s.guide }

// NewSession starts a conversation.
func (s *System) NewSession() *dialogue.Session { return dialogue.NewSession() }

// CacheHitRate reports the holistic optimizer's answer-cache hit rate.
func (s *System) CacheHitRate() float64 { return s.cache.HitRate() }

// Respond handles one user turn: classify intent, dispatch, annotate.
// It is safe for concurrent use across sessions (callers must still
// serialize turns within one session). The context bounds the turn:
// when ctx is cancelled or its deadline passes, Respond returns
// ctx.Err() promptly and commits nothing to the session transcript —
// a cancelled turn leaves no partial user/system pair behind.
func (s *System) Respond(ctx context.Context, sess *dialogue.Session, userText string) (*Answer, error) {
	return s.respond(ctx, sess, userText, nil)
}

// respond is the dispatch behind Respond. rng is the model-confidence
// stream for this turn: nil draws from the system's seeded stream
// (serialized by rngMu); batch callers pass a per-question stream so
// answers do not depend on turn interleaving.
//
// The turn is transactional with respect to the transcript: intent is
// classified without mutating the session, the handler runs, and only
// a turn that produced a final answer is committed as a user/system
// pair. Handlers may still update conversational state (offers,
// focus, memo) before a cancellation lands — that state is advisory
// and safe to keep — but the transcript never gains half a turn.
func (s *System) respond(ctx context.Context, sess *dialogue.Session, userText string, rng *rand.Rand) (*Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	intent := sess.ClassifyTurn(userText)
	var (
		ans *Answer
		err error
	)
	switch intent {
	case dialogue.IntentDiscover:
		ans, err = s.discover(sess, userText, rng)
	case dialogue.IntentDescribe:
		ans, err = s.describe(sess, userText, rng)
	case dialogue.IntentChoose:
		ans, err = s.choose(sess, userText, rng)
	case dialogue.IntentAnalyze:
		ans, err = s.analyze(sess, userText, rng)
	case dialogue.IntentQuery, dialogue.IntentFollowUp:
		ans, err = s.query(ctx, sess, userText, rng)
	case dialogue.IntentConfirm:
		ans = s.confirm(sess, userText)
	default:
		ans = s.unknown(sess, userText)
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.attachSuggestions(sess, intent, userText, ans)
	sess.CommitTurn(userText, intent, ans.Text, ans.Confidence)
	return ans, nil
}

// modelScore draws the simulated raw model confidence from rng, or —
// when rng is nil — from the system's own seeded stream under rngMu.
func (s *System) modelScore(rng *rand.Rand) float64 {
	if rng != nil {
		return s.rawConf.Score(rng)
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rawConf.Score(s.rng)
}

func (s *System) attachSuggestions(sess *dialogue.Session, intent dialogue.Intent, userText string, ans *Answer) {
	if s.cfg.DisableGuidance || ans == nil {
		return
	}
	var act guidance.Action
	switch intent {
	case dialogue.IntentDiscover:
		act = guidance.ActDiscover
	case dialogue.IntentDescribe:
		act = guidance.ActDescribe
	case dialogue.IntentChoose:
		act = guidance.ActClarify
	case dialogue.IntentAnalyze:
		act = guidance.ActAnalyze
	case dialogue.IntentQuery, dialogue.IntentFollowUp, dialogue.IntentConfirm:
		act = guidance.ActQuery
	default:
		act = guidance.ActStart
	}
	steps := s.guide.NextSteps(act, 2)
	// Adapt suggestion verbosity to inferred expertise. The current
	// turn is not yet committed to the transcript (CommitTurn runs
	// after suggestions are attached), so it is profiled explicitly.
	var userTurns []string
	for _, t := range sess.Turns {
		if t.Role == dialogue.RoleUser {
			userTurns = append(userTurns, t.Text)
		}
	}
	userTurns = append(userTurns, userText)
	level := guidance.ProfileExpertise(userTurns)
	if level == guidance.Expert && len(steps) > 1 {
		steps = steps[:1]
	}
	ans.Suggestions = guidance.SuggestText(steps)
}

// finalize combines evidence into a calibrated confidence, assembles
// the explanation from provenance, enforces losslessness, and applies
// the abstention policy. rng selects the model-confidence stream (see
// modelScore).
func (s *System) finalize(ans *Answer, rng *rand.Rand) *Answer {
	if s.cfg.DisableProvenance {
		// E4/E8 ablation: with provenance capture off the system
		// cannot cite or check sources at all.
		ans.Provenance = nil
		ans.AnswerNode = ""
	}
	ans.Evidence.RawModel = s.modelScore(rng)
	ans.Confidence = s.combiner.Combine(ans.Evidence)
	s.stampDataRoot(ans)
	if ans.Provenance != nil && ans.AnswerNode != "" {
		if ex, err := explain.FromProvenance(ans.Provenance, ans.AnswerNode); err == nil {
			if ans.Explanation.Summary == "" {
				ans.Explanation.Summary = ex.Summary
			}
			ans.Explanation.Sources = ex.Sources
			if ans.Explanation.Code == "" {
				ans.Explanation.Code = ex.Code
			}
		}
		if rep := ans.Provenance.CheckLosslessness(); !rep.Lossless {
			// An answer whose claims cannot be traced to sources is
			// refused outright (DESIGN.md §5).
			ans.Abstained = true
			ans.Text = "I cannot trace this answer back to its sources, so I will not state it as fact."
			ans.Confidence = 0
			return ans
		}
	}
	if s.cfg.DisableVerification && !ans.Abstained {
		// E8 ablation: a generation-only system reports its raw
		// self-confidence and answers regardless of evidence — the
		// paper's "statistical generators that may hallucinate and
		// cannot explicitly verify their answers".
		ans.Confidence = ans.Evidence.RawModel
		return ans
	}
	if !ans.Abstained && !s.policy.ShouldAnswer(ans.Confidence) {
		ans.Abstained = true
		ans.Text = fmt.Sprintf(
			"I am not confident enough to answer (confidence %.0f%%, below my %.0f%% threshold). %s",
			ans.Confidence*100, s.policy.Threshold*100,
			"Could you rephrase or narrow the question?")
	}
	return ans
}

// renderResult formats a query result for chat, capped at 10 rows.
func renderResult(res *sqldb.Result) string {
	if res == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, " | "))
	n := len(res.Rows)
	for i, row := range res.Rows {
		if i == 10 {
			fmt.Fprintf(&sb, "\n… (%d more rows)", n-10)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		sb.WriteString("\n" + strings.Join(parts, " | "))
	}
	return sb.String()
}
