package core

import (
	"context"
	"strings"
	"sync"
	"testing"
)

var batchQuestions = []string{
	"how many employment",
	"how many employment where canton is Zurich",
	"what is the average value where canton is Bern",
	"how many employment", // duplicate: must answer identically
	"zorp blat quux",      // unknown intent: asks back, no error
	"list the canton of employment",
}

// TestRespondBatchDeterministic: answers are a pure function of the
// question text — identical across runs, worker counts, and question
// positions (the duplicate must match its twin exactly).
func TestRespondBatchDeterministic(t *testing.T) {
	run := func(workers int) []string {
		s := swissSystem(t, nil)
		answers, err := s.RespondBatch(context.Background(), batchQuestions, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]string, len(answers))
		for i, a := range answers {
			out[i] = a.Text + "|" + a.Code
		}
		return out
	}
	want := run(1)
	if want[0] != want[3] {
		t.Fatalf("duplicate question answered differently:\n%q\n%q", want[0], want[3])
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d question %d diverged:\n got %q\nwant %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRespondBatchAnswersAreCorrect spot-checks content: batching must
// not change what the pipeline computes.
func TestRespondBatchAnswersAreCorrect(t *testing.T) {
	s := swissSystem(t, nil)
	answers, err := s.RespondBatch(context.Background(), batchQuestions, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a := answers[1]; a.Abstained || !strings.Contains(a.Text, "20") {
		t.Errorf("Zurich count answer = %+v", a)
	}
	if a := answers[4]; !a.Abstained || a.Clarification == "" {
		t.Errorf("unknown intent answer = %+v", a)
	}
	if !answers[0].Evidence.Verified {
		t.Error("count answer not verified")
	}
}

// TestRespondBatchUsesCache: the duplicate question is served from
// the answer cache or joins its twin's in-flight computation — never
// a third full pipeline run.
func TestRespondBatchUsesCache(t *testing.T) {
	s := swissSystem(t, nil)
	if _, err := s.RespondBatch(context.Background(), batchQuestions, 4); err != nil {
		t.Fatal(err)
	}
	hits, _ := s.cache.Stats()
	if hits+s.cache.Deduped() == 0 {
		t.Error("duplicate question neither hit the cache nor joined a flight")
	}
}

// TestConcurrentRespondAcrossSessions: many sessions asking mixed
// questions at once must be race-free (the shared rng is serialized,
// the cache singleflights) and still answer correctly.
func TestConcurrentRespondAcrossSessions(t *testing.T) {
	s := swissSystem(t, nil)
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := s.NewSession()
			for i := 0; i < 4; i++ {
				q := batchQuestions[(g+i)%len(batchQuestions)]
				ans, err := s.Respond(context.Background(), sess, q)
				if err != nil {
					t.Errorf("Respond(%q): %v", q, err)
					return
				}
				if ans == nil || ans.Text == "" {
					t.Errorf("Respond(%q): empty answer", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
