package core

import (
	"context"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/workload"
)

func swissSystem(t testing.TB, mutate func(*Config)) *System {
	t.Helper()
	d := workload.NewSwissDomain(1)
	cfg := Config{
		DB:      d.DB,
		Catalog: d.Catalog,
		KG:      d.KG,
		Vocab:   d.Vocab,
		Now:     d.Now,
		Seed:    7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg)
}

func respond(t *testing.T, s *System, sess *dialogue.Session, text string) *Answer {
	t.Helper()
	ans, err := s.Respond(context.Background(), sess, text)
	if err != nil {
		t.Fatalf("Respond(%q): %v", text, err)
	}
	return ans
}

// TestFigure1Dialogue replays the paper's example conversation end to
// end and checks each annotated property.
func TestFigure1Dialogue(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	turns := workload.Figure1Turns()

	// Turn 1: discovery with grounding of "working force" (P1, P2, P3, P5).
	a1 := respond(t, s, sess, turns[0])
	if a1.Abstained {
		t.Fatalf("turn 1 abstained: %+v", a1)
	}
	if !strings.Contains(a1.Text, "I am assuming") {
		t.Errorf("turn 1 missing grounding assumption: %q", a1.Text)
	}
	if !strings.Contains(a1.Text, "Barometer") || !strings.Contains(a1.Text, "Employment") {
		t.Errorf("turn 1 missing datasets: %q", a1.Text)
	}
	if a1.Clarification == "" {
		t.Error("turn 1 should ask a follow-up (P5 Guidance)")
	}
	if a1.Confidence <= 0.5 {
		t.Errorf("turn 1 confidence = %v", a1.Confidence)
	}
	if a1.Provenance == nil || !a1.Provenance.CheckLosslessness().Lossless {
		t.Error("turn 1 provenance not lossless")
	}

	// Turn 2: describe the barometer with source (P4 provenance).
	a2 := respond(t, s, sess, turns[1])
	if !strings.Contains(a2.Text, "monthly leading indicator") {
		t.Errorf("turn 2 text = %q", a2.Text)
	}
	foundSource := false
	for _, src := range a2.Explanation.Sources {
		if strings.Contains(src, "arbeit.swiss") {
			foundSource = true
		}
	}
	if !foundSource {
		t.Errorf("turn 2 sources = %v", a2.Explanation.Sources)
	}

	// Turn 3: choose the barometer; focus moves.
	a3 := respond(t, s, sess, turns[2])
	if sess.Focus != "barometer" {
		t.Errorf("focus = %q", sess.Focus)
	}
	if !strings.Contains(a3.Text, "arbeit.swiss") {
		t.Errorf("turn 3 text = %q", a3.Text)
	}

	// Turn 4: seasonality analysis — the Figure 1 headline numbers.
	a4 := respond(t, s, sess, turns[3])
	if a4.Abstained {
		t.Fatalf("turn 4 abstained: %+v", a4)
	}
	if !strings.Contains(a4.Text, "seasonal period is 6") {
		t.Errorf("turn 4 text = %q", a4.Text)
	}
	if !strings.Contains(a4.Text, "confidence") {
		t.Errorf("turn 4 missing confidence: %q", a4.Text)
	}
	if a4.Code == "" || !strings.Contains(a4.Code, "Decompose") {
		t.Errorf("turn 4 missing code snippet: %q", a4.Code)
	}
	if !strings.Contains(a4.Text, "enough data") {
		t.Errorf("turn 4 missing sufficiency acknowledgement: %q", a4.Text)
	}
	if a4.Provenance == nil {
		t.Fatal("turn 4 missing provenance")
	}
	if rep := a4.Provenance.CheckInvertibility(); !rep.Invertible {
		t.Errorf("turn 4 provenance not invertible: %+v", rep)
	}
	srcs, err := a4.Provenance.SourcesOf(a4.AnswerNode)
	if err != nil || len(srcs) == 0 {
		t.Errorf("turn 4 sources = %v, %v", srcs, err)
	}
}

func TestQueryPathVerified(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "how many employment where canton is Zurich")
	if ans.Abstained {
		t.Fatalf("abstained: %+v", ans)
	}
	if !strings.Contains(ans.Code, "COUNT") || !strings.Contains(ans.Code, "FROM employment") {
		t.Errorf("code = %q", ans.Code)
	}
	if !strings.Contains(ans.Text, "20") { // 10 years × 2 types
		t.Errorf("text = %q", ans.Text)
	}
	if !ans.Evidence.Verified {
		t.Error("query answer not marked verified")
	}
	if len(ans.Explanation.Sources) == 0 {
		t.Errorf("no sources: %+v", ans.Explanation)
	}
}

func TestQueryCacheHit(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	q := "how many employment"
	respond(t, s, sess, q)
	before := s.CacheHitRate()
	respond(t, s, sess, q)
	if s.CacheHitRate() <= before {
		t.Errorf("cache hit rate did not rise: %v -> %v", before, s.CacheHitRate())
	}
}

func TestUnknownIntentAsksBack(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "zorp blat quux")
	if !ans.Abstained || ans.Clarification == "" {
		t.Errorf("answer = %+v", ans)
	}
}

func TestAnalyzeWithoutFocusClarifies(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "show me the seasonality insights")
	if !ans.Abstained || ans.Clarification == "" {
		t.Errorf("answer = %+v", ans)
	}
}

func TestUnparsableQueryClarifies(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "how many")
	if !ans.Abstained {
		t.Errorf("answer = %+v", ans)
	}
}

func TestDescribeUngroundedAbstains(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "what is the gross national happiness index")
	if !ans.Abstained {
		t.Errorf("ungrounded describe must abstain: %+v", ans)
	}
	if ans.Confidence >= 0.5 {
		t.Errorf("confidence = %v", ans.Confidence)
	}
}

func TestGuidanceSuggestionsPresent(t *testing.T) {
	s := swissSystem(t, nil)
	sess := s.NewSession()
	ans := respond(t, s, sess, "give me an overview of employment data")
	if ans.Suggestions == "" {
		t.Error("no suggestions with guidance enabled")
	}
	s2 := swissSystem(t, func(c *Config) { c.DisableGuidance = true })
	sess2 := s2.NewSession()
	ans2, err := s2.Respond(context.Background(), sess2, "give me an overview of employment data")
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Suggestions != "" {
		t.Error("suggestions present with guidance disabled")
	}
}

func TestHallucinationMakesSystemAbstainNotLie(t *testing.T) {
	// With a catastrophically noisy model and verification on, wrong
	// answers should mostly be converted into abstentions.
	s := swissSystem(t, func(c *Config) {
		c.HallucinationRate = 0.5
		c.Fabrications = []string{"bogus_col", "fake_table", "zzz"}
	})
	sess := s.NewSession()
	abstainOrCorrect := 0
	const trials = 10
	questions := []string{
		"how many employment",
		"what is the average value in barometer",
		"how many employment where canton is Bern",
		"what is the maximum value in barometer",
		"list the value of barometer",
		"how many barometer",
		"what is the minimum value in barometer",
		"how many employment where employment_type is full_time",
		"what is the total employees in employment",
		"how many employment where canton is Geneva",
	}
	for _, q := range questions {
		ans := respond(t, s, sess, q)
		if ans.Abstained || ans.Evidence.Verified {
			abstainOrCorrect++
		}
	}
	if abstainOrCorrect < trials*7/10 {
		t.Errorf("only %d/%d answers were verified-or-abstained under heavy noise", abstainOrCorrect, trials)
	}
}

func TestBaselineLLMAlwaysAnswersConfidently(t *testing.T) {
	b := NewBaselineLLM(0.3, []string{"wrong"}, 3)
	changed := 0
	for i := 0; i < 50; i++ {
		text, conf := b.Answer("the answer is 42")
		if conf < 0.7 {
			t.Errorf("baseline confidence = %v, want high", conf)
		}
		if text != "the answer is 42" {
			changed++
		}
	}
	if changed == 0 {
		t.Error("baseline never hallucinated at rate 0.3")
	}
}

func TestDeterministicResponses(t *testing.T) {
	run := func() string {
		s := swissSystem(t, nil)
		sess := s.NewSession()
		var sb strings.Builder
		for _, turn := range workload.Figure1Turns() {
			ans, err := s.Respond(context.Background(), sess, turn)
			if err != nil {
				t.Fatal(err)
			}
			sb.WriteString(ans.Text + "\n")
		}
		return sb.String()
	}
	if run() != run() {
		t.Error("system responses are not deterministic")
	}
}

func TestProvenanceDisabledStillAnswers(t *testing.T) {
	s := swissSystem(t, func(c *Config) { c.DisableProvenance = true })
	sess := s.NewSession()
	ans := respond(t, s, sess, "how many employment")
	if ans.Abstained {
		t.Errorf("abstained: %+v", ans)
	}
}
