package core

import (
	"math/rand"
	"strings"

	"github.com/reliable-cda/cda/internal/nlmodel"
)

// BaselineLLM models the generation-only conversational tools the
// paper contrasts with a reliable CDA system: it always answers, its
// answers pass through an unchecked hallucination channel, it reports
// a high self-confidence regardless of correctness, and it attaches
// no provenance. E3, E5, and E8 use it as the comparison system.
type BaselineLLM struct {
	Channel nlmodel.Channel
	RawConf nlmodel.RawConfidence
	rng     *rand.Rand
}

// NewBaselineLLM builds the baseline with the given hallucination
// rate and fabrication pool.
func NewBaselineLLM(hallucinationRate float64, fabrications []string, seed int64) *BaselineLLM {
	return &BaselineLLM{
		Channel: nlmodel.Channel{HallucinationRate: hallucinationRate, Fabrications: fabrications},
		RawConf: nlmodel.RawConfidence{Base: 0.9, Noise: 0.04},
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Answer produces the baseline's response given the answer a fully
// informed system would give: the text goes through the hallucination
// channel unchecked and the confidence is the model's raw
// self-report. It never abstains.
func (b *BaselineLLM) Answer(idealAnswer string) (text string, confidence float64) {
	toks := strings.Fields(idealAnswer)
	out := b.Channel.Corrupt(b.rng, toks)
	return strings.Join(out, " "), b.RawConf.Score(b.rng)
}
