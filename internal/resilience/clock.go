package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts the passage of time so retry backoff and circuit
// breaker cool-downs are injectable: production uses WallClock, while
// tests and the chaos harness use VirtualClock so fault sweeps run
// instantly and two runs with the same seed see the same timeline.
//
// The repo's cdalint raw-sleep rule forbids time.Sleep outside tests
// for exactly this reason: a raw sleep inside a retry loop would make
// chaos transcripts timing-dependent.
type Clock interface {
	// Now returns the logical elapsed time since the clock's epoch.
	Now() time.Duration
	// Sleep waits for d or until ctx is done, returning ctx.Err()
	// when interrupted.
	Sleep(ctx context.Context, d time.Duration) error
}

// VirtualClock is a deterministic logical clock: Sleep advances the
// clock instantly instead of blocking, so retries, breaker timeouts,
// and injected latency cost zero wall time while still ordering
// events identically across runs. Safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtualClock creates a virtual clock at epoch zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the accumulated logical time.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the logical clock by d without blocking. A done
// context still short-circuits so cancellation semantics match the
// wall clock.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// Advance moves the clock forward by d (no-op for d <= 0).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// WallClock is the production clock. Its use of the wall clock is
// deliberately confined to this one type so the nondeterminism lint
// rule keeps every other package honest.
type WallClock struct {
	epoch time.Time
}

// NewWallClock creates a wall clock with its epoch at construction.
func NewWallClock() *WallClock {
	// cdalint:ignore nondeterminism -- the production clock is the one
	// sanctioned wall-time source; deterministic runs use VirtualClock.
	return &WallClock{epoch: time.Now()}
}

// Now returns wall time elapsed since construction.
func (c *WallClock) Now() time.Duration {
	// cdalint:ignore nondeterminism -- see NewWallClock.
	return time.Since(c.epoch)
}

// Sleep blocks for d or until ctx is done. It uses a timer rather
// than time.Sleep so cancellation interrupts the wait immediately.
func (c *WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
