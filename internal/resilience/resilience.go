// Package resilience provides the machinery that keeps the CDA
// pipeline reliably wrong-aware when backends fail (P4 Soundness):
// retries with capped exponential backoff and seeded jitter, per-
// backend circuit breakers with half-open probing, and context-based
// deadline/cancellation propagation. Every time-dependent behaviour
// runs on an injectable Clock so the chaos harness (internal/chaos)
// can sweep fault rates deterministically: same seed, same transcript,
// faults included.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// transientError marks an error as retryable. Backends (and the fault
// injector) wrap transient failures with MarkTransient; everything
// else is treated as permanent and fails fast.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so IsTransient reports true. A nil err
// returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// transient. Context cancellation and deadline expiry are never
// transient: retrying a dead request wastes its caller's budget.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t *transientError
	return errors.As(err, &t)
}

// RetryPolicy shapes the backoff schedule.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first failure
	// (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 500ms).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	return p
}

// Retrier retries transient failures with capped exponential backoff
// and seeded equal-jitter, sleeping on the injected clock. Safe for
// concurrent use; the jitter stream is serialized by a mutex.
type Retrier struct {
	policy RetryPolicy
	clock  Clock

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a retrier. A nil clock falls back to a
// VirtualClock (deterministic, non-blocking).
func NewRetrier(policy RetryPolicy, clock Clock, seed int64) *Retrier {
	if clock == nil {
		clock = NewVirtualClock()
	}
	return &Retrier{
		policy: policy.withDefaults(),
		clock:  clock,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Do runs op, retrying transient errors until the policy's attempt
// budget is exhausted, the error turns permanent, or ctx is done.
// The returned error is op's last error (or ctx.Err() when the wait
// was interrupted), so callers can classify it with IsTransient.
func (r *Retrier) Do(ctx context.Context, op func() error) error {
	var err error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt == r.policy.MaxAttempts-1 {
			break
		}
		if serr := r.clock.Sleep(ctx, r.backoff(attempt)); serr != nil {
			return serr
		}
	}
	return fmt.Errorf("resilience: %d attempts exhausted: %w", r.policy.MaxAttempts, err)
}

// backoff computes the equal-jitter delay for the given zero-based
// attempt: half the capped exponential delay is guaranteed, the other
// half is drawn from the seeded stream.
func (r *Retrier) backoff(attempt int) time.Duration {
	d := float64(r.policy.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= r.policy.Multiplier
		if d >= float64(r.policy.MaxDelay) {
			d = float64(r.policy.MaxDelay)
			break
		}
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(d/2 + f*d/2)
}
