package resilience

import (
	"context"
	"sort"
	"sync"
)

// Options bundles the per-system resilience tuning.
type Options struct {
	Retry   RetryPolicy
	Breaker BreakerConfig
}

// Executor is the per-system resilience front door: each backend call
// runs through its own circuit breaker, and transient failures are
// retried on the shared backoff schedule. One executor serves all
// backends of one System; breakers are created lazily per backend
// name. Safe for concurrent use.
type Executor struct {
	retrier *Retrier
	cfg     BreakerConfig
	clock   Clock

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewExecutor builds an executor. A nil clock falls back to a
// VirtualClock so everything stays deterministic by default.
func NewExecutor(opts Options, clock Clock, seed int64) *Executor {
	if clock == nil {
		clock = NewVirtualClock()
	}
	return &Executor{
		retrier:  NewRetrier(opts.Retry, clock, seed),
		cfg:      opts.Breaker,
		clock:    clock,
		breakers: make(map[string]*Breaker),
	}
}

// Breaker returns (creating if needed) the named backend's breaker.
func (e *Executor) Breaker(backend string) *Breaker {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.breakers[backend]
	if !ok {
		b = NewBreaker(backend, e.cfg, e.clock)
		e.breakers[backend] = b
	}
	return b
}

// BreakerStates reports every known breaker's state, sorted by
// backend name (deterministic for logs and tests).
func (e *Executor) BreakerStates() map[string]BreakerState {
	e.mu.Lock()
	names := make([]string, 0, len(e.breakers))
	for name := range e.breakers {
		names = append(names, name)
	}
	e.mu.Unlock()
	sort.Strings(names)
	out := make(map[string]BreakerState, len(names))
	for _, name := range names {
		out[name] = e.Breaker(name).State()
	}
	return out
}

// Do runs op against the named backend: every attempt first consults
// the backend's circuit breaker, outcomes feed back into it, and
// transient errors are retried with backoff. An open circuit fails
// fast with an error wrapping ErrOpen (not transient), which is the
// signal for callers to walk the degradation ladder.
func (e *Executor) Do(ctx context.Context, backend string, op func() error) error {
	b := e.Breaker(backend)
	return e.retrier.Do(ctx, func() error {
		if err := b.Allow(); err != nil {
			return err // open circuit: permanent, degrade now
		}
		err := op()
		b.Record(err)
		return err
	})
}
