package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestMarkTransient(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) must be nil")
	}
	base := errors.New("backend down")
	err := MarkTransient(base)
	if !IsTransient(err) {
		t.Fatal("marked error must be transient")
	}
	if !errors.Is(err, base) {
		t.Fatal("marking must preserve the error chain")
	}
	if IsTransient(base) {
		t.Fatal("unmarked error must not be transient")
	}
	if IsTransient(context.Canceled) || IsTransient(MarkTransient(context.Canceled)) {
		t.Fatal("context cancellation is never transient")
	}
}

func TestRetrierRetriesTransient(t *testing.T) {
	clock := NewVirtualClock()
	r := NewRetrier(RetryPolicy{MaxAttempts: 4}, clock, 7)
	calls := 0
	err := r.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("want success after 3 calls, got err=%v calls=%d", err, calls)
	}
	if clock.Now() == 0 {
		t.Fatal("retries must have slept on the clock")
	}
}

func TestRetrierFailsFastOnPermanent(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 5}, NewVirtualClock(), 7)
	calls := 0
	perm := errors.New("schema mismatch")
	err := r.Do(context.Background(), func() error { calls++; return perm })
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent error must not retry: err=%v calls=%d", err, calls)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3}, NewVirtualClock(), 7)
	calls := 0
	flaky := errors.New("still down")
	err := r.Do(context.Background(), func() error { calls++; return MarkTransient(flaky) })
	if calls != 3 {
		t.Fatalf("want 3 attempts, got %d", calls)
	}
	if !errors.Is(err, flaky) {
		t.Fatalf("exhaustion must preserve the last error, got %v", err)
	}
}

func TestRetrierHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRetrier(RetryPolicy{}, NewVirtualClock(), 7)
	err := r.Do(ctx, func() error { t.Fatal("op must not run on a dead context"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRetrierBackoffDeterministic(t *testing.T) {
	seq := func() []time.Duration {
		r := NewRetrier(RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}, NewVirtualClock(), 99)
		var out []time.Duration
		for i := 0; i < 6; i++ {
			out = append(out, r.backoff(i))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must give identical jitter: %v vs %v", a, b)
		}
		if a[i] < 5*time.Millisecond || a[i] > 80*time.Millisecond {
			t.Fatalf("backoff %d out of [base/2, max]: %v", i, a[i])
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := NewVirtualClock()
	b := NewBreaker("sqldb", BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Second}, clock)
	fail := errors.New("boom")

	// Two consecutive failures trip the circuit.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker must allow: %v", err)
		}
		b.Record(fail)
	}
	if b.State() != StateOpen {
		t.Fatalf("want open, got %v", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker must reject with ErrOpen, got %v", err)
	}

	// Cool-down elapses: half-open admits exactly one probe.
	clock.Advance(time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("want half-open after cool-down, got %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open must admit a probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe must be rejected, got %v", err)
	}

	// Probe failure reopens.
	b.Record(fail)
	if b.State() != StateOpen {
		t.Fatalf("failed probe must reopen, got %v", b.State())
	}

	// Probe success (after another cool-down) closes.
	clock.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after second cool-down: %v", err)
	}
	b.Record(nil)
	if b.State() != StateClosed {
		t.Fatalf("successful probe must close, got %v", b.State())
	}
}

func TestBreakerIgnoresCancellation(t *testing.T) {
	b := NewBreaker("x", BreakerConfig{FailureThreshold: 1}, NewVirtualClock())
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(context.Canceled)
	if b.State() != StateClosed {
		t.Fatalf("cancellation must not trip the breaker, got %v", b.State())
	}
}

func TestExecutorOpensAndDegrades(t *testing.T) {
	clock := NewVirtualClock()
	ex := NewExecutor(Options{
		Retry:   RetryPolicy{MaxAttempts: 2},
		Breaker: BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Minute},
	}, clock, 1)
	calls := 0
	op := func() error { calls++; return MarkTransient(errors.New("down")) }

	// Two Do calls = 4 attempts > threshold 3: circuit opens mid-way.
	err1 := ex.Do(context.Background(), "vector", op)
	err2 := ex.Do(context.Background(), "vector", op)
	if err1 == nil || err2 == nil {
		t.Fatal("both calls must fail")
	}
	if ex.Breaker("vector").State() != StateOpen {
		t.Fatalf("breaker must be open, got %v", ex.Breaker("vector").State())
	}
	before := calls
	// Open circuit: fails fast without invoking the op, not transient.
	err3 := ex.Do(context.Background(), "vector", op)
	if !errors.Is(err3, ErrOpen) || calls != before {
		t.Fatalf("open circuit must fail fast: err=%v calls=%d→%d", err3, before, calls)
	}
	if IsTransient(err3) {
		t.Fatal("ErrOpen must not be transient")
	}

	// Other backends are unaffected.
	if err := ex.Do(context.Background(), "text", func() error { return nil }); err != nil {
		t.Fatalf("independent backend must pass: %v", err)
	}
	states := ex.BreakerStates()
	if states["vector"] != StateOpen || states["text"] != StateClosed {
		t.Fatalf("unexpected breaker states: %v", states)
	}
}

func TestWallClockSleepCancels(t *testing.T) {
	c := NewWallClock()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Sleep(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	c := NewVirtualClock()
	if err := c.Sleep(context.Background(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("want 3s, got %v", c.Now())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context must interrupt virtual sleep, got %v", err)
	}
	if c.Now() != 3*time.Second {
		t.Fatal("interrupted sleep must not advance the clock")
	}
}
