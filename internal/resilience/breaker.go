package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned (wrapped) when a circuit breaker rejects a call
// without attempting it. It is never transient: an open circuit means
// the backend is known-bad and the caller should degrade immediately
// instead of queueing retries behind it.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState is the classic three-state circuit model.
type BreakerState int

// Breaker states.
const (
	// StateClosed passes calls through, counting consecutive failures.
	StateClosed BreakerState = iota
	// StateOpen rejects calls until the cool-down elapses.
	StateOpen
	// StateHalfOpen admits a bounded number of probe calls; success
	// closes the circuit, failure reopens it.
	StateHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	FailureThreshold int
	// OpenTimeout is the cool-down before an open circuit admits a
	// half-open probe (default 1s of clock time).
	OpenTimeout time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// circuit again (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a per-backend circuit breaker on an injectable clock.
// Callers bracket each attempt with Allow/Record. Safe for concurrent
// use; the clock is read before the lock is taken so the mutex stays
// leaf-level.
type Breaker struct {
	name  string
	cfg   BreakerConfig
	clock Clock

	mu        sync.Mutex
	state     BreakerState
	failures  int           // consecutive failures while closed
	successes int           // consecutive probe successes while half-open
	probes    int           // probes currently in flight while half-open
	openedAt  time.Duration // clock time the circuit last opened
}

// NewBreaker builds a breaker named for its backend. A nil clock
// falls back to a VirtualClock.
func NewBreaker(name string, cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = NewVirtualClock()
	}
	return &Breaker{name: name, cfg: cfg.withDefaults(), clock: clock}
}

// Name returns the backend name the breaker guards.
func (b *Breaker) Name() string { return b.name }

// State returns the current state (transitioning open → half-open if
// the cool-down has elapsed).
func (b *Breaker) State() BreakerState {
	now := b.clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen(now)
	return b.state
}

// Allow reports whether a call may proceed. It returns nil to admit
// the call (the caller must pair it with Record) or an error wrapping
// ErrOpen when the circuit rejects it.
func (b *Breaker) Allow() error {
	now := b.clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen(now)
	switch b.state {
	case StateOpen:
		return fmt.Errorf("%w: backend %s cooling down", ErrOpen, b.name)
	case StateHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return fmt.Errorf("%w: backend %s probing", ErrOpen, b.name)
		}
		b.probes++
		return nil
	default:
		return nil
	}
}

// Record reports the outcome of a call admitted by Allow. A nil err
// counts as success; context cancellation and deadline expiry carry
// no signal about backend health and only release the probe slot.
func (b *Breaker) Record(err error) {
	now := b.clock.Now()
	neutral := err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen && b.probes > 0 {
		b.probes--
	}
	if neutral {
		return
	}
	if err == nil {
		b.recordSuccess()
		return
	}
	b.recordFailure(now)
}

// recordSuccess handles a successful outcome. Caller holds the lock.
func (b *Breaker) recordSuccess() {
	switch b.state {
	case StateHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.reset()
		}
	case StateClosed:
		b.failures = 0
	}
}

// recordFailure handles a failed outcome. Caller holds the lock.
func (b *Breaker) recordFailure(now time.Duration) {
	switch b.state {
	case StateHalfOpen:
		b.trip(now)
	case StateClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip(now)
		}
	}
}

// maybeHalfOpen transitions open → half-open once the cool-down has
// elapsed. Caller holds the lock.
func (b *Breaker) maybeHalfOpen(now time.Duration) {
	if b.state == StateOpen && now-b.openedAt >= b.cfg.OpenTimeout {
		b.state = StateHalfOpen
		b.probes = 0
		b.successes = 0
	}
}

// trip opens the circuit. Caller holds the lock.
func (b *Breaker) trip(now time.Duration) {
	b.state = StateOpen
	b.openedAt = now
	b.failures = 0
	b.successes = 0
	b.probes = 0
}

// reset closes the circuit. Caller holds the lock.
func (b *Breaker) reset() {
	b.state = StateClosed
	b.failures = 0
	b.successes = 0
	b.probes = 0
}
