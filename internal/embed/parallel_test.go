package embed

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/reliable-cda/cda/internal/textindex"
)

var parPhrases = []string{
	"quarterly revenue by city", "employment growth census",
	"hospital budget district", "school energy consumption",
	"housing prices transport", "tourism water usage climate",
	"salary distribution population", "tax income quarter",
}

func genDense(n int, seed int64) *DenseIndex {
	rng := rand.New(rand.NewSource(seed))
	ix := NewDenseIndex(nil)
	for i := 0; i < n; i++ {
		ix.Add(Item{
			ID:   fmt.Sprintf("item-%d", i),
			Text: parPhrases[rng.Intn(len(parPhrases))] + " " + parPhrases[rng.Intn(len(parPhrases))],
		})
	}
	return ix
}

// TestDenseSearchParallelMatchesSerial: the chunked similarity scan
// must reproduce the serial hit list exactly for any worker count.
func TestDenseSearchParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		ix := genDense(2500, seed)
		for _, q := range []string{"revenue growth", "hospital climate", "salary"} {
			want := ix.Search(q, 20)
			for _, workers := range []int{2, 4, 8} {
				got := ix.SearchParallel(q, 20, workers)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d workers=%d %q: parallel hits diverge", seed, workers, q)
				}
			}
		}
	}
}

// TestHybridSearchMatchesSerialComposition: the concurrent two-leg
// hybrid must equal fusing the serial legs.
func TestHybridSearchMatchesSerialComposition(t *testing.T) {
	dense := genDense(2000, 3)
	lex := textindex.NewIndex()
	for i := 0; i < dense.Len(); i++ {
		lex.Add(textindex.Document{ID: dense.items[i].ID, Text: dense.items[i].Text})
	}
	for _, q := range []string{"revenue by city", "school energy", "tourism climate usage"} {
		want := Hybrid(dense.Search(q, 15), lex.Search(q, 15), 15)
		for _, workers := range []int{1, 4} {
			got := HybridSearch(dense, lex, q, 15, workers)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d %q: hybrid diverges from serial composition", workers, q)
			}
		}
	}
}
