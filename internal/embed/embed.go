// Package embed implements the paper's "dense representations of the
// different modalities in a unified space, forming a multimodal
// index": a deterministic feature-hashing embedder that maps text,
// table schemas, and table rows into one vector space, plus a dense
// retriever over internal/vectorindex and a hybrid (dense + lexical)
// ranker.
//
// The embedder is a deterministic substitute for a learned encoder
// (see DESIGN.md §2): hashed bag-of-words with sub-word character
// trigrams, L2-normalized. It has the property experiments need —
// texts sharing vocabulary and morphology land close together — while
// remaining seed-free and reproducible.
package embed

import (
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/parallel"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/textindex"
	"github.com/reliable-cda/cda/internal/vectorindex"
)

// Embedder hashes token and character-trigram features into a fixed
// dimensionality.
type Embedder struct {
	// Dim is the embedding dimensionality (default 256 when zero).
	Dim int
	// TrigramWeight scales sub-word features relative to word
	// features; sub-words give robustness to morphology ("employment"
	// vs "employees").
	TrigramWeight float64
}

// NewEmbedder returns an embedder with the default configuration.
func NewEmbedder() *Embedder { return &Embedder{Dim: 256, TrigramWeight: 0.35} }

func (e *Embedder) dim() int {
	if e.Dim <= 0 {
		return 256
	}
	return e.Dim
}

func (e *Embedder) trigramWeight() float64 {
	if e.TrigramWeight == 0 {
		return 0.35
	}
	return e.TrigramWeight
}

// EmbedText embeds free text.
func (e *Embedder) EmbedText(text string) vectorindex.Vector {
	v := make([]float64, e.dim())
	toks := textindex.TokenizeContent(text)
	for _, tok := range toks {
		addFeature(v, "w:"+tok, 1)
		for _, tg := range trigrams(tok) {
			addFeature(v, "t:"+tg, e.trigramWeight())
		}
	}
	return normalize(v)
}

// EmbedSchema embeds a table's identity: name, column names, and
// descriptions — the "schema modality".
func (e *Embedder) EmbedSchema(t *storage.Table) vectorindex.Vector {
	var sb strings.Builder
	sb.WriteString(t.Name + " " + t.Description)
	for _, c := range t.Schema() {
		sb.WriteString(" " + c.Name + " " + c.Description)
	}
	return e.EmbedText(sb.String())
}

// EmbedRow embeds one table row as text — the "records modality".
func (e *Embedder) EmbedRow(t *storage.Table, row int) vectorindex.Vector {
	var sb strings.Builder
	for c := 0; c < t.NumCols(); c++ {
		sb.WriteString(t.Schema()[c].Name + " " + t.At(row, c).String() + " ")
	}
	return e.EmbedText(sb.String())
}

func addFeature(v []float64, feature string, weight float64) {
	h := fnv.New64a()
	// cdalint:ignore dropped-error -- hash.Hash.Write is documented to
	// never return an error.
	h.Write([]byte(feature))
	sum := h.Sum64()
	idx := int(sum % uint64(len(v)))
	sign := 1.0
	if (sum>>63)&1 == 1 {
		sign = -1
	}
	v[idx] += sign * weight
}

func trigrams(tok string) []string {
	padded := "^" + tok + "$"
	if len(padded) < 3 {
		return nil
	}
	out := make([]string, 0, len(padded)-2)
	for i := 0; i+3 <= len(padded); i++ {
		out = append(out, padded[i:i+3])
	}
	return out
}

func normalize(v []float64) vectorindex.Vector {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	out := make(vectorindex.Vector, len(v))
	if norm == 0 {
		return out
	}
	norm = math.Sqrt(norm)
	for i, x := range v {
		out[i] = float32(x / norm)
	}
	return out
}

// Similarity is the cosine similarity of two embeddings (they are
// already unit-norm, so this is a dot product).
func Similarity(a, b vectorindex.Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Item is one indexed object with its external identity.
type Item struct {
	ID   string
	Text string
}

// DenseIndex retrieves items by embedding similarity. It is the
// "multimodal index" entry point for discovery: dataset descriptions,
// schema renderings, and document snippets all share one space.
type DenseIndex struct {
	embedder *Embedder
	items    []Item
	vectors  []vectorindex.Vector
	// Faults, when non-nil, injects deterministic chaos faults into
	// TrySearch (see internal/faults). Set once at wiring time,
	// before concurrent use.
	Faults FaultHook
}

// FaultHook is the chaos-injection seam (see internal/faults): when
// non-nil it is consulted by TrySearch and may return an injected
// transient error or add latency. Production deployments leave it
// nil.
type FaultHook interface {
	Inject(op string) error
}

// NewDenseIndex creates an empty index over the given embedder
// (nil = default embedder).
func NewDenseIndex(e *Embedder) *DenseIndex {
	if e == nil {
		e = NewEmbedder()
	}
	return &DenseIndex{embedder: e}
}

// Add embeds and indexes one item.
func (ix *DenseIndex) Add(item Item) {
	ix.items = append(ix.items, item)
	ix.vectors = append(ix.vectors, ix.embedder.EmbedText(item.Text))
}

// Len returns the number of indexed items.
func (ix *DenseIndex) Len() int { return len(ix.items) }

// Hit is a scored retrieval result.
type Hit struct {
	ID    string
	Score float64
}

// Search returns the k most similar items (cosine), ties broken by ID.
func (ix *DenseIndex) Search(query string, k int) []Hit {
	return ix.search(query, k, parallel.Options{Workers: 1})
}

// TrySearch is Search through the fault-injection seam: with no hook
// wired (or no fault drawn) it returns exactly Search's hits; under
// an injected fault it returns the injected error. Resilience-aware
// callers (the core degradation ladder) use this entry point.
func (ix *DenseIndex) TrySearch(query string, k int) ([]Hit, error) {
	if ix.Faults != nil {
		if err := ix.Faults.Inject("embed.search"); err != nil {
			return nil, err
		}
	}
	return ix.Search(query, k), nil
}

// SearchParallel is Search with the similarity scan chunked over
// `workers` goroutines (0 = GOMAXPROCS). Each item's score is an
// independent dot product written to its own slot, so the hit list —
// and therefore the ranking — is bit-identical to Search for any
// worker count. Small indexes fall back to the inline scan.
func (ix *DenseIndex) SearchParallel(query string, k, workers int) []Hit {
	return ix.search(query, k, parallel.Options{Workers: workers})
}

func (ix *DenseIndex) search(query string, k int, o parallel.Options) []Hit {
	if len(ix.items) == 0 || k <= 0 {
		return nil
	}
	qv := ix.embedder.EmbedText(query)
	hits := make([]Hit, len(ix.items))
	// cdalint:ignore dropped-error -- the scorer never fails.
	parallel.Do(len(ix.items), o, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			hits[i] = Hit{ID: ix.items[i].ID, Score: Similarity(qv, ix.vectors[i])}
		}
		return nil
	})
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// HybridSearch runs the dense and lexical retrieval legs concurrently
// — each leg itself chunked over `workers` goroutines — and fuses the
// two rankings with Hybrid. Both legs are bit-deterministic, so the
// fused ranking equals running them back-to-back serially.
func HybridSearch(dense *DenseIndex, lex *textindex.Index, query string, k, workers int) []Hit {
	var dhits []Hit
	var lhits []textindex.Hit
	legs := []func(){
		func() { dhits = dense.SearchParallel(query, k, workers) },
		func() { lhits = lex.SearchParallel(query, k, workers) },
	}
	// cdalint:ignore dropped-error -- the legs never fail.
	parallel.ForEach(len(legs), parallel.Options{SerialThreshold: 1}, func(i int) error {
		legs[i]()
		return nil
	})
	return Hybrid(dhits, lhits, k)
}

// Hybrid fuses dense and lexical rankings by reciprocal-rank fusion,
// the standard way to combine a BM25 list with an embedding list
// without score calibration. k hits are returned.
func Hybrid(dense []Hit, lexical []textindex.Hit, k int) []Hit {
	const rrfK = 60.0
	scores := map[string]float64{}
	for rank, h := range dense {
		scores[h.ID] += 1 / (rrfK + float64(rank+1))
	}
	for rank, h := range lexical {
		scores[h.ID] += 1 / (rrfK + float64(rank+1))
	}
	out := make([]Hit, 0, len(scores))
	for id, s := range scores {
		out = append(out, Hit{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
