package embed

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/textindex"
)

func TestEmbedDeterministicAndUnitNorm(t *testing.T) {
	e := NewEmbedder()
	a := e.EmbedText("swiss labour market barometer")
	b := e.EmbedText("swiss labour market barometer")
	var norm float64
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
		norm += float64(a[i]) * float64(a[i])
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("norm² = %v, want 1", norm)
	}
}

func TestEmbedEmptyText(t *testing.T) {
	e := NewEmbedder()
	v := e.EmbedText("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text must embed to the zero vector")
		}
	}
	if Similarity(v, v) != 0 {
		t.Error("zero-vector similarity must be 0")
	}
}

func TestSimilarityOrdering(t *testing.T) {
	e := NewEmbedder()
	q := e.EmbedText("labour market statistics")
	near := e.EmbedText("statistics about the labour market")
	mid := e.EmbedText("labour force data") // shares one content word
	far := e.EmbedText("chocolate export volumes")
	sNear, sMid, sFar := Similarity(q, near), Similarity(q, mid), Similarity(q, far)
	if !(sNear > sMid && sMid > sFar) {
		t.Errorf("ordering violated: near=%v mid=%v far=%v", sNear, sMid, sFar)
	}
	if sNear < 0.8 {
		t.Errorf("paraphrase similarity = %v, too low", sNear)
	}
}

func TestSubwordRobustness(t *testing.T) {
	e := NewEmbedder()
	// "employment" and "employees" share no word token but share
	// trigrams; they must be measurably closer than unrelated words.
	a := Similarity(e.EmbedText("employment"), e.EmbedText("employees"))
	b := Similarity(e.EmbedText("employment"), e.EmbedText("chocolate"))
	if a <= b {
		t.Errorf("morphological similarity %v <= unrelated %v", a, b)
	}
}

func TestEmbedSchemaAndRow(t *testing.T) {
	tbl := storage.NewTable("employment", storage.Schema{
		{Name: "canton", Kind: storage.KindString, Description: "Swiss canton"},
		{Name: "rate", Kind: storage.KindFloat, Description: "employment rate"},
	})
	tbl.Description = "employment statistics"
	tbl.MustAppendRow(storage.Str("Zurich"), storage.Float(79.5))
	e := NewEmbedder()
	schemaV := e.EmbedSchema(tbl)
	q := e.EmbedText("employment rate by canton")
	if Similarity(q, schemaV) < 0.3 {
		t.Errorf("schema similarity = %v", Similarity(q, schemaV))
	}
	rowV := e.EmbedRow(tbl, 0)
	if Similarity(e.EmbedText("Zurich"), rowV) <= Similarity(e.EmbedText("Bern"), rowV) {
		t.Error("row embedding does not reflect cell values")
	}
}

func TestDenseIndexSearch(t *testing.T) {
	ix := NewDenseIndex(nil)
	ix.Add(Item{ID: "barometer", Text: "Swiss labour market barometer monthly indicator"})
	ix.Add(Item{ID: "emptype", Text: "employment type distribution for employees"})
	ix.Add(Item{ID: "chocolate", Text: "chocolate export volumes by destination"})
	hits := ix.Search("labour market indicator", 2)
	if len(hits) != 2 || hits[0].ID != "barometer" {
		t.Errorf("hits = %v", hits)
	}
	if got := ix.Search("anything", 0); got != nil {
		t.Error("k=0 must return nil")
	}
	empty := NewDenseIndex(nil)
	if got := empty.Search("q", 3); got != nil {
		t.Error("empty index must return nil")
	}
}

func TestDenseFindsMorphologicalMatchBM25Misses(t *testing.T) {
	// The paper's motivation for dense retrieval: vocabulary mismatch.
	// Query "employees" vs document "employment": BM25 scores zero,
	// the dense index still ranks it above an unrelated document.
	docs := []Item{
		{ID: "emp", Text: "employment distribution switzerland"},
		{ID: "choc", Text: "chocolate exports"},
	}
	lex := textindex.NewIndex()
	dense := NewDenseIndex(nil)
	for _, d := range docs {
		lex.Add(textindex.Document{ID: d.ID, Text: d.Text})
		dense.Add(d)
	}
	q := "employees in switzerland"
	lexHits := lex.Search("employees", 2) // deliberately single mismatched term
	for _, h := range lexHits {
		if h.ID == "emp" {
			t.Skip("BM25 unexpectedly matched; fixture needs adjusting")
		}
	}
	denseHits := dense.Search(q, 1)
	if len(denseHits) == 0 || denseHits[0].ID != "emp" {
		t.Errorf("dense hits = %v", denseHits)
	}
}

func TestHybridFusion(t *testing.T) {
	dense := []Hit{{ID: "a", Score: 0.9}, {ID: "b", Score: 0.5}}
	lexical := []textindex.Hit{{ID: "b", Score: 7.0}, {ID: "c", Score: 2.0}}
	fused := Hybrid(dense, lexical, 3)
	if len(fused) != 3 {
		t.Fatalf("fused = %v", fused)
	}
	// b appears in both lists and must rank first under RRF.
	if fused[0].ID != "b" {
		t.Errorf("fused[0] = %v", fused[0])
	}
	capped := Hybrid(dense, lexical, 1)
	if len(capped) != 1 {
		t.Errorf("capped = %v", capped)
	}
	if got := Hybrid(nil, nil, 5); len(got) != 0 {
		t.Errorf("empty fusion = %v", got)
	}
}

func TestTrigrams(t *testing.T) {
	got := trigrams("ab")
	if len(got) != 2 || got[0] != "^ab" || got[1] != "ab$" {
		t.Errorf("trigrams(ab) = %v", got)
	}
	if got := trigrams(""); got != nil {
		t.Errorf("trigrams('') = %v", got)
	}
}

// Property: similarity is symmetric and bounded by [-1, 1].
func TestSimilarityBoundsProperty(t *testing.T) {
	e := NewEmbedder()
	f := func(a, b string) bool {
		va, vb := e.EmbedText(a), e.EmbedText(b)
		s1, s2 := Similarity(va, vb), Similarity(vb, va)
		return math.Abs(s1-s2) < 1e-9 && s1 >= -1.0001 && s1 <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
