// Package server exposes the reliable CDA system over HTTP/JSON: a
// session-oriented conversational API in which every response carries
// the paper's answer annotations (confidence, sources, code,
// provenance summary, suggestions) so downstream UIs can render the
// reliability signals, not just the text.
//
// Sessions live in a durable sharded store (internal/sessionstore):
// every committed turn pair is WAL-logged before the response leaves,
// so transcripts survive a crash and a restarted server resumes the
// same conversations. Requests pass an admission controller
// (internal/admission) before any work is done; an overloaded shard
// sheds with 429 + Retry-After while already-admitted turns complete.
//
// Endpoints:
//
//	GET  /health                             liveness probe
//	GET  /datasets                           catalog listing with freshness
//	POST /sessions                           create a conversation; returns {"id": ...}
//	POST /sessions/{id}/ask                  {"question": "..."} → annotated answer
//	GET  /sessions/{id}?offset=&limit=       paginated session transcript
//
// Session lookups distinguish 404 (never existed) from 410 (evicted
// after sitting idle past the TTL).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/reliable-cda/cda/internal/admission"
	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/sessionstore"
)

// Transcript pagination bounds: the default page keeps huge
// transcripts from serializing in one response; the max stops a
// client from asking for one anyway.
const (
	DefaultPageLimit = 100
	MaxPageLimit     = 1000
)

// Server wraps a core.System with HTTP session management over the
// durable store. Safe for concurrent use; turns within one session
// are serialized by the store's per-session lock.
type Server struct {
	sys   *core.System
	cat   *catalog.Catalog
	now   int
	store *sessionstore.Store
	adm   *admission.Controller
}

// Options wires durability and overload protection into a server.
type Options struct {
	// Store holds the sessions; nil gets a fresh memory-only store
	// (nothing survives restart — the pre-durability behaviour).
	Store *sessionstore.Store
	// Admission gates requests; nil admits everything.
	Admission *admission.Controller
}

// New creates a memory-only server over an assembled system. cat may
// be nil when the deployment has no catalog.
func New(sys *core.System, cat *catalog.Catalog, now int) *Server {
	return NewWithOptions(sys, cat, now, Options{})
}

// NewWithOptions creates a server with an explicit session store and
// admission controller.
func NewWithOptions(sys *core.System, cat *catalog.Catalog, now int, opts Options) *Server {
	st := opts.Store
	if st == nil {
		st = sessionstore.NewMemory(sessionstore.Config{})
	}
	return &Server{sys: sys, cat: cat, now: now, store: st, adm: opts.Admission}
}

// Store exposes the session store (shutdown hooks and tests).
func (s *Server) Store() *sessionstore.Store { return s.store }

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.handleHealth)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("POST /sessions", s.handleCreateSession)
	mux.HandleFunc("POST /sessions/{id}/ask", s.handleAsk)
	mux.HandleFunc("GET /sessions/{id}", s.handleTranscript)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire, so the client cannot
		// be told; surface the failure to the operator instead of
		// dropping it (a truncated annotated answer silently loses its
		// provenance/confidence payload).
		log.Printf("server: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DatasetInfo is the catalog listing payload.
type DatasetInfo struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Source      string  `json:"source,omitempty"`
	Freshness   float64 `json:"freshness"`
	Rotted      bool    `json:"rotted"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	if s.cat == nil {
		writeJSON(w, http.StatusOK, []DatasetInfo{})
		return
	}
	var out []DatasetInfo
	for _, d := range s.cat.List() {
		out = append(out, DatasetInfo{
			ID: d.ID, Name: d.Name, Description: d.Description, Source: d.Source,
			Freshness: catalog.Freshness(d, s.now),
			Rotted:    catalog.Rotted(d, s.now),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// admit runs the request through the admission controller, writing
// the 429 + Retry-After shed response itself. The returned release
// must be called when the request finishes; admitted is false when
// the request was shed (or a non-overload admission failure was
// reported as 500).
func (s *Server) admit(w http.ResponseWriter, shard int) (release func(), admitted bool) {
	if s.adm == nil {
		return func() {}, true
	}
	release, err := s.adm.Admit(shard)
	if err == nil {
		return release, true
	}
	var ov *admission.Overload
	if errors.As(err, &ov) {
		w.Header().Set("Retry-After", admission.RetryAfterSeconds(ov.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("overloaded (%s limit on shard %d); retry after the indicated delay", ov.Reason, ov.Shard))
		return nil, false
	}
	writeError(w, http.StatusInternalServerError, "admission failed")
	return nil, false
}

func (s *Server) handleCreateSession(w http.ResponseWriter, _ *http.Request) {
	entry, err := s.store.NewSession()
	if err != nil {
		reqID := fmt.Sprintf("req-%06d", reqCounter.Add(1))
		log.Printf("server: creating session failed [%s]: %v", reqID, err)
		writeError(w, http.StatusInternalServerError, "internal error (reference "+reqID+")")
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": entry.ID})
}

// lookup resolves a session id, writing the 404/410 error response
// itself when the session is missing or evicted.
func (s *Server) lookup(w http.ResponseWriter, id string) (*sessionstore.Entry, bool) {
	entry, status := s.store.Get(id)
	switch status {
	case sessionstore.NotFound:
		writeError(w, http.StatusNotFound, "unknown session")
		return nil, false
	case sessionstore.Gone:
		writeError(w, http.StatusGone, "session evicted after idling past the server's TTL; start a new session")
		return nil, false
	}
	return entry, true
}

// AskRequest is the question payload.
type AskRequest struct {
	Question string `json:"question"`
}

// AskResponse carries the annotated answer (layer ⓔ over the wire).
type AskResponse struct {
	Text          string   `json:"text"`
	Code          string   `json:"code,omitempty"`
	Confidence    float64  `json:"confidence"`
	Abstained     bool     `json:"abstained"`
	Clarification string   `json:"clarification,omitempty"`
	Suggestions   string   `json:"suggestions,omitempty"`
	Sources       []string `json:"sources,omitempty"`
	Provenance    string   `json:"provenance,omitempty"`
	// Degraded names the fallback tier that produced the answer when
	// the verified pipeline was unavailable (empty otherwise), so UIs
	// can render the outage caveat alongside the lowered confidence.
	Degraded string `json:"degraded,omitempty"`
}

// reqCounter issues request IDs for error correlation in logs. An
// atomic counter — not a timestamp — so the server stays free of
// wall-clock reads.
var reqCounter atomic.Int64

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Shed BEFORE any work: no body decode, no session lock, no
	// backend calls happen for a rejected request.
	release, admitted := s.admit(w, s.store.ShardIndex(id))
	if !admitted {
		return
	}
	defer release()
	entry, ok := s.lookup(w, id)
	if !ok {
		return
	}
	var req AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		writeError(w, http.StatusBadRequest, "question must not be empty")
		return
	}
	var ans *core.Answer
	err := entry.Do(func(sess *dialogue.Session) error {
		a, rerr := s.sys.Respond(r.Context(), sess, req.Question)
		if rerr != nil {
			return rerr
		}
		ans = a
		// Durability before acknowledgement: the turn pair Respond just
		// committed to the transcript is WAL-logged here; on failure the
		// store rolls the pair back, so memory, disk, and the client's
		// view of the transcript always agree (the client simply
		// re-asks).
		return s.store.CommitTurn(entry)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client went away or the request deadline passed; the
			// session transcript gained no partial turn (core's
			// contract), so the next ask starts clean.
			writeError(w, http.StatusServiceUnavailable, "request cancelled or timed out")
			return
		}
		// Internal details (SQL text, backend names, stack context)
		// must not leak to clients: log them server-side under a
		// request ID and return only the reference.
		reqID := fmt.Sprintf("req-%06d", reqCounter.Add(1))
		log.Printf("server: ask on session %s failed [%s]: %v", id, reqID, err)
		writeError(w, http.StatusInternalServerError, "internal error (reference "+reqID+")")
		return
	}
	resp := AskResponse{
		Text:          ans.Text,
		Code:          ans.Code,
		Confidence:    ans.Confidence,
		Abstained:     ans.Abstained,
		Clarification: ans.Clarification,
		Suggestions:   ans.Suggestions,
		Sources:       ans.Explanation.Sources,
		Degraded:      ans.Degraded,
	}
	if ans.Provenance != nil && ans.AnswerNode != "" {
		resp.Provenance = ans.Provenance.Summary(ans.AnswerNode)
	}
	writeJSON(w, http.StatusOK, resp)
}

// TranscriptTurn is one turn of the session transcript payload.
type TranscriptTurn struct {
	Role       string  `json:"role"`
	Text       string  `json:"text"`
	Intent     string  `json:"intent,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// TranscriptPage is the paginated transcript envelope: Turns holds
// the [Offset, Offset+Limit) window of a Total-turn transcript.
type TranscriptPage struct {
	Turns  []TranscriptTurn `json:"turns"`
	Total  int              `json:"total"`
	Offset int              `json:"offset"`
	Limit  int              `json:"limit"`
}

// pageParams parses ?offset=&limit= with stable defaults (0,
// DefaultPageLimit). Malformed or negative values are a client error.
func pageParams(r *http.Request) (offset, limit int, err error) {
	offset, limit = 0, DefaultPageLimit
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("offset must be a non-negative integer, got %q", v)
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			return 0, 0, fmt.Errorf("limit must be a positive integer, got %q", v)
		}
	}
	if limit > MaxPageLimit {
		limit = MaxPageLimit
	}
	return offset, limit, nil
}

func (s *Server) handleTranscript(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	entry, ok := s.lookup(w, r.PathValue("id"))
	if !ok {
		return
	}
	page := TranscriptPage{Offset: offset, Limit: limit, Turns: []TranscriptTurn{}}
	doErr := entry.Do(func(sess *dialogue.Session) error {
		page.Total = len(sess.Turns)
		end := offset + limit
		if end > page.Total {
			end = page.Total
		}
		for i := offset; i < end; i++ {
			t := sess.Turns[i]
			tt := TranscriptTurn{Role: t.Role.String(), Text: t.Text, Confidence: t.Confidence}
			if t.Role == dialogue.RoleUser {
				tt.Intent = t.Intent.String()
			}
			page.Turns = append(page.Turns, tt)
		}
		return nil
	})
	if doErr != nil {
		writeError(w, http.StatusInternalServerError, "transcript read failed")
		return
	}
	writeJSON(w, http.StatusOK, page)
}
