// Package server exposes the reliable CDA system over HTTP/JSON: a
// session-oriented conversational API in which every response carries
// the paper's answer annotations (confidence, sources, code,
// provenance summary, suggestions) so downstream UIs can render the
// reliability signals, not just the text.
//
// Sessions live in a durable sharded store (internal/sessionstore):
// every committed turn pair is WAL-logged before the response leaves,
// so transcripts survive a crash and a restarted server resumes the
// same conversations. Requests pass an admission controller
// (internal/admission) before any work is done; an overloaded shard
// sheds with 429 + Retry-After while already-admitted turns complete.
//
// Endpoints:
//
//	GET  /health                             liveness probe
//	GET  /healthz                            per-shard WAL seq + replication lag (JSON)
//	GET  /datasets                           catalog listing with freshness
//	POST /sessions                           create a conversation; returns {"id": ...}
//	POST /sessions/{id}/ask                  {"question": "..."} → annotated answer
//	GET  /sessions/{id}?offset=&limit=       paginated session transcript
//	GET  /sessions/{id}/asof/{turn}          time-travel transcript read (versioned stores)
//	GET  /versions/{root...}                 a version root's commit log
//	GET  /replication/{shard}?after=&max=    pull committed WAL frames (cluster shipping)
//	POST /replication/apply                  apply a pulled batch on a replica
//	POST /chunks/want                        chunk negotiation: list missing chunks under a root
//	POST /chunks/fetch                       chunk negotiation: serve chunk packets by hash
//	POST /chunks/put                         chunk negotiation: store shipped packets
//
// Session lookups distinguish 404 (never existed) from 410 (evicted
// after sitting idle past the TTL). A node serving replicated state
// stamps transcript pages with a staleness marker whenever its store
// is known to lag the primary it last applied a batch from.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/reliable-cda/cda/internal/admission"
	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/vstore"
)

// Transcript pagination bounds: the default page keeps huge
// transcripts from serializing in one response; the max stops a
// client from asking for one anyway.
const (
	DefaultPageLimit = 100
	MaxPageLimit     = 1000
)

// Server wraps a core.System with HTTP session management over the
// durable store. Safe for concurrent use; turns within one session
// are serialized by the store's per-session lock.
type Server struct {
	sys   *core.System
	cat   *catalog.Catalog
	now   int
	store *sessionstore.Store
	adm   *admission.Controller
	node  string
}

// Options wires durability and overload protection into a server.
type Options struct {
	// Store holds the sessions; nil gets a fresh memory-only store
	// (nothing survives restart — the pre-durability behaviour).
	Store *sessionstore.Store
	// Admission gates requests; nil admits everything.
	Admission *admission.Controller
	// NodeName identifies this node in /healthz and replica-served
	// transcript pages; empty defaults to "node".
	NodeName string
}

// New creates a memory-only server over an assembled system. cat may
// be nil when the deployment has no catalog.
func New(sys *core.System, cat *catalog.Catalog, now int) *Server {
	return NewWithOptions(sys, cat, now, Options{})
}

// NewWithOptions creates a server with an explicit session store and
// admission controller.
func NewWithOptions(sys *core.System, cat *catalog.Catalog, now int, opts Options) *Server {
	st := opts.Store
	if st == nil {
		st = sessionstore.NewMemory(sessionstore.Config{})
	}
	node := opts.NodeName
	if node == "" {
		node = "node"
	}
	return &Server{sys: sys, cat: cat, now: now, store: st, adm: opts.Admission, node: node}
}

// Store exposes the session store (shutdown hooks and tests).
func (s *Server) Store() *sessionstore.Store { return s.store }

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.handleHealth)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("POST /sessions", s.handleCreateSession)
	mux.HandleFunc("POST /sessions/{id}/ask", s.handleAsk)
	mux.HandleFunc("GET /sessions/{id}", s.handleTranscript)
	mux.HandleFunc("GET /sessions/{id}/asof/{turn}", s.handleTranscriptAsOf)
	mux.HandleFunc("GET /versions/{root...}", s.handleVersions)
	mux.HandleFunc("GET /replication/{shard}", s.handlePullFrames)
	mux.HandleFunc("POST /replication/apply", s.handleApplyBatch)
	mux.HandleFunc("POST /chunks/want", s.handleChunksWant)
	mux.HandleFunc("POST /chunks/fetch", s.handleChunksFetch)
	mux.HandleFunc("POST /chunks/put", s.handleChunksPut)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire, so the client cannot
		// be told; surface the failure to the operator instead of
		// dropping it (a truncated annotated answer silently loses its
		// provenance/confidence payload).
		log.Printf("server: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ShardHealth is one shard's replication state in /healthz: the ship
// sequence its WAL has reached and how far it is known to lag the
// primary it last applied a batch from (0 on a primary).
type ShardHealth struct {
	Shard  int   `json:"shard"`
	WALSeq int64 `json:"wal_seq"`
	Lag    int64 `json:"lag"`
}

// HealthReport is the /healthz payload: enough for a router or
// operator to judge replication health, and nothing else — no paths,
// no session ids, no internals.
type HealthReport struct {
	Status   string        `json:"status"`
	Node     string        `json:"node"`
	Sessions int           `json:"sessions"`
	Shards   []ShardHealth `json:"shards"`
	// MaxLag is the largest per-shard lag, hoisted so probes can
	// threshold on one number.
	MaxLag int64 `json:"max_lag"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rep := HealthReport{Status: "ok", Node: s.node, Sessions: s.store.Len()}
	for i := 0; i < s.store.Shards(); i++ {
		h := ShardHealth{Shard: i,
			WALSeq: s.store.ReplicationCursor(i),
			Lag:    s.store.ReplicationLag(i)}
		if h.Lag > rep.MaxLag {
			rep.MaxLag = h.Lag
		}
		rep.Shards = append(rep.Shards, h)
	}
	writeJSON(w, http.StatusOK, rep)
}

// handlePullFrames serves one shard's committed WAL frames after the
// requested cursor (GET /replication/{shard}?after=&max=). The body is
// a sessionstore.ShipBatch; a replica applies it verbatim with
// /replication/apply on its own server.
func (s *Server) handlePullFrames(w http.ResponseWriter, r *http.Request) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 || shard >= s.store.Shards() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("shard must be an integer in [0,%d)", s.store.Shards()))
		return
	}
	after, max := int64(0), 0
	if v := r.URL.Query().Get("after"); v != "" {
		after, err = strconv.ParseInt(v, 10, 64)
		if err != nil || after < 0 {
			writeError(w, http.StatusBadRequest, "after must be a non-negative integer")
			return
		}
	}
	if v := r.URL.Query().Get("max"); v != "" {
		max, err = strconv.Atoi(v)
		if err != nil || max < 0 {
			writeError(w, http.StatusBadRequest, "max must be a non-negative integer")
			return
		}
	}
	batch, err := s.store.PullFrames(shard, after, max)
	if err != nil {
		// A cursor ahead of this node's WAL means the puller has state we
		// never shipped — 409, not 500: the request is wrong, not the node.
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, batch)
}

// handleApplyBatch applies a shipped batch on this node's store (POST
// /replication/apply). Responds with the shard's new cursor so the
// shipper can advance without a second round trip.
func (s *Server) handleApplyBatch(w http.ResponseWriter, r *http.Request) {
	var batch sessionstore.ShipBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if batch.Shard < 0 || batch.Shard >= s.store.Shards() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("shard must be in [0,%d)", s.store.Shards()))
		return
	}
	if err := s.store.ApplyBatch(batch); err != nil {
		var missing *sessionstore.MissingChunksError
		if errors.As(err, &missing) {
			// The versioned snapshot's chunk closure is incomplete here:
			// 428 tells the shipper to negotiate chunks (POST /chunks/*)
			// and retry the same batch.
			writeJSON(w, http.StatusPreconditionRequired, map[string]string{
				"error":        err.Error(),
				"missing_root": string(missing.Root),
			})
			return
		}
		if errors.Is(err, sessionstore.ErrNoVersions) {
			writeError(w, http.StatusPreconditionFailed,
				"batch carries a snapshot root but this node has no version store; re-pull with inline snapshots")
			return
		}
		if errors.Is(err, sessionstore.ErrReplicaGap) {
			// The shipper must re-pull from our actual cursor; 409 carries
			// it in the body.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  err.Error(),
				"cursor": s.store.ReplicationCursor(batch.Shard),
			})
			return
		}
		reqID := fmt.Sprintf("req-%06d", reqCounter.Add(1))
		log.Printf("server: apply replication batch on shard %d failed [%s]: %v", batch.Shard, reqID, err)
		writeError(w, http.StatusInternalServerError, "internal error (reference "+reqID+")")
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{
		"cursor": s.store.ReplicationCursor(batch.Shard),
	})
}

// DatasetInfo is the catalog listing payload.
type DatasetInfo struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Source      string  `json:"source,omitempty"`
	Freshness   float64 `json:"freshness"`
	Rotted      bool    `json:"rotted"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	if s.cat == nil {
		writeJSON(w, http.StatusOK, []DatasetInfo{})
		return
	}
	var out []DatasetInfo
	for _, d := range s.cat.List() {
		out = append(out, DatasetInfo{
			ID: d.ID, Name: d.Name, Description: d.Description, Source: d.Source,
			Freshness: catalog.Freshness(d, s.now),
			Rotted:    catalog.Rotted(d, s.now),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// admit runs the request through the admission controller, writing
// the 429 + Retry-After shed response itself. The returned release
// must be called when the request finishes; admitted is false when
// the request was shed (or a non-overload admission failure was
// reported as 500).
func (s *Server) admit(w http.ResponseWriter, shard int) (release func(), admitted bool) {
	if s.adm == nil {
		return func() {}, true
	}
	release, err := s.adm.Admit(shard)
	if err == nil {
		return release, true
	}
	var ov *admission.Overload
	if errors.As(err, &ov) {
		w.Header().Set("Retry-After", admission.RetryAfterSeconds(ov.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("overloaded (%s limit on shard %d); retry after the indicated delay", ov.Reason, ov.Shard))
		return nil, false
	}
	writeError(w, http.StatusInternalServerError, "admission failed")
	return nil, false
}

// createSessionRequest is the optional POST /sessions body: a cluster
// router picks the id up front so consistent-hash placement can route
// every later request from the id alone. An empty body (the original
// protocol) lets the store allocate.
type createSessionRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if r.Body != nil {
		// Decode errors on an empty body are expected (the pre-cluster
		// protocol sends none); only a present-but-broken body is a 400.
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
	}
	var entry *sessionstore.Entry
	var err error
	if req.ID != "" {
		entry, err = s.store.NewSessionWithID(req.ID)
	} else {
		entry, err = s.store.NewSession()
	}
	if errors.Is(err, sessionstore.ErrSessionExists) {
		writeError(w, http.StatusConflict, "session id already exists")
		return
	}
	if err != nil {
		reqID := fmt.Sprintf("req-%06d", reqCounter.Add(1))
		log.Printf("server: creating session failed [%s]: %v", reqID, err)
		writeError(w, http.StatusInternalServerError, "internal error (reference "+reqID+")")
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": entry.ID})
}

// lookup resolves a session id, writing the 404/410 error response
// itself when the session is missing or evicted.
func (s *Server) lookup(w http.ResponseWriter, id string) (*sessionstore.Entry, bool) {
	entry, status := s.store.Get(id)
	switch status {
	case sessionstore.NotFound:
		writeError(w, http.StatusNotFound, "unknown session")
		return nil, false
	case sessionstore.Gone:
		writeError(w, http.StatusGone, "session evicted after idling past the server's TTL; start a new session")
		return nil, false
	}
	return entry, true
}

// AskRequest is the question payload.
type AskRequest struct {
	Question string `json:"question"`
}

// AskResponse carries the annotated answer (layer ⓔ over the wire).
type AskResponse struct {
	Text          string   `json:"text"`
	Code          string   `json:"code,omitempty"`
	Confidence    float64  `json:"confidence"`
	Abstained     bool     `json:"abstained"`
	Clarification string   `json:"clarification,omitempty"`
	Suggestions   string   `json:"suggestions,omitempty"`
	Sources       []string `json:"sources,omitempty"`
	Provenance    string   `json:"provenance,omitempty"`
	// Degraded names the fallback tier that produced the answer when
	// the verified pipeline was unavailable (empty otherwise), so UIs
	// can render the outage caveat alongside the lowered confidence.
	Degraded string `json:"degraded,omitempty"`
	// DataRoot is the content hash of the data version the answer was
	// computed against (versioned deployments only).
	DataRoot string `json:"data_root,omitempty"`
}

// AskResponseFrom renders a core answer as the wire payload — shared
// by this server's ask handler and the cluster router's local-node
// path, so a routed answer is byte-identical to a direct one.
func AskResponseFrom(ans *core.Answer) AskResponse {
	resp := AskResponse{
		Text:          ans.Text,
		Code:          ans.Code,
		Confidence:    ans.Confidence,
		Abstained:     ans.Abstained,
		Clarification: ans.Clarification,
		Suggestions:   ans.Suggestions,
		Sources:       ans.Explanation.Sources,
		Degraded:      ans.Degraded,
		DataRoot:      ans.DataRoot,
	}
	if ans.Provenance != nil && ans.AnswerNode != "" {
		resp.Provenance = ans.Provenance.Summary(ans.AnswerNode)
	}
	return resp
}

// reqCounter issues request IDs for error correlation in logs. An
// atomic counter — not a timestamp — so the server stays free of
// wall-clock reads.
var reqCounter atomic.Int64

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Shed BEFORE any work: no body decode, no session lock, no
	// backend calls happen for a rejected request.
	release, admitted := s.admit(w, s.store.ShardIndex(id))
	if !admitted {
		return
	}
	defer release()
	entry, ok := s.lookup(w, id)
	if !ok {
		return
	}
	var req AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		writeError(w, http.StatusBadRequest, "question must not be empty")
		return
	}
	var ans *core.Answer
	err := entry.Do(func(sess *dialogue.Session) error {
		a, rerr := s.sys.Respond(r.Context(), sess, req.Question)
		if rerr != nil {
			return rerr
		}
		ans = a
		// Durability before acknowledgement: the turn pair Respond just
		// committed to the transcript is WAL-logged here; on failure the
		// store rolls the pair back, so memory, disk, and the client's
		// view of the transcript always agree (the client simply
		// re-asks).
		return s.store.CommitTurn(entry)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client went away or the request deadline passed; the
			// session transcript gained no partial turn (core's
			// contract), so the next ask starts clean.
			writeError(w, http.StatusServiceUnavailable, "request cancelled or timed out")
			return
		}
		// Internal details (SQL text, backend names, stack context)
		// must not leak to clients: log them server-side under a
		// request ID and return only the reference.
		reqID := fmt.Sprintf("req-%06d", reqCounter.Add(1))
		log.Printf("server: ask on session %s failed [%s]: %v", id, reqID, err)
		writeError(w, http.StatusInternalServerError, "internal error (reference "+reqID+")")
		return
	}
	writeJSON(w, http.StatusOK, AskResponseFrom(ans))
}

// TranscriptTurn is one turn of the session transcript payload.
type TranscriptTurn struct {
	Role       string  `json:"role"`
	Text       string  `json:"text"`
	Intent     string  `json:"intent,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// TranscriptPage is the paginated transcript envelope: Turns holds
// the [Offset, Offset+Limit) window of a Total-turn transcript. Pages
// served from a store known to lag its primary carry a staleness
// stamp so clients (and the cluster router) can tell a degraded read
// from a current one; a primary leaves all three fields zero.
type TranscriptPage struct {
	Turns  []TranscriptTurn `json:"turns"`
	Total  int              `json:"total"`
	Offset int              `json:"offset"`
	Limit  int              `json:"limit"`
	// Source names the node that served the page (replica reads only).
	Source string `json:"source,omitempty"`
	// Stale is true when the serving store is known to be behind the
	// primary it last replicated from.
	Stale bool `json:"stale,omitempty"`
	// LagRecords is how many WAL records behind the serving shard is —
	// a lower bound during a partition (the primary may have committed
	// more since it was last reachable).
	LagRecords int64 `json:"lag_records,omitempty"`
}

// pageParams parses ?offset=&limit= with stable defaults (0,
// DefaultPageLimit). Malformed or negative values are a client error.
func pageParams(r *http.Request) (offset, limit int, err error) {
	offset, limit = 0, DefaultPageLimit
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("offset must be a non-negative integer, got %q", v)
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			return 0, 0, fmt.Errorf("limit must be a positive integer, got %q", v)
		}
	}
	if limit > MaxPageLimit {
		limit = MaxPageLimit
	}
	return offset, limit, nil
}

func (s *Server) handleTranscript(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := r.PathValue("id")
	entry, ok := s.lookup(w, id)
	if !ok {
		return
	}
	page := TranscriptPage{Offset: offset, Limit: limit, Turns: []TranscriptTurn{}}
	if lag := s.store.ReplicationLag(s.store.ShardIndex(id)); lag > 0 {
		// This node's shard is behind the primary it replicates from:
		// serve the read (graceful degradation) but stamp it.
		page.Source = s.node
		page.Stale = true
		page.LagRecords = lag
		w.Header().Set("X-CDA-Stale", "true")
	}
	doErr := entry.Do(func(sess *dialogue.Session) error {
		page.Total = len(sess.Turns)
		end := offset + limit
		if end > page.Total {
			end = page.Total
		}
		for i := offset; i < end; i++ {
			t := sess.Turns[i]
			tt := TranscriptTurn{Role: t.Role.String(), Text: t.Text, Confidence: t.Confidence}
			if t.Role == dialogue.RoleUser {
				tt.Intent = t.Intent.String()
			}
			page.Turns = append(page.Turns, tt)
		}
		return nil
	})
	if doErr != nil {
		writeError(w, http.StatusInternalServerError, "transcript read failed")
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// VersionInfo is one commit in a /versions/{root} listing.
type VersionInfo struct {
	Hash   string `json:"hash"`
	Tree   string `json:"tree"`
	Parent string `json:"parent,omitempty"`
	Turn   int    `json:"turn"`
	Stamp  int64  `json:"stamp"`
}

// versions returns the node's version store, or nil on an unversioned
// deployment.
func (s *Server) versions() *vstore.Store {
	return s.store.Versions()
}

// handleVersions serves a version root's commit log (GET
// /versions/{root...} — root names contain slashes, e.g.
// "session/s0001" or "data").
func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	vs := s.versions()
	if vs == nil {
		writeError(w, http.StatusNotFound, "this node has no version store")
		return
	}
	root := r.PathValue("root")
	log, err := vs.Log(root)
	if err != nil {
		if errors.Is(err, vstore.ErrUnknownRoot) {
			writeError(w, http.StatusNotFound, "unknown version root")
			return
		}
		writeError(w, http.StatusInternalServerError, "version log read failed")
		return
	}
	out := make([]VersionInfo, 0, len(log))
	for _, c := range log {
		out = append(out, VersionInfo{Hash: string(c.Hash), Tree: string(c.Tree),
			Parent: string(c.Parent), Turn: c.Turn, Stamp: c.Stamp})
	}
	writeJSON(w, http.StatusOK, map[string]any{"root": root, "commits": out})
}

// AsOfResponse is the time-travel transcript payload: the transcript
// as the store saw it at the requested turn, plus the commit that
// pins that version.
type AsOfResponse struct {
	Turns  []TranscriptTurn `json:"turns"`
	Total  int              `json:"total"`
	Commit VersionInfo      `json:"commit"`
}

// handleTranscriptAsOf serves GET /sessions/{id}/asof/{turn}: the
// session transcript materialized from the version at or before the
// requested turn — an immutable read that never touches the live
// session entry.
func (s *Server) handleTranscriptAsOf(w http.ResponseWriter, r *http.Request) {
	if s.versions() == nil {
		writeError(w, http.StatusNotFound, "this node has no version store")
		return
	}
	turn, err := strconv.Atoi(r.PathValue("turn"))
	if err != nil || turn < 0 {
		writeError(w, http.StatusBadRequest, "turn must be a non-negative integer")
		return
	}
	id := r.PathValue("id")
	sess, c, err := s.store.TranscriptAsOf(id, turn)
	if err != nil {
		if errors.Is(err, vstore.ErrUnknownRoot) {
			writeError(w, http.StatusNotFound, "no versions recorded for this session")
			return
		}
		writeError(w, http.StatusNotFound, "no version at or before that turn")
		return
	}
	resp := AsOfResponse{Total: len(sess.Turns), Turns: []TranscriptTurn{},
		Commit: VersionInfo{Hash: string(c.Hash), Tree: string(c.Tree),
			Parent: string(c.Parent), Turn: c.Turn, Stamp: c.Stamp}}
	for _, t := range sess.Turns {
		tt := TranscriptTurn{Role: t.Role.String(), Text: t.Text, Confidence: t.Confidence}
		if t.Role == dialogue.RoleUser {
			tt.Intent = t.Intent.String()
		}
		resp.Turns = append(resp.Turns, tt)
	}
	writeJSON(w, http.StatusOK, resp)
}

// WantChunksRequest asks which chunks of a root's closure are missing
// locally (POST /chunks/want) — the replica-side half of catch-up
// negotiation.
type WantChunksRequest struct {
	Root  string `json:"root"`
	Limit int    `json:"limit"`
}

// FetchChunksRequest asks for chunk packets by hash (POST
// /chunks/fetch) — served by the node that has them.
type FetchChunksRequest struct {
	Hashes []string `json:"hashes"`
}

// PutChunksRequest ships chunk packets (POST /chunks/put); each
// packet is re-hashed on receipt, so a corrupted packet is rejected
// rather than stored under a wrong address.
type PutChunksRequest struct {
	Packets []vstore.Packet `json:"packets"`
}

func (s *Server) handleChunksWant(w http.ResponseWriter, r *http.Request) {
	vs := s.versions()
	if vs == nil {
		writeError(w, http.StatusNotFound, "this node has no version store")
		return
	}
	var req WantChunksRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Root == "" {
		writeError(w, http.StatusBadRequest, "root must not be empty")
		return
	}
	missing := vs.WantList(vstore.Hash(req.Root), req.Limit)
	out := make([]string, 0, len(missing))
	for _, h := range missing {
		out = append(out, string(h))
	}
	writeJSON(w, http.StatusOK, map[string][]string{"missing": out})
}

func (s *Server) handleChunksFetch(w http.ResponseWriter, r *http.Request) {
	vs := s.versions()
	if vs == nil {
		writeError(w, http.StatusNotFound, "this node has no version store")
		return
	}
	var req FetchChunksRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	hashes := make([]vstore.Hash, 0, len(req.Hashes))
	for _, h := range req.Hashes {
		hashes = append(hashes, vstore.Hash(h))
	}
	packets, err := vs.Packets(hashes)
	if err != nil {
		// Asking for a chunk this node lacks is the requester's staleness,
		// not a server fault.
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string][]vstore.Packet{"packets": packets})
}

func (s *Server) handleChunksPut(w http.ResponseWriter, r *http.Request) {
	vs := s.versions()
	if vs == nil {
		writeError(w, http.StatusNotFound, "this node has no version store")
		return
	}
	var req PutChunksRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if err := vs.AddPackets(req.Packets); err != nil {
		if errors.Is(err, vstore.ErrBadPacket) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		reqID := fmt.Sprintf("req-%06d", reqCounter.Add(1))
		log.Printf("server: storing shipped chunks failed [%s]: %v", reqID, err)
		writeError(w, http.StatusInternalServerError, "internal error (reference "+reqID+")")
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"added": len(req.Packets)})
}
