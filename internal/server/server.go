// Package server exposes the reliable CDA system over HTTP/JSON: a
// session-oriented conversational API in which every response carries
// the paper's answer annotations (confidence, sources, code,
// provenance summary, suggestions) so downstream UIs can render the
// reliability signals, not just the text.
//
// Endpoints:
//
//	GET  /health               liveness probe
//	GET  /datasets             catalog listing with freshness
//	POST /sessions             create a conversation; returns {"id": ...}
//	POST /sessions/{id}/ask    {"question": "..."} → annotated answer
//	GET  /sessions/{id}        session transcript
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/dialogue"
)

// Server wraps a core.System with HTTP session management. Safe for
// concurrent use; each session is individually locked because the
// dialogue state is mutable.
type Server struct {
	sys *core.System
	cat *catalog.Catalog
	now int

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	nextID   int
}

type sessionEntry struct {
	mu   sync.Mutex
	sess *dialogue.Session
}

// New creates a server over an assembled system. cat may be nil when
// the deployment has no catalog.
func New(sys *core.System, cat *catalog.Catalog, now int) *Server {
	return &Server{sys: sys, cat: cat, now: now, sessions: map[string]*sessionEntry{}}
}

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.handleHealth)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("POST /sessions", s.handleCreateSession)
	mux.HandleFunc("POST /sessions/{id}/ask", s.handleAsk)
	mux.HandleFunc("GET /sessions/{id}", s.handleTranscript)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire, so the client cannot
		// be told; surface the failure to the operator instead of
		// dropping it (a truncated annotated answer silently loses its
		// provenance/confidence payload).
		log.Printf("server: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DatasetInfo is the catalog listing payload.
type DatasetInfo struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Source      string  `json:"source,omitempty"`
	Freshness   float64 `json:"freshness"`
	Rotted      bool    `json:"rotted"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	if s.cat == nil {
		writeJSON(w, http.StatusOK, []DatasetInfo{})
		return
	}
	var out []DatasetInfo
	for _, d := range s.cat.List() {
		out = append(out, DatasetInfo{
			ID: d.ID, Name: d.Name, Description: d.Description, Source: d.Source,
			Freshness: catalog.Freshness(d, s.now),
			Rotted:    catalog.Rotted(d, s.now),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%04d", s.nextID)
	s.sessions[id] = &sessionEntry{sess: s.sys.NewSession()}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) session(id string) (*sessionEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.sessions[id]
	return e, ok
}

// AskRequest is the question payload.
type AskRequest struct {
	Question string `json:"question"`
}

// AskResponse carries the annotated answer (layer ⓔ over the wire).
type AskResponse struct {
	Text          string   `json:"text"`
	Code          string   `json:"code,omitempty"`
	Confidence    float64  `json:"confidence"`
	Abstained     bool     `json:"abstained"`
	Clarification string   `json:"clarification,omitempty"`
	Suggestions   string   `json:"suggestions,omitempty"`
	Sources       []string `json:"sources,omitempty"`
	Provenance    string   `json:"provenance,omitempty"`
	// Degraded names the fallback tier that produced the answer when
	// the verified pipeline was unavailable (empty otherwise), so UIs
	// can render the outage caveat alongside the lowered confidence.
	Degraded string `json:"degraded,omitempty"`
}

// reqCounter issues request IDs for error correlation in logs. An
// atomic counter — not a timestamp — so the server stays free of
// wall-clock reads.
var reqCounter atomic.Int64

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	var req AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		writeError(w, http.StatusBadRequest, "question must not be empty")
		return
	}
	entry.mu.Lock()
	ans, err := s.sys.Respond(r.Context(), entry.sess, req.Question)
	entry.mu.Unlock()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client went away or the request deadline passed; the
			// session transcript gained no partial turn (core's
			// contract), so the next ask starts clean.
			writeError(w, http.StatusServiceUnavailable, "request cancelled or timed out")
			return
		}
		// Internal details (SQL text, backend names, stack context)
		// must not leak to clients: log them server-side under a
		// request ID and return only the reference.
		reqID := fmt.Sprintf("req-%06d", reqCounter.Add(1))
		log.Printf("server: ask on session %s failed [%s]: %v", r.PathValue("id"), reqID, err)
		writeError(w, http.StatusInternalServerError, "internal error (reference "+reqID+")")
		return
	}
	resp := AskResponse{
		Text:          ans.Text,
		Code:          ans.Code,
		Confidence:    ans.Confidence,
		Abstained:     ans.Abstained,
		Clarification: ans.Clarification,
		Suggestions:   ans.Suggestions,
		Sources:       ans.Explanation.Sources,
		Degraded:      ans.Degraded,
	}
	if ans.Provenance != nil && ans.AnswerNode != "" {
		resp.Provenance = ans.Provenance.Summary(ans.AnswerNode)
	}
	writeJSON(w, http.StatusOK, resp)
}

// TranscriptTurn is one turn of the session transcript payload.
type TranscriptTurn struct {
	Role       string  `json:"role"`
	Text       string  `json:"text"`
	Intent     string  `json:"intent,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

func (s *Server) handleTranscript(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	entry.mu.Lock()
	defer entry.mu.Unlock()
	out := make([]TranscriptTurn, 0, len(entry.sess.Turns))
	for _, t := range entry.sess.Turns {
		tt := TranscriptTurn{Role: t.Role.String(), Text: t.Text, Confidence: t.Confidence}
		if t.Role == dialogue.RoleUser {
			tt.Intent = t.Intent.String()
		}
		out = append(out, tt)
	}
	writeJSON(w, http.StatusOK, out)
}
