package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/workload"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	d := workload.NewSwissDomain(1)
	sys := core.New(core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now, Seed: 1})
	srv := New(sys, d.Catalog, d.Now)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func createSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := postJSON(t, ts.URL+"/sessions", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	return decode[map[string]string](t, resp)["id"]
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if got := decode[map[string]string](t, resp); got["status"] != "ok" {
		t.Errorf("body = %v", got)
	}
}

func TestDatasets(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	got := decode[[]DatasetInfo](t, resp)
	if len(got) != 3 {
		t.Fatalf("datasets = %v", got)
	}
	byID := map[string]DatasetInfo{}
	for _, d := range got {
		byID[d.ID] = d
	}
	if byID["barometer"].Freshness != 1 || byID["barometer"].Rotted {
		t.Errorf("barometer = %+v", byID["barometer"])
	}
	if byID["chocolate"].Freshness >= byID["employment"].Freshness {
		t.Error("freshness ordering wrong")
	}
}

func TestAskFlow(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts)

	resp := postJSON(t, ts.URL+"/sessions/"+id+"/ask",
		AskRequest{Question: "how many employment where canton is Zurich"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask status = %d", resp.StatusCode)
	}
	ans := decode[AskResponse](t, resp)
	if ans.Abstained || !strings.Contains(ans.Text, "20") {
		t.Errorf("answer = %+v", ans)
	}
	if ans.Confidence < 0.5 || len(ans.Sources) == 0 || ans.Code == "" {
		t.Errorf("annotations missing: %+v", ans)
	}
	if !strings.Contains(ans.Provenance, "generated SQL") {
		t.Errorf("provenance = %q", ans.Provenance)
	}

	// Context carries across HTTP turns.
	resp = postJSON(t, ts.URL+"/sessions/"+id+"/ask", AskRequest{Question: "and in Bern?"})
	follow := decode[AskResponse](t, resp)
	if follow.Abstained || !strings.Contains(follow.Code, "Bern") {
		t.Errorf("follow-up = %+v", follow)
	}
}

func TestAskErrors(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/sessions/nope/ask", AskRequest{Question: "hi"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	id := createSession(t, ts)
	resp = postJSON(t, ts.URL+"/sessions/"+id+"/ask", AskRequest{Question: "  "})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	r, _ := http.Post(ts.URL+"/sessions/"+id+"/ask", "application/json", strings.NewReader("{broken"))
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("broken json status = %d", r.StatusCode)
	}
	r.Body.Close()
}

func TestTranscript(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts)
	postJSON(t, ts.URL+"/sessions/"+id+"/ask", AskRequest{Question: "how many barometer"}).Body.Close()
	resp, err := http.Get(ts.URL + "/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	page := decode[TranscriptPage](t, resp)
	turns := page.Turns
	if page.Total != 2 || len(turns) != 2 || turns[0].Role != "user" || turns[1].Role != "system" {
		t.Fatalf("page = %+v", page)
	}
	if page.Offset != 0 || page.Limit != DefaultPageLimit {
		t.Errorf("default pagination = offset %d limit %d", page.Offset, page.Limit)
	}
	if turns[0].Intent != "query" {
		t.Errorf("intent = %q", turns[0].Intent)
	}
	// Unknown session transcript.
	r2, _ := http.Get(ts.URL + "/sessions/zzz")
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown transcript status = %d", r2.StatusCode)
	}
	r2.Body.Close()
}

func TestSessionsAreIsolated(t *testing.T) {
	ts := testServer(t)
	a := createSession(t, ts)
	b := createSession(t, ts)
	if a == b {
		t.Fatal("duplicate session ids")
	}
	postJSON(t, ts.URL+"/sessions/"+a+"/ask",
		AskRequest{Question: "how many employment where canton is Zurich"}).Body.Close()
	// Session b has no context: a bare follow-up must clarify.
	resp := postJSON(t, ts.URL+"/sessions/"+b+"/ask", AskRequest{Question: "and in Bern?"})
	ans := decode[AskResponse](t, resp)
	if !ans.Abstained {
		t.Errorf("cross-session context leak: %+v", ans)
	}
}

func TestConcurrentAsk(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := createSession(t, ts)
			for i := 0; i < 5; i++ {
				resp := postJSON(t, ts.URL+"/sessions/"+id+"/ask",
					AskRequest{Question: "how many barometer"})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentAskOneSession hammers a single session from many
// goroutines. The server serializes turns per session, so the final
// transcript must hold exactly one user and one system turn per
// request, strictly alternating — no torn or interleaved turns.
func TestConcurrentAskOneSession(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts)
	const asks = 24
	questions := []string{
		"how many barometer",
		"how many employment",
		"how many employment where canton is Zurich",
	}
	var wg sync.WaitGroup
	for i := 0; i < asks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/sessions/"+id+"/ask",
				AskRequest{Question: questions[i%len(questions)]})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	resp, err := http.Get(ts.URL + "/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	turns := decode[TranscriptPage](t, resp).Turns
	if len(turns) != 2*asks {
		t.Fatalf("transcript has %d turns, want %d", len(turns), 2*asks)
	}
	for i, turn := range turns {
		want := "user"
		if i%2 == 1 {
			want = "system"
		}
		if turn.Role != want {
			t.Fatalf("turn %d role = %q, want %q", i, turn.Role, want)
		}
		if turn.Text == "" {
			t.Fatalf("turn %d has empty text", i)
		}
	}
}

// TestConcurrentAskManySessions runs several sessions concurrently,
// each asking a mixed question stream (hitting the singleflight
// answer cache on shared questions), and checks every transcript is
// internally consistent afterwards.
func TestConcurrentAskManySessions(t *testing.T) {
	ts := testServer(t)
	const sessions = 6
	const asksPer = 4
	questions := []string{
		"how many barometer",
		"how many employment",
		"how many employment where canton is Zurich",
		"what data do you have about jobs",
	}
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = createSession(t, ts)
	}
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < asksPer; i++ {
				resp := postJSON(t, ts.URL+"/sessions/"+ids[g]+"/ask",
					AskRequest{Question: questions[(g+i)%len(questions)]})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("session %d status = %d", g, resp.StatusCode)
				}
				ans := decode[AskResponse](t, resp)
				if ans.Text == "" {
					t.Errorf("session %d got empty answer", g)
				}
			}
		}(g)
	}
	wg.Wait()
	for g, id := range ids {
		resp, err := http.Get(ts.URL + "/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		turns := decode[TranscriptPage](t, resp).Turns
		if len(turns) != 2*asksPer {
			t.Fatalf("session %d transcript has %d turns, want %d", g, len(turns), 2*asksPer)
		}
		for i := 0; i < len(turns); i += 2 {
			if turns[i].Role != "user" || turns[i+1].Role != "system" {
				t.Fatalf("session %d turns %d/%d roles = %q/%q", g, i, i+1, turns[i].Role, turns[i+1].Role)
			}
		}
	}
}
