package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reliable-cda/cda/internal/admission"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/workload"
)

// durableServer builds a server over a durable store in dir with the
// given options applied.
func durableServer(t *testing.T, dir string, storeCfg sessionstore.Config, adm *admission.Controller) (*httptest.Server, *Server) {
	t.Helper()
	d := workload.NewSwissDomain(1)
	sys := core.New(core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab,
		Documents: d.Documents, Now: d.Now, Seed: 1})
	storeCfg.Dir = dir
	st, err := sessionstore.Open(storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(sys, d.Catalog, d.Now, Options{Store: st, Admission: adm})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func rawTranscript(t *testing.T, ts *httptest.Server, id, query string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sessions/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestSessionSurvivesRestart is the acceptance scenario: a server is
// killed after N committed turns (no Close, no flush) and a restarted
// server over the same data dir serves the byte-identical transcript
// for the same session id.
func TestSessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, _ := durableServer(t, dir, sessionstore.Config{Shards: 4}, nil)
	id := createSession(t, ts1)
	questions := []string{
		"how many employment where canton is Zurich",
		"and in Bern?",
		"how many barometer",
	}
	for _, q := range questions {
		resp := postJSON(t, ts1.URL+"/sessions/"+id+"/ask", AskRequest{Question: q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ask %q status = %d", q, resp.StatusCode)
		}
		resp.Body.Close()
	}
	code, before := rawTranscript(t, ts1, id, "")
	if code != http.StatusOK {
		t.Fatalf("transcript status = %d", code)
	}
	ts1.Close() // simulated kill: the store is never Closed or flushed

	ts2, _ := durableServer(t, dir, sessionstore.Config{Shards: 4}, nil)
	code, after := rawTranscript(t, ts2, id, "")
	if code != http.StatusOK {
		t.Fatalf("restarted transcript status = %d", code)
	}
	if after != before {
		t.Errorf("transcript changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	// The recovered session is live: conversation context from before
	// the crash (the committed transcript) keeps serving asks.
	resp := postJSON(t, ts2.URL+"/sessions/"+id+"/ask",
		AskRequest{Question: "how many employment"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart ask status = %d", resp.StatusCode)
	}
	ans := decode[AskResponse](t, resp)
	if ans.Text == "" {
		t.Error("post-restart ask returned empty answer")
	}
}

func TestTranscriptPagination(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts)
	const asks = 6
	for i := 0; i < asks; i++ {
		postJSON(t, ts.URL+"/sessions/"+id+"/ask",
			AskRequest{Question: "how many barometer"}).Body.Close()
	}
	resp, err := http.Get(ts.URL + "/sessions/" + id + "?offset=2&limit=3")
	if err != nil {
		t.Fatal(err)
	}
	page := decode[TranscriptPage](t, resp)
	if page.Total != 2*asks || page.Offset != 2 || page.Limit != 3 || len(page.Turns) != 3 {
		t.Fatalf("page = total %d offset %d limit %d turns %d",
			page.Total, page.Offset, page.Limit, len(page.Turns))
	}
	// offset=2 of a user/system alternation starts on a user turn.
	if page.Turns[0].Role != "user" || page.Turns[1].Role != "system" {
		t.Errorf("window roles = %q/%q", page.Turns[0].Role, page.Turns[1].Role)
	}
	// A window past the end is empty, not an error (stable iteration
	// for clients paging until exhaustion).
	resp, err = http.Get(ts.URL + "/sessions/" + id + "?offset=1000")
	if err != nil {
		t.Fatal(err)
	}
	page = decode[TranscriptPage](t, resp)
	if len(page.Turns) != 0 || page.Total != 2*asks {
		t.Errorf("past-end page = %+v", page)
	}
	// Malformed parameters are client errors.
	for _, q := range []string{"?offset=-1", "?limit=0", "?offset=x", "?limit=x"} {
		code, _ := rawTranscript(t, ts, id, q)
		if code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, code)
		}
	}
	// An oversized limit is clamped, not rejected.
	resp, err = http.Get(ts.URL + "/sessions/" + id + "?limit=99999")
	if err != nil {
		t.Fatal(err)
	}
	if page = decode[TranscriptPage](t, resp); page.Limit != MaxPageLimit {
		t.Errorf("limit = %d, want clamped to %d", page.Limit, MaxPageLimit)
	}
}

// TestEvictedSessionGone drives TTL eviction on the virtual clock:
// idle sessions answer 410 Gone (not 404) on both ask and transcript,
// and the distinction survives restart via tombstones.
func TestEvictedSessionGone(t *testing.T) {
	dir := t.TempDir()
	clock := resilience.NewVirtualClock()
	cfg := sessionstore.Config{Shards: 2, TTL: 30 * time.Minute, Clock: clock}
	ts, _ := durableServer(t, dir, cfg, nil)
	id := createSession(t, ts)
	postJSON(t, ts.URL+"/sessions/"+id+"/ask",
		AskRequest{Question: "how many barometer"}).Body.Close()
	clock.Advance(31 * time.Minute)
	resp := postJSON(t, ts.URL+"/sessions/"+id+"/ask", AskRequest{Question: "how many barometer"})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("ask on idle session status = %d, want 410", resp.StatusCode)
	}
	resp.Body.Close()
	if code, _ := rawTranscript(t, ts, id, ""); code != http.StatusGone {
		t.Errorf("transcript of evicted session status = %d, want 410", code)
	}
	// Never-issued ids stay 404.
	if code, _ := rawTranscript(t, ts, "s9999", ""); code != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", code)
	}
	ts.Close()
	ts2, _ := durableServer(t, dir, cfg, nil)
	if code, _ := rawTranscript(t, ts2, id, ""); code != http.StatusGone {
		t.Errorf("evicted session after restart status = %d, want 410 (tombstone lost?)", code)
	}
}

// TestOverloadSheds verifies the admission contract: with a shard's
// only inflight slot occupied, new asks shed with 429 + Retry-After
// before any work, while the already-admitted request completes.
func TestOverloadSheds(t *testing.T) {
	adm := admission.New(admission.Config{Shards: 4, MaxInflight: 1})
	ts, srv := durableServer(t, t.TempDir(), sessionstore.Config{Shards: 4}, adm)
	id := createSession(t, ts)
	shard := srv.Store().ShardIndex(id)
	// Occupy the shard's only slot, as an admitted long-running turn
	// would.
	release, err := adm.Admit(shard)
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/sessions/"+id+"/ask",
		AskRequest{Question: "how many barometer"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ask under full shard status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	resp.Body.Close()
	// The admitted work finishes and releases; traffic flows again.
	release()
	resp = postJSON(t, ts.URL+"/sessions/"+id+"/ask",
		AskRequest{Question: "how many barometer"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask after release status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// The shed request committed nothing: exactly one turn pair.
	_, body := rawTranscript(t, ts, id, "")
	if got := strings.Count(body, `"role":"user"`); got != 1 {
		t.Errorf("transcript holds %d user turns, want 1 (shed request leaked a turn?)\n%s", got, body)
	}
}

// TestRateLimitSheds drives the token bucket deterministically on the
// virtual clock: budget exhausted → 429 with an exact Retry-After;
// clock advance → admitted again.
func TestRateLimitSheds(t *testing.T) {
	clock := resilience.NewVirtualClock()
	adm := admission.New(admission.Config{Shards: 1, Rate: 1, Burst: 1, Clock: clock})
	ts, _ := durableServer(t, t.TempDir(), sessionstore.Config{Shards: 1}, adm)
	id := createSession(t, ts)
	ask := func() *http.Response {
		return postJSON(t, ts.URL+"/sessions/"+id+"/ask",
			AskRequest{Question: "how many barometer"})
	}
	resp := ask()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ask status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = ask()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget ask status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\" (rate 1/s)", ra)
	}
	resp.Body.Close()
	clock.Advance(time.Second)
	resp = ask()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask after refill status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestConcurrentLifecycleAcrossShards exercises the whole lifecycle —
// create, ask, evict, recover — from parallel clients across shards
// under the race detector, then restarts and checks every surviving
// transcript.
func TestConcurrentLifecycleAcrossShards(t *testing.T) {
	dir := t.TempDir()
	clock := resilience.NewVirtualClock()
	cfg := sessionstore.Config{Shards: 8, SnapshotEvery: 4, TTL: time.Hour, Clock: clock}
	ts, srv := durableServer(t, dir, cfg, admission.New(admission.Config{Shards: 8, MaxInflight: 64}))
	const workers = 6
	ids := make([]string, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := createSession(t, ts)
			ids[g] = id
			for i := 0; i < 3; i++ {
				resp := postJSON(t, ts.URL+"/sessions/"+id+"/ask",
					AskRequest{Question: "how many barometer"})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d ask status = %d", g, resp.StatusCode)
				}
				resp.Body.Close()
				if _, err := srv.Store().SweepIdle(); err != nil {
					t.Errorf("worker %d sweep: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()
	transcripts := make([]string, workers)
	for g, id := range ids {
		code, body := rawTranscript(t, ts, id, "")
		if code != http.StatusOK {
			t.Fatalf("session %s transcript status = %d", id, code)
		}
		transcripts[g] = body
	}
	ts.Close()
	ts2, _ := durableServer(t, dir, cfg, nil)
	for g, id := range ids {
		code, body := rawTranscript(t, ts2, id, "")
		if code != http.StatusOK {
			t.Fatalf("recovered session %s status = %d", id, code)
		}
		if body != transcripts[g] {
			t.Errorf("session %s transcript diverged across restart:\nbefore: %s\nafter:  %s",
				id, transcripts[g], body)
		}
	}
	// Drive everything idle and evict: all sessions answer 410.
	clock.Advance(2 * time.Hour)
	for _, id := range ids {
		if code, _ := rawTranscript(t, ts2, id, ""); code != http.StatusGone {
			t.Errorf("idle session %s status = %d, want 410", id, code)
		}
	}
}

// TestCreateSessionIDsMonotonicAcrossRestart pins the id allocator:
// a recovered server continues the sequence instead of re-issuing
// (and instantly tombstone-410ing) old ids.
func TestCreateSessionIDsMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, _ := durableServer(t, dir, sessionstore.Config{Shards: 4}, nil)
	first := createSession(t, ts1)
	second := createSession(t, ts1)
	ts1.Close()
	ts2, _ := durableServer(t, dir, sessionstore.Config{Shards: 4}, nil)
	third := createSession(t, ts2)
	if third == first || third == second {
		t.Fatalf("restarted server re-issued id %s (have %s, %s)", third, first, second)
	}
	for i := 0; i < 5; i++ {
		if id := createSession(t, ts2); id == first || id == second {
			t.Fatalf("duplicate id %s after restart", id)
		}
	}
}
