package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/workload"
)

// nodePair builds a primary and replica server over memory stores with
// the same shard count, named so staleness stamps are attributable.
func nodePair(t *testing.T) (primary, replica *httptest.Server, psrv, rsrv *Server) {
	t.Helper()
	d := workload.NewSwissDomain(1)
	sys := core.New(core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab,
		Documents: d.Documents, Now: d.Now, Seed: 1})
	psrv = NewWithOptions(sys, d.Catalog, d.Now, Options{
		Store: sessionstore.NewMemory(sessionstore.Config{Shards: 4}), NodeName: "n1-primary"})
	rsrv = NewWithOptions(sys, d.Catalog, d.Now, Options{
		Store: sessionstore.NewMemory(sessionstore.Config{Shards: 4}), NodeName: "n1-replica"})
	primary = httptest.NewServer(psrv.Handler())
	replica = httptest.NewServer(rsrv.Handler())
	t.Cleanup(primary.Close)
	t.Cleanup(replica.Close)
	return primary, replica, psrv, rsrv
}

// shipShardHTTP pulls at most max frames of one shard from the primary
// over HTTP and applies them on the replica over HTTP — the exact
// protocol cdarouter drives.
func shipShardHTTP(t *testing.T, primary, replica *httptest.Server, rsrv *Server, shard, max int) {
	t.Helper()
	after := rsrv.Store().ReplicationCursor(shard)
	resp, err := http.Get(fmt.Sprintf("%s/replication/%d?after=%d&max=%d", primary.URL, shard, after, max))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("pull shard %d status = %d", shard, resp.StatusCode)
	}
	batch := decode[sessionstore.ShipBatch](t, resp)
	if batch.Empty() && batch.PrimaryCursor == after {
		return
	}
	resp = postJSON(t, replica.URL+"/replication/apply", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply shard %d status = %d", shard, resp.StatusCode)
	}
	resp.Body.Close()
}

func askOK(t *testing.T, ts *httptest.Server, id, q string) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/sessions/"+id+"/ask", AskRequest{Question: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask %q status = %d", q, resp.StatusCode)
	}
	resp.Body.Close()
}

func getPage(t *testing.T, ts *httptest.Server, id, query string) (TranscriptPage, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sessions/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("transcript %s status = %d", query, resp.StatusCode)
	}
	hdr := resp.Header
	return decode[TranscriptPage](t, resp), hdr
}

func TestHealthzReportsShardSeqAndLag(t *testing.T) {
	primary, replica, psrv, rsrv := nodePair(t)
	id := createSession(t, primary)
	askOK(t, primary, id, "how many barometer")

	resp, err := http.Get(primary.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[HealthReport](t, resp)
	if rep.Status != "ok" || rep.Node != "n1-primary" || rep.Sessions != 1 {
		t.Fatalf("healthz = %+v", rep)
	}
	if len(rep.Shards) != psrv.Store().Shards() {
		t.Fatalf("reported %d shards, want %d", len(rep.Shards), psrv.Store().Shards())
	}
	shard := psrv.Store().ShardIndex(id)
	// create + one committed pair = 2 WAL records on the session's shard.
	if rep.Shards[shard].WALSeq != 2 {
		t.Errorf("shard %d wal_seq = %d, want 2", shard, rep.Shards[shard].WALSeq)
	}
	if rep.MaxLag != 0 {
		t.Errorf("primary max_lag = %d, want 0", rep.MaxLag)
	}

	// Ship one of the two records: the replica's healthz shows lag 1.
	shipShardHTTP(t, primary, replica, rsrv, shard, 1)
	resp, err = http.Get(replica.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rep = decode[HealthReport](t, resp)
	if rep.Node != "n1-replica" || rep.Shards[shard].Lag != 1 || rep.MaxLag != 1 {
		t.Fatalf("replica healthz = %+v", rep)
	}
}

func TestCreateSessionWithChosenID(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/sessions", map[string]string{"id": "c000007"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if got := decode[map[string]string](t, resp); got["id"] != "c000007" {
		t.Fatalf("id = %q", got["id"])
	}
	// The chosen id is live.
	askOK(t, ts, "c000007", "how many barometer")
	// Re-creating it is a conflict, not a silent reset.
	resp = postJSON(t, ts.URL+"/sessions", map[string]string{"id": "c000007"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	// The bodyless protocol still allocates.
	resp = postJSON(t, ts.URL+"/sessions", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("bodyless create status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTranscriptPageEdges pins the pagination contract at its
// boundaries: offset exactly at and past the end, a window straddling
// the final turn, and the hard limit clamp.
func TestTranscriptPageEdges(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts)
	const asks = 6 // 12 turns
	for i := 0; i < asks; i++ {
		askOK(t, ts, id, "how many barometer")
	}
	total := 2 * asks

	// Offset exactly at the end: empty page, correct total.
	page, _ := getPage(t, ts, id, fmt.Sprintf("?offset=%d", total))
	if len(page.Turns) != 0 || page.Total != total || page.Offset != total {
		t.Errorf("at-end page = total %d offset %d turns %d", page.Total, page.Offset, len(page.Turns))
	}
	// Offset far past the end: still empty, still not an error.
	page, _ = getPage(t, ts, id, fmt.Sprintf("?offset=%d", total+500))
	if len(page.Turns) != 0 || page.Total != total {
		t.Errorf("past-end page = total %d turns %d", page.Total, len(page.Turns))
	}
	// A window straddling the final turn is truncated to it, and ends
	// on the system turn that closes the transcript.
	page, _ = getPage(t, ts, id, fmt.Sprintf("?offset=%d&limit=5", total-2))
	if len(page.Turns) != 2 {
		t.Fatalf("straddling window turns = %d, want 2", len(page.Turns))
	}
	if page.Turns[0].Role != "user" || page.Turns[1].Role != "system" {
		t.Errorf("final window roles = %q/%q", page.Turns[0].Role, page.Turns[1].Role)
	}
	// The limit clamp is exactly MaxPageLimit, echoed in the envelope.
	page, _ = getPage(t, ts, id, "?limit=1001")
	if page.Limit != MaxPageLimit {
		t.Errorf("limit = %d, want clamped to %d", page.Limit, MaxPageLimit)
	}
	page, _ = getPage(t, ts, id, fmt.Sprintf("?limit=%d", MaxPageLimit))
	if page.Limit != MaxPageLimit || len(page.Turns) != total {
		t.Errorf("at-clamp page = limit %d turns %d", page.Limit, len(page.Turns))
	}
	// A fresh page on a primary carries no staleness stamp.
	if page.Stale || page.Source != "" || page.LagRecords != 0 {
		t.Errorf("primary page stamped stale: %+v", page)
	}
}

// TestReplicaPaginationMidCatchUp reads a paginated transcript from a
// replica that has applied only part of the primary's WAL: the page is
// a consistent committed prefix, stamped stale with the known lag, and
// the stamp clears once shipping catches up.
func TestReplicaPaginationMidCatchUp(t *testing.T) {
	primary, replica, psrv, rsrv := nodePair(t)
	id := createSession(t, primary)
	const asks = 4 // create + 4 turn records on the shard
	for i := 0; i < asks; i++ {
		askOK(t, primary, id, "how many barometer")
	}
	shard := psrv.Store().ShardIndex(id)

	// Ship the create plus two of the four turn pairs.
	shipShardHTTP(t, primary, replica, rsrv, shard, 3)
	page, hdr := getPage(t, replica, id, "?offset=2&limit=2")
	if !page.Stale || page.Source != "n1-replica" || page.LagRecords != 2 {
		t.Fatalf("mid-catch-up page stamp = stale %v source %q lag %d",
			page.Stale, page.Source, page.LagRecords)
	}
	if hdr.Get("X-CDA-Stale") != "true" {
		t.Error("mid-catch-up read missing X-CDA-Stale header")
	}
	// The replica serves the committed prefix: 2 pairs = 4 turns total,
	// and the requested window is inside it.
	if page.Total != 4 || len(page.Turns) != 2 {
		t.Fatalf("mid-catch-up page = total %d turns %d, want 4/2", page.Total, len(page.Turns))
	}
	// A window past the replica's prefix (but inside the primary's
	// transcript) is empty on the replica — stale, not wrong.
	past, _ := getPage(t, replica, id, "?offset=6")
	if len(past.Turns) != 0 || past.Total != 4 || !past.Stale {
		t.Errorf("past-prefix page = total %d turns %d stale %v", past.Total, len(past.Turns), past.Stale)
	}

	// Catch up fully: the stamp clears and pages match the primary's.
	shipShardHTTP(t, primary, replica, rsrv, shard, 0)
	rp, _ := getPage(t, replica, id, "?offset=0&limit=100")
	if rp.Stale || rp.Source != "" || rp.LagRecords != 0 {
		t.Errorf("caught-up page still stamped: %+v", rp)
	}
	pp, _ := getPage(t, primary, id, "?offset=0&limit=100")
	if fmt.Sprintf("%+v", rp) != fmt.Sprintf("%+v", pp) {
		t.Errorf("caught-up replica page diverged:\nprimary: %+v\nreplica: %+v", pp, rp)
	}
}

// TestReplicationEndpointErrors pins the HTTP error mapping of the
// shipping endpoints: bad shard/cursor parameters are 400, a cursor
// ahead of the node is 409, and a gapped apply is 409 carrying the
// replica's actual cursor.
func TestReplicationEndpointErrors(t *testing.T) {
	primary, replica, psrv, rsrv := nodePair(t)
	id := createSession(t, primary)
	askOK(t, primary, id, "how many barometer")
	shard := psrv.Store().ShardIndex(id)

	for _, q := range []string{"/replication/99", "/replication/x", "/replication/0?after=-1", "/replication/0?max=x"} {
		resp, err := http.Get(primary.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(fmt.Sprintf("%s/replication/%d?after=999", primary.URL, shard))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("future-cursor pull status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Pull both records but apply only the second: the replica reports
	// the gap and its cursor (0) so the shipper can restart correctly.
	resp, err = http.Get(fmt.Sprintf("%s/replication/%d?after=0&max=0", primary.URL, shard))
	if err != nil {
		t.Fatal(err)
	}
	batch := decode[sessionstore.ShipBatch](t, resp)
	if len(batch.Frames) != 2 {
		t.Fatalf("pulled %d frames, want 2", len(batch.Frames))
	}
	batch.Frames = batch.Frames[1:]
	resp = postJSON(t, replica.URL+"/replication/apply", batch)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gapped apply status = %d, want 409", resp.StatusCode)
	}
	body := decode[map[string]any](t, resp)
	if cur, ok := body["cursor"].(float64); !ok || cur != 0 {
		t.Errorf("gap response cursor = %v, want 0", body["cursor"])
	}
	_ = rsrv
}
