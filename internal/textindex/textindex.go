// Package textindex implements lexical document retrieval for the CDA
// computational infrastructure: a tokenizer, an inverted index with
// per-term postings, and BM25 ranking. The catalog layer uses it to
// find datasets by description, and the grounding layer uses its
// tokenizer for vocabulary matching.
package textindex

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"

	"github.com/reliable-cda/cda/internal/parallel"
)

// Tokenize lower-cases and splits text into alphanumeric word tokens.
// Punctuation separates tokens; digits stay inside tokens ("q3" is one
// token).
func Tokenize(text string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Stopwords used during indexing (kept deliberately small; domain
// terms must never be dropped).
var Stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true,
	"at": true, "be": true, "by": true, "for": true, "from": true,
	"in": true, "is": true, "it": true, "of": true, "on": true,
	"or": true, "that": true, "the": true, "to": true, "with": true,
	"me": true, "please": true, "give": true, "i": true, "am": true,
	"what": true, "which": true, "about": true, "can": true, "you": true,
	"such": true, "etc": true,
}

// TokenizeContent tokenizes and removes stopwords.
func TokenizeContent(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if !Stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Document is an indexed text with external identity.
type Document struct {
	ID   string
	Text string
}

// Hit is one ranked retrieval result.
type Hit struct {
	ID    string
	Score float64
}

// BM25 parameters; the standard defaults.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

type posting struct {
	doc  int
	freq int
}

// FaultHook is the chaos-injection seam (see internal/faults): when
// non-nil it is consulted by TrySearch and may return an injected
// transient error or add latency. Production deployments leave it
// nil. It must be set before the index serves concurrent searches.
type FaultHook interface {
	Inject(op string) error
}

// Index is a BM25 inverted index. Add documents, then Search. Safe
// for concurrent searches after building; Add must not race Search.
type Index struct {
	mu        sync.RWMutex
	docs      []Document
	docLen    []int
	postings  map[string][]posting
	totalLen  int
	dirtyBM25 bool
	// Faults, when non-nil, injects deterministic chaos faults into
	// TrySearch. Set once at wiring time, before concurrent use.
	Faults FaultHook
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{postings: map[string][]posting{}}
}

// Add indexes one document. Duplicate IDs are allowed and are treated
// as distinct documents (caller deduplicates if needed).
func (ix *Index) Add(doc Document) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	toks := TokenizeContent(doc.Text)
	id := len(ix.docs)
	ix.docs = append(ix.docs, doc)
	ix.docLen = append(ix.docLen, len(toks))
	ix.totalLen += len(toks)
	freqs := make(map[string]int, len(toks))
	for _, t := range toks {
		freqs[t]++
	}
	for t, f := range freqs {
		ix.postings[t] = append(ix.postings[t], posting{doc: id, freq: f})
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Doc returns the i-th document added.
func (ix *Index) Doc(i int) Document {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs[i]
}

// Search ranks documents against the query by BM25 and returns the
// top k hits (fewer if fewer match). Scores are strictly positive;
// documents sharing no query term are omitted.
func (ix *Index) Search(query string, k int) []Hit {
	return ix.search(query, k, parallel.Options{Workers: 1})
}

// TrySearch is Search through the fault-injection seam: with no hook
// wired (or no fault drawn) it returns exactly Search's hits; under
// an injected fault it returns the injected error. Resilience-aware
// callers (the core degradation ladder) use this entry point.
func (ix *Index) TrySearch(query string, k int) ([]Hit, error) {
	if ix.Faults != nil {
		if err := ix.Faults.Inject("textindex.search"); err != nil {
			return nil, err
		}
	}
	return ix.Search(query, k), nil
}

// SearchParallel is Search with the scoring fanned out over `workers`
// goroutines (0 = GOMAXPROCS). The document-ID space is chunked so
// every document's score is accumulated by exactly one worker, in
// query-term order — the same floating-point addition order as the
// serial scan — making the hits bit-identical to Search for any
// worker count. Corpora below the serial threshold are scored inline.
func (ix *Index) SearchParallel(query string, k, workers int) []Hit {
	return ix.search(query, k, parallel.Options{Workers: workers})
}

func (ix *Index) search(query string, k int, o parallel.Options) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docs) == 0 || k <= 0 {
		return nil
	}
	qToks := TokenizeContent(query)
	if len(qToks) == 0 {
		return nil
	}
	n := float64(len(ix.docs))
	avgLen := float64(ix.totalLen) / n
	if avgLen == 0 {
		avgLen = 1
	}
	// Resolve each distinct query term once, in query order.
	type termScore struct {
		idf   float64
		plist []posting
	}
	var terms []termScore
	seen := make(map[string]bool)
	for _, term := range qToks {
		if seen[term] {
			continue
		}
		seen[term] = true
		plist := ix.postings[term]
		if len(plist) == 0 {
			continue
		}
		terms = append(terms, termScore{
			idf:   math.Log(1 + (n-float64(len(plist))+0.5)/(float64(len(plist))+0.5)),
			plist: plist,
		})
	}
	// Chunk the document-ID space: postings are sorted by doc (Add
	// assigns increasing ids), so each worker scores the slice of
	// every posting list that falls inside its range.
	partials, err := parallel.MapChunks(len(ix.docs), o, func(lo, hi int) (map[int]float64, error) {
		local := make(map[int]float64)
		for _, ts := range terms {
			plist := ts.plist
			from := sort.Search(len(plist), func(i int) bool { return plist[i].doc >= lo })
			to := sort.Search(len(plist), func(i int) bool { return plist[i].doc >= hi })
			for _, p := range plist[from:to] {
				tf := float64(p.freq)
				dl := float64(ix.docLen[p.doc])
				local[p.doc] += ts.idf * tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
			}
		}
		return local, nil
	})
	if err != nil {
		return nil // unreachable: the scorer never fails
	}
	size := 0
	for _, part := range partials {
		size += len(part)
	}
	hits := make([]Hit, 0, size)
	for _, part := range partials {
		for doc, s := range part {
			hits = append(hits, Hit{ID: ix.docs[doc].ID, Score: s})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// TermFrequency returns how many indexed documents contain the term
// (document frequency), used by grounding to weigh vocabulary matches.
func (ix *Index) TermFrequency(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[strings.ToLower(term)])
}

// Vocabulary returns all indexed terms in sorted order.
func (ix *Index) Vocabulary() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
