package textindex

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"Q3 2024 results", []string{"q3", "2024", "results"}},
		{"", nil},
		{"---", nil},
		{"Zürich's labour-market", []string{"zürich", "s", "labour", "market"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestTokenizeContentDropsStopwords(t *testing.T) {
	got := TokenizeContent("the labour market of Switzerland")
	want := []string{"labour", "market", "switzerland"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q", i, got[i])
		}
	}
}

func buildIndex() *Index {
	ix := NewIndex()
	ix.Add(Document{ID: "d1", Text: "Swiss labour market barometer monthly survey"})
	ix.Add(Document{ID: "d2", Text: "employment type distribution for employees older than 15"})
	ix.Add(Document{ID: "d3", Text: "chocolate production statistics Switzerland"})
	ix.Add(Document{ID: "d4", Text: "labour force participation and unemployment"})
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := buildIndex()
	hits := ix.Search("labour market barometer", 10)
	if len(hits) == 0 || hits[0].ID != "d1" {
		t.Fatalf("hits = %v", hits)
	}
	// d4 matches "labour" only and must rank below d1.
	foundD4 := false
	for _, h := range hits {
		if h.ID == "d4" {
			foundD4 = true
			if h.Score >= hits[0].Score {
				t.Error("partial match outranked full match")
			}
		}
	}
	if !foundD4 {
		t.Error("d4 missing from results")
	}
	// d3 shares no terms.
	for _, h := range hits {
		if h.ID == "d3" {
			t.Error("unrelated doc retrieved")
		}
	}
}

func TestSearchTopK(t *testing.T) {
	ix := buildIndex()
	hits := ix.Search("labour", 1)
	if len(hits) != 1 {
		t.Errorf("k=1 hits = %v", hits)
	}
	if got := ix.Search("labour", 0); got != nil {
		t.Errorf("k=0 hits = %v", got)
	}
	if got := ix.Search("", 5); got != nil {
		t.Errorf("empty query hits = %v", got)
	}
	if got := ix.Search("zzzz", 5); len(got) != 0 {
		t.Errorf("no-match hits = %v", got)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex()
	if got := ix.Search("anything", 5); got != nil {
		t.Errorf("empty index hits = %v", got)
	}
	if ix.Len() != 0 {
		t.Error("len != 0")
	}
}

func TestTermFrequency(t *testing.T) {
	ix := buildIndex()
	if got := ix.TermFrequency("labour"); got != 2 {
		t.Errorf("df(labour) = %d", got)
	}
	if got := ix.TermFrequency("LABOUR"); got != 2 {
		t.Errorf("df is not case-insensitive: %d", got)
	}
	if got := ix.TermFrequency("missing"); got != 0 {
		t.Errorf("df(missing) = %d", got)
	}
}

func TestVocabulary(t *testing.T) {
	ix := NewIndex()
	ix.Add(Document{ID: "a", Text: "beta alpha"})
	voc := ix.Vocabulary()
	if len(voc) != 2 || voc[0] != "alpha" || voc[1] != "beta" {
		t.Errorf("vocabulary = %v", voc)
	}
}

func TestDocAccessor(t *testing.T) {
	ix := buildIndex()
	if d := ix.Doc(0); d.ID != "d1" {
		t.Errorf("Doc(0) = %v", d)
	}
}

func TestRepeatedTermBoost(t *testing.T) {
	ix := NewIndex()
	ix.Add(Document{ID: "once", Text: "barometer data xylophone"})
	ix.Add(Document{ID: "twice", Text: "barometer barometer data xylophone"})
	hits := ix.Search("barometer", 2)
	if len(hits) != 2 || hits[0].ID != "twice" {
		t.Errorf("tf ranking = %v", hits)
	}
}

// Property: searching for a document's own full text always retrieves
// it (as long as it has at least one content token).
func TestSelfRetrievalProperty(t *testing.T) {
	ix := NewIndex()
	texts := []string{
		"unemployment statistics bern",
		"seasonal trend decomposition",
		"knowledge graph entity linking",
		"vector similarity progressive search",
	}
	for i, txt := range texts {
		ix.Add(Document{ID: fmt.Sprintf("doc%d", i), Text: txt})
	}
	f := func(pick uint8) bool {
		i := int(pick) % len(texts)
		hits := ix.Search(texts[i], len(texts))
		for _, h := range hits {
			if h.ID == fmt.Sprintf("doc%d", i) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BM25 scores are positive and finite.
func TestScoreSanityProperty(t *testing.T) {
	ix := buildIndex()
	f := func(q string) bool {
		for _, h := range ix.Search(q, 10) {
			if !(h.Score > 0) || h.Score != h.Score /* NaN */ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
