package textindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

var parVocab = []string{
	"revenue", "employment", "city", "district", "quarter", "growth",
	"budget", "census", "traffic", "hospital", "school", "energy",
	"climate", "housing", "salary", "population", "tax", "transport",
	"tourism", "water",
}

// genCorpus indexes n synthetic documents drawn from a small
// vocabulary so query terms hit many documents with varied tf/dl.
func genCorpus(n int, seed int64) *Index {
	rng := rand.New(rand.NewSource(seed))
	ix := NewIndex()
	for i := 0; i < n; i++ {
		words := make([]string, 0, 30)
		for w := 0; w < 5+rng.Intn(25); w++ {
			words = append(words, parVocab[rng.Intn(len(parVocab))])
		}
		text := ""
		for _, w := range words {
			text += w + " "
		}
		ix.Add(Document{ID: fmt.Sprintf("doc-%d", i), Text: text})
	}
	return ix
}

// TestSearchParallelMatchesSerial is the BM25 determinism property:
// chunked scoring must reproduce the serial hit list bit-for-bit —
// same IDs, same float64 scores, same order — for any worker count.
func TestSearchParallelMatchesSerial(t *testing.T) {
	queries := []string{
		"revenue growth by quarter",
		"city hospital budget",
		"population census district",
		"energy climate water transport",
		"salary", // single term
		"nonexistent-term revenue",
	}
	for _, seed := range []int64{1, 2, 3} {
		ix := genCorpus(3000, seed)
		for _, q := range queries {
			want := ix.Search(q, 25)
			for _, workers := range []int{2, 4, 8} {
				got := ix.SearchParallel(q, 25, workers)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d workers=%d %q: parallel hits diverge\n got %v\nwant %v",
						seed, workers, q, got, want)
				}
			}
		}
	}
}

// TestSearchParallelEdgeCases: empty index, empty query, stopword-only
// query, and k<=0 behave exactly like Search.
func TestSearchParallelEdgeCases(t *testing.T) {
	empty := NewIndex()
	if got := empty.SearchParallel("revenue", 5, 4); got != nil {
		t.Fatalf("empty index: got %v, want nil", got)
	}
	ix := genCorpus(1200, 4)
	if got := ix.SearchParallel("", 5, 4); got != nil {
		t.Fatalf("empty query: got %v, want nil", got)
	}
	if got := ix.SearchParallel("the a of", 5, 4); got != nil {
		t.Fatalf("stopword query: got %v, want nil", got)
	}
	if got := ix.SearchParallel("revenue", 0, 4); got != nil {
		t.Fatalf("k=0: got %v, want nil", got)
	}
}
