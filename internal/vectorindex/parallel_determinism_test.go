package vectorindex

import (
	"math/rand"
	"testing"
)

// genVecs produces a deterministic random dataset plus queries.
func genVecs(n, dim, queries int, seed int64) ([]Vector, []Vector) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]Vector, n)
	for i := range data {
		v := make(Vector, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		data[i] = v
	}
	qs := make([]Vector, queries)
	for i := range qs {
		v := make(Vector, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		qs[i] = v
	}
	return data, qs
}

func sameNeighbors(t *testing.T, label string, want, got []Neighbor) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: neighbor %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestIVFParallelProbeMatchesSerial is the determinism property test
// the parallel probe must pass: for randomized workloads, the
// parallel probe returns exactly the serial probe's neighbors at the
// same nprobe.
func TestIVFParallelProbeMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		data, queries := genVecs(3000, 16, 40, seed)
		params := IVFParams{Lists: 32, Probe: 8, KMeansIts: 5, Seed: seed}
		serialIdx, err := NewIVF(data, params)
		if err != nil {
			t.Fatal(err)
		}
		serialIdx.par.Workers = 1 // force the serial probe
		for _, workers := range []int{2, 4, 8} {
			params.Workers = workers
			parIdx, err := NewIVF(data, params)
			if err != nil {
				t.Fatal(err)
			}
			parIdx.par.SerialThreshold = 1 // force the parallel probe on this small fixture
			for qi, q := range queries {
				want, err := serialIdx.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				got, err := parIdx.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				sameNeighbors(t, "seed/workers/query", want, got)
				_ = qi
			}
		}
	}
}

// TestIVFParallelProbeCountsDistances verifies the parallel probe's
// effort accounting matches the serial probe's: identical total
// distance computations for the same query stream.
func TestIVFParallelProbeCountsDistances(t *testing.T) {
	data, queries := genVecs(2000, 8, 20, 7)
	params := IVFParams{Lists: 16, Probe: 6, KMeansIts: 5, Seed: 7}
	serialIdx, err := NewIVF(data, params)
	if err != nil {
		t.Fatal(err)
	}
	serialIdx.par.Workers = 1
	params.Workers = 4
	parIdx, err := NewIVF(data, params)
	if err != nil {
		t.Fatal(err)
	}
	parIdx.par.SerialThreshold = 1
	for _, q := range queries {
		if _, err := serialIdx.Search(q, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := parIdx.Search(q, 5); err != nil {
			t.Fatal(err)
		}
	}
	if s, p := serialIdx.DistComps(), parIdx.DistComps(); s != p {
		t.Fatalf("parallel probe counted %d distance comps, serial %d", p, s)
	}
}

// TestTopKCanonicalUnderTies: with duplicated vectors (exact distance
// ties) the kept top-k must not depend on scan order, or parallel
// merges would diverge from serial scans.
func TestTopKCanonicalUnderTies(t *testing.T) {
	base, _ := genVecs(50, 8, 0, 11)
	// Every vector appears 4 times → every distance ties 4 ways.
	var data []Vector
	for r := 0; r < 4; r++ {
		data = append(data, base...)
	}
	q := make(Vector, 8)
	exact := NewExact(data)
	want, err := exact.Search(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		p := NewParallelExact(data, workers)
		got, err := p.Search(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "ties", want, got)
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	data, queries := genVecs(1500, 12, 30, 5)
	indexes := map[string]Index{
		"exact": NewExact(data),
	}
	lsh, err := NewLSH(data, LSHParams{Tables: 6, Hashes: 4, Width: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	indexes["lsh"] = lsh
	ivf, err := NewIVF(data, IVFParams{Lists: 16, Probe: 4, KMeansIts: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	indexes["ivf"] = ivf
	for name, ix := range indexes {
		want := make([][]Neighbor, len(queries))
		for i, q := range queries {
			nn, err := ix.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = nn
		}
		for _, workers := range []int{1, 4} {
			got, err := SearchBatch(ix, queries, 5, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				sameNeighbors(t, name, want[i], got[i])
			}
		}
	}
}

func TestSearchBatchPropagatesError(t *testing.T) {
	data, _ := genVecs(100, 8, 0, 1)
	ix := NewExact(data)
	bad := []Vector{make(Vector, 8), make(Vector, 3)} // second has wrong dim
	if _, err := SearchBatch(ix, bad, 5, 4); err != ErrDimension {
		t.Fatalf("got %v, want ErrDimension", err)
	}
}
