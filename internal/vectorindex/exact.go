package vectorindex

import "sort"

// Exact is the brute-force scan baseline: always correct, O(n·d) per
// query. It anchors recall measurements for every other index.
type Exact struct {
	distCounter
	data []Vector
	dim  int
	// Faults, when non-nil, injects deterministic chaos faults into
	// searches.
	Faults FaultHook
}

// NewExact indexes the given vectors; IDs are their positions.
func NewExact(data []Vector) *Exact {
	e := &Exact{data: data}
	if len(data) > 0 {
		e.dim = len(data[0])
	}
	return e
}

// Len returns the number of indexed vectors.
func (e *Exact) Len() int { return len(e.data) }

// Search scans every vector.
func (e *Exact) Search(q Vector, k int) ([]Neighbor, error) {
	if e.Faults != nil {
		if err := e.Faults.Inject("vectorindex.search"); err != nil {
			return nil, err
		}
	}
	if len(e.data) == 0 {
		return nil, ErrEmpty
	}
	if len(q) != e.dim {
		return nil, ErrDimension
	}
	if k <= 0 {
		return nil, nil
	}
	heap := newTopK(k)
	for id, v := range e.data {
		heap.push(Neighbor{ID: id, Dist: SquaredL2(q, v)})
	}
	e.add(int64(len(e.data)))
	return heap.sorted(), nil
}

// SearchRange returns every vector within squared distance r of q, in
// ascending distance order. Supports the paper's requirement that a
// retrieval method "return an empty set when no answer exists with a
// given expected relevance".
func (e *Exact) SearchRange(q Vector, r float64) ([]Neighbor, error) {
	if len(e.data) == 0 {
		return nil, ErrEmpty
	}
	if len(q) != e.dim {
		return nil, ErrDimension
	}
	var out []Neighbor
	for id, v := range e.data {
		if d := SquaredL2(q, v); d <= r {
			out = append(out, Neighbor{ID: id, Dist: d})
		}
	}
	e.add(int64(len(e.data)))
	sortNeighbors(out)
	return out, nil
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}
