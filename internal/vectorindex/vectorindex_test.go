package vectorindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomData draws n d-dimensional vectors from a mixture of c
// Gaussian clusters, the workload shape E2 uses.
func randomData(n, d, c int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Vector, c)
	for i := range centers {
		centers[i] = make(Vector, d)
		for j := range centers[i] {
			centers[i][j] = float32(rng.NormFloat64() * 5)
		}
	}
	data := make([]Vector, n)
	for i := range data {
		ctr := centers[rng.Intn(c)]
		v := make(Vector, d)
		for j := range v {
			v[j] = ctr[j] + float32(rng.NormFloat64())
		}
		data[i] = v
	}
	return data
}

func TestDistances(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 1, 0}
	if got := SquaredL2(a, b); got != 2 {
		t.Errorf("SquaredL2 = %v", got)
	}
	if got := Cosine(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine orthogonal = %v", got)
	}
	if got := Cosine(a, a); math.Abs(got) > 1e-9 {
		t.Errorf("Cosine identical = %v", got)
	}
	if got := Cosine(a, Vector{0, 0, 0}); got != 2 {
		t.Errorf("Cosine zero vector = %v", got)
	}
}

func TestTopKHeap(t *testing.T) {
	h := newTopK(3)
	for _, d := range []float64{5, 1, 4, 2, 3} {
		h.push(Neighbor{ID: int(d), Dist: d})
	}
	got := h.sorted()
	if len(got) != 3 || got[0].Dist != 1 || got[1].Dist != 2 || got[2].Dist != 3 {
		t.Errorf("topk = %v", got)
	}
	if h.worst() != 3 {
		t.Errorf("worst = %v", h.worst())
	}
}

func TestTopKUnderfull(t *testing.T) {
	h := newTopK(5)
	h.push(Neighbor{ID: 1, Dist: 9})
	if !math.IsInf(h.worst(), 1) {
		t.Error("underfull heap must report +Inf worst")
	}
	if len(h.sorted()) != 1 {
		t.Error("underfull sorted length")
	}
}

func TestExactSearch(t *testing.T) {
	data := []Vector{{0, 0}, {1, 0}, {3, 0}, {10, 0}}
	idx := NewExact(data)
	got, err := idx.Search(Vector{0.9, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 1 || got[1].ID != 0 {
		t.Errorf("neighbors = %v", got)
	}
	if idx.DistComps() != 4 {
		t.Errorf("distcomps = %d", idx.DistComps())
	}
}

func TestExactErrors(t *testing.T) {
	idx := NewExact(nil)
	if _, err := idx.Search(Vector{1}, 1); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	idx = NewExact([]Vector{{1, 2}})
	if _, err := idx.Search(Vector{1}, 1); err != ErrDimension {
		t.Errorf("want ErrDimension, got %v", err)
	}
	got, err := idx.Search(Vector{1, 2}, 0)
	if err != nil || got != nil {
		t.Error("k=0 must return empty")
	}
}

func TestExactRange(t *testing.T) {
	data := []Vector{{0}, {1}, {2}, {5}}
	idx := NewExact(data)
	got, err := idx.SearchRange(Vector{0}, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 0 || got[2].ID != 2 {
		t.Errorf("range = %v", got)
	}
	got, _ = idx.SearchRange(Vector{100}, 1)
	if len(got) != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func TestLSHRecallAndSpeed(t *testing.T) {
	all := randomData(2050, 16, 8, 42)
	data, queries := all[:2000], all[2000:]
	exact := NewExact(data)
	lsh, err := NewLSH(data, LSHParams{Tables: 10, Hashes: 4, Width: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var recall float64
	for _, q := range queries {
		ex, _ := exact.Search(q, 10)
		ap, err := lsh.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		recall += Recall(ex, ap)
	}
	recall /= float64(len(queries))
	if recall < 0.5 {
		t.Errorf("LSH recall = %v, too low for clustered data", recall)
	}
	// LSH must do far fewer distance computations than exact.
	if lsh.DistComps() >= exact.DistComps() {
		t.Errorf("LSH comps %d >= exact %d", lsh.DistComps(), exact.DistComps())
	}
}

func TestLSHParamValidation(t *testing.T) {
	if _, err := NewLSH(nil, LSHParams{}); err == nil {
		t.Error("zero params must error")
	}
}

func TestLSHEmptyAndDim(t *testing.T) {
	lsh, _ := NewLSH(nil, DefaultLSHParams())
	if _, err := lsh.Search(Vector{1}, 1); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	lsh, _ = NewLSH([]Vector{{1, 2}}, DefaultLSHParams())
	if _, err := lsh.Search(Vector{1}, 1); err != ErrDimension {
		t.Errorf("want ErrDimension, got %v", err)
	}
}

func TestIVFRecall(t *testing.T) {
	all := randomData(2050, 16, 8, 42)
	data, queries := all[:2000], all[2000:]
	exact := NewExact(data)
	ivf, err := NewIVF(data, IVFParams{Lists: 32, Probe: 8, KMeansIts: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var recall float64
	for _, q := range queries {
		ex, _ := exact.Search(q, 10)
		ap, err := ivf.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		recall += Recall(ex, ap)
	}
	recall /= float64(len(queries))
	if recall < 0.7 {
		t.Errorf("IVF recall = %v", recall)
	}
	if ivf.DistComps() >= exact.DistComps() {
		t.Errorf("IVF comps %d >= exact %d", ivf.DistComps(), exact.DistComps())
	}
}

func TestIVFMoreListsThanPoints(t *testing.T) {
	data := randomData(5, 4, 1, 1)
	ivf, err := NewIVF(data, IVFParams{Lists: 50, Probe: 50, KMeansIts: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ivf.Search(data[0], 3)
	if err != nil || len(got) != 3 {
		t.Errorf("search = %v, %v", got, err)
	}
	if got[0].ID != 0 || got[0].Dist != 0 {
		t.Errorf("self not first: %v", got)
	}
}

func TestProgressiveExactMode(t *testing.T) {
	all := randomData(1030, 8, 4, 3)
	data, queries := all[:1000], all[1000:]
	exact := NewExact(data)
	prog, err := NewProgressive(data, ProgressiveParams{Delta: 1.0, Lists: 16, KMeansIts: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ex, _ := exact.Search(q, 5)
		res, err := prog.SearchProgressive(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r := Recall(ex, res.Neighbors); r != 1 {
			t.Fatalf("delta=1 recall = %v (must be exact)", r)
		}
		if res.Promise != 1 {
			t.Errorf("delta=1 promise = %v", res.Promise)
		}
	}
	// Pruning must save at least some work versus brute force.
	if prog.DistComps() >= exact.DistComps() {
		t.Errorf("progressive comps %d >= exact %d", prog.DistComps(), exact.DistComps())
	}
}

func TestProgressiveProbabilisticGuarantee(t *testing.T) {
	all := randomData(3100, 16, 8, 11)
	data, queries := all[:3000], all[3000:]
	exact := NewExact(data)
	delta := 0.9
	prog, err := NewProgressive(data, ProgressiveParams{Delta: delta, Lists: 48, KMeansIts: 8, BatchSize: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sumRecall float64
	for _, q := range queries {
		ex, _ := exact.Search(q, 10)
		res, err := prog.SearchProgressive(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Promise < delta {
			t.Fatalf("promise %v below delta %v", res.Promise, delta)
		}
		sumRecall += Recall(ex, res.Neighbors)
	}
	avgRecall := sumRecall / float64(len(queries))
	// The empirical recall must meet the promise (small slack for the
	// estimator's randomness).
	if avgRecall < delta-0.05 {
		t.Errorf("avg recall %v < promised %v", avgRecall, delta)
	}
	if prog.DistComps() >= exact.DistComps() {
		t.Errorf("progressive comps %d >= exact %d", prog.DistComps(), exact.DistComps())
	}
}

func TestProgressiveBound(t *testing.T) {
	data := []Vector{{0, 0}, {1, 0}, {2, 0}}
	prog, err := NewProgressive(data, ProgressiveParams{Delta: 1, Lists: 1, KMeansIts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.SearchWithBound(Vector{100, 0}, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 0 {
		t.Errorf("far query must return empty under bound, got %v", res.Neighbors)
	}
	res, _ = prog.SearchWithBound(Vector{0, 0}, 2, 1.5)
	if len(res.Neighbors) != 2 {
		t.Errorf("bounded neighbors = %v", res.Neighbors)
	}
}

func TestProgressiveValidation(t *testing.T) {
	if _, err := NewProgressive(nil, ProgressiveParams{Delta: 0}); err == nil {
		t.Error("delta 0 must error")
	}
	prog, err := NewProgressive(nil, ProgressiveParams{Delta: 0.5, Lists: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.SearchProgressive(Vector{1}, 1); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestRecallHelper(t *testing.T) {
	ex := []Neighbor{{ID: 1}, {ID: 2}}
	ap := []Neighbor{{ID: 2}, {ID: 3}}
	if got := Recall(ex, ap); got != 0.5 {
		t.Errorf("recall = %v", got)
	}
	if got := Recall(nil, ap); got != 1 {
		t.Errorf("empty exact recall = %v", got)
	}
}

// Property: exact search self-query always returns the query point
// first with distance 0.
func TestExactSelfQueryProperty(t *testing.T) {
	data := randomData(200, 8, 4, 21)
	idx := NewExact(data)
	f := func(raw uint16) bool {
		i := int(raw) % len(data)
		got, err := idx.Search(data[i], 1)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].Dist == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: exact top-k is a prefix of exact top-(k+1).
func TestExactPrefixProperty(t *testing.T) {
	data := randomData(300, 8, 4, 31)
	idx := NewExact(data)
	q := Vector{0, 0, 0, 0, 0, 0, 0, 0}
	prev, err := idx.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 20; k++ {
		cur, err := idx.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prev {
			if cur[i].ID != prev[i].ID {
				t.Fatalf("top-%d not a prefix of top-%d", k-1, k)
			}
		}
		prev = cur
	}
}

// Property: triangle-inequality pruning in Progressive never loses a
// true neighbor when Delta = 1, on adversarially tight clusters.
func TestProgressivePruneSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		data := randomData(300, 4, 3, seed)
		exact := NewExact(data)
		prog, err := NewProgressive(data, ProgressiveParams{Delta: 1, Lists: 8, KMeansIts: 5, Seed: seed + 1})
		if err != nil {
			return false
		}
		q := data[0]
		ex, _ := exact.Search(q, 5)
		res, err := prog.SearchProgressive(q, 5)
		if err != nil {
			return false
		}
		return Recall(ex, res.Neighbors) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestProgressiveIndexInterface(t *testing.T) {
	data := randomData(300, 8, 4, 2)
	prog, err := NewProgressive(data, DefaultProgressiveParams(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 300 {
		t.Errorf("len = %d", prog.Len())
	}
	var idx Index = prog // satisfies Index
	nn, err := idx.Search(data[0], 5)
	if err != nil || len(nn) != 5 || nn[0].Dist != 0 {
		t.Errorf("search = %v, %v", nn, err)
	}
	// k <= 0 short-circuits.
	res, err := prog.SearchProgressive(data[0], 0)
	if err != nil || len(res.Neighbors) != 0 || res.Promise != 1 {
		t.Errorf("k=0 result = %+v, %v", res, err)
	}
	if _, err := prog.SearchProgressive(Vector{1}, 3); err != ErrDimension {
		t.Errorf("dim err = %v", err)
	}
}

func TestLSHCandidateCount(t *testing.T) {
	data := randomData(500, 8, 2, 3)
	lsh, err := NewLSH(data, LSHParams{Tables: 6, Hashes: 3, Width: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := lsh.CandidateCount(data[0]); got <= 0 || got > 500 {
		t.Errorf("candidate count = %d", got)
	}
	if got := lsh.CandidateCount(Vector{1}); got != 0 {
		t.Errorf("wrong-dim candidate count = %d", got)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultIVFParams(10000)
	if p.Lists != 100 || p.Probe < 1 {
		t.Errorf("ivf params = %+v", p)
	}
	if tiny := DefaultIVFParams(0); tiny.Lists < 1 {
		t.Errorf("tiny ivf params = %+v", tiny)
	}
	pp := DefaultProgressiveParams(10000)
	if pp.Delta != 0.9 || pp.Lists != 100 {
		t.Errorf("progressive params = %+v", pp)
	}
	lp := DefaultLSHParams()
	if lp.Tables < 1 || lp.Width <= 0 {
		t.Errorf("lsh params = %+v", lp)
	}
}

func TestParallelExactMatchesSerial(t *testing.T) {
	all := randomData(2020, 16, 8, 13)
	data, queries := all[:2000], all[2000:]
	serial := NewExact(data)
	parallel := NewParallelExact(data, 4)
	if parallel.Len() != 2000 {
		t.Errorf("len = %d", parallel.Len())
	}
	for _, q := range queries {
		a, err := serial.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
				t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestParallelExactEdgeCases(t *testing.T) {
	p := NewParallelExact(nil, 0)
	if _, err := p.Search(Vector{1}, 1); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	p = NewParallelExact([]Vector{{1, 2}}, 8) // more workers than points
	got, err := p.Search(Vector{1, 2}, 3)
	if err != nil || len(got) != 1 || got[0].Dist != 0 {
		t.Errorf("tiny search = %v, %v", got, err)
	}
	if _, err := p.Search(Vector{1}, 1); err != ErrDimension {
		t.Errorf("dim err = %v", err)
	}
	if got, _ := p.Search(Vector{1, 2}, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
}
