package vectorindex

import (
	"fmt"
	"math"
)

// ProgressiveParams configures the progressive (early-terminating)
// search. Delta is the target probability that the reported top-k is
// the true top-k; Delta >= 1 degenerates to an exactly-guaranteed
// search that only prunes with the triangle-inequality lower bound.
type ProgressiveParams struct {
	Delta     float64 // target correctness probability in (0,1]
	Lists     int     // coarse clusters (as IVF)
	KMeansIts int
	BatchSize int // stopping rule evaluated every BatchSize points
	Seed      int64
}

// DefaultProgressiveParams mirrors DefaultIVFParams with δ=0.9.
func DefaultProgressiveParams(n int) ProgressiveParams {
	p := DefaultIVFParams(n)
	return ProgressiveParams{Delta: 0.9, Lists: p.Lists, KMeansIts: p.KMeansIts, BatchSize: 64, Seed: p.Seed}
}

// Progressive implements ProS-style progressive k-NN with a
// probabilistic quality guarantee — the paper's P1 desideratum of
// similarity search that is fast AND bounds its answer quality, and
// that can decline to answer when nothing meets a relevance bound.
//
// Candidates are visited in ascending centroid-distance order. Two
// mechanisms terminate the scan early:
//
//  1. Exact pruning: a list whose triangle-inequality lower bound
//     max(0, ‖q−c‖ − r_c)² exceeds the current kth distance cannot
//     improve the answer and is skipped. This alone never loses
//     recall.
//  2. Probabilistic stopping: once the heap is full, the rate of
//     improvements among recently visited candidates estimates the
//     per-candidate improvement probability p̂ (with add-one
//     smoothing). When (1−p̂)^m ≥ δ for the m candidates still
//     reachable, the scan stops and reports the achieved promise.
//
// Because candidates are visited nearest-list-first, p̂ over-estimates
// the improvement probability of the farther remainder, making the
// promise conservative; E2 verifies empirically that observed recall
// meets the promised δ.
type Progressive struct {
	distCounter
	params ProgressiveParams
	ivf    *IVF
	radii  []float64 // per-list max member distance to centroid (L2, not squared)
}

// ProgressiveResult reports the neighbors plus the search's quality
// and effort accounting.
type ProgressiveResult struct {
	Neighbors []Neighbor
	// Promise is the probability the reported set is the true top-k,
	// as estimated at termination (≥ Delta unless the scan completed,
	// in which case it is exactly 1).
	Promise float64
	// Visited is the number of candidate distance computations.
	Visited int
	// PrunedLists counts lists skipped by the exact lower bound.
	PrunedLists int
	// Exhausted reports that every non-pruned candidate was visited
	// (the answer is exact regardless of Delta).
	Exhausted bool
}

// NewProgressive builds the index (k-means training as IVF, plus
// per-list radii for the exact lower bound).
func NewProgressive(data []Vector, params ProgressiveParams) (*Progressive, error) {
	if params.Delta <= 0 {
		return nil, fmt.Errorf("vectorindex: Delta must be in (0,1], got %v", params.Delta)
	}
	if params.BatchSize <= 0 {
		params.BatchSize = 64
	}
	ivf, err := NewIVF(data, IVFParams{Lists: params.Lists, Probe: 1, KMeansIts: params.KMeansIts, Seed: params.Seed})
	if err != nil {
		return nil, err
	}
	p := &Progressive{params: params, ivf: ivf}
	p.radii = make([]float64, len(ivf.lists))
	for c, list := range ivf.lists {
		var r float64
		for _, id := range list {
			if d := math.Sqrt(SquaredL2(data[id], ivf.centroids[c])); d > r {
				r = d
			}
		}
		p.radii[c] = r
	}
	return p, nil
}

// Len returns the number of indexed vectors.
func (p *Progressive) Len() int { return p.ivf.Len() }

// Search satisfies Index; it discards the quality report.
func (p *Progressive) Search(q Vector, k int) ([]Neighbor, error) {
	res, err := p.SearchProgressive(q, k)
	if err != nil {
		return nil, err
	}
	return res.Neighbors, nil
}

// SearchProgressive runs the early-terminating scan.
func (p *Progressive) SearchProgressive(q Vector, k int) (*ProgressiveResult, error) {
	if p.ivf.Len() == 0 {
		return nil, ErrEmpty
	}
	if len(q) != p.ivf.dim {
		return nil, ErrDimension
	}
	if k <= 0 {
		return &ProgressiveResult{Promise: 1, Exhausted: true}, nil
	}
	order := p.ivf.orderedLists(q)
	p.add(int64(len(p.ivf.centroids)))

	// Candidates remaining in non-pruned, unvisited territory.
	remaining := 0
	for _, c := range order {
		remaining += len(p.ivf.lists[c])
	}

	heap := newTopK(k)
	res := &ProgressiveResult{}
	visitedSinceFull, improvesSinceFull := 0, 0
	var comps int64

	for _, c := range order {
		list := p.ivf.lists[c]
		dq := math.Sqrt(SquaredL2(q, p.ivf.centroids[c]))
		comps++
		lb := dq - p.radii[c]
		if lb > 0 && lb*lb > heap.worst() {
			// Exact prune: nothing in this list can improve the heap.
			res.PrunedLists++
			remaining -= len(list)
			continue
		}
		for i, id := range list {
			d := SquaredL2(q, p.ivf.data[id])
			comps++
			res.Visited++
			remaining--
			full := len(heap.items) >= k
			if full {
				visitedSinceFull++
			}
			if d < heap.worst() {
				if full {
					improvesSinceFull++
				}
				heap.push(Neighbor{ID: id, Dist: d})
			} else if !full {
				heap.push(Neighbor{ID: id, Dist: d})
			}
			// Evaluate the stopping rule at batch boundaries.
			if p.params.Delta < 1 && len(heap.items) >= k && (res.Visited%p.params.BatchSize == 0) {
				_ = i
				promise := p.promise(visitedSinceFull, improvesSinceFull, remaining)
				if promise >= p.params.Delta {
					res.Promise = promise
					res.Neighbors = heap.sorted()
					p.add(comps)
					return res, nil
				}
			}
		}
	}
	p.add(comps)
	res.Neighbors = heap.sorted()
	res.Promise = 1
	res.Exhausted = true
	return res, nil
}

// promise estimates P(no remaining candidate improves the top-k) =
// (1 - p̂)^m with add-one-smoothed improvement rate p̂.
func (p *Progressive) promise(visited, improves, remaining int) float64 {
	if remaining <= 0 {
		return 1
	}
	pHat := (float64(improves) + 1) / (float64(visited) + 2)
	return math.Pow(1-pHat, float64(remaining))
}

// SearchWithBound runs SearchProgressive and then drops neighbors
// whose distance exceeds maxDist. An empty result means nothing met
// the relevance bound — the paper's "return an empty set when no
// answer exists with a given expected relevance".
func (p *Progressive) SearchWithBound(q Vector, k int, maxDist float64) (*ProgressiveResult, error) {
	res, err := p.SearchProgressive(q, k)
	if err != nil {
		return nil, err
	}
	kept := res.Neighbors[:0]
	for _, n := range res.Neighbors {
		if n.Dist <= maxDist {
			kept = append(kept, n)
		}
	}
	res.Neighbors = kept
	return res, nil
}
