package vectorindex

import (
	"runtime"

	"github.com/reliable-cda/cda/internal/parallel"
)

// ParallelExact is the brute-force scan fanned out across CPU cores:
// still exact, but with the wall-clock cost divided by the worker
// count — the cheapest "make the guaranteed method faster" lever the
// paper's efficiency challenge asks for before reaching for
// approximation.
type ParallelExact struct {
	distCounter
	data    []Vector
	dim     int
	workers int
}

// NewParallelExact indexes the vectors with up to `workers`
// goroutines per query (0 = GOMAXPROCS).
func NewParallelExact(data []Vector, workers int) *ParallelExact {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelExact{data: data, workers: workers}
	if len(data) > 0 {
		p.dim = len(data[0])
	}
	return p
}

// Len returns the number of indexed vectors.
func (p *ParallelExact) Len() int { return len(p.data) }

// Search scans shards concurrently, then merges the per-shard top-k
// heaps. Results are identical to Exact.Search.
func (p *ParallelExact) Search(q Vector, k int) ([]Neighbor, error) {
	if len(p.data) == 0 {
		return nil, ErrEmpty
	}
	if len(q) != p.dim {
		return nil, ErrDimension
	}
	if k <= 0 {
		return nil, nil
	}
	heaps, err := parallel.MapChunks(len(p.data), parallel.Options{Workers: p.workers, SerialThreshold: 1}, func(lo, hi int) (*topK, error) {
		h := newTopK(k)
		for id := lo; id < hi; id++ {
			h.push(Neighbor{ID: id, Dist: SquaredL2(q, p.data[id])})
		}
		return h, nil
	})
	if err != nil {
		return nil, err
	}
	p.add(int64(len(p.data)))
	merged := heaps[0]
	for _, h := range heaps[1:] {
		merged.merge(h)
	}
	return merged.sorted(), nil
}
