package vectorindex

import (
	"runtime"
	"sync"
)

// ParallelExact is the brute-force scan fanned out across CPU cores:
// still exact, but with the wall-clock cost divided by the worker
// count — the cheapest "make the guaranteed method faster" lever the
// paper's efficiency challenge asks for before reaching for
// approximation.
type ParallelExact struct {
	distCounter
	data    []Vector
	dim     int
	workers int
}

// NewParallelExact indexes the vectors with up to `workers`
// goroutines per query (0 = GOMAXPROCS).
func NewParallelExact(data []Vector, workers int) *ParallelExact {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelExact{data: data, workers: workers}
	if len(data) > 0 {
		p.dim = len(data[0])
	}
	return p
}

// Len returns the number of indexed vectors.
func (p *ParallelExact) Len() int { return len(p.data) }

// Search scans shards concurrently, then merges the per-shard top-k
// heaps. Results are identical to Exact.Search.
func (p *ParallelExact) Search(q Vector, k int) ([]Neighbor, error) {
	if len(p.data) == 0 {
		return nil, ErrEmpty
	}
	if len(q) != p.dim {
		return nil, ErrDimension
	}
	if k <= 0 {
		return nil, nil
	}
	workers := p.workers
	if workers > len(p.data) {
		workers = len(p.data)
	}
	shard := (len(p.data) + workers - 1) / workers
	heaps := make([]*topK, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * shard
		hi := lo + shard
		if hi > len(p.data) {
			hi = len(p.data)
		}
		heaps[w] = newTopK(k)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := heaps[w]
			for id := lo; id < hi; id++ {
				h.push(Neighbor{ID: id, Dist: SquaredL2(q, p.data[id])})
			}
		}(w, lo, hi)
	}
	wg.Wait()
	p.add(int64(len(p.data)))
	merged := newTopK(k)
	for _, h := range heaps {
		for _, n := range h.items {
			merged.push(n)
		}
	}
	return merged.sorted(), nil
}
