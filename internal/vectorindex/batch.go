package vectorindex

import "github.com/reliable-cda/cda/internal/parallel"

// SearchBatch answers many queries concurrently against one index,
// returning results in query order. Every Index implementation in
// this package is safe for concurrent Search calls (reads plus an
// atomic distance counter), so the batch fans out one goroutine chunk
// per worker (0 = GOMAXPROCS). Results are exactly what sequential
// Search calls would return: each query's answer is independent, and
// each index's top-k is canonical (distance, then ID).
//
// Indexes whose Search already fans out internally (ParallelExact,
// IVF with many candidates) should be batched with workers=1 or have
// their own Workers knob lowered; nesting both multiplies goroutines.
func SearchBatch(ix Index, queries []Vector, k, workers int) ([][]Neighbor, error) {
	out := make([][]Neighbor, len(queries))
	// Each query is a full index probe: always worth a goroutine, so
	// the serial threshold is 1.
	err := parallel.ForEach(len(queries), parallel.Options{Workers: workers, SerialThreshold: 1}, func(i int) error {
		nn, err := ix.Search(queries[i], k)
		if err != nil {
			return err
		}
		out[i] = nn
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
