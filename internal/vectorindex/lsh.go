package vectorindex

import (
	"fmt"
	"math"
	"math/rand"
)

// LSHParams configures a p-stable (E2LSH-style) index for Euclidean
// distance: L hash tables, each concatenating K projections quantized
// with bucket width W.
type LSHParams struct {
	Tables int     // L, number of hash tables
	Hashes int     // K, projections concatenated per table
	Width  float64 // W, quantization bucket width
	Seed   int64
}

// DefaultLSHParams returns parameters that work reasonably for unit-
// scale random data.
func DefaultLSHParams() LSHParams {
	return LSHParams{Tables: 8, Hashes: 8, Width: 2.0, Seed: 1}
}

type lshTable struct {
	// proj[k] is one random Gaussian direction; offsets[k] its shift.
	proj    []Vector
	offsets []float64
	buckets map[string][]int
}

// LSH is a locality-sensitive hashing index: fast candidate generation
// with NO quality guarantee — the paper's first efficiency regime.
type LSH struct {
	distCounter
	params LSHParams
	data   []Vector
	dim    int
	tables []lshTable
}

// NewLSH builds the index over data (IDs are positions).
func NewLSH(data []Vector, params LSHParams) (*LSH, error) {
	if params.Tables <= 0 || params.Hashes <= 0 || params.Width <= 0 {
		return nil, fmt.Errorf("vectorindex: invalid LSH params %+v", params)
	}
	idx := &LSH{params: params, data: data}
	if len(data) > 0 {
		idx.dim = len(data[0])
	}
	rng := rand.New(rand.NewSource(params.Seed))
	idx.tables = make([]lshTable, params.Tables)
	for t := range idx.tables {
		tab := &idx.tables[t]
		tab.buckets = make(map[string][]int)
		tab.proj = make([]Vector, params.Hashes)
		tab.offsets = make([]float64, params.Hashes)
		for h := 0; h < params.Hashes; h++ {
			dir := make(Vector, idx.dim)
			for d := range dir {
				dir[d] = float32(rng.NormFloat64())
			}
			tab.proj[h] = dir
			tab.offsets[h] = rng.Float64() * params.Width
		}
		for id, v := range data {
			key := tab.key(v, params.Width)
			tab.buckets[key] = append(tab.buckets[key], id)
		}
	}
	return idx, nil
}

func (t *lshTable) key(v Vector, w float64) string {
	buf := make([]byte, 0, len(t.proj)*4)
	for h := range t.proj {
		var dot float64
		p := t.proj[h]
		for d := range v {
			dot += float64(v[d]) * float64(p[d])
		}
		cell := int32(math.Floor((dot + t.offsets[h]) / w))
		buf = append(buf, byte(cell), byte(cell>>8), byte(cell>>16), byte(cell>>24))
	}
	return string(buf)
}

// Len returns the number of indexed vectors.
func (l *LSH) Len() int { return len(l.data) }

// Search collects candidates from all matching buckets and ranks them
// exactly. Returns fewer than k neighbors when the buckets are sparse
// — the unguaranteed-recall behaviour E2 measures.
func (l *LSH) Search(q Vector, k int) ([]Neighbor, error) {
	if len(l.data) == 0 {
		return nil, ErrEmpty
	}
	if len(q) != l.dim {
		return nil, ErrDimension
	}
	if k <= 0 {
		return nil, nil
	}
	seen := make(map[int]struct{})
	heap := newTopK(k)
	var comps int64
	for t := range l.tables {
		tab := &l.tables[t]
		for _, id := range tab.buckets[tab.key(q, l.params.Width)] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			heap.push(Neighbor{ID: id, Dist: SquaredL2(q, l.data[id])})
			comps++
		}
	}
	l.add(comps)
	return heap.sorted(), nil
}

// CandidateCount returns how many distinct candidates hashing q would
// examine, an effort predictor used by the holistic optimizer.
func (l *LSH) CandidateCount(q Vector) int {
	if len(q) != l.dim {
		return 0
	}
	seen := make(map[int]struct{})
	for t := range l.tables {
		tab := &l.tables[t]
		for _, id := range tab.buckets[tab.key(q, l.params.Width)] {
			seen[id] = struct{}{}
		}
	}
	return len(seen)
}
