// Package vectorindex implements high-dimensional similarity search in
// the three regimes the paper's P1 (Efficiency) challenge contrasts:
//
//   - Exact scan: guaranteed correct, slow (the "quality guarantees but
//     relatively slow" regime).
//   - LSH and IVF: fast approximate search with no quality guarantee
//     (the "fast but no guarantees" regime).
//   - Progressive search: ProS-style early-terminating scan that stops
//     as soon as the probability that the current top-k is final
//     reaches a user target δ — the paper's envisioned "new generation"
//     combining speed WITH a probabilistic quality guarantee, including
//     the ability to return an empty set when no answer meets the
//     expected relevance.
//
// All indexes operate on float32 vectors under squared Euclidean
// distance and count distance computations so benchmarks can report
// operation counts alongside wall time.
package vectorindex

import (
	"errors"
	"math"
	"sort"
	"sync/atomic"
)

// Vector is a dense embedding.
type Vector []float32

// FaultHook is the chaos-injection seam (see internal/faults): when
// wired into an index it is consulted at the top of every Search and
// may return an injected transient error or add latency. Production
// deployments leave it nil.
type FaultHook interface {
	Inject(op string) error
}

// ErrDimension is returned when a query's dimensionality does not
// match the indexed data.
var ErrDimension = errors.New("vectorindex: dimension mismatch")

// ErrEmpty is returned when searching an empty index.
var ErrEmpty = errors.New("vectorindex: empty index")

// SquaredL2 returns the squared Euclidean distance between a and b.
// Vectors must have equal length (callers validate).
func SquaredL2(a, b Vector) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum
}

// Cosine returns 1 - cosine similarity, a proper dissimilarity in
// [0,2]. Zero vectors are treated as maximally dissimilar.
func Cosine(a, b Vector) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 2
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Neighbor is one search hit.
type Neighbor struct {
	ID   int
	Dist float64
}

// Index is the common search interface.
type Index interface {
	// Search returns the k nearest neighbors of q in ascending
	// distance order (possibly fewer when the index holds fewer
	// points, or — for guarantee-aware indexes — when no point meets
	// the relevance bound).
	Search(q Vector, k int) ([]Neighbor, error)
	// Len returns the number of indexed vectors.
	Len() int
	// DistComps returns the cumulative number of distance computations
	// performed by this index since construction (search only).
	DistComps() int64
}

// distCounter provides the shared atomic operation counter.
type distCounter struct{ n atomic.Int64 }

func (c *distCounter) DistComps() int64 { return c.n.Load() }
func (c *distCounter) add(k int64)      { c.n.Add(k) }

// neighborLess is the canonical total order on candidates: ascending
// distance, ties broken by ascending ID. Using it for every heap
// comparison makes the kept top-k set a pure function of the
// candidate multiset — independent of push order — which is what lets
// the parallel probe paths merge per-shard heaps and provably
// reproduce the serial result even when distances tie at the k-th
// position.
func neighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// topK maintains the k smallest neighbors under neighborLess seen so
// far, using a bounded max-heap laid out in a slice.
type topK struct {
	k     int
	items []Neighbor // max-heap by neighborLess
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) push(n Neighbor) {
	if len(t.items) < t.k {
		t.items = append(t.items, n)
		t.up(len(t.items) - 1)
		return
	}
	if !neighborLess(n, t.items[0]) {
		return
	}
	t.items[0] = n
	t.down(0)
}

// worst returns the current kth distance, or +Inf while under-full.
func (t *topK) worst() float64 {
	if len(t.items) < t.k {
		return math.Inf(1)
	}
	return t.items[0].Dist
}

func (t *topK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !neighborLess(t.items[p], t.items[i]) {
			break
		}
		t.items[p], t.items[i] = t.items[i], t.items[p]
		i = p
	}
}

func (t *topK) down(i int) {
	n := len(t.items)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && neighborLess(t.items[big], t.items[l]) {
			big = l
		}
		if r < n && neighborLess(t.items[big], t.items[r]) {
			big = r
		}
		if big == i {
			return
		}
		t.items[i], t.items[big] = t.items[big], t.items[i]
		i = big
	}
}

// merge pushes every neighbor kept by o; because the heap order is
// canonical, merging per-shard heaps yields exactly the heap a single
// serial scan over the union would have kept.
func (t *topK) merge(o *topK) {
	for _, n := range o.items {
		t.push(n)
	}
}

// sorted drains the heap into neighborLess order.
func (t *topK) sorted() []Neighbor {
	out := make([]Neighbor, len(t.items))
	copy(out, t.items)
	sort.Slice(out, func(i, j int) bool { return neighborLess(out[i], out[j]) })
	return out
}

// Recall returns |approx ∩ exact| / |exact| by ID.
func Recall(exact, approx []Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	set := make(map[int]struct{}, len(exact))
	for _, n := range exact {
		set[n.ID] = struct{}{}
	}
	hit := 0
	for _, n := range approx {
		if _, ok := set[n.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
