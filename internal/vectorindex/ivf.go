package vectorindex

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/reliable-cda/cda/internal/parallel"
)

// IVFParams configures an inverted-file index: vectors are assigned to
// the nearest of Lists k-means centroids; queries probe the Probe
// nearest lists.
type IVFParams struct {
	Lists     int // number of coarse clusters
	Probe     int // lists visited per query
	KMeansIts int // Lloyd iterations
	Seed      int64
	// Workers bounds the goroutines probing lists concurrently per
	// query (0 = GOMAXPROCS, 1 = serial). Queries with fewer
	// candidates than the serial threshold run serially either way,
	// and the parallel probe returns exactly the serial neighbors
	// (the top-k order is canonical: distance, then ID).
	Workers int
}

// DefaultIVFParams sizes the cluster count to sqrt(n) per common
// practice.
func DefaultIVFParams(n int) IVFParams {
	lists := int(math.Sqrt(float64(n)))
	if lists < 1 {
		lists = 1
	}
	return IVFParams{Lists: lists, Probe: max(1, lists/10), KMeansIts: 10, Seed: 1}
}

// IVF is an inverted-file (coarse-quantization) index: the second
// fast-without-guarantees regime, and the candidate-ordering substrate
// the Progressive index reuses.
type IVF struct {
	distCounter
	params    IVFParams
	data      []Vector
	dim       int
	centroids []Vector
	lists     [][]int
	// par configures the fan-out of Search's probe phase; tests
	// lower the threshold to exercise the parallel path on small
	// fixtures.
	par parallel.Options
	// Faults, when non-nil, injects deterministic chaos faults into
	// searches.
	Faults FaultHook
}

// NewIVF trains the coarse quantizer with seeded k-means and assigns
// every vector to its nearest centroid.
func NewIVF(data []Vector, params IVFParams) (*IVF, error) {
	if params.Lists <= 0 || params.Probe <= 0 {
		return nil, fmt.Errorf("vectorindex: invalid IVF params %+v", params)
	}
	if params.Probe > params.Lists {
		params.Probe = params.Lists
	}
	if params.KMeansIts <= 0 {
		params.KMeansIts = 10
	}
	idx := &IVF{params: params, data: data, par: parallel.Options{Workers: params.Workers}}
	if len(data) == 0 {
		return idx, nil
	}
	idx.dim = len(data[0])
	if params.Lists > len(data) {
		params.Lists = len(data)
		idx.params.Lists = len(data)
		if idx.params.Probe > idx.params.Lists {
			idx.params.Probe = idx.params.Lists
		}
	}
	idx.centroids = kmeans(data, params.Lists, params.KMeansIts, params.Seed)
	idx.lists = make([][]int, len(idx.centroids))
	for id, v := range data {
		c := nearestCentroid(v, idx.centroids)
		idx.lists[c] = append(idx.lists[c], id)
	}
	return idx, nil
}

// kmeans runs Lloyd's algorithm with k-means++-style seeding from a
// deterministic RNG.
func kmeans(data []Vector, k, iters int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	dim := len(data[0])
	centroids := make([]Vector, 0, k)
	// k-means++ seeding.
	first := rng.Intn(len(data))
	centroids = append(centroids, append(Vector{}, data[first]...))
	minDist := make([]float64, len(data))
	for i := range minDist {
		minDist[i] = SquaredL2(data[i], centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(len(data))
		} else {
			r := rng.Float64() * total
			for i, d := range minDist {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		c := append(Vector{}, data[pick]...)
		centroids = append(centroids, c)
		for i := range minDist {
			if d := SquaredL2(data[i], c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	// Lloyd iterations.
	assign := make([]int, len(data))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range data {
			c := nearestCentroid(v, centroids)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, v := range data {
			c := assign[i]
			counts[c]++
			for d := range v {
				sums[c][d] += float64(v[d])
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty cluster at a random point.
				copy(centroids[c], data[rng.Intn(len(data))])
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
	}
	return centroids
}

func nearestCentroid(v Vector, centroids []Vector) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := SquaredL2(v, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Len returns the number of indexed vectors.
func (ivf *IVF) Len() int { return len(ivf.data) }

// orderedLists returns list indices by ascending centroid distance.
func (ivf *IVF) orderedLists(q Vector) []int {
	type cd struct {
		c int
		d float64
	}
	ds := make([]cd, len(ivf.centroids))
	for c, cent := range ivf.centroids {
		ds[c] = cd{c, SquaredL2(q, cent)}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	out := make([]int, len(ds))
	for i, x := range ds {
		out[i] = x.c
	}
	return out
}

// Search probes the nearest Probe lists and ranks their members. When
// the probed lists hold enough candidates, the lists are scanned by
// concurrent workers with per-worker top-k heaps that are then merged;
// the canonical heap order makes the merged result identical to the
// serial scan's.
func (ivf *IVF) Search(q Vector, k int) ([]Neighbor, error) {
	if ivf.Faults != nil {
		if err := ivf.Faults.Inject("vectorindex.search"); err != nil {
			return nil, err
		}
	}
	if len(ivf.data) == 0 {
		return nil, ErrEmpty
	}
	if len(q) != ivf.dim {
		return nil, ErrDimension
	}
	if k <= 0 {
		return nil, nil
	}
	order := ivf.orderedLists(q)
	ivf.add(int64(len(ivf.centroids)))
	probe := ivf.params.Probe
	if probe > len(order) {
		probe = len(order)
	}
	probed := order[:probe]
	heaps, err := parallel.MapChunks(len(probed), ivf.probeOptions(probed), func(lo, hi int) (*topK, error) {
		h := newTopK(k)
		var comps int64
		for _, c := range probed[lo:hi] {
			for _, id := range ivf.lists[c] {
				h.push(Neighbor{ID: id, Dist: SquaredL2(q, ivf.data[id])})
				comps++
			}
		}
		ivf.add(comps)
		return h, nil
	})
	if err != nil {
		return nil, err
	}
	heap := heaps[0]
	for _, h := range heaps[1:] {
		heap.merge(h)
	}
	return heap.sorted(), nil
}

// probeOptions sizes the probe fan-out by total candidate count, not
// list count: probing 8 lists of 10 vectors each is serial work.
func (ivf *IVF) probeOptions(probed []int) parallel.Options {
	o := ivf.par
	total := 0
	for _, c := range probed {
		total += len(ivf.lists[c])
	}
	threshold := o.SerialThreshold
	if threshold <= 0 {
		threshold = parallel.DefaultSerialThreshold
	}
	if total < threshold {
		o.Workers = 1
	} else {
		// Candidate volume cleared the bar; chunk over the (few)
		// probed lists without re-applying the threshold to their
		// count.
		o.SerialThreshold = 1
	}
	return o
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
