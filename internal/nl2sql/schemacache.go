package nl2sql

import (
	"sort"
	"strings"
	"sync"

	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
)

// Schema-derived translation artifacts — the identifier vocabulary,
// the sorted list the constrained decoder scans for nearest-identifier
// repair, and the reranker's reference LM — are pure functions of the
// database schema. Benchmarks and multi-session deployments construct
// a fresh Translator per question or per session over the same
// database, and rebuilding these per Translator dominated the
// end-to-end profile (identifier repair plus reranker training were
// the top two hot spots). This cache shares them across Translators,
// keyed by database identity and invalidated by a schema signature so
// a Put that changes the schema rebuilds everything.

// schemaCacheCap bounds the number of databases cached; eviction is
// least-recently-used. Deployments rarely serve more than a handful of
// schemas at once, and a miss only costs the original rebuild.
const schemaCacheCap = 8

// schemaArtifacts holds everything derivable from one schema snapshot.
type schemaArtifacts struct {
	sig      string
	identSet map[string]struct{}
	// idents is the vocabulary sorted ascending; nearest-identifier
	// repair scans it in order so ties break to the lexicographically
	// smallest identifier, exactly as the uncached implementation did.
	idents []string

	nearestMu sync.Mutex
	nearest   map[string]string // lowercase unknown token -> repair

	repairMu sync.Mutex
	repairs  map[string]repairedCandidate // corrupted SQL -> repair + validity

	rerankOnce sync.Once
	reranker   *Reranker
}

// repairedCandidate memoizes one constrained-repair outcome.
type repairedCandidate struct {
	sql    string
	parses bool
}

// repairMemoCap bounds the per-schema repair memo. The channel's
// corruption space is small in practice (most tokens survive), but an
// adversarial fault hook could spray unique strings; beyond the cap,
// repairs still compute — they just stop being remembered.
const repairMemoCap = 4096

var (
	schemaMu  sync.Mutex
	schemaTab = map[*storage.Database]*schemaArtifacts{}
	schemaMRU []*storage.Database
)

// schemaSignature renders the schema (table names, column names and
// kinds, in registration order) so cached artifacts can be validated
// cheaply against a database that may have been mutated via Put.
func schemaSignature(db *storage.Database) string {
	var b strings.Builder
	for _, tbl := range db.Tables() {
		b.WriteString(tbl.Name)
		for _, c := range tbl.Schema() {
			b.WriteByte('\x1f')
			b.WriteString(c.Name)
			b.WriteByte(':')
			b.WriteString(c.Kind.String())
		}
		b.WriteByte('\x1e')
	}
	return b.String()
}

// schemaArtifactsFor returns the cached artifacts for db, rebuilding
// them when the schema signature no longer matches.
func schemaArtifactsFor(db *storage.Database) *schemaArtifacts {
	sig := schemaSignature(db)
	schemaMu.Lock()
	defer schemaMu.Unlock()
	if a, ok := schemaTab[db]; ok && a.sig == sig {
		touchSchemaMRU(db)
		return a
	}
	set := make(map[string]struct{})
	for _, tbl := range db.Tables() {
		set[strings.ToLower(tbl.Name)] = struct{}{}
		for _, c := range tbl.Schema() {
			set[strings.ToLower(c.Name)] = struct{}{}
		}
	}
	idents := make([]string, 0, len(set))
	for k := range set {
		idents = append(idents, k)
	}
	sort.Strings(idents)
	a := &schemaArtifacts{
		sig:      sig,
		identSet: set,
		idents:   idents,
		nearest:  make(map[string]string),
		repairs:  make(map[string]repairedCandidate),
	}
	if _, resident := schemaTab[db]; !resident && len(schemaMRU) >= schemaCacheCap {
		oldest := schemaMRU[0]
		schemaMRU = schemaMRU[1:]
		delete(schemaTab, oldest)
	}
	schemaTab[db] = a
	touchSchemaMRU(db)
	return a
}

// touchSchemaMRU moves db to the most-recently-used end. Callers hold
// schemaMu.
func touchSchemaMRU(db *storage.Database) {
	for i, d := range schemaMRU {
		if d == db {
			schemaMRU = append(schemaMRU[:i], schemaMRU[i+1:]...)
			break
		}
	}
	schemaMRU = append(schemaMRU, db)
}

// rerankerFor returns the shared reference-LM reranker, training it at
// most once per schema snapshot. Training is deterministic (the corpus
// is rendered from the schema in registration order), so sharing the
// model across Translators leaves every reward bit-identical.
func (a *schemaArtifacts) rerankerFor(db *storage.Database) *Reranker {
	a.rerankOnce.Do(func() {
		a.reranker = NewReranker(db)
	})
	return a.reranker
}

// repairSQL relexes sql, keeps in-vocabulary identifiers, and maps
// every out-of-vocabulary identifier to its nearest schema term — the
// constrained-decoding surrogate, hoisted onto the shared artifacts so
// the vocabulary is resolved once per schema instead of per call.
func (a *schemaArtifacts) repairSQL(sql string) string {
	toks, err := sqldb.Lex(sql)
	if err != nil {
		return sql
	}
	var out []string
	for _, tk := range toks {
		switch tk.Type {
		case sqldb.TokEOF:
		case sqldb.TokString:
			out = append(out, "'"+strings.ReplaceAll(tk.Text, "'", "''")+"'")
		case sqldb.TokIdent:
			if _, ok := a.identSet[strings.ToLower(tk.Text)]; ok {
				out = append(out, tk.Text)
			} else {
				out = append(out, a.nearestIdentifier(tk.Text))
			}
		default:
			out = append(out, tk.Text)
		}
	}
	return strings.Join(out, " ")
}

// repairCandidate is repairSQL plus a parse-validity check, memoized
// by the corrupted input: both are pure functions of the schema and
// the text, and rejection sampling re-derives the same corrupted
// strings constantly once the channel's surviving-token mass
// concentrates on the ideal rendering.
func (a *schemaArtifacts) repairCandidate(cand string) (string, bool) {
	a.repairMu.Lock()
	if r, ok := a.repairs[cand]; ok {
		a.repairMu.Unlock()
		return r.sql, r.parses
	}
	a.repairMu.Unlock()
	repaired := a.repairSQL(cand)
	_, perr := sqldb.Parse(repaired)
	r := repairedCandidate{sql: repaired, parses: perr == nil}
	a.repairMu.Lock()
	if len(a.repairs) < repairMemoCap {
		a.repairs[cand] = r
	}
	a.repairMu.Unlock()
	return r.sql, r.parses
}

// nearestIdentifier repairs one out-of-vocabulary token, memoizing by
// lowercased token: with a non-empty vocabulary the result depends
// only on the lowercase form (the scan always replaces the initial
// candidate), so the memo cannot change any repair.
func (a *schemaArtifacts) nearestIdentifier(tok string) string {
	if len(a.idents) == 0 {
		return tok
	}
	tokL := strings.ToLower(tok)
	a.nearestMu.Lock()
	if got, ok := a.nearest[tokL]; ok {
		a.nearestMu.Unlock()
		return got
	}
	a.nearestMu.Unlock()
	best, bestD := tok, 1<<30
	for _, k := range a.idents {
		if d := levenshtein(tokL, k); d < bestD {
			best, bestD = k, d
		}
	}
	a.nearestMu.Lock()
	a.nearest[tokL] = best
	a.nearestMu.Unlock()
	return best
}
