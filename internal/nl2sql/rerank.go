package nl2sql

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
)

// Reranker implements reward-guided candidate selection (the paper's
// "reward-augmented decoding", ARGS-style): among several sampled
// candidates, pick the one maximizing a reward that combines grammar
// validity with fluency under a reference language model of
// well-formed SQL for this schema.
//
// The reference LM is a bigram model trained on template SQL rendered
// from the actual schema, so hallucinated shapes (stray tokens,
// duplicated clauses) score as high-perplexity even when they happen
// to parse.
type Reranker struct {
	lm *nlmodel.NGram

	// Rewards are pure functions of the candidate text and the trained
	// LM, so they memoize safely; the same repaired candidates recur
	// across samples and questions. The memo is bounded — past the cap
	// rewards still compute, they just aren't remembered.
	memoMu sync.Mutex
	memo   map[string]float64
}

// rewardMemoCap bounds the per-reranker reward memo.
const rewardMemoCap = 8192

// NewReranker trains the reference LM from the database schema.
func NewReranker(db *storage.Database) *Reranker {
	lm := nlmodel.NewNGram()
	var corpus [][]string
	for _, t := range db.Tables() {
		name := t.Name
		corpus = append(corpus, tokenizeSQL(fmt.Sprintf("SELECT COUNT(*) FROM %s", name)))
		for _, c := range t.Schema() {
			col := c.Name
			corpus = append(corpus,
				tokenizeSQL(fmt.Sprintf("SELECT %s FROM %s", col, name)),
				tokenizeSQL(fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = 'v'", name, col)),
			)
			switch c.Kind {
			case storage.KindInt, storage.KindFloat:
				for _, agg := range []string{"AVG", "SUM", "MIN", "MAX"} {
					corpus = append(corpus, tokenizeSQL(fmt.Sprintf("SELECT %s(%s) FROM %s", agg, col, name)))
				}
			case storage.KindString:
				corpus = append(corpus,
					tokenizeSQL(fmt.Sprintf("SELECT %s, COUNT(*) FROM %s GROUP BY %s", col, name, col)))
			}
		}
	}
	lm.Train(corpus)
	return &Reranker{lm: lm, memo: make(map[string]float64)}
}

// Reward scores a candidate: parse validity dominates, then fluency
// (negative perplexity). Higher is better.
func (r *Reranker) Reward(sql string) float64 {
	r.memoMu.Lock()
	if s, ok := r.memo[sql]; ok {
		r.memoMu.Unlock()
		return s
	}
	r.memoMu.Unlock()
	const parseBonus = 1e6
	score := 0.0
	if _, err := sqldb.Parse(sql); err == nil {
		score += parseBonus
	}
	score -= r.lm.Perplexity(tokenizeSQL(sql))
	r.memoMu.Lock()
	if r.memo != nil && len(r.memo) < rewardMemoCap {
		r.memo[sql] = score
	}
	r.memoMu.Unlock()
	return score
}

// Best returns the candidate with the highest reward (ties keep the
// earliest, which preserves sampling determinism).
func (r *Reranker) Best(candidates []string) string {
	if len(candidates) == 0 {
		return ""
	}
	best, bestScore := candidates[0], r.Reward(candidates[0])
	for _, c := range candidates[1:] {
		if s := r.Reward(c); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// emitReranked draws a pool of candidates through the noisy channel
// (+ optional constrained repair) and returns the reward-maximizing
// one.
func (t *Translator) emitReranked(ideal string, rng *rand.Rand, pool int) string {
	return t.emitRerankedToks(schemaArtifactsFor(t.DB), tokenizeSQL(ideal), rng, pool)
}

// emitRerankedToks is emitReranked over pre-tokenized ideal SQL and
// pre-resolved schema artifacts. The reference LM comes from the
// artifact cache, so its (deterministic) training happens once per
// database rather than once per Translator.
func (t *Translator) emitRerankedToks(sc *schemaArtifacts, toks []string, rng *rand.Rand, pool int) string {
	if t.reranker == nil {
		t.reranker = sc.rerankerFor(t.DB)
	}
	if pool < 2 {
		pool = 2
	}
	cands := make([]string, 0, pool)
	for i := 0; i < pool; i++ {
		cands = append(cands, t.emitCandidateToks(sc, toks, rng))
	}
	return t.reranker.Best(cands)
}

// renderTokens joins SQL tokens the way candidates are built, for
// tests that compare spacing-insensitive SQL.
func renderTokens(sql string) string {
	return strings.Join(tokenizeSQL(sql), " ")
}
