package nl2sql

import (
	"strings"
	"testing"
)

func prevFrame() *Frame {
	return &Frame{Agg: AggCount, TablePhr: "employees", FilterCol: "department", FilterVal: "Engineering"}
}

func TestFollowUpValuePatch(t *testing.T) {
	f, err := ParseFollowUp("and in Sales?", prevFrame())
	if err != nil {
		t.Fatal(err)
	}
	if f.FilterVal != "Sales" || f.FilterCol != "department" || f.Agg != AggCount {
		t.Errorf("frame = %+v", f)
	}
	// The previous frame must not be mutated.
	if prev := prevFrame(); prev.FilterVal != "Engineering" {
		t.Error("prototype mutated")
	}
}

func TestFollowUpWhatAbout(t *testing.T) {
	f, err := ParseFollowUp("what about Support", prevFrame())
	if err != nil {
		t.Fatal(err)
	}
	if f.FilterVal != "Support" {
		t.Errorf("frame = %+v", f)
	}
}

func TestFollowUpWherePatch(t *testing.T) {
	f, err := ParseFollowUp("and where city is Zurich", prevFrame())
	if err != nil {
		t.Fatal(err)
	}
	if f.FilterCol != "city" || f.FilterVal != "Zurich" {
		t.Errorf("frame = %+v", f)
	}
}

func TestFollowUpAggPatch(t *testing.T) {
	prev := &Frame{Agg: AggAvg, TargetPhr: "salary", TablePhr: "employees"}
	f, err := ParseFollowUp("and the maximum?", prev)
	if err != nil {
		t.Fatal(err)
	}
	if f.Agg != AggMax || f.TargetPhr != "salary" {
		t.Errorf("frame = %+v", f)
	}
	f, err = ParseFollowUp("and the minimum age", prev)
	if err != nil {
		t.Fatal(err)
	}
	if f.Agg != AggMin || f.TargetPhr != "age" {
		t.Errorf("frame = %+v", f)
	}
}

func TestFollowUpErrors(t *testing.T) {
	if _, err := ParseFollowUp("and in Bern", nil); err == nil {
		t.Error("nil prev must error")
	}
	// Value follow-up without a previous filter.
	if _, err := ParseFollowUp("and in Bern", &Frame{Agg: AggCount, TablePhr: "t"}); err == nil {
		t.Error("value patch without filter must error")
	}
	// Aggregate follow-up with no target column anywhere.
	if _, err := ParseFollowUp("and the maximum", &Frame{Agg: AggCount, TablePhr: "t", FilterCol: "c", FilterVal: "v"}); err == nil {
		t.Error("agg patch without target must error")
	}
	if _, err := ParseFollowUp("completely unrelated", prevFrame()); err == nil {
		t.Error("non-followup must error")
	}
}

func TestTranslateWithContext(t *testing.T) {
	db := fixtureDB()
	tr := cleanTranslator(db)
	out, frame, err := tr.TranslateWithContext("how many employees where department is Engineering", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", out.Result.Rows[0][0])
	}
	out2, frame2, err := tr.TranslateWithContext("and in Sales?", frame)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Result.Rows[0][0].I != 1 {
		t.Errorf("follow-up count = %v", out2.Result.Rows[0][0])
	}
	if frame2.FilterVal != "Sales" {
		t.Errorf("frame2 = %+v", frame2)
	}
	if !strings.Contains(out2.SQL, "Sales") {
		t.Errorf("sql = %q", out2.SQL)
	}
	// Chained follow-up off the patched frame.
	out3, _, err := tr.TranslateWithContext("and the average salary", frame2)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Result.Rows[0][0].F != 100 {
		t.Errorf("chained follow-up = %v", out3.Result.Rows[0][0])
	}
}

func TestTranslateWithContextNoContext(t *testing.T) {
	db := fixtureDB()
	tr := cleanTranslator(db)
	if _, _, err := tr.TranslateWithContext("and in Sales?", nil); err == nil {
		t.Error("follow-up without context must error")
	}
}

// Property: intent parsing never panics on arbitrary questions.
func TestParseIntentNeverPanics(t *testing.T) {
	inputs := []string{
		"", "how many", "how many ?", "what is the average in",
		"list the of", "and in", "what about", strings.Repeat("x ", 500),
		"how many a where b is", "what is the maximum  in  where  is ",
	}
	for _, in := range inputs {
		func(q string) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", q, r)
				}
			}()
			_, _ = ParseIntent(q)
			_, _ = ParseFollowUp(q, prevFrame())
		}(in)
	}
}
