package nl2sql

import (
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/storage"
)

func fixtureDB() *storage.Database {
	db := storage.NewDatabase("hr")
	emp := storage.NewTable("employees", storage.Schema{
		{Name: "id", Kind: storage.KindInt},
		{Name: "name", Kind: storage.KindString},
		{Name: "department", Kind: storage.KindString},
		{Name: "salary", Kind: storage.KindFloat},
	})
	emp.MustAppendRow(storage.Int(1), storage.Str("Ada"), storage.Str("Engineering"), storage.Float(120))
	emp.MustAppendRow(storage.Int(2), storage.Str("Bob"), storage.Str("Engineering"), storage.Float(90))
	emp.MustAppendRow(storage.Int(3), storage.Str("Cleo"), storage.Str("Sales"), storage.Float(100))
	db.Put(emp)
	return db
}

func fixtureGrounder(db *storage.Database) *ground.Grounder {
	vocab := ground.NewVocabulary()
	vocab.AddSynonym("staff", "employees")
	vocab.AddSynonym("pay", "salary")
	return ground.NewGrounder(nil, db, vocab)
}

func cleanTranslator(db *storage.Database) *Translator {
	tr := NewTranslator(db, fixtureGrounder(db), 1)
	tr.Channel.HallucinationRate = 0 // noiseless for parsing tests
	return tr
}

func TestParseIntentCount(t *testing.T) {
	f, err := ParseIntent("How many employees?")
	if err != nil {
		t.Fatal(err)
	}
	if f.Agg != AggCount || f.TablePhr != "employees" || f.FilterCol != "" {
		t.Errorf("frame = %+v", f)
	}
}

func TestParseIntentCountWithFilter(t *testing.T) {
	f, err := ParseIntent("how many employees where department is Engineering")
	if err != nil {
		t.Fatal(err)
	}
	if f.FilterCol != "department" || f.FilterVal != "Engineering" {
		t.Errorf("frame = %+v", f)
	}
}

func TestParseIntentAgg(t *testing.T) {
	f, err := ParseIntent("What is the average salary in employees?")
	if err != nil {
		t.Fatal(err)
	}
	if f.Agg != AggAvg || f.TargetPhr != "salary" || f.TablePhr != "employees" {
		t.Errorf("frame = %+v", f)
	}
}

func TestParseIntentAggGroup(t *testing.T) {
	f, err := ParseIntent("what is the average salary in employees by department")
	if err != nil {
		t.Fatal(err)
	}
	if f.GroupPhr != "department" {
		t.Errorf("frame = %+v", f)
	}
}

func TestParseIntentList(t *testing.T) {
	f, err := ParseIntent("list the name and salary of employees where department is Sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.ListColumns) != 2 || f.ListColumns[0] != "name" || f.ListColumns[1] != "salary" {
		t.Errorf("frame = %+v", f)
	}
	if f.FilterVal != "Sales" {
		t.Errorf("filter = %+v", f)
	}
}

func TestParseIntentUnsupported(t *testing.T) {
	if _, err := ParseIntent("please write me a poem"); err == nil {
		t.Error("unsupported question must error")
	}
}

func TestRenderLiteral(t *testing.T) {
	f := &Frame{Agg: AggAvg, TargetPhr: "salary", TablePhr: "employees", FilterCol: "department", FilterVal: "Engineering"}
	sql := f.Render(LiteralResolver{})
	want := "SELECT AVG(salary) FROM employees WHERE department = 'Engineering'"
	if sql != want {
		t.Errorf("sql = %q, want %q", sql, want)
	}
}

func TestRenderGroupBy(t *testing.T) {
	f := &Frame{Agg: AggCount, TablePhr: "employees", GroupPhr: "department"}
	sql := f.Render(LiteralResolver{})
	if sql != "SELECT department, COUNT(*) FROM employees GROUP BY department" {
		t.Errorf("sql = %q", sql)
	}
}

func TestRenderNumericFilterUnquoted(t *testing.T) {
	f := &Frame{Agg: AggCount, TablePhr: "t", FilterCol: "year", FilterVal: "2021"}
	sql := f.Render(LiteralResolver{})
	if !strings.Contains(sql, "year = 2021") || strings.Contains(sql, "'2021'") {
		t.Errorf("sql = %q", sql)
	}
}

func TestTranslateCleanPipeline(t *testing.T) {
	db := fixtureDB()
	tr := cleanTranslator(db)
	got, err := tr.Translate("what is the average salary in employees where department is Engineering")
	if err != nil {
		t.Fatal(err)
	}
	if got.Abstained {
		t.Fatalf("abstained: %+v", got)
	}
	if got.Result == nil || len(got.Result.Rows) != 1 {
		t.Fatalf("result = %+v", got.Result)
	}
	if v := got.Result.Rows[0][0]; v.F != 105 {
		t.Errorf("avg = %v", v)
	}
	if got.Confidence != 1 {
		t.Errorf("confidence = %v", got.Confidence)
	}
}

func TestTranslateSynonymNeedsGrounding(t *testing.T) {
	db := fixtureDB()
	// "staff" and "pay" are vocabulary synonyms, not schema names.
	q := "what is the average pay in staff"

	grounded := cleanTranslator(db)
	g, err := grounded.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if g.Abstained || g.Result == nil {
		t.Fatalf("grounded pipeline failed: %+v", g)
	}

	ungrounded := cleanTranslator(db)
	ungrounded.Options.UseGrounding = false
	ungrounded.Options.UseConstrained = false
	u, err := ungrounded.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Abstained && u.Result != nil {
		t.Errorf("ungrounded pipeline should fail on synonyms: %+v", u)
	}
}

func TestTranslateAbstainsWhenNothingExecutes(t *testing.T) {
	db := fixtureDB()
	tr := cleanTranslator(db)
	tr.Options.UseGrounding = false
	tr.Options.UseConstrained = false
	got, err := tr.Translate("what is the average pay in staff")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Abstained {
		t.Errorf("expected abstention, got %+v", got)
	}
}

func TestConstrainedRepairFixesHallucination(t *testing.T) {
	db := fixtureDB()
	tr := cleanTranslator(db)
	// Hand the repairer a corrupted query directly.
	fixed := tr.repairIdentifiers("SELECT AVG ( salarry ) FROM employeez")
	if !strings.Contains(fixed, "salary") || !strings.Contains(fixed, "employees") {
		t.Errorf("repaired = %q", fixed)
	}
}

func TestNoisyChannelVerificationBeatsBaseline(t *testing.T) {
	db := fixtureDB()
	q := "how many employees where department is Engineering"
	run := func(opts Options) (ok, abstained int) {
		for seed := int64(0); seed < 40; seed++ {
			tr := NewTranslator(db, fixtureGrounder(db), seed)
			tr.Channel = nlmodel.Channel{HallucinationRate: 0.15, Fabrications: []string{"revenue", "customers", "xq7"}}
			tr.Options = opts
			got, err := tr.Translate(q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Abstained {
				abstained++
				continue
			}
			if got.Result != nil && len(got.Result.Rows) == 1 &&
				got.Result.Rows[0][0].Kind == storage.KindInt && got.Result.Rows[0][0].I == 2 {
				ok++
			}
		}
		return ok, abstained
	}
	base := Options{Samples: 1, MaxRepairAttempts: 1}
	full := DefaultOptions()
	okBase, _ := run(base)
	okFull, _ := run(full)
	if okFull <= okBase {
		t.Errorf("full pipeline accuracy %d/40 <= baseline %d/40", okFull, okBase)
	}
}

func TestTranslateDeterministic(t *testing.T) {
	db := fixtureDB()
	q := "how many employees"
	tr1 := NewTranslator(db, fixtureGrounder(db), 7)
	tr2 := NewTranslator(db, fixtureGrounder(db), 7)
	a, err := tr1.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr2.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.SQL != b.SQL || a.Confidence != b.Confidence {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"salary", "salarry", 1},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGroundedResolver(t *testing.T) {
	db := fixtureDB()
	r := GroundedResolver{G: fixtureGrounder(db), DB: db}
	if got := r.Table("staff"); got != "employees" {
		t.Errorf("table = %q", got)
	}
	if got := r.Column("employees", "pay"); got != "salary" {
		t.Errorf("column = %q", got)
	}
	// Unknown phrases fall back to literal.
	if got := r.Table("warp cores"); got != "warp_cores" {
		t.Errorf("fallback table = %q", got)
	}
}

func TestTokenizeSQLRoundTrip(t *testing.T) {
	sql := "SELECT name FROM employees WHERE department = 'it''s'"
	toks := tokenizeSQL(sql)
	joined := strings.Join(toks, " ")
	if _, err := ParseIntent(""); err == nil {
		t.Error("empty intent must error")
	}
	if !strings.Contains(joined, "'it''s'") {
		t.Errorf("string literal lost: %q", joined)
	}
}
