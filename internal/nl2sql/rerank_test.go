package nl2sql

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/nlmodel"
)

func TestRerankerPrefersValidSQL(t *testing.T) {
	db := fixtureDB()
	r := NewReranker(db)
	valid := "SELECT COUNT ( * ) FROM employees"
	broken := "SELECT COUNT ( * FROM FROM employees WHERE"
	if r.Reward(valid) <= r.Reward(broken) {
		t.Errorf("valid %v <= broken %v", r.Reward(valid), r.Reward(broken))
	}
	if got := r.Best([]string{broken, valid}); got != valid {
		t.Errorf("best = %q", got)
	}
}

func TestRerankerFluencyTieBreak(t *testing.T) {
	db := fixtureDB()
	r := NewReranker(db)
	// Both parse; the canonical shape must outscore the weird-but-valid
	// duplicate-alias form.
	canonical := "SELECT AVG ( salary ) FROM employees"
	weird := "SELECT AVG ( salary ) FROM employees employees WHERE name = name"
	if r.Reward(canonical) <= r.Reward(weird) {
		t.Errorf("canonical %v <= weird %v", r.Reward(canonical), r.Reward(weird))
	}
}

func TestRerankerBestEmpty(t *testing.T) {
	r := NewReranker(fixtureDB())
	if got := r.Best(nil); got != "" {
		t.Errorf("best of none = %q", got)
	}
}

func TestRerankingImprovesSingleSampleAccuracy(t *testing.T) {
	db := fixtureDB()
	q := "how many employees where department is Engineering"
	run := func(rerank bool) int {
		ok := 0
		for seed := int64(0); seed < 30; seed++ {
			tr := NewTranslator(db, fixtureGrounder(db), seed)
			tr.Channel = nlmodel.Channel{HallucinationRate: 0.2, Fabrications: []string{"revenue", "zz9"}}
			tr.Options = Options{UseGrounding: true, UseConstrained: true,
				UseReranking: rerank, RerankPool: 4, Samples: 1, MaxRepairAttempts: 3}
			out, err := tr.Translate(q)
			if err != nil {
				t.Fatal(err)
			}
			if out.Result != nil && len(out.Result.Rows) == 1 && out.Result.Rows[0][0].I == 2 {
				ok++
			}
		}
		return ok
	}
	plain := run(false)
	reranked := run(true)
	if reranked < plain {
		t.Errorf("reranking hurt: %d/30 vs %d/30", reranked, plain)
	}
}

func TestEmitRerankedDeterministic(t *testing.T) {
	db := fixtureDB()
	mk := func() string {
		tr := NewTranslator(db, fixtureGrounder(db), 5)
		tr.Channel = nlmodel.Channel{HallucinationRate: 0.3, Fabrications: []string{"zz"}}
		return tr.emitReranked("SELECT COUNT ( * ) FROM employees", rand.New(rand.NewSource(9)), 4)
	}
	if mk() != mk() {
		t.Error("reranked emission not deterministic")
	}
}

func TestRenderTokens(t *testing.T) {
	if got := renderTokens("SELECT  a FROM t"); !strings.Contains(got, "SELECT a FROM t") {
		t.Errorf("renderTokens = %q", got)
	}
}
