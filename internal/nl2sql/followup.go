package nl2sql

import (
	"fmt"
	"regexp"
	"strings"
)

// Follow-up patterns: elliptical utterances that only make sense
// against the previous question's frame — the paper's "maintains
// context, allowing follow-up questions and iterative refinement of
// analyses".
var (
	// "and in Bern" / "what about Geneva" / "how about part_time"
	reFollowValue = regexp.MustCompile(`(?i)^(?:and|what about|how about)\s+(?:in|for)?\s*(.+)$`)
	// "and where canton is Bern"
	reFollowWhere = regexp.MustCompile(`(?i)^(?:and|what about|how about)\s+where\s+(.+?)\s+is\s+(.+)$`)
	// "and the maximum" / "what about the average salary"
	reFollowAgg = regexp.MustCompile(`(?i)^(?:and|what about|how about)\s+the\s+(average|total|maximum|minimum)(?:\s+(.+))?$`)
)

// ParseFollowUp interprets an elliptical utterance as a patch to the
// previous frame. It returns an error when there is no previous frame
// or the utterance is not a recognizable follow-up.
func ParseFollowUp(question string, prev *Frame) (*Frame, error) {
	if prev == nil {
		return nil, fmt.Errorf("nl2sql: no previous question to follow up on")
	}
	q := normalize(question)
	patched := *prev

	if m := reFollowWhere.FindStringSubmatch(q); m != nil {
		patched.FilterCol, patched.FilterVal = m[1], m[2]
		return &patched, nil
	}
	if m := reFollowAgg.FindStringSubmatch(q); m != nil {
		patched.Agg = aggWords[strings.ToLower(m[1])]
		if patched.Agg == AggNone {
			return nil, fmt.Errorf("nl2sql: unknown aggregate in follow-up %q", question)
		}
		if m[2] != "" {
			patched.TargetPhr = m[2]
		}
		if patched.TargetPhr == "" {
			return nil, fmt.Errorf("nl2sql: aggregate follow-up needs a column (previous question had none)")
		}
		patched.ListColumns = nil
		return &patched, nil
	}
	if m := reFollowValue.FindStringSubmatch(q); m != nil {
		if prev.FilterCol == "" {
			return nil, fmt.Errorf("nl2sql: value follow-up %q needs a previous filter to patch", question)
		}
		patched.FilterVal = strings.TrimSpace(m[1])
		return &patched, nil
	}
	return nil, fmt.Errorf("nl2sql: %q is not a recognizable follow-up", question)
}

// TranslateWithContext translates the question, falling back to
// follow-up interpretation against prev when the question is not a
// complete intent on its own. The returned frame is the one actually
// used, so callers can thread it into the next turn.
func (t *Translator) TranslateWithContext(question string, prev *Frame) (*Translation, *Frame, error) {
	frame, err := ParseIntent(question)
	if err != nil {
		frame, err = ParseFollowUp(question, prev)
		if err != nil {
			return nil, nil, err
		}
	}
	tr, err := t.translateFrame(question, frame)
	if err != nil {
		return nil, nil, err
	}
	return tr, frame, nil
}
