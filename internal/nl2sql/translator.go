package nl2sql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
)

// Options toggles the reliability stages (the E7 ablation axes).
type Options struct {
	UseGrounding    bool
	UseConstrained  bool
	UseVerification bool
	// UseReranking selects each emitted candidate as the
	// reward-maximizing member of a sampled pool (reward-augmented
	// decoding) instead of a single draw.
	UseReranking bool
	// RerankPool is the pool size per emitted candidate (default 4).
	RerankPool int
	// Samples is the number of candidates drawn when verification is
	// on (self-consistency); 1 otherwise.
	Samples int
	// MaxRepairAttempts bounds rejection sampling per candidate.
	MaxRepairAttempts int
}

// DefaultOptions enables the full reliable pipeline.
func DefaultOptions() Options {
	return Options{
		UseGrounding: true, UseConstrained: true, UseVerification: true,
		UseReranking: true, RerankPool: 4,
		Samples: 5, MaxRepairAttempts: 3,
	}
}

// Translation is the outcome of translating one question.
type Translation struct {
	SQL        string
	Result     *sqldb.Result // nil unless executed
	Confidence float64       // agreement fraction under verification
	Abstained  bool
	Candidates []string // every sampled candidate (post-repair)
	Notes      []string // human-readable stage log for explanations
	// Votes holds the sizes of the semantic clusters (distinct result
	// fingerprints) among executed samples, winner first, for
	// entropy-based uncertainty quantification.
	Votes []int
}

// Tables returns the base tables of the chosen SQL (FROM plus JOINs),
// which the core pipeline cites as the answer's sources. It returns
// nil when the SQL does not parse.
func (t *Translation) Tables() []string {
	stmt, err := sqldb.Parse(t.SQL)
	if err != nil {
		return nil
	}
	out := []string{stmt.From}
	for _, j := range stmt.Joins {
		out = append(out, j.Table)
	}
	return out
}

// FaultHook is the chaos-injection seam for the simulated NL model
// (see internal/faults): Inject may fail or delay a generation call
// the way a hosted LLM endpoint does, and CorruptTokens may corrupt a
// candidate's token stream over and above the configured channel
// noise — giving the verification layer realistic garbage to catch.
// Production deployments leave it nil.
type FaultHook interface {
	Inject(op string) error
	CorruptTokens(op string, toks []string) []string
}

// Translator is the NL→SQL component. Configure the channel's
// HallucinationRate to model a weaker or stronger underlying LLM.
type Translator struct {
	DB       *storage.Database
	Engine   *sqldb.Engine
	Grounder *ground.Grounder // used when Options.UseGrounding
	Channel  nlmodel.Channel
	Options  Options
	Seed     int64
	// Faults, when non-nil, injects deterministic chaos faults into
	// NL-model generation.
	Faults FaultHook

	reranker *Reranker // lazily built when Options.UseReranking
}

// NewTranslator wires a translator over a database with the full
// pipeline enabled and a default noisy channel.
func NewTranslator(db *storage.Database, g *ground.Grounder, seed int64) *Translator {
	return &Translator{
		DB:       db,
		Engine:   sqldb.NewEngine(db),
		Grounder: g,
		Channel:  nlmodel.Channel{HallucinationRate: 0.08},
		Options:  DefaultOptions(),
		Seed:     seed,
	}
}

// GroundedResolver resolves phrases through the grounding layer,
// falling back to literal resolution when nothing links.
type GroundedResolver struct {
	G  *ground.Grounder
	DB *storage.Database
}

// Table picks the best schema link whose table matches the phrase.
func (r GroundedResolver) Table(phrase string) string {
	for _, l := range r.G.LinkSchema(phrase) {
		if l.Column == "" && !l.IsValue {
			return l.Table
		}
	}
	// A value or column link still reveals the table.
	if links := r.G.LinkSchema(phrase); len(links) > 0 {
		return links[0].Table
	}
	return LiteralResolver{}.Table(phrase)
}

// Column picks the best column link inside the table.
func (r GroundedResolver) Column(table, phrase string) string {
	var fallback string
	for _, l := range r.G.LinkSchema(phrase) {
		if l.Column == "" {
			continue
		}
		if strings.EqualFold(l.Table, table) {
			return l.Column
		}
		if fallback == "" {
			fallback = l.Column
		}
	}
	if fallback != "" {
		return fallback
	}
	return LiteralResolver{}.Column(table, phrase)
}

// Value matches the literal against the column's stored values
// case-insensitively and returns the canonical spelling on a hit.
func (r GroundedResolver) Value(table, column, raw string) string {
	t, err := r.DB.Get(table)
	if err != nil {
		return raw
	}
	vals, err := t.DistinctStrings(column)
	if err != nil {
		return raw
	}
	for _, v := range vals {
		if strings.EqualFold(v, raw) {
			return v
		}
	}
	return raw
}

// Translate runs the configured pipeline on one question.
func (t *Translator) Translate(question string) (*Translation, error) {
	frame, err := ParseIntent(question)
	if err != nil {
		return nil, err
	}
	return t.translateFrame(question, frame)
}

// translateFrame runs the pipeline on an already-extracted frame
// (used directly by follow-up resolution).
func (t *Translator) translateFrame(question string, frame *Frame) (*Translation, error) {
	if t.Faults != nil {
		// One generation call per question: the simulated LLM endpoint
		// can be down (transient error) or slow (latency), independent
		// of the per-token channel noise below.
		if err := t.Faults.Inject("nlmodel.generate"); err != nil {
			return nil, err
		}
	}
	var resolver Resolver = LiteralResolver{}
	tr := &Translation{}
	if t.Options.UseGrounding && t.Grounder != nil {
		resolver = GroundedResolver{G: t.Grounder, DB: t.DB}
		tr.Notes = append(tr.Notes, "grounding: phrases resolved against schema and vocabulary")
	} else {
		tr.Notes = append(tr.Notes, "grounding: OFF (literal identifiers)")
	}
	ideal := frame.Render(resolver)

	samples := 1
	if t.Options.UseVerification {
		samples = t.Options.Samples
		if samples < 1 {
			samples = 1
		}
	}
	rng := rand.New(rand.NewSource(t.Seed ^ hashString(question)))
	// The ideal SQL and the schema are fixed for the whole sampling
	// round: tokenize once instead of re-lexing per candidate attempt
	// (the channel never mutates its input sequence), and resolve the
	// schema artifacts once instead of re-validating the signature per
	// repair.
	idealToks := tokenizeSQL(ideal)
	sc := schemaArtifactsFor(t.DB)

	type executed struct {
		sql  string
		res  *sqldb.Result
		fp   string
		vote int
	}
	byFP := map[string]*executed{}
	var firstCandidate string
	var lastTransient error
	// The engine is deterministic: identical candidate SQL produces an
	// identical result (or error), so repeated candidates within a
	// round — common once constrained repair converges — need only one
	// execution. Any configured fault hook disables the dedup, since
	// skipping executions would shift the deterministic injection
	// schedule.
	type queryOut struct {
		res *sqldb.Result
		err error
	}
	var queryMemo map[string]queryOut
	if t.Faults == nil && t.Engine.Faults == nil && t.DB.Faults == nil {
		queryMemo = make(map[string]queryOut, samples)
	}
	for s := 0; s < samples; s++ {
		var cand string
		if t.Options.UseReranking {
			cand = t.emitRerankedToks(sc, idealToks, rng, t.Options.RerankPool)
		} else {
			cand = t.emitCandidateToks(sc, idealToks, rng)
		}
		tr.Candidates = append(tr.Candidates, cand)
		if firstCandidate == "" {
			firstCandidate = cand
		}
		var res *sqldb.Result
		var err error
		if out, ok := queryMemo[cand]; ok {
			res, err = out.res, out.err
		} else {
			res, err = t.Engine.Query(cand)
			if queryMemo != nil {
				queryMemo[cand] = queryOut{res: res, err: err}
			}
		}
		if err != nil {
			if resilience.IsTransient(err) {
				// Backend failure, not a bad candidate: remember it so a
				// fully-failed round surfaces as an error the resilience
				// layer can retry, rather than a silent abstention.
				lastTransient = err
			}
			if !t.Options.UseVerification {
				// Without verification the system blindly reports its
				// first candidate even when it cannot execute.
				tr.SQL = cand
				tr.Confidence = 0
				tr.Notes = append(tr.Notes, "verification: OFF; candidate failed to execute: "+err.Error())
				return tr, nil
			}
			continue
		}
		if !t.Options.UseVerification {
			tr.SQL = cand
			tr.Result = res
			tr.Confidence = 0
			tr.Notes = append(tr.Notes, "verification: OFF; first executable candidate reported")
			return tr, nil
		}
		fp := res.Fingerprint()
		if e, ok := byFP[fp]; ok {
			e.vote++
		} else {
			byFP[fp] = &executed{sql: cand, res: res, fp: fp, vote: 1}
		}
	}

	if len(byFP) == 0 {
		if lastTransient != nil {
			// Every sample died on a transient backend fault; report the
			// failure upward instead of disguising an outage as a
			// semantic abstention.
			return nil, lastTransient
		}
		// Nothing executed: abstain rather than hallucinate (P4).
		tr.Abstained = true
		tr.SQL = firstCandidate
		tr.Notes = append(tr.Notes, "verification: no candidate executed; abstaining")
		return tr, nil
	}
	// Majority fingerprint wins; deterministic tie-break on SQL text.
	var winner *executed
	fps := make([]string, 0, len(byFP))
	for fp := range byFP {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		e := byFP[fp]
		if winner == nil || e.vote > winner.vote || (e.vote == winner.vote && e.sql < winner.sql) {
			winner = e
		}
	}
	tr.SQL = winner.sql
	tr.Result = winner.res
	tr.Confidence = float64(winner.vote) / float64(samples)
	tr.Votes = append(tr.Votes, winner.vote)
	for _, fp := range fps {
		if byFP[fp] != winner {
			tr.Votes = append(tr.Votes, byFP[fp].vote)
		}
	}
	tr.Notes = append(tr.Notes, fmt.Sprintf("verification: %d/%d samples agree on the result", winner.vote, samples))
	return tr, nil
}

// emitCandidate pushes the ideal SQL through the noisy channel and,
// when constrained decoding is on, repairs it against the schema and
// grammar with bounded rejection sampling.
func (t *Translator) emitCandidate(ideal string, rng *rand.Rand) string {
	return t.emitCandidateToks(schemaArtifactsFor(t.DB), tokenizeSQL(ideal), rng)
}

// emitCandidateToks is emitCandidate over pre-tokenized ideal SQL and
// pre-resolved schema artifacts, saving a lex and a cache lookup per
// repair attempt when the caller samples repeatedly from the same
// ideal. Repair and the parse-validity check are memoized per
// corrupted candidate (both are pure functions of schema and text);
// the fault hook runs on every attempt, before the memo key is formed,
// so chaos corruption is never skipped.
func (t *Translator) emitCandidateToks(sc *schemaArtifacts, toks []string, rng *rand.Rand) string {
	attempts := 1
	if t.Options.UseConstrained {
		attempts = t.Options.MaxRepairAttempts
		if attempts < 1 {
			attempts = 1
		}
	}
	var last string
	for a := 0; a < attempts; a++ {
		noisy := t.Channel.Corrupt(rng, toks)
		if t.Faults != nil {
			// A corruption fault degrades this candidate far beyond the
			// channel's baseline noise; constrained repair and
			// execution-verification must absorb it or abstain.
			noisy = t.Faults.CorruptTokens("nlmodel.generate", noisy)
		}
		cand := strings.Join(noisy, " ")
		if !t.Options.UseConstrained {
			return cand
		}
		repaired, parses := sc.repairCandidate(cand)
		last = repaired
		if parses {
			return repaired
		}
	}
	return last
}

// tokenizeSQL splits SQL into the whitespace-delimited tokens the
// noisy channel corrupts. Using the real lexer keeps punctuation
// attached correctly after re-joining.
func tokenizeSQL(sql string) []string {
	toks, err := sqldb.Lex(sql)
	if err != nil {
		return strings.Fields(sql)
	}
	out := make([]string, 0, len(toks))
	for _, tk := range toks {
		if tk.Type == sqldb.TokEOF {
			break
		}
		if tk.Type == sqldb.TokString {
			out = append(out, "'"+strings.ReplaceAll(tk.Text, "'", "''")+"'")
			continue
		}
		out = append(out, tk.Text)
	}
	return out
}

// repairIdentifiers is the constrained-decoding surrogate: every
// identifier token outside the schema vocabulary is replaced by the
// closest valid identifier (edit distance), mimicking a token mask
// that only admits schema terms.
func (t *Translator) repairIdentifiers(sql string) string {
	return schemaArtifactsFor(t.DB).repairSQL(sql)
}

// levenshtein computes edit distance with two rolling rows.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// hashString is a small FNV-style string hash for per-question seeds.
func hashString(s string) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}
