// Package nl2sql implements the verifiable natural-language-to-SQL
// pipeline at the heart of the CDA NL-model layer. It is built as a
// ladder of reliability stages so E7 can ablate them:
//
//	base          — a semantic parser plus a simulated noisy LLM
//	                channel: surface forms are used literally as
//	                identifiers and tokens may be hallucinated.
//	+grounding    — surface forms are resolved to real tables/columns
//	                through internal/ground (P2).
//	+constrained  — generated token streams are repaired against the
//	                schema and the SQL grammar (constrained decoding /
//	                rejection sampling, P4).
//	+verification — multiple samples are executed on the real engine
//	                and the answer is the majority result fingerprint;
//	                with no executable candidate the system abstains
//	                (P4 Soundness; confidence = agreement).
package nl2sql

import (
	"fmt"
	"regexp"
	"strings"
)

// Aggregate intent.
type Aggregate string

// Supported aggregates.
const (
	AggNone  Aggregate = ""
	AggCount Aggregate = "COUNT"
	AggSum   Aggregate = "SUM"
	AggAvg   Aggregate = "AVG"
	AggMin   Aggregate = "MIN"
	AggMax   Aggregate = "MAX"
)

// Frame is the intermediate semantic representation extracted from a
// question: what to compute, over which table, filtered and grouped
// how. Phrases are raw surface forms; identifier resolution happens
// at render time (that is where grounding enters).
type Frame struct {
	Agg         Aggregate
	TargetPhr   string // column phrase ("" with AggCount over rows)
	TablePhr    string
	FilterCol   string // surface phrase
	FilterVal   string // literal text
	GroupPhr    string
	ListColumns []string // for list/projection questions
}

var (
	reCount = regexp.MustCompile(`(?i)^how many (.+?)(?: where (.+?) is (.+?))?(?: by (.+))?$`)
	reAgg   = regexp.MustCompile(`(?i)^what is the (average|total|maximum|minimum) (.+?) in (.+?)(?: where (.+?) is (.+?))?(?: by (.+))?$`)
	reList  = regexp.MustCompile(`(?i)^list the (.+?) of (.+?)(?: where (.+?) is (.+))?$`)
)

var aggWords = map[string]Aggregate{
	"average": AggAvg,
	"total":   AggSum,
	"maximum": AggMax,
	"minimum": AggMin,
}

// ParseIntent extracts a Frame from a question in the workload's
// controlled natural language. It returns an error for questions
// outside the grammar — the dialogue layer then asks for
// clarification instead of guessing (P5).
func ParseIntent(question string) (*Frame, error) {
	q := normalize(question)
	if m := reAgg.FindStringSubmatch(q); m != nil {
		f := &Frame{Agg: aggWords[strings.ToLower(m[1])], TargetPhr: m[2], TablePhr: m[3]}
		f.FilterCol, f.FilterVal = m[4], m[5]
		f.GroupPhr = m[6]
		return f, nil
	}
	if m := reCount.FindStringSubmatch(q); m != nil {
		f := &Frame{Agg: AggCount, TablePhr: m[1]}
		f.FilterCol, f.FilterVal = m[2], m[3]
		f.GroupPhr = m[4]
		return f, nil
	}
	if m := reList.FindStringSubmatch(q); m != nil {
		f := &Frame{ListColumns: splitAnd(m[1]), TablePhr: m[2]}
		f.FilterCol, f.FilterVal = m[3], m[4]
		return f, nil
	}
	return nil, fmt.Errorf("nl2sql: question %q does not match any supported intent", question)
}

// normalize trims punctuation and collapses whitespace but preserves
// case: filter values like "Engineering" must survive verbatim, since
// string equality in the engine is case-sensitive.
func normalize(q string) string {
	q = strings.TrimSpace(q)
	q = strings.TrimSuffix(q, "?")
	q = strings.TrimSuffix(q, ".")
	q = strings.Join(strings.Fields(q), " ")
	return q
}

func splitAnd(phrase string) []string {
	parts := regexp.MustCompile(`\s*(?:,|\band\b)\s*`).Split(phrase, -1)
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Resolver maps surface phrases to schema identifiers. The ungrounded
// baseline uses LiteralResolver; the grounded pipeline uses
// GroundedResolver.
type Resolver interface {
	// Table resolves a table phrase to a table name.
	Table(phrase string) string
	// Column resolves a column phrase to a column name within the
	// given table.
	Column(table, phrase string) string
	// Value resolves a filter literal to its canonical stored form
	// (value grounding: "engineering" → "Engineering").
	Value(table, column, raw string) string
}

// LiteralResolver turns phrases into identifiers verbatim
// (spaces → underscores) — what an ungrounded model does with
// domain vocabulary it has never seen.
type LiteralResolver struct{}

// Table joins the phrase with underscores.
func (LiteralResolver) Table(phrase string) string {
	return strings.ReplaceAll(strings.TrimSpace(phrase), " ", "_")
}

// Column joins the phrase with underscores.
func (LiteralResolver) Column(_, phrase string) string {
	return strings.ReplaceAll(strings.TrimSpace(phrase), " ", "_")
}

// Value returns the literal unchanged.
func (LiteralResolver) Value(_, _, raw string) string { return raw }

// Render generates the SQL text for a frame using the resolver.
func (f *Frame) Render(r Resolver) string {
	table := r.Table(f.TablePhr)
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case len(f.ListColumns) > 0:
		cols := make([]string, len(f.ListColumns))
		for i, c := range f.ListColumns {
			cols[i] = r.Column(table, c)
		}
		sb.WriteString(strings.Join(cols, ", "))
	case f.Agg == AggCount && f.TargetPhr == "":
		if f.GroupPhr != "" {
			sb.WriteString(r.Column(table, f.GroupPhr) + ", ")
		}
		sb.WriteString("COUNT(*)")
	default:
		if f.GroupPhr != "" {
			sb.WriteString(r.Column(table, f.GroupPhr) + ", ")
		}
		sb.WriteString(string(f.Agg) + "(" + r.Column(table, f.TargetPhr) + ")")
	}
	sb.WriteString(" FROM " + table)
	if f.FilterCol != "" {
		col := r.Column(table, f.FilterCol)
		val := r.Value(table, col, f.FilterVal)
		if !isNumber(val) {
			val = "'" + strings.ReplaceAll(val, "'", "''") + "'"
		}
		sb.WriteString(" WHERE " + col + " = " + val)
	}
	if f.GroupPhr != "" && len(f.ListColumns) == 0 {
		sb.WriteString(" GROUP BY " + r.Column(table, f.GroupPhr))
	}
	return sb.String()
}

var reNumber = regexp.MustCompile(`^-?\d+(\.\d+)?$`)

func isNumber(s string) bool { return reNumber.MatchString(strings.TrimSpace(s)) }
