// Package provenance implements the answer-annotation data model the
// paper's P3 (Explainability) and P4 (Soundness by provenance)
// require: a DAG whose nodes are data sources, queries, computations,
// and answer claims, with derivation edges pointing from results to
// the things they were derived from.
//
// Two formal properties from the paper are checkable on any graph:
//
//   - Losslessness: every answer/claim node is transitively connected
//     to at least one source node, so the explanation really does
//     cover the calculations and source data behind the answer.
//   - Invertibility: every computation node records enough metadata
//     (the query text or code snippet) to recover the individual
//     calculation from the explanation.
package provenance

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies provenance nodes.
type Kind int

// Node kinds.
const (
	KindSource Kind = iota
	KindQuery
	KindComputation
	KindAnswer
	KindClaim
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindQuery:
		return "query"
	case KindComputation:
		return "computation"
	case KindAnswer:
		return "answer"
	case KindClaim:
		return "claim"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one provenance vertex. Meta holds machine-readable details:
// computations store "code" or "query"; sources store "uri" or
// "dataset"; claims store "text".
type Node struct {
	ID    string
	Kind  Kind
	Label string
	Meta  map[string]string
}

// ErrCycle is returned when an edge would create a cycle.
var ErrCycle = errors.New("provenance: edge would create a cycle")

// ErrUnknownNode is returned when referencing an absent node.
var ErrUnknownNode = errors.New("provenance: unknown node")

// Graph is a provenance DAG. Edges point from a derived node to the
// node it was derived from ("where-from" direction). Safe for
// concurrent use.
type Graph struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	// derivedFrom[id] = ids this node was derived from (parents).
	derivedFrom map[string][]string
	// derives[id] = ids derived from this node (children).
	derives map[string][]string
	seq     int
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:       make(map[string]*Node),
		derivedFrom: make(map[string][]string),
		derives:     make(map[string][]string),
	}
}

// AddNode inserts a node; with an empty ID one is generated
// ("<kind>:<n>"). Returns the node's ID. Re-adding an existing ID
// replaces its label/meta but keeps edges.
func (g *Graph) AddNode(n Node) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n.ID == "" {
		g.seq++
		n.ID = fmt.Sprintf("%s:%d", n.Kind, g.seq)
	}
	copied := n
	if n.Meta != nil {
		copied.Meta = make(map[string]string, len(n.Meta))
		for k, v := range n.Meta {
			copied.Meta[k] = v
		}
	}
	g.nodes[n.ID] = &copied
	return n.ID
}

// Node returns a copy of the node with the given ID.
func (g *Graph) Node(id string) (Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Len returns the number of nodes.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// DerivedFrom records that `result` was derived from `origin`.
// It rejects edges referencing unknown nodes or creating cycles.
func (g *Graph) DerivedFrom(result, origin string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[result]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, result)
	}
	if _, ok := g.nodes[origin]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, origin)
	}
	if result == origin {
		return ErrCycle
	}
	// Reject if origin is reachable from result in the derives
	// direction (i.e. result already an ancestor of origin).
	if g.reachableLocked(g.derivedFrom, origin, result) {
		return ErrCycle
	}
	for _, existing := range g.derivedFrom[result] {
		if existing == origin {
			return nil // idempotent
		}
	}
	g.derivedFrom[result] = append(g.derivedFrom[result], origin)
	g.derives[origin] = append(g.derives[origin], result)
	return nil
}

func (g *Graph) reachableLocked(adj map[string][]string, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// WhereFrom returns every transitive ancestor of the node (the data
// and computations it came from), sorted by ID.
func (g *Graph) WhereFrom(id string) ([]Node, error) {
	return g.closure(id, false)
}

// WhereTo returns every transitive descendant (everything derived
// from this node) — the paper's "where-to analysis" supporting
// guidance.
func (g *Graph) WhereTo(id string) ([]Node, error) {
	return g.closure(id, true)
}

// closure walks the ancestor (forward=false) or descendant
// (forward=true) relation. The adjacency map is selected inside the
// critical section so the guarded reference never crosses it.
func (g *Graph) closure(id string, forward bool) ([]Node, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[id]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	adj := g.derivedFrom
	if forward {
		adj = g.derives
	}
	seen := map[string]bool{id: true}
	stack := []string{id}
	var out []Node
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[cur] {
			if seen[next] {
				continue
			}
			seen[next] = true
			out = append(out, *g.nodes[next])
			stack = append(stack, next)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SourcesOf returns the source nodes in the node's ancestry.
func (g *Graph) SourcesOf(id string) ([]Node, error) {
	anc, err := g.WhereFrom(id)
	if err != nil {
		return nil, err
	}
	var out []Node
	for _, n := range anc {
		if n.Kind == KindSource {
			out = append(out, n)
		}
	}
	return out, nil
}

// LosslessnessReport lists answer/claim nodes that cannot be traced to
// any source.
type LosslessnessReport struct {
	Lossless bool
	Orphans  []string // IDs of untraceable answers/claims
}

// CheckLosslessness verifies every answer and claim node reaches at
// least one source node.
func (g *Graph) CheckLosslessness() LosslessnessReport {
	g.mu.RLock()
	ids := make([]string, 0, len(g.nodes))
	for id, n := range g.nodes {
		if n.Kind == KindAnswer || n.Kind == KindClaim {
			ids = append(ids, id)
		}
	}
	g.mu.RUnlock()
	sort.Strings(ids)
	rep := LosslessnessReport{Lossless: true}
	for _, id := range ids {
		srcs, err := g.SourcesOf(id)
		if err != nil || len(srcs) == 0 {
			rep.Lossless = false
			rep.Orphans = append(rep.Orphans, id)
		}
	}
	return rep
}

// InvertibilityReport lists computation nodes whose calculation cannot
// be recovered (no "code" or "query" metadata).
type InvertibilityReport struct {
	Invertible bool
	Opaque     []string
}

// CheckInvertibility verifies every computation node records its code
// or query.
func (g *Graph) CheckInvertibility() InvertibilityReport {
	g.mu.RLock()
	defer g.mu.RUnlock()
	rep := InvertibilityReport{Invertible: true}
	ids := make([]string, 0)
	for id, n := range g.nodes {
		if n.Kind != KindComputation {
			continue
		}
		if n.Meta["code"] == "" && n.Meta["query"] == "" {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if len(ids) > 0 {
		rep.Invertible = false
		rep.Opaque = ids
	}
	return rep
}

// Merge copies every node and edge of other into g. Node IDs are kept;
// collisions favor other's node payload (edges union).
func (g *Graph) Merge(other *Graph) error {
	other.mu.RLock()
	nodes := make([]Node, 0, len(other.nodes))
	for _, n := range other.nodes {
		nodes = append(nodes, *n)
	}
	type edge struct{ result, origin string }
	var edges []edge
	for result, origins := range other.derivedFrom {
		for _, o := range origins {
			edges = append(edges, edge{result, o})
		}
	}
	other.mu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		g.AddNode(n)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].result != edges[j].result {
			return edges[i].result < edges[j].result
		}
		return edges[i].origin < edges[j].origin
	})
	for _, e := range edges {
		if err := g.DerivedFrom(e.result, e.origin); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a compact human-readable trace of a node's
// ancestry, one line per ancestor, deepest (sources) last.
func (g *Graph) Summary(id string) string {
	n, ok := g.Node(id)
	if !ok {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %q", n.Kind, n.Label)
	anc, err := g.WhereFrom(id)
	if err != nil {
		return sb.String()
	}
	// Order: computations/queries first, sources last.
	sort.SliceStable(anc, func(i, j int) bool { return anc[i].Kind > anc[j].Kind })
	for _, a := range anc {
		fmt.Fprintf(&sb, "\n  <- %s %q", a.Kind, a.Label)
		if q := a.Meta["query"]; q != "" {
			fmt.Fprintf(&sb, " [%s]", q)
		}
		if u := a.Meta["uri"]; u != "" {
			fmt.Fprintf(&sb, " (%s)", u)
		}
	}
	return sb.String()
}

// DOT renders the graph in Graphviz format for debugging and docs.
func (g *Graph) DOT() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sb strings.Builder
	sb.WriteString("digraph provenance {\n")
	for _, id := range ids {
		n := g.nodes[id]
		fmt.Fprintf(&sb, "  %q [label=%q shape=%s];\n", id, n.Label, dotShape(n.Kind))
	}
	for _, id := range ids {
		origins := append([]string{}, g.derivedFrom[id]...)
		sort.Strings(origins)
		for _, o := range origins {
			fmt.Fprintf(&sb, "  %q -> %q;\n", id, o)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func dotShape(k Kind) string {
	switch k {
	case KindSource:
		return "cylinder"
	case KindQuery, KindComputation:
		return "box"
	default:
		return "ellipse"
	}
}
