package provenance

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// buildChain creates source <- query <- computation <- answer.
func buildChain(t *testing.T) (*Graph, map[string]string) {
	t.Helper()
	g := NewGraph()
	ids := map[string]string{}
	ids["src"] = g.AddNode(Node{Kind: KindSource, Label: "barometer.csv", Meta: map[string]string{"uri": "https://example.org/barometer"}})
	ids["q"] = g.AddNode(Node{Kind: KindQuery, Label: "select", Meta: map[string]string{"query": "SELECT value FROM barometer"}})
	ids["comp"] = g.AddNode(Node{Kind: KindComputation, Label: "decompose", Meta: map[string]string{"code": "timeseries.Decompose(xs, 6)"}})
	ids["ans"] = g.AddNode(Node{Kind: KindAnswer, Label: "seasonality period 6"})
	mustEdge(t, g, ids["q"], ids["src"])
	mustEdge(t, g, ids["comp"], ids["q"])
	mustEdge(t, g, ids["ans"], ids["comp"])
	return g, ids
}

func mustEdge(t *testing.T, g *Graph, result, origin string) {
	t.Helper()
	if err := g.DerivedFrom(result, origin); err != nil {
		t.Fatalf("edge %s<-%s: %v", result, origin, err)
	}
}

func TestAddNodeGeneratesIDs(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Node{Kind: KindSource, Label: "x"})
	b := g.AddNode(Node{Kind: KindSource, Label: "y"})
	if a == b || a == "" {
		t.Errorf("ids = %q %q", a, b)
	}
	n, ok := g.Node(a)
	if !ok || n.Label != "x" {
		t.Errorf("node = %v %v", n, ok)
	}
	if _, ok := g.Node("missing"); ok {
		t.Error("missing node found")
	}
}

func TestAddNodeCopiesMeta(t *testing.T) {
	g := NewGraph()
	meta := map[string]string{"k": "v"}
	id := g.AddNode(Node{ID: "n", Kind: KindSource, Meta: meta})
	meta["k"] = "mutated"
	n, _ := g.Node(id)
	if n.Meta["k"] != "v" {
		t.Error("meta not copied")
	}
}

func TestWhereFrom(t *testing.T) {
	g, ids := buildChain(t)
	anc, err := g.WhereFrom(ids["ans"])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 {
		t.Fatalf("ancestors = %v", anc)
	}
	srcs, err := g.SourcesOf(ids["ans"])
	if err != nil || len(srcs) != 1 || srcs[0].Label != "barometer.csv" {
		t.Errorf("sources = %v, %v", srcs, err)
	}
}

func TestWhereTo(t *testing.T) {
	g, ids := buildChain(t)
	desc, err := g.WhereTo(ids["src"])
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 3 {
		t.Errorf("descendants = %v", desc)
	}
	leafDesc, _ := g.WhereTo(ids["ans"])
	if len(leafDesc) != 0 {
		t.Errorf("answer descendants = %v", leafDesc)
	}
}

func TestEdgeValidation(t *testing.T) {
	g, ids := buildChain(t)
	if err := g.DerivedFrom("nope", ids["src"]); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown result: %v", err)
	}
	if err := g.DerivedFrom(ids["ans"], "nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown origin: %v", err)
	}
	if err := g.DerivedFrom(ids["ans"], ids["ans"]); !errors.Is(err, ErrCycle) {
		t.Errorf("self loop: %v", err)
	}
	// src derived-from ans would close a cycle.
	if err := g.DerivedFrom(ids["src"], ids["ans"]); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle: %v", err)
	}
	// Idempotent re-add.
	if err := g.DerivedFrom(ids["ans"], ids["comp"]); err != nil {
		t.Errorf("idempotent edge: %v", err)
	}
}

func TestLosslessness(t *testing.T) {
	g, _ := buildChain(t)
	rep := g.CheckLosslessness()
	if !rep.Lossless || len(rep.Orphans) != 0 {
		t.Errorf("report = %+v", rep)
	}
	orphan := g.AddNode(Node{Kind: KindClaim, Label: "unsupported claim"})
	rep = g.CheckLosslessness()
	if rep.Lossless || len(rep.Orphans) != 1 || rep.Orphans[0] != orphan {
		t.Errorf("report = %+v", rep)
	}
}

func TestInvertibility(t *testing.T) {
	g, _ := buildChain(t)
	rep := g.CheckInvertibility()
	if !rep.Invertible {
		t.Errorf("report = %+v", rep)
	}
	g.AddNode(Node{ID: "opaque", Kind: KindComputation, Label: "mystery"})
	rep = g.CheckInvertibility()
	if rep.Invertible || len(rep.Opaque) != 1 || rep.Opaque[0] != "opaque" {
		t.Errorf("report = %+v", rep)
	}
}

func TestMerge(t *testing.T) {
	g1, ids1 := buildChain(t)
	g2 := NewGraph()
	s2 := g2.AddNode(Node{ID: "other-src", Kind: KindSource, Label: "census.csv"})
	a2 := g2.AddNode(Node{ID: "other-ans", Kind: KindAnswer, Label: "population"})
	if err := g2.DerivedFrom(a2, s2); err != nil {
		t.Fatal(err)
	}
	if err := g1.Merge(g2); err != nil {
		t.Fatal(err)
	}
	if g1.Len() != 6 {
		t.Errorf("merged len = %d", g1.Len())
	}
	srcs, _ := g1.SourcesOf("other-ans")
	if len(srcs) != 1 || srcs[0].ID != "other-src" {
		t.Errorf("merged sources = %v", srcs)
	}
	// Original chain intact.
	srcs, _ = g1.SourcesOf(ids1["ans"])
	if len(srcs) != 1 {
		t.Errorf("original chain broken: %v", srcs)
	}
}

func TestSummary(t *testing.T) {
	g, ids := buildChain(t)
	s := g.Summary(ids["ans"])
	for _, want := range []string{"seasonality period 6", "SELECT value FROM barometer", "barometer.csv", "https://example.org/barometer"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if g.Summary("missing") != "" {
		t.Error("missing node summary should be empty")
	}
}

func TestDOT(t *testing.T) {
	g, _ := buildChain(t)
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph provenance {") {
		t.Error("bad DOT header")
	}
	if !strings.Contains(dot, "cylinder") || !strings.Contains(dot, "->") {
		t.Errorf("DOT = %s", dot)
	}
}

func TestKindString(t *testing.T) {
	if KindSource.String() != "source" || KindAnswer.String() != "answer" || Kind(99).String() == "" {
		t.Error("kind strings wrong")
	}
}

// Property: a randomly built layered DAG never reports cycles, and
// WhereFrom of a layer-2 node only contains layer-0/1 nodes.
func TestLayeredDAGProperty(t *testing.T) {
	f := func(width uint8) bool {
		w := int(width%5) + 1
		g := NewGraph()
		var l0, l1, l2 []string
		for i := 0; i < w; i++ {
			l0 = append(l0, g.AddNode(Node{Kind: KindSource, Label: "s"}))
			l1 = append(l1, g.AddNode(Node{Kind: KindComputation, Label: "c", Meta: map[string]string{"code": "x"}}))
			l2 = append(l2, g.AddNode(Node{Kind: KindAnswer, Label: "a"}))
		}
		for i := 0; i < w; i++ {
			if g.DerivedFrom(l1[i], l0[i]) != nil {
				return false
			}
			if g.DerivedFrom(l2[i], l1[(i+1)%w]) != nil {
				return false
			}
		}
		rep := g.CheckLosslessness()
		return rep.Lossless
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClosureConcurrentWithWrites is the regression test for the
// guard-escape fix in closure(): the adjacency map must be selected
// inside the critical section, never handed across it, so traversals
// racing with writers stay race-detector clean.
func TestClosureConcurrentWithWrites(t *testing.T) {
	g, ids := buildChain(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			id := g.AddNode(Node{Kind: KindComputation, Label: "extra"})
			if err := g.DerivedFrom(id, ids["src"]); err != nil {
				t.Errorf("edge %s<-%s: %v", id, ids["src"], err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := g.WhereFrom(ids["ans"]); err != nil {
			t.Fatalf("WhereFrom: %v", err)
		}
		if _, err := g.WhereTo(ids["src"]); err != nil {
			t.Fatalf("WhereTo: %v", err)
		}
	}
	<-done
	from, err := g.WhereFrom(ids["ans"])
	if err != nil || len(from) != 3 {
		t.Fatalf("WhereFrom after writers = %d nodes, err %v; want the 3-node chain", len(from), err)
	}
}
