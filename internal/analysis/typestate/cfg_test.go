package typestate

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src (one or more decls, package clause implied)
// and builds the CFG of the LAST function declaration.
func buildFunc(t *testing.T, src string) *CFG {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok {
			fd = f
		}
	}
	if fd == nil {
		t.Fatal("no function in source")
	}
	return Build(fd.Body, testClassify)
}

// testClassify is a syntax-only stand-in for the type-aware
// classifier: the builtin panic and os.Exit by name.
func testClassify(call *ast.CallExpr) CallKind {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return CallPanic
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "os" && fun.Sel.Name == "Exit" {
			return CallNoReturn
		}
	}
	return CallNormal
}

// visitCalls runs a trivial forward analysis and reports which callee
// names appear in blocks the solver actually visits — dead code never
// shows up, which is exactly the reachability property the rules rely
// on.
func visitCalls(cfg *CFG) (seen map[string]bool, res *Result) {
	seen = map[string]bool{}
	res = Forward(cfg, Analysis{Transfer: func(n ast.Node, _ State) {
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok {
					seen[id.Name] = true
				}
			}
			return true
		})
	}})
	return seen, res
}

func wantSeen(t *testing.T, seen map[string]bool, names ...string) {
	t.Helper()
	for _, n := range names {
		if !seen[n] {
			t.Errorf("call %s() should be reachable but the solver never visited it", n)
		}
	}
}

func wantUnseen(t *testing.T, seen map[string]bool, names ...string) {
	t.Helper()
	for _, n := range names {
		if seen[n] {
			t.Errorf("call %s() is dead code but the solver visited it", n)
		}
	}
}

func TestDeferInLoop(t *testing.T) {
	cfg := buildFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		defer release()
	}
	done()
}`)
	deferCount := 0
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferCount++
			}
		}
	}
	if deferCount != 1 {
		t.Errorf("DeferStmt should appear in exactly one block, found %d", deferCount)
	}
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "release", "done")
	if res.AtExit() == nil {
		t.Error("loop with a bound must reach Exit")
	}
}

func TestSelectWithDefault(t *testing.T) {
	cfg := buildFunc(t, `
func f(ch chan int) int {
	select {
	case v := <-ch:
		recv()
		return v
	default:
		idle()
	}
	after()
	return -1
}`)
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "recv", "idle", "after")
	if res.AtExit() == nil {
		t.Error("select with default must fall through to Exit")
	}
}

func TestSelectAllClausesReturn(t *testing.T) {
	cfg := buildFunc(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
	dead()
	return 0
}`)
	seen, res := visitCalls(cfg)
	wantUnseen(t, seen, "dead")
	if res.AtExit() == nil {
		t.Error("returns inside select clauses must reach Exit")
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	cfg := buildFunc(t, `
func f() {
	select {}
	dead()
}`)
	seen, res := visitCalls(cfg)
	wantUnseen(t, seen, "dead")
	if res.AtExit() != nil {
		t.Error("select{} never proceeds; Exit must be unreachable")
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	cfg := buildFunc(t, `
func f(xs [][]int) {
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			use(v)
		}
		rowDone()
	}
	after()
}`)
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "use", "rowDone", "after")
	if res.AtExit() == nil {
		t.Error("function must reach Exit")
	}

	cfg = buildFunc(t, `
func g(n int) {
outer:
	for i := 0; i < n; i++ {
		for {
			step()
			continue outer
		}
		dead()
	}
	after()
}`)
	seen, res = visitCalls(cfg)
	wantSeen(t, seen, "step", "after")
	wantUnseen(t, seen, "dead")
	if res.AtExit() == nil {
		t.Error("continue outer must route back through the outer post")
	}
}

func TestPanicOnlyBranch(t *testing.T) {
	cfg := buildFunc(t, `
func f(ok bool) {
	if !ok {
		panic("bad")
	}
	done()
}`)
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "done")
	if res.AtPanic() == nil {
		t.Error("explicit panic must reach PanicExit")
	}
	if res.AtExit() == nil {
		t.Error("the ok branch must still reach Exit")
	}
}

func TestAlwaysPanics(t *testing.T) {
	cfg := buildFunc(t, `
func f() {
	panic("always")
	dead()
}`)
	seen, res := visitCalls(cfg)
	wantUnseen(t, seen, "dead")
	if res.AtExit() != nil {
		t.Error("a function that always panics cannot reach Exit")
	}
	if res.AtPanic() == nil {
		t.Error("PanicExit must be reachable")
	}
}

func TestNoReturnCall(t *testing.T) {
	cfg := buildFunc(t, `
func f(ok bool) {
	if !ok {
		os.Exit(1)
	}
	done()
}`)
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "done")
	if res.AtPanic() != nil {
		t.Error("os.Exit does not unwind; PanicExit must stay unreachable")
	}
	if res.AtExit() == nil {
		t.Error("the ok branch must reach Exit")
	}
}

func TestInfiniteLoopNoBreak(t *testing.T) {
	cfg := buildFunc(t, `
func f() {
	for {
		work()
	}
	dead()
}`)
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "work")
	wantUnseen(t, seen, "dead")
	if res.AtExit() != nil {
		t.Error("for{} without break cannot reach Exit")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	cfg := buildFunc(t, `
func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	after()
}`)
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "a", "b", "c", "after")
	if res.AtExit() == nil {
		t.Error("switch must reach Exit")
	}
	// Structural check: the block holding a() must edge into the block
	// holding b(), not into after — that is what fallthrough means.
	var aBlk, bBlk *Block
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "a":
							aBlk = blk
						case "b":
							bBlk = blk
						}
					}
				}
				return true
			})
		}
	}
	if aBlk == nil || bBlk == nil {
		t.Fatal("case blocks not found")
	}
	found := false
	for _, e := range aBlk.Succs {
		if e.To == bBlk {
			found = true
		}
	}
	if !found {
		t.Error("fallthrough case must edge directly into the next case block")
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	cfg := buildFunc(t, `
func f(x int) {
	switch x {
	case 1:
		a()
	}
	after()
}`)
	seen, _ := visitCalls(cfg)
	wantSeen(t, seen, "a", "after")

	cfg = buildFunc(t, `
func g(x int) int {
	switch x {
	case 1:
		return 1
	default:
		return 0
	}
	dead()
	return -1
}`)
	seen, _ = visitCalls(cfg)
	wantUnseen(t, seen, "dead")
}

func TestGotoConverges(t *testing.T) {
	cfg := buildFunc(t, `
func f(n int) {
loop:
	if n > 0 {
		step()
		goto loop
	}
	done()
}`)
	seen, res := visitCalls(cfg)
	wantSeen(t, seen, "step", "done")
	if res.AtExit() == nil {
		t.Error("goto loop must still allow Exit via the n <= 0 branch")
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	cfg := buildFunc(t, `
func f() int {
	return 1
	dead()
	return 2
}`)
	seen, _ := visitCalls(cfg)
	wantUnseen(t, seen, "dead")
}

// TestBranchRefinement pins the Refine contract: the callback fires
// once per conditional edge with the branch's condition and assumed
// truth value.
func TestBranchRefinement(t *testing.T) {
	cfg := buildFunc(t, `
func f(err error) {
	if err != nil {
		onErr()
	}
	done()
}`)
	truths := map[bool]bool{}
	Forward(cfg, Analysis{
		Transfer: func(ast.Node, State) {},
		Refine: func(cond ast.Expr, truth bool, _ State) {
			if _, ok := cond.(*ast.BinaryExpr); !ok {
				t.Errorf("expected the if condition, got %T", cond)
			}
			truths[truth] = true
		},
	})
	if !truths[true] || !truths[false] {
		t.Errorf("Refine must run for both branch outcomes, got %v", truths)
	}
}

// TestMayJoin pins the powerset semantics: a fact set on one branch
// survives the join with a branch that never sets it.
func TestMayJoin(t *testing.T) {
	cfg := buildFunc(t, `
func f(c bool) {
	if c {
		acquire()
	}
	done()
}`)
	type key struct{}
	const acquired Facts = 1
	res := Forward(cfg, Analysis{
		Init: State{key{}: 0},
		Transfer: func(n ast.Node, s State) {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "acquire" {
						s[key{}] |= acquired
					}
				}
				return true
			})
		},
	})
	exit := res.AtExit()
	if exit == nil {
		t.Fatal("Exit unreachable")
	}
	if exit[key{}]&acquired == 0 {
		t.Error("a fact set on one branch must survive the union join at Exit")
	}
}
