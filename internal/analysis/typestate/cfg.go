// Package typestate builds per-function control-flow graphs over
// go/ast and runs forward dataflow analyses over them. It is the
// substrate for the CFG-based cdalint rules (unlock-path,
// resource-leak, fsync-order, goroutine-leak): where the older rules
// pattern-match statements, typestate rules track an abstract state
// per value along every path a function can take.
//
// The graph is intentionally small:
//
//   - every statement lands in exactly one basic block, in source
//     order; expressions that steer control (if/for conditions,
//     switch tags, select comm clauses) are recorded as nodes of the
//     block that evaluates them;
//   - branch edges carry the condition expression and the truth value
//     the edge assumes, so analyses can refine state on err != nil
//     style checks;
//   - return statements edge to Exit; explicit panic(...) calls edge
//     to PanicExit; calls that never return (os.Exit, log.Fatal,
//     runtime.Goexit, testing fatals) terminate their block with no
//     successor;
//   - defer is NOT routed to the exits. A DeferStmt stays a plain
//     node where it executes, and analyses apply the deferred call's
//     effect at registration. For the idempotent exit effects the
//     rules track (Unlock, Close, Done, close(ch)) this is equivalent
//     to running the defer on every exit path — and it is the only
//     treatment that handles conditionally registered defers
//     correctly;
//   - function literals are opaque: control never flows into a
//     FuncLit body, which gets its own CFG when a rule analyzes it.
//
// Build is pure syntax except for one seam: the Classify callback
// lets the caller resolve calls (with type information the builder
// does not have) to "panics" or "never returns".
package typestate

import (
	"go/ast"
	"go/token"
)

// CallKind classifies a call expression for control-flow purposes.
type CallKind int

const (
	// CallNormal returns to the caller.
	CallNormal CallKind = iota
	// CallPanic unwinds to the function's panic exit (builtin panic).
	CallPanic
	// CallNoReturn never returns and never unwinds (os.Exit,
	// log.Fatal, runtime.Goexit, testing fatals).
	CallNoReturn
)

// Edge is one control-flow successor. Cond is non-nil on edges that
// assume a branch outcome: the edge is taken exactly when Cond
// evaluates to Truth.
type Edge struct {
	To    *Block
	Cond  ast.Expr
	Truth bool
}

// Block is a basic block: nodes executed in order, then a transfer of
// control along one of Succs. A block with no successors either ends
// in a no-return call or is the graph's Exit/PanicExit.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
	preds int
}

// Preds reports how many edges target the block; 0 on a non-entry
// block means the block is unreachable.
func (b *Block) Preds() int { return b.preds }

// CFG is one function body's control-flow graph.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single normal-termination block: every return and
	// the fall-off-the-end path edge into it. It holds no nodes.
	Exit *Block
	// PanicExit is the unwind block reached by explicit panic(...)
	// statements. It holds no nodes.
	PanicExit *Block
}

// frame is one enclosing breakable construct during construction.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type builder struct {
	cfg      *CFG
	cur      *Block
	classify func(*ast.CallExpr) CallKind
	frames   []frame
	labels   map[string]*Block // goto targets, created on demand
	// pending is the label of a LabeledStmt whose statement is being
	// built next, so `break L` / `continue L` resolve to its frame.
	pending string
}

// Build constructs the CFG of one function body. classify may be nil,
// in which case every call is treated as returning normally (panic is
// still recognized syntactically only through classify, so passing
// nil disables panic-edge modeling).
func Build(body *ast.BlockStmt, classify func(*ast.CallExpr) CallKind) *CFG {
	b := &builder{
		cfg:      &CFG{},
		classify: classify,
		labels:   map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cfg.PanicExit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit, nil, false)
	}
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, truth bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Truth: truth})
	to.preds++
}

// ensure returns the current block, starting a fresh unreachable one
// when the previous statement terminated control flow (the solver
// never visits blocks without predecessors, so dead code cannot
// contribute findings).
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pending
	b.pending = ""
	return l
}

// findFrame resolves break/continue to its target frame.
func (b *builder) findFrame(label string, needContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if needContinue && f.continueTo == nil {
			continue
		}
		return f
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.pending = ""
		b.stmtList(st.List)

	case *ast.LabeledStmt:
		// Seal the label's block so goto targets converge here.
		blk := b.labels[st.Label.Name]
		if blk == nil {
			blk = b.newBlock()
			b.labels[st.Label.Name] = blk
		}
		if b.cur != nil {
			b.edge(b.cur, blk, nil, false)
		}
		b.cur = blk
		b.pending = st.Label.Name
		b.stmt(st.Stmt)
		b.pending = ""

	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.cfg.Exit, nil, false)
		b.cur = nil

	case *ast.BranchStmt:
		b.ensure()
		switch st.Tok {
		case token.BREAK:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			if f := b.findFrame(label, false); f != nil {
				b.edge(b.cur, f.breakTo, nil, false)
			}
		case token.CONTINUE:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			if f := b.findFrame(label, true); f != nil {
				b.edge(b.cur, f.continueTo, nil, false)
			}
		case token.GOTO:
			blk := b.labels[st.Label.Name]
			if blk == nil {
				blk = b.newBlock()
				b.labels[st.Label.Name] = blk
			}
			b.edge(b.cur, blk, nil, false)
		case token.FALLTHROUGH:
			// Handled by the switch construction; reaching here means a
			// malformed tree — drop control.
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(st)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && b.classify != nil {
			switch b.classify(call) {
			case CallPanic:
				b.edge(b.cur, b.cfg.PanicExit, nil, false)
				b.cur = nil
			case CallNoReturn:
				b.cur = nil
			}
		}

	case *ast.IfStmt:
		b.pending = ""
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		head := b.cur
		after := b.newBlock()

		then := b.newBlock()
		b.edge(head, then, st.Cond, true)
		b.cur = then
		b.stmtList(st.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after, nil, false)
		}

		if st.Else != nil {
			els := b.newBlock()
			b.edge(head, els, st.Cond, false)
			b.cur = els
			b.stmt(st.Else)
			if b.cur != nil {
				b.edge(b.cur, after, nil, false)
			}
		} else {
			b.edge(head, after, st.Cond, false)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.edge(b.ensure(), head, nil, false)
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
		}
		head = b.cur // cond nodes stay in the head block

		after := b.newBlock()
		continueTo := head
		var post *Block
		if st.Post != nil {
			post = b.newBlock()
			continueTo = post
		}

		body := b.newBlock()
		b.edge(head, body, st.Cond, true)
		if st.Cond != nil {
			b.edge(head, after, st.Cond, false)
		}

		b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: continueTo})
		b.cur = body
		b.stmtList(st.Body.List)
		if b.cur != nil {
			b.edge(b.cur, continueTo, nil, false)
		}
		b.frames = b.frames[:len(b.frames)-1]

		if post != nil {
			b.cur = post
			b.add(st.Post)
			b.edge(b.cur, head, nil, false)
		}
		b.cur = after
		if st.Cond == nil && after.preds == 0 {
			// for {} with no break: everything after is unreachable.
			b.cur = nil
		}

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.ensure(), head, nil, false)
		b.cur = head
		b.add(st.X)

		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)

		b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmtList(st.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head, nil, false)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.add(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchClauses(label, st.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Assign)
		b.switchClauses(label, st.Body.List, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, breakTo: after})
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, nil, false)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after, nil, false)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
		if after.preds == 0 {
			// select{} or all clauses terminate: nothing follows.
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, DeferStmt, GoStmt, SendStmt,
		// IncDecStmt, ... — straight-line nodes.
		b.add(s)
	}
}

// switchClauses builds the case blocks of a (type) switch.
// allowFallthrough distinguishes expression switches.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, allowFallthrough bool) {
	head := b.ensure()
	after := b.newBlock()

	// Pre-create the case blocks so fallthrough can edge forward.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		blocks[i] = b.newBlock()
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after, nil, false)
	}

	b.frames = append(b.frames, frame{label: label, breakTo: after})
	for i, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := blocks[i]
		b.edge(head, blk, nil, false)
		b.cur = blk
		for _, e := range cc.List {
			b.add(e)
		}
		body := cc.Body
		fallsThrough := false
		if allowFallthrough && len(body) > 0 {
			if br, ok := body[len(body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body = body[:len(body)-1]
				fallsThrough = true
			}
		}
		b.stmtList(body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1], nil, false)
			} else {
				b.edge(b.cur, after, nil, false)
			}
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// InspectNoFuncLit walks the AST below n without descending into
// function literals — the statement-level view transfer functions
// need, since a FuncLit body runs under its own CFG.
func InspectNoFuncLit(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m == nil {
			return true
		}
		return visit(m)
	})
}
