package typestate

import "go/ast"

// Facts is a bit-set of per-path facts about one tracked value. The
// lattice is the powerset ordered by inclusion: a set represents the
// facts that hold on AT LEAST ONE path reaching the program point, so
// joins are unions and "may" questions ("can this value still be
// locked here?") are single bit tests.
type Facts uint32

// State maps each tracked value (a rule-defined comparable key,
// typically carrying the types.Object and the acquisition position)
// to its fact set. A missing key means the value is not live — the
// lattice bottom.
type State map[any]Facts

// Clone copies the state.
func (s State) Clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Join unions o into s and reports whether s changed.
func (s State) Join(o State) bool {
	changed := false
	for k, v := range o {
		if old, ok := s[k]; !ok || old|v != old {
			s[k] = old | v
			changed = true
		}
	}
	return changed
}

// Map rewrites one key's fact set through f (a gen/kill transfer);
// the key must be present.
func (s State) Map(k any, f func(Facts) Facts) {
	if v, ok := s[k]; ok {
		s[k] = f(v)
	}
}

// Analysis is one forward dataflow problem over a CFG. Transfer
// applies a node's effect in place; transfers must be monotone in the
// powerset order (per-element gen/kill maps and strong updates both
// qualify), which with union joins guarantees termination. Refine,
// when non-nil, narrows the state along a branch edge whose condition
// is known to have evaluated to truth — the seam that lets rules
// understand `if err != nil { return err }` acquisition failures.
type Analysis struct {
	// Init seeds the entry state; nil means empty. Rules whose facts
	// exist from function entry (e.g. "completion still pending") set
	// it so the fact survives joins on paths that never touch the key.
	Init     State
	Transfer func(n ast.Node, s State)
	Refine   func(cond ast.Expr, truth bool, s State)
}

// Result holds the fixed point: the state at entry to every reachable
// block. Unreachable blocks have no entry (nil State).
type Result struct {
	In  map[*Block]State
	cfg *CFG
}

// AtExit returns the joined state over every normal-termination path,
// or nil when the function cannot return (infinite loop, always
// panics).
func (r *Result) AtExit() State { return r.In[r.cfg.Exit] }

// AtPanic returns the joined state over every explicit panic path, or
// nil when no reachable panic exists.
func (r *Result) AtPanic() State { return r.In[r.cfg.PanicExit] }

// Forward runs the analysis to a fixed point with a worklist,
// visiting only blocks reachable from Entry.
func Forward(cfg *CFG, a Analysis) *Result {
	entry := State{}
	if a.Init != nil {
		entry = a.Init.Clone()
	}
	in := map[*Block]State{cfg.Entry: entry}
	queue := []*Block{cfg.Entry}
	queued := map[*Block]bool{cfg.Entry: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		s := in[b].Clone()
		for _, n := range b.Nodes {
			a.Transfer(n, s)
		}
		for _, e := range b.Succs {
			ns := s
			if e.Cond != nil && a.Refine != nil {
				ns = s.Clone()
				a.Refine(e.Cond, e.Truth, ns)
			}
			tgt, ok := in[e.To]
			if !ok {
				in[e.To] = ns.Clone()
			} else if !tgt.Join(ns) {
				continue
			}
			if !queued[e.To] {
				queued[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return &Result{In: in, cfg: cfg}
}
