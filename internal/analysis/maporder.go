package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrderLeak flags functions that range over a map, append into a
// slice, and return that slice without sorting it. Go randomizes map
// iteration order, so such a slice leaks nondeterminism straight
// into user-visible output — suggestion lists, cited sources,
// catalog listings — and two identical runs of the benchmark stop
// agreeing (the reproducibility half of P3 Explainability: an
// explanation that reorders between runs is not the same
// explanation).
//
// The pattern is tolerated when the function also sorts the slice
// (sort.* or slices.* with the slice as an argument) anywhere before
// returning, which covers the collect-keys-then-sort idiom.
var MapOrderLeak = &Analyzer{
	Name:     ruleMapOrderLeak,
	Doc:      "slice built from map iteration returned without sorting",
	Severity: SeverityError,
	Run:      runMapOrderLeak,
}

func runMapOrderLeak(p *Package) []Finding {
	var out []Finding
	for _, fd := range funcDecls(p) {
		out = append(out, mapOrderInFunc(p, fd)...)
	}
	return out
}

func mapOrderInFunc(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	reported := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, obj := range appendTargets(p, rng.Body) {
			if reported[obj] {
				continue
			}
			if !returnsIdent(p, fd, obj) {
				continue
			}
			if sortedInFunc(p, fd, obj) {
				continue
			}
			reported[obj] = true
			out = append(out, Finding{
				Rule: ruleMapOrderLeak, Severity: SeverityError,
				Pos: p.Fset.Position(rng.Pos()),
				Message: fmt.Sprintf("%s is appended from map iteration and returned unsorted; map order is random — sort before returning",
					obj.Name()),
			})
		}
		return true
	})
	return out
}

// appendTargets finds objects assigned via x = append(x, …) inside
// the range body.
func appendTargets(p *Package, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			lhs, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if obj := p.Info.Uses[lhs]; obj != nil {
				out = append(out, obj)
			} else if obj := p.Info.Defs[lhs]; obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// sortedInFunc reports whether the function calls a sort.* or
// slices.* function with the object as (part of) an argument.
func sortedInFunc(p *Package, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(p, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
