package analysis

import (
	"go/ast"
	"go/types"
)

// BarePanic flags panic(...) calls. A conversational analytics
// server must degrade to an error answer, not crash the process
// serving every other session; panics are reserved for
// programmer-error invariants (Must* constructors over static
// fixtures) and each such site carries a cdalint:ignore directive
// explaining why the invariant is unreachable from user input.
var BarePanic = &Analyzer{
	Name:     ruleBarePanic,
	Doc:      "panic() where an error return would let the caller recover",
	Severity: SeverityWarning,
	Run:      runBarePanic,
}

func runBarePanic(p *Package) []Finding {
	var out []Finding
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			out = append(out, Finding{
				Rule: ruleBarePanic, Severity: SeverityWarning,
				Pos:     p.Fset.Position(call.Pos()),
				Message: "panic crashes the whole server; return an error unless this is an unreachable programmer-error invariant (then annotate why)",
			})
			return true
		})
	}
	return out
}
