package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// RawSleep flags direct time.Sleep calls outside _test.go files. A
// raw sleep is uncancellable (it ignores context cancellation, so a
// caller's deadline cannot interrupt it) and unvirtualizable (chaos
// replays and benchmarks cannot compress it), which breaks both
// halves of the resilience contract: prompt cancellation and
// deterministic fault replay. Production code must sleep through
// resilience.Clock — WallClock parks on a timer racing ctx.Done(),
// and VirtualClock makes the wait instant and reproducible.
var RawSleep = &Analyzer{
	Name:     ruleRawSleep,
	Doc:      "time.Sleep outside _test.go files; sleep via resilience.Clock so waits are cancellable and virtualizable",
	Severity: SeverityError,
	Run:      runRawSleep,
}

func runRawSleep(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filepath.Base(fname), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(p, call); fn != nil && fn.FullName() == "time.Sleep" {
				out = append(out, Finding{
					Rule: ruleRawSleep, Severity: SeverityError,
					Pos:     p.Fset.Position(call.Pos()),
					Message: "time.Sleep cannot be cancelled or virtualized; use resilience.Clock.Sleep(ctx, d) instead",
				})
			}
			return true
		})
	}
	return out
}
