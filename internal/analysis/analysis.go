// Package analysis implements cdalint, a stdlib-only static-analysis
// suite that machine-checks the reliability invariants the paper
// otherwise leaves to convention: answers must carry their grounding,
// provenance, and confidence annotations (P2 Grounding, P3
// Explainability), the simulated NL model must stay deterministic so
// benchmark numbers are reproducible, errors on verification paths
// must not be silently dropped (P4 Soundness), and concurrent state
// must follow mutex hygiene so the serving layer stays correct under
// load.
//
// The suite is built purely on go/ast, go/parser, go/token, go/types,
// and go/importer — no third-party analysis frameworks — so it runs
// in any environment that has the Go toolchain.
//
// Findings can be suppressed with an inline directive; it covers its
// own line through the line after its comment group, so it works both
// at the end of the offending line and on the line(s) above it:
//
//	// cdalint:ignore <rule>[,<rule>...]   suppress the named rules
//	// cdalint:ignore                      suppress every rule
//
// Use sparingly and leave a reason next to the directive; the point
// of the suite is that exceptions are visible and auditable.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"sync"

	"github.com/reliable-cda/cda/internal/analysis/flow"
	"github.com/reliable-cda/cda/internal/analysis/lockset"
)

// Severity classifies a finding. Errors violate a reliability
// invariant outright; warnings flag risky patterns that need a
// human look.
type Severity int

const (
	// SeverityWarning marks a risky pattern worth auditing.
	SeverityWarning Severity = iota
	// SeverityError marks a violated reliability invariant.
	SeverityError
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// Finding is one diagnostic with its source position.
type Finding struct {
	Rule     string
	Severity Severity
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional
// file:line:col: severity: rule: message shape.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s: %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Rule, f.Message)
}

// Analyzer is one lint rule. Per-package rules set Run; whole-module
// rules (the interprocedural suite over internal/analysis/flow) set
// RunModule instead and execute once over all loaded packages.
type Analyzer struct {
	Name      string
	Doc       string
	Severity  Severity
	Run       func(p *Package) []Finding
	RunModule func(m *Module) []Finding
}

// Module bundles the loaded packages with the interprocedural flow
// graph the module-wide analyzers share. Build it with NewModule; the
// call graph and dataflow summaries are computed lazily inside flow.
type Module struct {
	Pkgs  []*Package
	Units []*flow.Unit
	Graph *flow.Graph

	locksetOnce sync.Once
	lockset     *lockset.Result
}

// Lockset runs the module-wide lockset analysis once and caches the
// result: the three cdarace rules all read from it, so enabling one
// or all of them costs a single interprocedural fixed point.
func (m *Module) Lockset() *lockset.Result {
	m.locksetOnce.Do(func() {
		m.lockset = lockset.Analyze(m.Graph)
	})
	return m.lockset
}

// NewModule assembles the flow units and call graph for the packages.
func NewModule(pkgs []*Package) *Module {
	units := make([]*flow.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &flow.Unit{
			Path:  p.Path,
			Fset:  p.Fset,
			Files: p.Files,
			Types: p.Types,
			Info:  p.Info,
		})
	}
	return &Module{Pkgs: pkgs, Units: units, Graph: flow.BuildGraph(units)}
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DroppedError,
		Nondeterminism,
		UnannotatedAnswer,
		MutexHygiene,
		MapOrderLeak,
		BarePanic,
		RawSleep,
		CtxPropagation,
		ProvenanceTaint,
		ConfidenceBounds,
		LockFlow,
		UnlockPath,
		ResourceLeak,
		FsyncOrder,
		GoroutineLeak,
		RacyAccess,
		AtomicPlainMix,
		GuardEscape,
	}
}

// AnalyzerByName resolves a rule name, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to every package, drops findings
// suppressed by cdalint:ignore directives, and returns the rest
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	var moduleRules []*Analyzer
	merged := ignoreSet{}
	keep := func(a *Analyzer, fs []Finding, ign ignoreSet) {
		for _, f := range fs {
			if f.Rule == "" {
				f.Rule = a.Name
			}
			if f.Severity == 0 && a.Severity != 0 {
				f.Severity = a.Severity
			}
			if ign.suppressed(f) {
				continue
			}
			out = append(out, f)
		}
	}
	for _, p := range pkgs {
		ign := ignoresFor(p)
		for file, byLine := range ign {
			merged[file] = byLine
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			keep(a, a.Run(p), ign)
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			moduleRules = append(moduleRules, a)
		}
	}
	if len(moduleRules) > 0 {
		m := NewModule(pkgs)
		for _, a := range moduleRules {
			keep(a, a.RunModule(m), merged)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// Rule names, shared between analyzer definitions and their run
// functions (kept as constants to avoid initialization cycles).
const (
	ruleDroppedError      = "dropped-error"
	ruleNondeterminism    = "nondeterminism"
	ruleUnannotatedAnswer = "unannotated-answer"
	ruleMutexHygiene      = "mutex-hygiene"
	ruleMapOrderLeak      = "map-order-leak"
	ruleBarePanic         = "bare-panic"
	ruleRawSleep          = "raw-sleep"
	ruleCtxPropagation    = "ctx-propagation"
	ruleProvenanceTaint   = "provenance-taint"
	ruleConfidenceBounds  = "confidence-bounds"
	ruleLockFlow          = "lock-flow"
	ruleUnlockPath        = "unlock-path"
	ruleResourceLeak      = "resource-leak"
	ruleFsyncOrder        = "fsync-order"
	ruleGoroutineLeak     = "goroutine-leak"
	ruleRacyAccess        = "racy-access"
	ruleAtomicPlainMix    = "atomic-plain-mix"
	ruleGuardEscape       = "guard-escape"
)
