package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropagation enforces the cancellation contract the serving and
// resilience layers depend on: a function that receives a
// context.Context must forward it (or a context derived from it) to
// every callee that accepts one, and fresh root contexts —
// context.Background() / context.TODO() — may only be minted in main
// functions, tests, or sites carrying an audited cdalint:ignore. A
// dropped context severs deadline and cancellation propagation: the
// timeout ladder (ⓓ graceful degradation) and the per-turn budget in
// core.Respond silently stop applying to everything downstream of the
// break.
var CtxPropagation = &Analyzer{
	Name:      ruleCtxPropagation,
	Doc:       "context.Context must be forwarded, not re-rooted: Background()/TODO() outside main/tests, or a ctx parameter not passed to a ctx-accepting callee",
	Severity:  SeverityError,
	RunModule: runCtxPropagation,
}

func runCtxPropagation(m *Module) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		for _, fd := range funcDecls(p) {
			file := p.Fset.Position(fd.Pos()).Filename
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			out = append(out, auditCtxFunc(p, fd)...)
		}
	}
	return out
}

// auditCtxFunc checks one declaration (closures included — they
// execute under the declaring function's context discipline).
func auditCtxFunc(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	isMainRoot := p.Types.Name() == "main" && fd.Recv == nil && fd.Name.Name == "main"
	derived := derivedCtxObjs(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if full := calleeFullName(p, call); full == "context.Background" || full == "context.TODO" {
			if !isMainRoot {
				msg := fmt.Sprintf("%s() mints a fresh root context outside main/tests, severing cancellation and deadline propagation", full)
				if len(derived) > 0 {
					msg += "; forward the function's ctx instead"
				} else {
					msg += "; accept a ctx parameter and forward it"
				}
				out = append(out, Finding{Rule: ruleCtxPropagation, Severity: SeverityError,
					Pos: p.Fset.Position(call.Pos()), Message: msg})
			}
			return true
		}
		if len(derived) == 0 {
			return true
		}
		sig := callSignature(p, call)
		if sig == nil {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			arg := call.Args[i]
			if ctxArgForwarded(p, arg, derived) {
				continue
			}
			// A Background()/TODO() argument is already reported by the
			// root-context check above; everything else non-derived is a
			// broken chain in its own right.
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if full := calleeFullName(p, inner); full == "context.Background" || full == "context.TODO" {
					continue
				}
			}
			out = append(out, Finding{Rule: ruleCtxPropagation, Severity: SeverityError,
				Pos: p.Fset.Position(arg.Pos()),
				Message: fmt.Sprintf("call passes %q as its context instead of forwarding the function's ctx (or a context derived from it)",
					exprString(p.Fset, arg))})
		}
		return true
	})
	return out
}

// derivedCtxObjs returns the function's context parameters plus every
// context-typed local derived from them (ctx2, cancel :=
// context.WithTimeout(ctx, d); sub := context.WithValue(ctx2, k, v)).
func derivedCtxObjs(p *Package, fd *ast.FuncDecl) map[types.Object]bool {
	derived := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					derived[obj] = true
				}
			}
		}
	}
	// Closures may bind a ctx parameter of their own; their params are
	// Defs inside the body and picked up here too.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || fl.Type.Params == nil {
			return true
		}
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					derived[obj] = true
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromDerived := false
			for _, rhs := range as.Rhs {
				if exprMentionsAny(p, rhs, derived) {
					fromDerived = true
					break
				}
			}
			if !fromDerived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.ObjectOf(id)
				if obj == nil || derived[obj] || !isContextType(obj.Type()) {
					continue
				}
				derived[obj] = true
				changed = true
			}
			return true
		})
	}
	return derived
}

// ctxArgForwarded reports whether the argument expression reads any
// derived context object.
func ctxArgForwarded(p *Package, arg ast.Expr, derived map[types.Object]bool) bool {
	return exprMentionsAny(p, arg, derived)
}

// exprMentionsAny reports whether the expression uses any object in
// the set.
func exprMentionsAny(p *Package, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	path, name := namedPathName(t)
	return path == "context" && name == "Context"
}

// callSignature resolves the signature a call invokes, or nil for
// builtins and type conversions.
func callSignature(p *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
