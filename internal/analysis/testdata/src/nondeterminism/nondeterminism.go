// Package fixture is deliberately broken test input for the
// nondeterminism analyzer.
package fixture

import (
	"math/rand"
	"time"
)

func bad() (int64, int) {
	t := time.Now().UnixNano() // wall clock
	n := rand.Intn(10)         // global source
	rand.Shuffle(n, func(i, j int) {})
	d := time.Since(time.Unix(0, t))
	_ = d
	return t, n
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // seeded source methods are fine
}

func suppressed() time.Time {
	return time.Now() // cdalint:ignore nondeterminism -- fixture demonstrates suppression
}
