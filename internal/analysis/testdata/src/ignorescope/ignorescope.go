// Package fixture is the regression test for cdalint:ignore
// directive scoping over multi-line statements: a directive group
// above a statement that wraps across several lines must cover the
// whole statement, and must stop covering at the statement's end.
package fixture

import "time"

func stamp(a, b, c int64) int64 {
	return a + b + c
}

// wrapped: the flagged call sits on the third line of the statement
// following the directive group; before the scoping fix the
// directive only reached the statement's first line.
func wrapped() int64 {
	// cdalint:ignore nondeterminism -- the reason wraps onto a second
	// line, and the suppressed statement wraps onto three
	return stamp(1,
		2,
		time.Now().UnixNano())
}

// control: the statement after the covered one must stay flagged —
// statement-extension must not turn the directive into a block-wide
// waiver.
func control() int64 {
	// cdalint:ignore nondeterminism -- covers only the next statement
	v := stamp(1,
		2,
		time.Now().UnixNano())
	u := time.Now().UnixNano()
	return v + u
}
