// Package fixture is deliberately broken test input for the
// lock-flow analyzer: calls that re-acquire a mutex the caller
// already holds, directly and through the call graph.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// incr locks its receiver; safe on its own.
func (c *counter) incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// helper adds one hop between the held region and the lock.
func (c *counter) helper() {
	c.incr()
}

// bad1: calls a locking method while holding the same mutex.
func (c *counter) bad1() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incr()
}

// badTransitive: the re-acquisition is two calls deep.
func (c *counter) badTransitive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.helper()
}

// badDirect: re-locks without any call at all.
func (c *counter) badDirect() {
	c.mu.Lock()
	c.mu.Lock()
	c.n += 2
	c.mu.Unlock()
	c.mu.Unlock()
}

// goodAfterRelease: the locking call happens outside the region.
func (c *counter) goodAfterRelease() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.incr()
}

// addLocked follows the *Locked convention: callers hold the lock.
func addLocked(c *counter) {
	c.n++
}

// goodLockedHelper: holding the lock around a non-locking helper.
func goodLockedHelper(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	addLocked(c)
}

// bump locks the counter it receives as a parameter.
func bump(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// badParam: the held object flows into a parameter-locking function.
func badParam(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bump(c)
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// get read-locks its receiver.
func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// set write-locks its receiver.
func (t *table) set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

// goodReadRead: RLock under RLock is tolerated.
func (t *table) goodReadRead(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.get(k)
}

// badUpgrade: write lock under read lock deadlocks.
func (t *table) badUpgrade(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.set(k, v)
}

// suppressed documents a site the author vouches for.
func suppressed(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// cdalint:ignore lock-flow -- fixture exercises the escape hatch
	bump(c)
}
