// Package fixture is deliberately broken test input for the
// atomic-plain-mix analyzer: a stats block whose counters are
// maintained with sync/atomic — except for the paths that forget and
// use plain loads/stores, voiding the atomics' guarantees.
package fixture

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	resets int64
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) hitCount() int64 {
	return atomic.LoadInt64(&s.hits)
}

// resetHits mixes a plain store into an atomically maintained
// counter: it races with every concurrent hit()/hitCount().
func (s *stats) resetHits() {
	s.hits = 0
}

func (s *stats) miss() {
	atomic.AddInt64(&s.misses, 1)
}

// missCount is the clean shape: every access to misses is atomic.
func (s *stats) missCount() int64 {
	return atomic.LoadInt64(&s.misses)
}

func (s *stats) bumpResets() {
	atomic.AddInt64(&s.resets, 1)
}

// resetsSnapshot reads the counter plainly, deliberately.
func (s *stats) resetsSnapshot() int64 {
	return s.resets // cdalint:ignore atomic-plain-mix -- snapshot taken after all workers have quiesced
}
