// Package fixture is deliberately broken test input for the
// bare-panic analyzer.
package fixture

import "errors"

func bad(x int) int {
	if x < 0 {
		panic("negative input")
	}
	return x
}

func good(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative input")
	}
	return x, nil
}

func mustGood(x int) int {
	if x < 0 {
		// cdalint:ignore bare-panic -- programmer-error invariant
		panic("negative input")
	}
	return x
}
