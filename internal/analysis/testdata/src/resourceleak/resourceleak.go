// Package fixture is deliberately broken test input for the
// resource-leak analyzer: file handles and admission-style release
// callbacks with releases deleted on specific branches.
package fixture

import (
	"errors"
	"os"
)

type gate struct {
	slots chan struct{}
}

// admit mirrors the admission API shape: a release callback paired
// with an error.
func (g *gate) admit() (func(), error) {
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	default:
		return nil, errors.New("full")
	}
}

func leakOnEarlyReturn(path string, cond bool) error {
	f, err := os.Open(path) // leaked when cond is true
	if err != nil {
		return err
	}
	if cond {
		return errors.New("bail")
	}
	return f.Close()
}

func leakNeverClosed(path string) (int, error) {
	f, err := os.Open(path) // never closed on any path
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return int(st.Size()), nil
}

func leakReleaseFunc(g *gate, work func()) error {
	release, err := g.admit() // slot held past the early return
	if err != nil {
		return err
	}
	if work == nil {
		return errors.New("nothing to do")
	}
	work()
	release()
	return nil
}

func goodDeferClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

func goodDeferRelease(g *gate) error {
	release, err := g.admit()
	if err != nil {
		return err
	}
	defer release()
	return nil
}

func goodBothBranches(path string, cond bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if cond {
		f.Close()
		return errors.New("bail")
	}
	return f.Close()
}

func goodEscape(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil // ownership transfers to the caller
}

func suppressedLeak(path string) (string, error) {
	// cdalint:ignore resource-leak -- handle stays open for the process lifetime
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}
