// Package fixture is deliberately broken test input for the
// racy-access analyzer: a cluster-router member shape whose
// mutex-guarded replication state (promotion flag, shard cursors,
// last ship error) is dominantly accessed under the lock — and peeked
// without it on a few paths, including inside a spawned goroutine
// where the caller's lockset does not apply.
package fixture

import "sync"

type member struct {
	mu       sync.Mutex
	promoted bool
	cursors  map[int]int64
	shipErr  error
}

// newMember writes fields on a freshly constructed object: these are
// pre-publication accesses and must not count against the guard.
func newMember() *member {
	m := &member{cursors: map[int]int64{}}
	m.promoted = false
	m.shipErr = nil
	return m
}

func (m *member) promote() {
	m.mu.Lock()
	m.promoted = true
	m.mu.Unlock()
}

func (m *member) demote() {
	m.mu.Lock()
	m.promoted = false
	m.mu.Unlock()
}

func (m *member) isPromoted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted
}

// metricsPeek reads the flag without the lock, deliberately.
func (m *member) metricsPeek() bool {
	return m.promoted // cdalint:ignore racy-access -- approximate metrics read; staleness is acceptable here
}

// lock/unlock helpers: guard inference must see through the
// interprocedural summaries, not just literal mu.Lock() calls.
func (m *member) lock()   { m.mu.Lock() }
func (m *member) unlock() { m.mu.Unlock() }

func (m *member) setCursor(shard int, seq int64) {
	m.lock()
	m.cursors[shard] = seq
	m.unlock()
}

func (m *member) cursor(shard int) int64 {
	m.lock()
	defer m.unlock()
	return m.cursors[shard]
}

func (m *member) resync(shard int, seq int64) {
	m.lock()
	if m.cursors[shard] < seq {
		m.cursors[shard] = seq
	}
	m.unlock()
}

// lag skips the helpers entirely: a racy cursor read.
func (m *member) lag(shard int) int64 {
	return m.cursors[shard]
}

func (m *member) setErr(err error) {
	m.mu.Lock()
	m.shipErr = err
	m.mu.Unlock()
}

func (m *member) clearErr() {
	m.mu.Lock()
	m.shipErr = nil
	m.mu.Unlock()
}

func (m *member) lastErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shipErr
}

// shipAsync holds the lock at the spawn point, but the goroutine body
// runs with an empty lockset: the write inside it is racy even though
// the go statement sits inside the critical section.
func (m *member) shipAsync(done chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.shipErr = nil
		close(done)
	}()
}
