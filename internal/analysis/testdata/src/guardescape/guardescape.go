// Package fixture is deliberately broken test input for the
// guard-escape analyzer: a registry whose mutex-guarded map and slice
// leak by reference — returned live to callers and handed to a
// goroutine — so the receivers race with guarded mutation no matter
// how carefully the registry itself locks.
package fixture

import "sync"

type registry struct {
	mu      sync.Mutex
	entries map[string]int
	order   []string
}

func (r *registry) add(k string, v int) {
	r.mu.Lock()
	r.entries[k] = v
	r.order = append(r.order, k)
	r.mu.Unlock()
}

func (r *registry) get(k string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.entries[k]
	return v, ok
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// all returns the live map: holding the lock here does not help — the
// caller dereferences the reference after the critical section ends.
func (r *registry) all() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries
}

func process(keys []string, done chan struct{}) {
	close(done)
}

// kick hands the live slice to a goroutine from inside the critical
// section: the goroutine reads it while add() keeps appending.
func (r *registry) kick(done chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go process(r.order, done)
}

// snapshot is the clean pattern: copy under the lock, return the copy.
func (r *registry) snapshot() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.entries))
	for k, v := range r.entries {
		out[k] = v
	}
	return out
}

// raw leaks the map without even locking, deliberately.
func (r *registry) raw() map[string]int {
	return r.entries // cdalint:ignore guard-escape -- bench-only accessor, documented as unsynchronized
}
