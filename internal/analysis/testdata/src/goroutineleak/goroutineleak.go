// Package fixture is deliberately broken test input for the
// goroutine-leak analyzer: worker pools mirroring the parallel
// executor with completion signals deleted.
package fixture

import (
	"context"
	"sync"
)

// leakNoDone is the parallel worker pool with the defer wg.Done()
// deleted: Wait blocks forever.
func leakNoDone(jobs []int) {
	var wg sync.WaitGroup
	results := make([]int, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) { // flagged: no completion signal
			results[i] = jobs[i] * 2
		}(i)
	}
	wg.Wait()
}

// leakForever spins without a context bound or closable channel.
func leakForever(n *int) {
	go func() { // flagged: never terminates, not context-bounded
		for {
			*n++
		}
	}()
}

// leakBranchSkipsSend signals on one branch only.
func leakBranchSkipsSend(ch chan int, n int) {
	go func() { // flagged: the n <= 0 path finishes silently
		if n > 0 {
			ch <- n
		}
	}()
}

// leakLoopCapture signals fine but captures the loop variable.
func leakLoopCapture(jobs []int, ch chan int) {
	for _, j := range jobs {
		go func() { // flagged: captures loop variable j
			ch <- j * 2
		}()
	}
}

func goodDone(jobs []int) {
	var wg sync.WaitGroup
	results := make([]int, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = jobs[i] * 2
		}(i)
	}
	wg.Wait()
}

func goodCtxBounded(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func goodRangeChannel(ch chan int, out chan int) {
	go func() {
		defer close(out)
		for v := range ch {
			out <- v
		}
	}()
}

func goodSendOnAllPaths(ch chan error, fail bool) {
	go func() {
		if fail {
			ch <- errFailed
			return
		}
		ch <- nil
	}()
}

var errFailed error

func suppressedDetached(logCh chan string) {
	// cdalint:ignore goroutine-leak -- fire-and-forget metrics flush
	go func() {
		flush(logCh)
	}()
}

func flush(ch chan string) {}
