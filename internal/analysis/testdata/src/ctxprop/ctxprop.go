// Package fixture is deliberately broken test input for the
// ctx-propagation analyzer: functions that mint fresh root contexts
// outside main/tests, and functions that receive a ctx but fail to
// forward it.
package fixture

import (
	"context"
	"time"
)

func process(ctx context.Context, q string) error {
	_ = ctx
	_ = q
	return nil
}

// bad1 mints a root context with no ctx parameter in scope.
func bad1(q string) error {
	return process(context.Background(), q)
}

// bad2 has a perfectly good ctx and re-roots anyway.
func bad2(ctx context.Context, q string) error {
	_ = ctx
	return process(context.TODO(), q)
}

var stashed context.Context

// bad3 passes a stored context unrelated to the one it received,
// breaking the cancellation chain without minting a new root.
func bad3(ctx context.Context, q string) error {
	_ = ctx
	return process(stashed, q)
}

// goodDirect forwards the parameter.
func goodDirect(ctx context.Context, q string) error {
	return process(ctx, q)
}

// goodDerived forwards a context derived from the parameter.
func goodDerived(ctx context.Context, q string) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return process(sub, q)
}

// goodChained rebinds through two derivations.
func goodChained(ctx context.Context, q string) error {
	c2 := context.WithValue(ctx, struct{}{}, "v")
	c3, cancel := context.WithCancel(c2)
	defer cancel()
	return process(c3, q)
}

// viaClosure: the closure's own ctx parameter satisfies the forward
// check, but invoking it with a fresh root is still flagged.
func viaClosure(q string) error {
	h := func(ctx context.Context) error { return process(ctx, q) }
	return h(context.Background())
}

// suppressed documents a deliberate fresh root.
func suppressed(q string) error {
	// cdalint:ignore ctx-propagation -- fixture exercises the escape hatch
	return process(context.Background(), q)
}
