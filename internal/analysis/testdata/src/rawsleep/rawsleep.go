// Package fixture is deliberately broken test input for the
// raw-sleep analyzer.
package fixture

import (
	"context"
	"time"
)

type clock interface {
	Sleep(ctx context.Context, d time.Duration) error
}

func bad() {
	time.Sleep(10 * time.Millisecond) // uncancellable, unvirtualizable
	for i := 0; i < 3; i++ {
		time.Sleep(time.Duration(i) * time.Millisecond)
	}
}

func good(ctx context.Context, c clock) error {
	// Sleeping through the injectable clock keeps the wait
	// cancellable and lets a virtual clock replay it instantly.
	return c.Sleep(ctx, 10*time.Millisecond)
}

func alsoGood(d time.Duration) <-chan time.Time {
	// Timer-based waits that can race ctx.Done() are the sanctioned
	// production pattern; only the blocking helper is banned.
	return time.NewTimer(d).C
}

func suppressed() {
	time.Sleep(time.Millisecond) // cdalint:ignore raw-sleep -- fixture demonstrates suppression
}
