// Package fixture is regression input for cdalint:ignore directive
// scoping around function literals and select cases, checked against
// a CFG-based rule (unlock-path). The contract under test: a
// directive attached to a spawning statement (go/defer) covers the
// statement header only — never the literal's body — so suppressions
// inside a literal must sit on the offending lines themselves, and
// end-of-line placement works inside select case arms.
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

// spawnLeaky: the directive on the go statement must NOT reach the
// Lock inside the literal body — the finding below survives.
func spawnLeaky(s *store, done chan struct{}) {
	// cdalint:ignore unlock-path -- attached to the spawning statement; must not cover the body
	go func() {
		s.mu.Lock()
		s.n++
		close(done)
	}()
}

// spawnSuppressed: the directive inside the literal, on the line
// above the acquisition, suppresses it.
func spawnSuppressed(s *store, done chan struct{}) {
	go func() {
		// cdalint:ignore unlock-path -- deliberately held; the collector releases at teardown
		s.mu.Lock()
		s.n++
		close(done)
	}()
}

// selectArms: end-of-line placement inside one case arm suppresses
// that acquisition only; the default arm's identical leak is
// reported.
func selectArms(s *store, ch chan int) int {
	select {
	case v := <-ch:
		s.mu.Lock() // cdalint:ignore unlock-path -- probe path measured with the lock held
		s.n = v
		return v
	default:
		s.mu.Lock()
		return s.n
	}
}

// deferClosure: same boundary for deferred literals — the directive
// on the defer statement covers its header, not the body.
func deferClosure(s *store) {
	// cdalint:ignore unlock-path -- attached to the defer statement; must not cover the body
	defer func() {
		s.mu.Lock()
		s.n = 0
	}()
}
