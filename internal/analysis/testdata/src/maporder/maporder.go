// Package fixture is deliberately broken test input for the
// map-order-leak analyzer.
package fixture

import "sort"

func badKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // unsorted: leaks random map order to the caller
}

func goodSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func goodLocal(m map[string]int) int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	total := 0
	for _, v := range vals {
		total += v
	}
	return total // order never escapes
}

func suppressed(m map[string]int) []string {
	var out []string
	// cdalint:ignore map-order-leak -- fixture demonstrates suppression
	for k := range m {
		out = append(out, k)
	}
	return out
}
