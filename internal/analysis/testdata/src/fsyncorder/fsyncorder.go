// Package fixture is deliberately broken test input for the
// fsync-order analyzer: the session store's write-temp → fsync →
// rename protocol with the Sync deleted or branch-skipped.
package fixture

import "os"

// publishNoSync is writeSnapshot with the Sync call deleted: the
// rename can publish a name whose bytes are not on disk.
func publishNoSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // flagged: unsynced writes reach the rename
}

// publishBranchSkipsSync syncs on the slow path only; the fast path
// reaches the rename dirty.
func publishBranchSkipsSync(path string, data []byte, fast bool) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if !fast {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // flagged: the fast branch skipped Sync
}

// publishDurable is the correct protocol: every path to the rename
// passes through Sync.
func publishDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// renameUntracked renames a path no tracked file was opened from;
// nothing to check.
func renameUntracked(from, to string) error {
	return os.Rename(from, to)
}

// suppressedFastPublish exercises directive scoping over a multi-line
// statement: the rename call spans several lines, and the directive
// above it must cover the whole statement.
func suppressedFastPublish(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	f.Close()
	// cdalint:ignore fsync-order -- scratch files are rebuilt from the WAL on crash
	return os.Rename(
		tmp,
		path,
	)
}
