// Package fixture is deliberately broken test input for the
// provenance-taint analyzer: backend query results that reach
// core.Answer data fields with and without grounding annotation. It
// uses the real sqldb and core packages so the interprocedural taint
// engine is exercised against the audited types.
package fixture

import (
	"fmt"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/sqldb"
)

// bad1 stores a query result directly into the answer text.
func bad1(eng *sqldb.Engine, q string) *core.Answer {
	res, err := eng.Query(q)
	if err != nil {
		return &core.Answer{Abstained: true}
	}
	return &core.Answer{Text: fmt.Sprint(res)}
}

// render launders the result through a helper; the summary engine
// sees param→return flow and keeps the taint.
func render(res *sqldb.Result) string {
	return fmt.Sprint(res)
}

// bad2 assigns the laundered result after construction.
func bad2(eng *sqldb.Engine, q string) *core.Answer {
	res, _ := eng.Query(q)
	ans := &core.Answer{}
	ans.Text = render(res)
	return ans
}

// goodAnnotated attaches provenance before returning.
func goodAnnotated(eng *sqldb.Engine, q string) *core.Answer {
	res, _ := eng.Query(q)
	g := provenance.NewGraph()
	id := g.AddNode(provenance.Node{})
	ans := &core.Answer{Text: fmt.Sprint(res)}
	ans.Provenance = g
	ans.AnswerNode = id
	return ans
}

// goodAbstained refuses instead of answering; nothing to ground.
func goodAbstained() *core.Answer {
	return &core.Answer{Text: "cannot answer that", Abstained: true}
}

// goodUntainted builds the text from the question, not from backend
// data.
func goodUntainted(q string) *core.Answer {
	return &core.Answer{Text: "echo: " + q}
}

// suppressed documents a deliberately unannotated flow.
func suppressed(eng *sqldb.Engine, q string) *core.Answer {
	res, _ := eng.Query(q)
	// cdalint:ignore provenance-taint -- fixture exercises the escape hatch
	return &core.Answer{Text: fmt.Sprint(res)}
}
