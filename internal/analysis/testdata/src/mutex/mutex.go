// Package fixture is deliberately broken test input for the
// mutex-hygiene analyzer.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu    sync.RWMutex
	items map[string]int
}

func byValueParam(c counter) int { // copies the lock
	return c.n
}

func (c counter) byValueReceiver() int { // copies the lock
	return c.n
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // copies the lock per iteration
		total += c.n
	}
	return total
}

func assignCopy(a *counter) {
	b := *a // copies the lock
	_ = b
}

// Lock/unlock pairing moved to the unlock-path rule; see the
// unlockpath fixture for release-on-every-path cases.

func goodRead(r *registry, k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items[k]
}

func goodFresh() counter {
	return counter{} // constructing a fresh value is not a copy
}

func suppressedCopy(a *counter) {
	// cdalint:ignore mutex-hygiene -- snapshot copy is read-only by design
	b := *a
	_ = b
}
