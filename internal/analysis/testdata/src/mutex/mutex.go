// Package fixture is deliberately broken test input for the
// mutex-hygiene analyzer.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu    sync.RWMutex
	items map[string]int
}

func byValueParam(c counter) int { // copies the lock
	return c.n
}

func (c counter) byValueReceiver() int { // copies the lock
	return c.n
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // copies the lock per iteration
		total += c.n
	}
	return total
}

func assignCopy(a *counter) {
	b := *a // copies the lock
	_ = b
}

func neverUnlocked(c *counter) int {
	c.mu.Lock() // never released in this function
	return c.n
}

func earlyReturn(c *counter, cond bool) int {
	c.mu.Lock() // leaks when cond is true
	if cond {
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func goodDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func goodExplicit(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func goodRead(r *registry, k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items[k]
}

func goodFresh() counter {
	return counter{} // constructing a fresh value is not a copy
}

func suppressedLock(c *counter) {
	// cdalint:ignore mutex-hygiene -- released by a paired helper
	c.mu.Lock()
}
