// Package fixture is deliberately broken test input for the
// dropped-error analyzer. It never compiles into the module (the go
// tool skips testdata); only internal/analysis tests load it.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func pair() (int, error) { return 0, nil }

func bad() int {
	mayFail()       // bare statement dropping the error
	_ = mayFail()   // blanked error from a call
	n, _ := pair()  // blanked second-position error
	os.Remove("nothing") // stdlib call with ignored error
	return n
}

func good() error {
	var sb strings.Builder
	sb.WriteString("builder writes never fail")
	fmt.Fprintf(&sb, "%d", 1)
	fmt.Println("console output is exempt")
	fmt.Fprintln(os.Stderr, "stderr too")
	if err := mayFail(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	_ = err // blanking a captured variable is allowed
	return nil
}

func suppressed() {
	// cdalint:ignore dropped-error -- fixture demonstrates suppression
	mayFail()
	mayFail() // cdalint:ignore dropped-error -- end-of-line placement
}
