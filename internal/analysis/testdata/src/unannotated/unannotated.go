// Package fixture is deliberately broken test input for the
// unannotated-answer analyzer. It constructs real core.Answer values
// so the check is exercised against the actual audited type.
package fixture

import "github.com/reliable-cda/cda/internal/core"

func bad1() *core.Answer {
	return &core.Answer{Text: "no annotations at all"}
}

func bad2() *core.Answer {
	ans := &core.Answer{}
	ans.Text = "text is not an annotation"
	return ans
}

func goodAbstained() *core.Answer {
	return &core.Answer{Text: "refused", Abstained: true}
}

func goodConfidence() *core.Answer {
	ans := &core.Answer{Text: "x"}
	ans.Confidence = 0.9
	return ans
}

func goodEvidenceField() *core.Answer {
	ans := &core.Answer{Text: "x"}
	ans.Evidence.RawModel = 0.5
	return ans
}

func finalize(a *core.Answer) *core.Answer { return a }

func goodFinalized() *core.Answer {
	ans := &core.Answer{Text: "x"}
	return finalize(ans)
}

func suppressed() *core.Answer {
	// cdalint:ignore unannotated-answer -- fixture demonstrates suppression
	return &core.Answer{Text: "ignored"}
}
