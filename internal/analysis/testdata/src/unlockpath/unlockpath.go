// Package fixture is deliberately broken test input for the
// unlock-path analyzer: lock acquisitions mirroring the session
// store's shard locking, with releases deleted on specific paths.
package fixture

import "sync"

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
}

func neverUnlocked(s *store) int {
	s.mu.Lock() // no release anywhere in the function
	return len(s.items)
}

func earlyReturn(s *store, cond bool) int {
	s.mu.Lock() // leaks when cond is true
	if cond {
		return 0
	}
	n := len(s.items)
	s.mu.Unlock()
	return n
}

func branchMissesUnlock(s *store, k string) int {
	s.mu.Lock() // the miss arm forgets the unlock
	v, ok := s.items[k]
	if ok {
		s.mu.Unlock()
		return v
	}
	return -1
}

func panicPath(s *store, k string) int {
	s.mu.Lock() // the panic escapes with the lock held
	v, ok := s.items[k]
	if !ok {
		panic("missing key: " + k)
	}
	s.mu.Unlock()
	return v
}

func readLeak(s *store, k string) (int, bool) {
	s.rw.RLock() // RLock leaked on the miss branch
	v, ok := s.items[k]
	if !ok {
		return 0, false
	}
	s.rw.RUnlock()
	return v, true
}

func goodDefer(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

func goodBothArms(s *store, k string) int {
	s.mu.Lock()
	v, ok := s.items[k]
	if ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return -1
}

func goodDeferredClosure(s *store) (n int) {
	s.mu.Lock()
	defer func() {
		n = len(s.items)
		s.mu.Unlock()
	}()
	return
}

func goodPanicCovered(s *store, k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.items[k]
	if !ok {
		panic("missing key")
	}
	return v
}

func goodLoopRelock(s *store, keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock()
		total += s.items[k]
		s.mu.Unlock()
	}
	return total
}

func suppressedLock(s *store) {
	// cdalint:ignore unlock-path -- released by the paired helper below
	s.mu.Lock()
}

func pairedUnlock(s *store) {
	s.mu.Unlock()
}
