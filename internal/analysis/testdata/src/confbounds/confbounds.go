// Package fixture is deliberately broken test input for the
// confidence-bounds analyzer: confidence constants outside [0,1] and
// degraded-tier caps that violate the abstention-threshold ordering.
package fixture

const (
	// abstainBelow anchors the ladder comparison.
	abstainBelow = 0.5

	// degradedLowConfidence sits correctly below the threshold.
	degradedLowConfidence = 0.45
	// degradedHighConfidence violates the ordering: a degraded answer
	// would outrank the abstention line.
	degradedHighConfidence = 0.6

	// badConfidence is outside [0,1] outright.
	badConfidence = 2.0

	// threshold is not confidence-named and must never be folded.
	threshold = 3.0
)

type answer struct {
	Confidence float64
	Text       string
}

// bad1: literal field out of range.
func bad1() answer {
	return answer{Confidence: 1.5, Text: "x"}
}

// bad2: negative assignment after construction.
func bad2() answer {
	var a answer
	a.Confidence = -0.25
	return a
}

// badFolded: the type checker folds the expression to 1.5.
func badFolded() answer {
	return answer{Confidence: 2 * 0.75}
}

// good: in-range literal, folded in-range expression, and a
// non-constant score.
func good(score float64) answer {
	a := answer{Confidence: 0.9}
	a.Confidence = 0.5 + 0.25
	a.Confidence = score
	return a
}

// suppressed documents a deliberate out-of-range sentinel.
func suppressed() answer {
	// cdalint:ignore confidence-bounds -- fixture exercises the escape hatch
	return answer{Confidence: -1}
}
