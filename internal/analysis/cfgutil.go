package analysis

import (
	"go/ast"
	"go/types"

	"github.com/reliable-cda/cda/internal/analysis/typestate"
)

// buildCFG constructs the typestate control-flow graph for one
// function body, resolving panic and no-return calls through the
// package's type information.
func buildCFG(p *Package, body *ast.BlockStmt) *typestate.CFG {
	return typestate.Build(body, func(call *ast.CallExpr) typestate.CallKind {
		return classifyCall(p, call)
	})
}

// classifyCall resolves a call's control-flow effect: the builtin
// panic unwinds, a small set of well-known functions never return,
// everything else returns normally.
func classifyCall(p *Package, call *ast.CallExpr) typestate.CallKind {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return typestate.CallPanic
		}
	}
	switch calleeFullName(p, call) {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return typestate.CallNoReturn
	}
	return typestate.CallNormal
}

// funcBody is one analyzable body: a declared function/method or a
// function literal. Literals are separate units because control never
// flows from the enclosing function into them — a closure may run on
// another goroutine or after the enclosing frame returned.
type funcBody struct {
	name string
	body *ast.BlockStmt
}

// funcBodies enumerates every function, method, and function-literal
// body in the package, each exactly once.
func funcBodies(p *Package) []funcBody {
	var out []funcBody
	for _, fd := range funcDecls(p) {
		out = append(out, funcBody{name: fd.Name.Name, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{name: "function literal in " + fd.Name.Name, body: fl.Body})
			}
			return true
		})
	}
	return out
}

// nilCheckedObject decomposes a branch condition of the shape
// `x != nil` / `x == nil` into the identifier's object and whether the
// edge (cond evaluated to truth) proves x is non-nil. ok is false for
// any other condition shape.
func nilCheckedObject(p *Package, cond ast.Expr, truth bool) (obj types.Object, nonNil bool, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin {
		return nil, false, false
	}
	var eq bool
	switch be.Op.String() {
	case "==":
		eq = true
	case "!=":
		eq = false
	default:
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(p, x) {
		x, y = y, x
	}
	if !isNilIdent(p, y) {
		return nil, false, false
	}
	id, isIdent := x.(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	obj = p.Info.Uses[id]
	if obj == nil {
		return nil, false, false
	}
	// x == nil true  → nil;  x == nil false → non-nil
	// x != nil true  → non-nil; x != nil false → nil
	nonNil = eq != truth
	return obj, nonNil, true
}

func isNilIdent(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}
