package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/reliable-cda/cda/internal/analysis/typestate"
)

// ResourceLeak enforces acquire/release pairing over the control-flow
// graph for the two resource shapes the serving layer leaks silently
// when a branch forgets them:
//
//   - file handles: `f, err := os.Open/Create/OpenFile(...)` must
//     reach f.Close() on every path (after the err != nil branch,
//     which the analysis understands — a failed acquire holds
//     nothing);
//   - release callbacks: `release, err := x.Admit(...)` and any other
//     call returning (func(), error) — admission inflight slots and
//     token-bucket reservations — must call or defer release() on
//     every path.
//
// A value that escapes the function (returned, stored in a struct or
// map, passed to another call) transfers ownership and ends tracking;
// mentions inside nested function literals count as escapes for the
// same reason. Releasing under defer covers every path including
// panics.
var ResourceLeak = &Analyzer{
	Name:     ruleResourceLeak,
	Doc:      "an acquired resource (file handle, admission release func) with a path that never releases it",
	Severity: SeverityError,
	Run:      runResourceLeak,
}

const (
	// rlAcquired: the resource is held and unreleased on some path.
	rlAcquired typestate.Facts = 1 << iota
	// rlErrFresh: the error paired with the acquire has not been
	// reassigned, so an err != nil branch still refers to it.
	rlErrFresh
)

// rlKey is one acquisition site.
type rlKey struct {
	obj  types.Object
	pos  token.Pos
	what string
}

// rlTracker accumulates the static maps one body's analysis needs:
// which objects are resources and which error objects pair with which
// acquisitions. Both only grow, so mutating them from transfer
// functions keeps the fixed point monotone.
type rlTracker struct {
	p       *Package
	resKeys map[types.Object][]rlKey
	errKeys map[types.Object][]rlKey
}

func runResourceLeak(p *Package) []Finding {
	var out []Finding
	for _, fb := range funcBodies(p) {
		out = append(out, resourceLeakBody(p, fb)...)
	}
	return out
}

func resourceLeakBody(p *Package, fb funcBody) []Finding {
	tr := &rlTracker{p: p, resKeys: map[types.Object][]rlKey{}, errKeys: map[types.Object][]rlKey{}}
	cfg := buildCFG(p, fb.body)
	res := typestate.Forward(cfg, typestate.Analysis{
		Transfer: tr.transfer,
		Refine: func(cond ast.Expr, truth bool, s typestate.State) {
			obj, nonNil, ok := nilCheckedObject(p, cond, truth)
			if !ok || !nonNil {
				return
			}
			// err is known non-nil on this edge: acquisitions paired
			// with a still-fresh err failed and hold nothing.
			for _, k := range tr.errKeys[obj] {
				if s[k]&rlErrFresh != 0 {
					s.Map(k, func(f typestate.Facts) typestate.Facts { return f &^ rlAcquired })
				}
			}
		},
	})

	var out []Finding
	reported := map[rlKey]bool{}
	flag := func(s typestate.State, what string) {
		for k, facts := range s {
			key, ok := k.(rlKey)
			if !ok || facts&rlAcquired == 0 || reported[key] {
				continue
			}
			reported[key] = true
			out = append(out, Finding{
				Rule: ruleResourceLeak, Severity: SeverityError,
				Pos: p.Fset.Position(key.pos),
				Message: fmt.Sprintf("%s acquired here is not released on every %s; release it on each branch or use defer",
					key.what, what),
			})
		}
	}
	if s := res.AtExit(); s != nil {
		flag(s, "return path")
	}
	if s := res.AtPanic(); s != nil {
		flag(s, "panic path")
	}
	// State maps iterate in random order; findings must not.
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	return out
}

func (tr *rlTracker) transfer(n ast.Node, s typestate.State) {
	benign := map[*ast.Ident]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		tr.assign(as, s, benign)
	}
	tr.scan(n, s, benign)
}

// assign handles acquisition (`res, err := call(...)`) and the
// bookkeeping reassignments break: overwriting a paired err unlinks
// later nil-checks, overwriting a tracked resource ends tracking.
func (tr *rlTracker) assign(as *ast.AssignStmt, s typestate.State, benign map[*ast.Ident]bool) {
	p := tr.p
	// Any assignment to a paired error object makes err != nil checks
	// about the NEW call, not the acquire: drop freshness. Assigning
	// over a tracked resource loses the old handle; tracking ends
	// conservatively rather than guessing.
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if keys := tr.errKeys[obj]; len(keys) > 0 {
			for _, k := range keys {
				s.Map(k, func(f typestate.Facts) typestate.Facts { return f &^ rlErrFresh })
			}
			benign[id] = true
		}
		if keys := tr.resKeys[obj]; len(keys) > 0 {
			for _, k := range keys {
				s.Map(k, func(f typestate.Facts) typestate.Facts { return f &^ rlAcquired })
			}
			benign[id] = true
		}
	}

	resObj, errObj, what, pos, ok := acquireCall(p, as)
	if !ok {
		return
	}
	k := rlKey{obj: resObj, pos: pos, what: what}
	facts := rlAcquired
	if errObj != nil {
		facts |= rlErrFresh
		tr.errKeys[errObj] = append(tr.errKeys[errObj], k)
	}
	s[k] = facts
	tr.resKeys[resObj] = append(tr.resKeys[resObj], k)
	// The acquire's own LHS mentions are definitions, not uses.
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			benign[id] = true
		}
	}
}

// acquireCall matches `res, err := call(...)` where the call returns
// (*os.File, error) or (func(), error).
func acquireCall(p *Package, as *ast.AssignStmt) (resObj, errObj types.Object, what string, pos token.Pos, ok bool) {
	if len(as.Lhs) != 2 || len(as.Rhs) != 1 {
		return nil, nil, "", token.NoPos, false
	}
	call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !isCall {
		return nil, nil, "", token.NoPos, false
	}
	tv, found := p.Info.Types[call]
	if !found {
		return nil, nil, "", token.NoPos, false
	}
	tuple, isTuple := tv.Type.(*types.Tuple)
	if !isTuple || tuple.Len() != 2 || !isErrorType(tuple.At(1).Type()) {
		return nil, nil, "", token.NoPos, false
	}
	rt := tuple.At(0).Type()
	switch {
	case isOSFile(rt):
		what = "file handle"
	case isBareFunc(rt):
		what = "release func"
	default:
		return nil, nil, "", token.NoPos, false
	}
	if name := calleeFullName(p, call); name != "" {
		what += " from " + name
	}
	resID, isIdent := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !isIdent || isBlank(resID) {
		return nil, nil, "", token.NoPos, false
	}
	resObj = p.Info.ObjectOf(resID)
	if resObj == nil {
		return nil, nil, "", token.NoPos, false
	}
	if errID, isIdent := ast.Unparen(as.Lhs[1]).(*ast.Ident); isIdent && !isBlank(errID) {
		errObj = p.Info.ObjectOf(errID)
	}
	return resObj, errObj, what, call.Pos(), true
}

func isOSFile(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		path, name := namedPathName(ptr.Elem())
		return path == "os" && name == "File"
	}
	return false
}

// isBareFunc reports whether t is a niladic no-result func type —
// the shape of release/cleanup callbacks like admission's.
func isBareFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0 && sig.Recv() == nil
}

// scan classifies every mention of a tracked object in the node:
// method calls on the resource (f.Close, f.Write) keep tracking and
// Close releases; calling a tracked func value releases; any other
// mention — argument, return value, composite literal, alias, a use
// inside a nested closure — transfers ownership out of this CFG and
// ends tracking.
func (tr *rlTracker) scan(n ast.Node, s typestate.State, benign map[*ast.Ident]bool) {
	p := tr.p
	clear := func(obj types.Object) {
		for _, k := range tr.resKeys[obj] {
			s.Map(k, func(f typestate.Facts) typestate.Facts { return f &^ rlAcquired })
		}
	}
	typestate.InspectNoFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			id, isIdent := ast.Unparen(fun.X).(*ast.Ident)
			if !isIdent {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || len(tr.resKeys[obj]) == 0 {
				return true
			}
			benign[id] = true
			if fun.Sel.Name == "Close" {
				clear(obj)
			}
		case *ast.Ident:
			obj := p.Info.Uses[fun]
			if obj == nil || len(tr.resKeys[obj]) == 0 {
				return true
			}
			benign[fun] = true
			clear(obj)
		}
		return true
	})
	// Full inspection on purpose: a resource captured by a nested
	// closure outlives this CFG's paths, which is an escape.
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || benign[id] {
			return true
		}
		obj := p.Info.Uses[id]
		if obj != nil && len(tr.resKeys[obj]) > 0 {
			clear(obj)
		}
		return true
	})
}
