package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/reliable-cda/cda/internal/analysis/flow"
	"github.com/reliable-cda/cda/internal/analysis/typestate"
)

// walker applies one CFG node's effects to the lockset state. During
// the solver iterations only the state matters; during the replay pass
// (rec) it also records field accesses, escapes, and recursion into
// function literal bodies, and during summary replay (collect) it
// gathers release-at-entry points.
type walker struct {
	e       *engine
	u       *flow.Unit
	fn      *types.Func
	s       state
	rec     bool
	collect bool
}

// accOpts qualifies one recorded access.
type accOpts struct {
	write  bool
	atomic bool
	escape EscapeKind
	addr   bool
}

// node dispatches one CFG node. The CFG lowers compound statements, so
// nodes are straight-line statements and steering expressions only.
func (w *walker) node(n ast.Node) {
	switch t := n.(type) {
	case *ast.GoStmt:
		w.goStmt(t)
	case *ast.DeferStmt:
		w.deferStmt(t)
	case *ast.ReturnStmt:
		for _, res := range t.Results {
			w.escapeExpr(res, EscapeReturn)
		}
	case *ast.AssignStmt:
		for _, rhs := range t.Rhs {
			w.expr(rhs)
		}
		for _, lhs := range t.Lhs {
			w.writeExpr(lhs)
		}
	case *ast.IncDecStmt:
		w.writeExpr(t.X)
	case *ast.ExprStmt:
		w.expr(t.X)
	case *ast.SendStmt:
		w.expr(t.Chan)
		w.expr(t.Value)
	default:
		if e, ok := n.(ast.Expr); ok {
			w.expr(e)
			return
		}
		w.children(n)
	}
}

// children walks n's direct children through node — one level of
// recursion at a time, so every special case above applies at any
// depth.
func (w *walker) children(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if m == nil {
			return false
		}
		w.node(m)
		return false
	})
}

// expr evaluates one expression for reads, lock events, and literals.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch t := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		w.call(t)
	case *ast.FuncLit:
		// A literal stored or passed outside a spawn context
		// (callback registration, sort comparator, immediate local):
		// conservatively analyzed with the lockset at its position.
		w.lit(t, w.s.clone())
	case *ast.SelectorExpr:
		if !w.access(t, accOpts{}) {
			w.children(t)
		}
	case *ast.UnaryExpr:
		if t.Op == token.AND && w.access(t.X, accOpts{addr: true}) {
			return
		}
		w.expr(t.X)
	default:
		w.children(t)
	}
}

// writeExpr evaluates an assignment target: the deepest field chain is
// a write; writes through an index or a dereference mutate the
// container field's contents and count against it.
func (w *walker) writeExpr(e ast.Expr) {
	switch t := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if !w.access(t, accOpts{write: true}) {
			w.children(t)
		}
	case *ast.IndexExpr:
		w.writeExpr(t.X)
		w.expr(t.Index)
	case *ast.StarExpr:
		w.writeExpr(t.X)
	case *ast.Ident:
		// A plain local/global write with no field involved.
	default:
		w.expr(e)
	}
}

// escapeExpr evaluates a return result or go-call argument: a field
// chain (or its address) leaking whole is recorded with the escape
// kind; anything else is an ordinary evaluation.
func (w *walker) escapeExpr(e ast.Expr, kind EscapeKind) {
	u := ast.Unparen(e)
	if un, ok := u.(*ast.UnaryExpr); ok && un.Op == token.AND {
		if w.access(un.X, accOpts{escape: kind, addr: true}) {
			return
		}
	}
	if sel, ok := u.(*ast.SelectorExpr); ok {
		if w.access(sel, accOpts{escape: kind}) {
			return
		}
	}
	w.expr(e)
}

// call applies one call expression: lock events, sync/atomic
// operations, operand evaluation (with spawn classification for
// literal arguments), and the callee's interprocedural summary.
func (w *walker) call(call *ast.CallExpr) {
	if ev, ok := w.lockEvent(call); ok {
		w.applyLockEvent(ev, false)
		return
	}
	name := calleeName(w.u, call)
	if rest, ok := strings.CutPrefix(name, "sync/atomic."); ok {
		w.atomicCall(call, rest)
		return
	}
	targets := w.e.callTargets(w.u, call)
	spawn := false
	for _, tg := range targets {
		if isParallelPkg(tg) {
			spawn = true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Immediately invoked: runs here, under the current lockset.
		w.lit(fun, w.s.clone())
	case *ast.SelectorExpr:
		if !w.access(fun, accOpts{}) {
			w.children(fun)
		}
	default:
		w.expr(call.Fun)
	}
	for _, arg := range call.Args {
		if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			if spawn {
				// Worker-pool submission: the literal runs on another
				// goroutine — locks held here do not protect it.
				w.lit(fl, state{})
			} else {
				w.lit(fl, w.s.clone())
			}
			continue
		}
		w.expr(arg)
	}
	w.applySummaries(call, targets)
}

// goStmt is a spawn point: literals run with an empty lockset, and
// every field chain handed to the call escapes to the new goroutine.
// The spawned call's lock effects happen over there — no summary is
// applied to this goroutine's state.
func (w *walker) goStmt(g *ast.GoStmt) {
	call := g.Call
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		w.lit(fun, state{})
	case *ast.SelectorExpr:
		if !w.access(fun, accOpts{escape: EscapeGo}) {
			w.children(fun)
		}
	default:
		w.expr(call.Fun)
	}
	for _, arg := range call.Args {
		if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.lit(fl, state{})
			continue
		}
		w.escapeExpr(arg, EscapeGo)
	}
}

// deferStmt applies a deferred call's release effects at registration
// (the CFG keeps defers as plain nodes): a direct unlock, every unlock
// inside a deferred closure, or a deferred helper whose summary
// releases. Held locks covered this way stay held to the end of the
// function but are excluded from the exit summary.
func (w *walker) deferStmt(d *ast.DeferStmt) {
	call := d.Call
	if ev, ok := w.lockEvent(call); ok {
		w.applyLockEvent(ev, true)
		return
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		typestate.InspectNoFuncLit(fl.Body, func(m ast.Node) bool {
			if inner, ok := m.(*ast.CallExpr); ok {
				if ev, ok := w.lockEvent(inner); ok && ev.unlock {
					w.applyLockEvent(ev, true)
				}
			}
			return true
		})
		// The closure body itself runs at function exit with (at
		// least) the lockset of the registration point.
		w.lit(fl, w.s.clone())
		return
	}
	for _, tg := range w.e.callTargets(w.u, call) {
		sum := w.e.sums[tg]
		if sum == nil {
			continue
		}
		for pt := range sum.Releases {
			k, ok := w.mapPoint(call, pt)
			if !ok {
				continue
			}
			if f, isHeld := w.s[k]; isHeld && f&held != 0 {
				w.s[k] = f | deferredRelease
			}
		}
	}
	// Receiver and arguments are evaluated at registration time.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if !w.access(fun, accOpts{}) {
			w.children(fun)
		}
	default:
		w.expr(call.Fun)
	}
	for _, arg := range call.Args {
		w.expr(arg)
	}
}

// lit analyzes a function literal body as its own CFG, attributed to
// the enclosing declared function, with the given entry lockset.
// Literal bodies are only walked during the recording pass; they never
// contribute to summaries.
func (w *walker) lit(fl *ast.FuncLit, entry state) {
	if !w.rec {
		return
	}
	cfg := typestate.Build(fl.Body, func(call *ast.CallExpr) typestate.CallKind {
		return classifyCall(w.u, call)
	})
	w.e.solveAndReplay(w.u, w.fn, cfg, entry, true)
}

// lockEvent classifies a call as a sync.Mutex/sync.RWMutex operation
// on a resolvable object chain. The key deliberately ignores the
// read/write mode: for guard purposes RLock counts as held (a write
// under RLock is a real race this analysis does not model; see
// DESIGN.md).
type lockEvent struct {
	k      key
	unlock bool
}

func (w *walker) lockEvent(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var unlock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return lockEvent{}, false
	}
	tv, ok := w.u.Info.Types[sel.X]
	if !ok {
		return lockEvent{}, false
	}
	if _, isMutex := mutexType(tv.Type); !isMutex {
		return lockEvent{}, false
	}
	root, path, ok := exprKey(w.u, sel.X)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{k: key{root: root, path: path}, unlock: unlock}, true
}

// applyLockEvent updates the state for one lock operation. An unlock
// of a never-acquired mutex is this function's release-at-entry
// obligation — exported in the summary when caller-mappable.
func (w *walker) applyLockEvent(ev lockEvent, deferred bool) {
	if !ev.unlock {
		w.s[ev.k] |= held
		return
	}
	if f, isHeld := w.s[ev.k]; isHeld && f&held != 0 {
		if deferred {
			w.s[ev.k] = f | deferredRelease
		} else {
			delete(w.s, ev.k)
		}
		return
	}
	if w.collect {
		if pt, ok := pointFor(w.fn, ev.k); ok {
			w.e.curReleases[pt] = true
		}
	}
}

// atomicCall records the sync/atomic access to &x.f and evaluates the
// remaining operands normally.
func (w *walker) atomicCall(call *ast.CallExpr, fname string) {
	write := !strings.HasPrefix(fname, "Load")
	for i, arg := range call.Args {
		if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND && i == 0 {
			if w.access(un.X, accOpts{atomic: true, write: write, addr: true}) {
				continue
			}
		}
		w.expr(arg)
	}
}

// applySummaries maps each target's lock summary through the call
// operands into the caller's frame: releases first (delete held keys,
// or propagate the obligation when the key was never held), then
// acquires. Interface calls apply the union of all known
// implementations — a documented over-approximation.
func (w *walker) applySummaries(call *ast.CallExpr, targets []*types.Func) {
	for _, tg := range targets {
		sum := w.e.sums[tg]
		if sum == nil {
			continue
		}
		for pt := range sum.Releases {
			k, ok := w.mapPoint(call, pt)
			if !ok {
				continue
			}
			if f, isHeld := w.s[k]; isHeld && f&held != 0 {
				delete(w.s, k)
			} else if w.collect {
				if mp, ok := pointFor(w.fn, k); ok {
					w.e.curReleases[mp] = true
				}
			}
		}
		for pt := range sum.Acquires {
			k, ok := w.mapPoint(call, pt)
			if !ok {
				continue
			}
			w.s[k] |= held
		}
	}
}

// mapPoint translates a callee summary point into a caller state key
// through a specific call: globals pass through; receiver and
// parameter points resolve the corresponding operand's object chain
// and append the point's path.
func (w *walker) mapPoint(call *ast.CallExpr, pt Point) (key, bool) {
	if pt.Idx == PointGlobal {
		return key{root: pt.Obj, path: pt.Path}, true
	}
	var operand ast.Expr
	if pt.Idx == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return key{}, false
		}
		operand = sel.X
	} else {
		if pt.Idx >= len(call.Args) {
			return key{}, false
		}
		operand = call.Args[pt.Idx]
	}
	if un, ok := ast.Unparen(operand).(*ast.UnaryExpr); ok && un.Op == token.AND {
		// &x as a lock-carrying operand is the same object as x.
		operand = un.X
	}
	root, path, ok := exprKey(w.u, operand)
	if !ok {
		return key{}, false
	}
	return key{root: root, path: joinPath(path, pt.Path)}, true
}

// exprKey resolves an object chain to (root object, dotted field
// path): s.mu → (s, "mu"); mu → (mu, ""); (*c).state.mu →
// (c, "state.mu"). Chains through calls or index expressions are not
// resolvable.
func exprKey(u *flow.Unit, e ast.Expr) (types.Object, string, bool) {
	var parts []string
	cur := ast.Unparen(e)
	for {
		switch t := cur.(type) {
		case *ast.Ident:
			obj := u.Info.ObjectOf(t)
			if obj == nil {
				return nil, "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return obj, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, t.Sel.Name)
			cur = ast.Unparen(t.X)
		case *ast.StarExpr:
			cur = ast.Unparen(t.X)
		default:
			return nil, "", false
		}
	}
}

// access records e as a shared-field access when it is a resolvable
// field chain, returning whether it was one (recorded or not) so
// callers know not to descend further — a chain never contains calls.
//
// Filters, in order: the deepest consecutive field path from the root
// is taken (reading s.a.b counts against a.b, not a); the root must
// be a variable — and not a local bound to a freshly constructed
// object, whose accesses are pre-publication by construction; fields
// that synchronize themselves (sync.*, typed atomics, channels) are
// skipped; the root's type must be a named struct so accesses unify
// module-wide by (type, path).
func (w *walker) access(e ast.Expr, o accOpts) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	root, path, ftype, ok := w.fieldChain(sel)
	if !ok {
		return false
	}
	if !w.rec {
		return true
	}
	if w.e.fresh[root] || skipFieldType(ftype) {
		return true
	}
	named := namedOf(root.Type())
	if named == nil {
		return true
	}
	full, short := typeDisplay(named)
	gk := GroupKey{Type: full, Path: path}
	grp := w.e.groups[gk]
	if grp == nil {
		grp = &Group{Key: gk, Display: short + "." + path, Ref: refType(ftype)}
		w.e.groups[gk] = grp
	}
	a := &Access{
		Unit: w.u, Fn: w.fn, Pos: sel.Pos(),
		Write: o.write, Escape: o.escape, Addr: o.addr,
		Held: w.heldFor(root),
	}
	if o.atomic {
		grp.Atomics = append(grp.Atomics, a)
	} else {
		grp.Accesses = append(grp.Accesses, a)
	}
	return true
}

// fieldChain resolves the deepest consecutive field path of a selector
// chain: root variable, dotted path, and the final field's type.
// Trailing method selections are trimmed (m.breaker.Allow →
// (m, "breaker")); a package qualifier shifts the root to the
// package-level variable it names.
func (w *walker) fieldChain(e ast.Expr) (*types.Var, string, types.Type, bool) {
	var sels []*ast.SelectorExpr
	cur := ast.Unparen(e)
spine:
	for {
		switch t := cur.(type) {
		case *ast.SelectorExpr:
			sels = append(sels, t)
			cur = ast.Unparen(t.X)
		case *ast.StarExpr:
			cur = ast.Unparen(t.X)
		default:
			break spine
		}
	}
	id, ok := cur.(*ast.Ident)
	if !ok || len(sels) == 0 {
		return nil, "", nil, false
	}
	root := w.u.Info.ObjectOf(id)
	for i, j := 0, len(sels)-1; i < j; i, j = i+1, j-1 {
		sels[i], sels[j] = sels[j], sels[i]
	}
	if _, isPkg := root.(*types.PkgName); isPkg {
		// pkg.Var.field...: the first selector names the variable.
		root = w.u.Info.ObjectOf(sels[0].Sel)
		sels = sels[1:]
	}
	v, ok := root.(*types.Var)
	if !ok || len(sels) == 0 {
		return nil, "", nil, false
	}
	var parts []string
	var ftype types.Type
	for _, sel := range sels {
		fv, isVar := w.u.Info.ObjectOf(sel.Sel).(*types.Var)
		if !isVar || !fv.IsField() {
			break
		}
		parts = append(parts, fv.Name())
		ftype = fv.Type()
	}
	if len(parts) == 0 {
		return nil, "", nil, false
	}
	return v, strings.Join(parts, "."), ftype, true
}

// heldFor snapshots the lock field paths held (must) on the same root
// object at this point — the Eraser-style same-object lockset.
func (w *walker) heldFor(root types.Object) map[string]bool {
	out := map[string]bool{}
	for k, f := range w.s {
		if k.root == root && f&held != 0 {
			out[k.path] = true
		}
	}
	return out
}

// freshLocals finds locals bound to freshly constructed objects —
// composite literals, &composite, new(T) — anywhere in a declared
// function body (literals included). Accesses rooted at such a local
// are pre-publication writes in a constructor shape and are excluded
// from guard inference; a fresh local later rebound to shared state
// stays excluded, a documented unsound corner.
func freshLocals(u *flow.Unit, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(name ast.Expr, value ast.Expr) {
		id, ok := ast.Unparen(name).(*ast.Ident)
		if !ok || !freshExpr(value) {
			return
		}
		if obj := u.Info.ObjectOf(id); obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Lhs) == len(t.Rhs) {
				for i := range t.Lhs {
					mark(t.Lhs[i], t.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(t.Names) == len(t.Values) {
				for i := range t.Names {
					mark(t.Names[i], t.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// freshExpr reports whether e constructs a new object: T{...},
// &T{...}, or new(T).
func freshExpr(e ast.Expr) bool {
	switch t := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			_, ok := ast.Unparen(t.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
