// Package lockset implements the interprocedural lockset engine under
// the cdarace rule family (racy-access, atomic-plain-mix,
// guard-escape): a module-wide static race analysis that composes the
// flow package's call graph with the typestate package's per-function
// control-flow graphs.
//
// The analysis has three layers:
//
//  1. A MUST-lockset dataflow per function body: at every program
//     point, the set of mutexes that are held on EVERY path reaching
//     it. Joins are intersections (the dual of the typestate powerset
//     rules — a lock held on only one incoming path does not guard
//     anything), Lock/RLock adds a key, Unlock/RUnlock removes it,
//     and a deferred unlock keeps the lock held for the remainder of
//     the function while excluding it from the exit summary.
//
//  2. Interprocedural lock summaries, iterated to a fixed point over
//     the call graph: a function that acquires a mutex reachable from
//     its receiver, a parameter, or a package-level variable and still
//     holds it at exit exports an Acquires point; a function that
//     releases a mutex it never acquired exports a Releases point.
//     Call sites map the callee's points back through the receiver and
//     argument expressions, so lock()/unlock() helper pairs — and
//     helpers calling helpers — keep the caller's lockset exact.
//
//  3. Guard inference, field by field: every read or write of a
//     struct field reachable from a receiver, parameter, or global is
//     recorded together with the same-object locks held at that point.
//     A field whose accesses are dominantly (>= 3/4, and at least 2)
//     under one mutex is inferred "guarded by" it; the rules built on
//     top flag the minority accesses that touch the field with the
//     lockset empty.
//
// Goroutine spawn points clear the lockset: a function literal behind
// a `go` statement, or handed to the internal/parallel worker pools,
// is analyzed with an empty entry lockset — locks held at the spawn
// site do not protect the code that runs on the other goroutine.
// Other literals (deferred closures, sort.Slice comparators, immediate
// calls) inherit the lockset at their syntactic position. Accesses
// whose base object is a plain local variable are excluded entirely:
// a freshly constructed object is unshared until it escapes, so
// constructor writes never dilute guard inference.
//
// Like flow and typestate, the package is stdlib-only and documents
// its unsound corners instead of chasing them (see DESIGN.md "Lockset
// analysis"): aliasing through locals is invisible, a write under
// RLock counts as guarded, and interface calls apply the union of all
// known implementations' summaries.
package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/analysis/flow"
	"github.com/reliable-cda/cda/internal/analysis/typestate"
)

// maxRounds bounds the summary fixed point. Acquire propagation alone
// is monotone, but Releases can shrink downstream locksets, so the
// combined iteration is cut off deterministically rather than proven
// convergent; real modules stabilize in two or three rounds.
const maxRounds = 8

// parallelPkgSuffix identifies the deterministic worker-pool package.
// Function literals handed to it run on other goroutines, so they are
// lockset-clearing spawn points exactly like go statements.
const parallelPkgSuffix = "/internal/parallel"

// key identifies one mutex as seen from inside a function body: the
// root object (receiver, parameter, global, or local) plus the dotted
// field path down to the sync.Mutex/RWMutex.
type key struct {
	root types.Object
	path string
}

// facts is the per-key dataflow state.
type facts uint8

const (
	// held: the lock is held on every path reaching this point.
	held facts = 1 << iota
	// deferredRelease: a deferred unlock covers the lock — it stays
	// held to the end of the function but is released when the
	// function returns, so it must not appear in the exit summary.
	deferredRelease
)

// state is the must-lockset at one program point.
type state map[key]facts

func (s state) clone() state {
	out := make(state, len(s))
	for k, f := range s {
		out[k] = f
	}
	return out
}

// meet intersects o into s — the must-analysis join — and reports
// whether s changed. A key survives only when held on both sides; a
// deferred release on either side is remembered (conservative for the
// exit summary: the lock will not outlive the function).
func (s state) meet(o state) bool {
	changed := false
	for k, f := range s {
		of, ok := o[k]
		if !ok || of&held == 0 {
			delete(s, k)
			changed = true
			continue
		}
		nf := f | (of & deferredRelease)
		if nf != f {
			s[k] = nf
			changed = true
		}
	}
	return changed
}

// PointGlobal marks a Point rooted at a package-level variable.
const PointGlobal = -2

// Point is one caller-mappable mutex in a function summary: rooted at
// the receiver (Idx -1), a parameter (Idx >= 0), or a package-level
// variable (Idx PointGlobal, Obj set), with the field path to the
// mutex.
type Point struct {
	Idx  int
	Path string
	Obj  types.Object
}

// Summary is one function's interprocedural lock behaviour.
type Summary struct {
	// Acquires are mutexes the function locks and still holds on every
	// normal return (lock() helpers).
	Acquires map[Point]bool
	// Releases are mutexes the function unlocks without having locked
	// them itself (unlock() helpers).
	Releases map[Point]bool
}

func newSummary() *Summary {
	return &Summary{Acquires: map[Point]bool{}, Releases: map[Point]bool{}}
}

func summaryEqual(a, b *Summary) bool {
	if len(a.Acquires) != len(b.Acquires) || len(a.Releases) != len(b.Releases) {
		return false
	}
	for p := range a.Acquires {
		if !b.Acquires[p] {
			return false
		}
	}
	for p := range a.Releases {
		if !b.Releases[p] {
			return false
		}
	}
	return true
}

// EscapeKind classifies how a field access leaks its reference.
type EscapeKind int

const (
	// EscapeNone: an ordinary read or write.
	EscapeNone EscapeKind = iota
	// EscapeReturn: the field itself (or its address) is a return
	// result — the reference outlives any lock region.
	EscapeReturn
	// EscapeGo: the field is passed as an argument to a go statement's
	// call — the reference crosses a goroutine boundary.
	EscapeGo
)

// Access is one recorded read or write of a shared struct field.
type Access struct {
	Unit   *flow.Unit
	Fn     *types.Func // enclosing declared function (literals included)
	Pos    token.Pos
	Write  bool
	Escape EscapeKind
	// Addr marks address-of accesses (&x.f): the reference itself was
	// taken, so an escape aliases the field even when its type is not
	// a pointer/slice/map.
	Addr bool
	// Held are the same-root-object lock field paths held (must) at
	// the access.
	Held map[string]bool
}

// GroupKey identifies a field across the module: the fully qualified
// root struct type plus the dotted field path.
type GroupKey struct {
	Type string
	Path string
}

// Group collects every access to one field, with the inferred guard.
type Group struct {
	Key GroupKey
	// Display renders the field for diagnostics ("member.cursors").
	Display string
	// Accesses are the plain (non-atomic) reads and writes, in
	// deterministic order.
	Accesses []*Access
	// Atomics are accesses through sync/atomic functions.
	Atomics []*Access
	// Guard is the inferred guarding mutex field path ("" when no
	// dominant guard exists); Guarded counts accesses holding it.
	Guard   string
	Guarded int
	// Ref marks pointer/slice/map fields — the ones whose escape
	// aliases guarded state.
	Ref bool
}

// Result is the module-wide analysis output the cdarace rules consume.
type Result struct {
	// Summaries maps every declared function to its lock summary.
	Summaries map[*types.Func]*Summary
	// Groups lists every accessed shared field, sorted by GroupKey.
	Groups []*Group
}

// engine carries the per-run state.
type engine struct {
	g      *flow.Graph
	sums   map[*types.Func]*Summary
	cfgs   map[*types.Func]*typestate.CFG
	groups map[GroupKey]*Group

	// curReleases collects release-at-entry points while replaying one
	// declared function during summary computation.
	curFn       *types.Func
	curReleases map[Point]bool

	// fresh holds the current declared function's freshly constructed
	// locals during the recording pass.
	fresh map[types.Object]bool
}

// Analyze runs the full lockset analysis over the module graph.
func Analyze(g *flow.Graph) *Result {
	e := &engine{
		g:      g,
		sums:   map[*types.Func]*Summary{},
		cfgs:   map[*types.Func]*typestate.CFG{},
		groups: map[GroupKey]*Group{},
	}
	fns := e.sortedFuncs()
	for _, fn := range fns {
		e.sums[fn] = newSummary()
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range fns {
			ns := e.computeSummary(fn)
			if !summaryEqual(e.sums[fn], ns) {
				e.sums[fn] = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range fns {
		info := e.g.Funcs[fn]
		e.fresh = freshLocals(info.Unit, info.Decl.Body)
		e.analyzeBody(info.Unit, fn, info.Decl.Body, state{}, true)
	}
	e.fresh = nil
	return e.result()
}

// sortedFuncs orders the graph's functions deterministically.
func (e *engine) sortedFuncs() []*types.Func {
	fns := make([]*types.Func, 0, len(e.g.Funcs))
	for fn := range e.g.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		a, b := fns[i], fns[j]
		if a.FullName() != b.FullName() {
			return a.FullName() < b.FullName()
		}
		return a.Pos() < b.Pos()
	})
	return fns
}

// cfgFor builds (and caches) the CFG of a declared function.
func (e *engine) cfgFor(fn *types.Func) *typestate.CFG {
	if cfg, ok := e.cfgs[fn]; ok {
		return cfg
	}
	info := e.g.Funcs[fn]
	cfg := typestate.Build(info.Decl.Body, func(call *ast.CallExpr) typestate.CallKind {
		return classifyCall(info.Unit, call)
	})
	e.cfgs[fn] = cfg
	return cfg
}

// computeSummary derives one function's summary from the current
// round's callee summaries: solve the must-lockset to a fixed point,
// then replay once to collect release-at-entry points and read the
// exit lockset.
func (e *engine) computeSummary(fn *types.Func) *Summary {
	info := e.g.Funcs[fn]
	cfg := e.cfgFor(fn)
	e.curFn, e.curReleases = fn, map[Point]bool{}
	exit := e.solveAndReplay(info.Unit, fn, cfg, state{}, false)
	sum := newSummary()
	for k, f := range exit {
		if f&held == 0 || f&deferredRelease != 0 {
			continue
		}
		if pt, ok := pointFor(fn, k); ok {
			sum.Acquires[pt] = true
		}
	}
	for pt := range e.curReleases {
		sum.Releases[pt] = true
	}
	e.curFn, e.curReleases = nil, nil
	return sum
}

// analyzeBody runs the recording pass over one declared function:
// solve, then replay with access recording on. Literal bodies found
// during the replay are analyzed recursively by the walker with entry
// locksets per their spawn classification.
func (e *engine) analyzeBody(u *flow.Unit, fn *types.Func, body *ast.BlockStmt, entry state, rec bool) {
	e.solveAndReplay(u, fn, e.cfgFor(fn), entry, rec)
}

// solveAndReplay computes the fixed point over the CFG, then replays
// every reachable block once with its converged in-state, returning
// the state at the normal exit.
func (e *engine) solveAndReplay(u *flow.Unit, fn *types.Func, cfg *typestate.CFG, entry state, rec bool) state {
	in := map[*typestate.Block]state{cfg.Entry: entry.clone()}
	queue := []*typestate.Block{cfg.Entry}
	queued := map[*typestate.Block]bool{cfg.Entry: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		s := in[b].clone()
		w := &walker{e: e, u: u, fn: fn, s: s}
		for _, n := range b.Nodes {
			w.node(n)
		}
		for _, edge := range b.Succs {
			tgt, ok := in[edge.To]
			if !ok {
				in[edge.To] = s.clone()
			} else if !tgt.meet(s) {
				continue
			}
			if !queued[edge.To] {
				queued[edge.To] = true
				queue = append(queue, edge.To)
			}
		}
	}
	// Replay in block order: deterministic, one visit per node, with
	// recording (accesses, literal bodies, summary releases) enabled.
	for _, b := range cfg.Blocks {
		s, ok := in[b]
		if !ok {
			continue // unreachable
		}
		w := &walker{e: e, u: u, fn: fn, s: s.clone(), rec: rec, collect: e.curReleases != nil}
		for _, n := range b.Nodes {
			w.node(n)
		}
	}
	exit, ok := in[cfg.Exit]
	if !ok {
		return nil
	}
	return exit
}

// pointFor maps a lock key to a caller-mappable summary point:
// receiver, parameter, or package-level variable. Locals are not
// mappable.
func pointFor(fn *types.Func, k key) (Point, bool) {
	idx, ok := rootClass(fn, k.root)
	if !ok {
		return Point{}, false
	}
	pt := Point{Idx: idx, Path: k.path}
	if idx == PointGlobal {
		pt.Obj = k.root
	}
	return pt, true
}

// rootClass classifies an object against a declared function's frame:
// receiver (-1), parameter index, or PointGlobal for package-level
// variables. Everything else — locals, named results, literal params —
// is not caller-mappable.
func rootClass(fn *types.Func, obj types.Object) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	if recv := sig.Recv(); recv != nil && obj == recv {
		return -1, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if obj == sig.Params().At(i) {
			return i, true
		}
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return PointGlobal, true
	}
	return 0, false
}

// result assembles the sorted groups with guards inferred.
func (e *engine) result() *Result {
	groups := make([]*Group, 0, len(e.groups))
	for _, grp := range e.groups {
		inferGuard(grp)
		groups = append(groups, grp)
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if a.Key.Type != b.Key.Type {
			return a.Key.Type < b.Key.Type
		}
		return a.Key.Path < b.Key.Path
	})
	return &Result{Summaries: e.sums, Groups: groups}
}

// inferGuard picks the dominant-majority lock for one field: the most
// frequently held same-object mutex, provided it covers at least two
// accesses and at least 3/4 of them. Ties break lexicographically so
// the result is deterministic.
func inferGuard(grp *Group) {
	counts := map[string]int{}
	for _, a := range grp.Accesses {
		for p := range a.Held {
			counts[p]++
		}
	}
	paths := make([]string, 0, len(counts))
	for p := range counts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	best, bestN := "", 0
	for _, p := range paths {
		if counts[p] > bestN {
			best, bestN = p, counts[p]
		}
	}
	if bestN >= 2 && bestN*4 >= len(grp.Accesses)*3 {
		grp.Guard, grp.Guarded = best, bestN
	}
}

// classifyCall resolves a call's control-flow effect for the CFG
// builder — the builtin panic unwinds, the conventional never-return
// functions terminate the block. Mirrors the analysis package's
// classifier, which lockset cannot import.
func classifyCall(u *flow.Unit, call *ast.CallExpr) typestate.CallKind {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := u.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return typestate.CallPanic
		}
	}
	switch calleeName(u, call) {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return typestate.CallNoReturn
	}
	return typestate.CallNormal
}

// calleeName returns the full name of the called declared function
// ("sync/atomic.AddInt64", "(*sync.Mutex).Lock"), or "".
func calleeName(u *flow.Unit, call *ast.CallExpr) string {
	if fn := calleeFunc(u, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil.
func calleeFunc(u *flow.Unit, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := u.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// callTargets resolves a call to its declared targets, adding every
// known implementation when the callee is an interface method.
func (e *engine) callTargets(u *flow.Unit, call *ast.CallExpr) []*types.Func {
	callee := calleeFunc(u, call)
	if callee == nil {
		return nil
	}
	targets := []*types.Func{callee}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		targets = append(targets, e.g.Impls[callee]...)
	}
	return targets
}

// joinPath concatenates two dotted field paths.
func joinPath(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "." + b
}

// namedOf unwraps one pointer level and returns the named type, or
// nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeDisplay renders a named type for GroupKey ("pkg/path.T") and
// diagnostics ("T").
func typeDisplay(n *types.Named) (full, short string) {
	obj := n.Obj()
	short = obj.Name()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + short, short
	}
	return short, short
}

// skipFieldType excludes fields that synchronize themselves (sync.*,
// sync/atomic.* values, channels) from access tracking: the mutexes
// ARE the guards, typed atomics are race-free by construction, and
// channel operations order themselves.
func skipFieldType(t types.Type) bool {
	if t == nil {
		return true
	}
	if named := namedOf(t); named != nil && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() {
		case "sync", "sync/atomic":
			return true
		}
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return false
}

// refType reports whether escaping the field aliases shared state:
// pointers, slices, and maps.
func refType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex,
// unwrapping one pointer level.
func mutexType(t types.Type) (rw bool, ok bool) {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch named.Obj().Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// isParallelPkg reports whether fn is declared in the worker-pool
// package whose callbacks run on spawned goroutines.
func isParallelPkg(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), parallelPkgSuffix)
}
