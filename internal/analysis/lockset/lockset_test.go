package lockset

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/analysis/flow"
)

// analyzeSrc type-checks one synthetic source file (stdlib imports
// allowed — the fixtures use sync and sync/atomic) and runs the full
// lockset analysis over it.
func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	u := &flow.Unit{Path: "fixture", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
	return Analyze(flow.BuildGraph([]*flow.Unit{u}))
}

// groupByPath finds the group for a field path on any type.
func groupByPath(t *testing.T, res *Result, path string) *Group {
	t.Helper()
	for _, g := range res.Groups {
		if g.Key.Path == path {
			return g
		}
	}
	var have []string
	for _, g := range res.Groups {
		have = append(have, g.Key.Type+"."+g.Key.Path)
	}
	t.Fatalf("no group with path %q; have %v", path, have)
	return nil
}

// describe renders a group's accesses compactly for assertions:
// "r12" = read at line 12 guarded, "W7!" = write at line 7 unguarded.
func describe(res *Result, g *Group, fset *token.FileSet) string {
	var parts []string
	for _, a := range g.Accesses {
		c := "r"
		if a.Write {
			c = "W"
		}
		s := fmt.Sprintf("%s%d", c, fset.Position(a.Pos).Line)
		if g.Guard != "" && !a.Held[g.Guard] {
			s += "!"
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func TestGuardInferenceBasic(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) double() {
	c.mu.Lock()
	c.n = c.n * 2
	c.mu.Unlock()
}

func (c *counter) peek() int {
	return c.n // racy
}
`)
	g := groupByPath(t, res, "n")
	if g.Guard != "mu" {
		t.Fatalf("guard = %q, want mu (accesses: %d, guarded: %d)", g.Guard, len(g.Accesses), g.Guarded)
	}
	unguarded := 0
	for _, a := range g.Accesses {
		if !a.Held[g.Guard] {
			unguarded++
			if a.Write {
				t.Errorf("unguarded access at %v should be the peek read", a.Pos)
			}
		}
	}
	if unguarded != 1 {
		t.Errorf("unguarded accesses = %d, want 1 (the peek)", unguarded)
	}
}

func TestInterproceduralLockHelpers(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type store struct {
	mu    sync.Mutex
	items map[string]int
}

func (s *store) lock()   { s.mu.Lock() }
func (s *store) unlock() { s.mu.Unlock() }

func (s *store) put(k string, v int) {
	s.lock()
	s.items[k] = v
	s.unlock()
}

func (s *store) get(k string) int {
	s.lock()
	defer s.unlock()
	return s.items[k]
}

func (s *store) size() int {
	s.lock()
	n := len(s.items)
	s.unlock()
	return n
}

func (s *store) raw() map[string]int {
	return s.items // racy AND escapes
}
`)
	g := groupByPath(t, res, "items")
	if g.Guard != "mu" {
		t.Fatalf("guard through lock()/unlock() helpers = %q, want mu (guarded %d of %d)",
			g.Guard, g.Guarded, len(g.Accesses))
	}
	if g.Guarded != len(g.Accesses)-1 {
		t.Errorf("guarded = %d, want %d", g.Guarded, len(g.Accesses)-1)
	}
	if !g.Ref {
		t.Errorf("map field should be Ref")
	}
	escapes := 0
	for _, a := range g.Accesses {
		if a.Escape == EscapeReturn && !a.Held[g.Guard] {
			escapes++
		}
	}
	if escapes != 1 {
		t.Errorf("unguarded escaping returns = %d, want 1", escapes)
	}
}

func TestGoroutineSpawnClearsLockset(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type pool struct {
	mu   sync.Mutex
	jobs []string
}

func (p *pool) run(done chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.jobs = append(p.jobs, "a")
	p.jobs = append(p.jobs, "b")
	if len(p.jobs) > 0 {
		p.jobs = p.jobs[1:]
	}
	go func() {
		p.jobs = nil // spawned: lockset must be empty here
		close(done)
	}()
}
`)
	g := groupByPath(t, res, "jobs")
	if g.Guard != "mu" {
		t.Fatalf("guard = %q, want mu", g.Guard)
	}
	unguarded := 0
	for _, a := range g.Accesses {
		if !a.Held["mu"] {
			unguarded++
		}
	}
	if unguarded != 1 {
		fset := g.Accesses[0].Unit.Fset
		t.Errorf("unguarded = %d, want exactly 1 (inside the go literal); %s",
			unguarded, describe(res, g, fset))
	}
}

func TestDeferredClosureInheritsLockset(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type box struct {
	mu  sync.Mutex
	val int
}

func (b *box) set(v int) {
	b.mu.Lock()
	b.val = v
	b.mu.Unlock()
}

func (b *box) swap(v int) (old int) {
	b.mu.Lock()
	defer func() {
		b.val = v // deferred closure: still under mu
		b.mu.Unlock()
	}()
	return b.val
}

func (b *box) bump() {
	b.mu.Lock()
	b.val++
	b.mu.Unlock()
}
`)
	g := groupByPath(t, res, "val")
	if g.Guard != "mu" {
		t.Fatalf("guard = %q, want mu", g.Guard)
	}
	for _, a := range g.Accesses {
		if !a.Held["mu"] {
			t.Errorf("access at offset %d not under mu; all should be guarded", a.Pos)
		}
	}
}

func TestAtomicAndPlainMix(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync/atomic"

type stats struct {
	hits int64
}

func (s *stats) hit()         { atomic.AddInt64(&s.hits, 1) }
func (s *stats) load() int64  { return atomic.LoadInt64(&s.hits) }
func (s *stats) reset()       { s.hits = 0 } // plain write mixing with atomics
`)
	g := groupByPath(t, res, "hits")
	if len(g.Atomics) != 2 {
		t.Errorf("atomic accesses = %d, want 2", len(g.Atomics))
	}
	if len(g.Accesses) != 1 || !g.Accesses[0].Write {
		t.Errorf("plain accesses = %d (want 1 write)", len(g.Accesses))
	}
}

func TestFreshLocalsExcluded(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type thing struct {
	mu sync.Mutex
	v  int
}

func newThing() *thing {
	t := &thing{}
	t.v = 1 // pre-publication: must not count
	t.v = 2
	t.v = 3
	return t
}

func (t *thing) set(v int) {
	t.mu.Lock()
	t.v = v
	t.mu.Unlock()
}

func (t *thing) get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v
}
`)
	g := groupByPath(t, res, "v")
	if len(g.Accesses) != 2 {
		t.Fatalf("accesses = %d, want 2 (constructor writes excluded)", len(g.Accesses))
	}
	if g.Guard != "mu" {
		t.Errorf("guard = %q, want mu", g.Guard)
	}
}

func TestSummariesExported(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type gate struct {
	mu sync.Mutex
}

func (g *gate) lock()   { g.mu.Lock() }
func (g *gate) unlock() { g.mu.Unlock() }
func (g *gate) both()   { g.mu.Lock(); g.mu.Unlock() }
`)
	byName := map[string]*Summary{}
	for fn, sum := range res.Summaries {
		byName[fn.Name()] = sum
	}
	if len(byName["lock"].Acquires) != 1 || len(byName["lock"].Releases) != 0 {
		t.Errorf("lock summary = %+v, want one acquire", byName["lock"])
	}
	if len(byName["unlock"].Releases) != 1 || len(byName["unlock"].Acquires) != 0 {
		t.Errorf("unlock summary = %+v, want one release", byName["unlock"])
	}
	if len(byName["both"].Acquires) != 0 || len(byName["both"].Releases) != 0 {
		t.Errorf("both summary = %+v, want empty", byName["both"])
	}
}

func TestBranchMustIntersection(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type cond struct {
	mu sync.Mutex
	x  int
}

func (c *cond) maybe(lock bool) {
	if lock {
		c.mu.Lock()
	}
	c.x = 1 // held on only one path: NOT guarded here
	if lock {
		c.mu.Unlock()
	}
}

func (c *cond) always() {
	c.mu.Lock()
	c.x = 2
	c.x = 3
	c.x = 4
	c.mu.Unlock()
}
`)
	g := groupByPath(t, res, "x")
	if g.Guard != "mu" {
		t.Fatalf("guard = %q, want mu", g.Guard)
	}
	unguarded := 0
	for _, a := range g.Accesses {
		if !a.Held["mu"] {
			unguarded++
		}
	}
	if unguarded != 1 {
		t.Errorf("unguarded = %d, want 1 (the maybe-locked write)", unguarded)
	}
}

func TestNoGuardWithoutMajority(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type half struct {
	mu sync.Mutex
	y  int
}

func (h *half) a() { h.mu.Lock(); h.y = 1; h.mu.Unlock() }
func (h *half) b() { h.y = 2 }
func (h *half) c() { h.mu.Lock(); h.y = 3; h.mu.Unlock() }
func (h *half) d() { h.y = 4 }
`)
	g := groupByPath(t, res, "y")
	if g.Guard != "" {
		t.Errorf("guard = %q, want none (2 of 4 is below the 3/4 majority)", g.Guard)
	}
}

func TestEscapeToGoroutineArgs(t *testing.T) {
	res := analyzeSrc(t, `package fixture

import "sync"

type reg struct {
	mu    sync.Mutex
	order []int
}

func work(xs []int, done chan struct{}) { close(done) }

func (r *reg) add(v int) {
	r.mu.Lock()
	r.order = append(r.order, v)
	r.mu.Unlock()
}

func (r *reg) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

func (r *reg) kick(done chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go work(r.order, done) // slice escapes into the goroutine
}
`)
	g := groupByPath(t, res, "order")
	if g.Guard != "mu" {
		t.Fatalf("guard = %q, want mu", g.Guard)
	}
	goEsc := 0
	for _, a := range g.Accesses {
		if a.Escape == EscapeGo {
			goEsc++
		}
	}
	if goEsc != 1 {
		t.Errorf("EscapeGo accesses = %d, want 1", goEsc)
	}
}
