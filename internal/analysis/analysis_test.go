package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// loadFixture loads one testdata fixture package with a loader
// rooted at this module (so fixtures can import real module
// packages like internal/core).
func loadFixture(t *testing.T, loader *Loader, dir string) *Package {
	t.Helper()
	p, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if p == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	return p
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return loader
}

// renderFindings formats findings with paths relative to the
// fixture root so golden files are machine-independent.
func renderFindings(t *testing.T, findings []Finding) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, f := range findings {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = filepath.ToSlash(rel)
		}
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestAnalyzersGolden checks each analyzer against its deliberately
// broken fixture package: the exact findings must match the golden
// file, and every cdalint:ignore'd site must be absent.
func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		rule string
		dir  string
	}{
		{"dropped-error", "droppederror"},
		{"nondeterminism", "nondeterminism"},
		{"unannotated-answer", "unannotated"},
		{"mutex-hygiene", "mutex"},
		{"map-order-leak", "maporder"},
		{"bare-panic", "barepanic"},
		{"raw-sleep", "rawsleep"},
		{"ctx-propagation", "ctxprop"},
		{"provenance-taint", "provtaint"},
		{"confidence-bounds", "confbounds"},
		{"lock-flow", "lockflow"},
		{"unlock-path", "unlockpath"},
		{"resource-leak", "resourceleak"},
		{"fsync-order", "fsyncorder"},
		{"goroutine-leak", "goroutineleak"},
		{"racy-access", "racyaccess"},
		{"atomic-plain-mix", "atomicmix"},
		{"guard-escape", "guardescape"},
	}
	loader := newTestLoader(t)
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			a := AnalyzerByName(tc.rule)
			if a == nil {
				t.Fatalf("unknown analyzer %q", tc.rule)
			}
			p := loadFixture(t, loader, tc.dir)
			got := renderFindings(t, Run([]*Package{p}, []*Analyzer{a}))
			if got == "" {
				t.Fatalf("analyzer %s found nothing in its broken fixture", tc.rule)
			}
			goldenPath := filepath.Join("testdata", tc.dir+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.rule, got, want)
			}
		})
	}
}

// TestSuppressedSitesAreCounted double-checks the fixtures really
// contain the suppressed violations: with ignore processing bypassed
// (calling the analyzer directly), each fixture must yield MORE
// findings than the golden set.
func TestSuppressedSitesAreCounted(t *testing.T) {
	cases := map[string]string{
		"dropped-error":      "droppederror",
		"nondeterminism":     "nondeterminism",
		"unannotated-answer": "unannotated",
		"mutex-hygiene":      "mutex",
		"map-order-leak":     "maporder",
		"bare-panic":         "barepanic",
		"raw-sleep":          "rawsleep",
		"ctx-propagation":    "ctxprop",
		"provenance-taint":   "provtaint",
		"confidence-bounds":  "confbounds",
		"lock-flow":          "lockflow",
		"unlock-path":        "unlockpath",
		"resource-leak":      "resourceleak",
		"fsync-order":        "fsyncorder",
		"goroutine-leak":     "goroutineleak",
		"racy-access":        "racyaccess",
		"atomic-plain-mix":   "atomicmix",
		"guard-escape":       "guardescape",
	}
	loader := newTestLoader(t)
	for rule, dir := range cases {
		a := AnalyzerByName(rule)
		p := loadFixture(t, loader, dir)
		raw := len(rawFindings(a, p))
		filtered := len(Run([]*Package{p}, []*Analyzer{a}))
		if raw <= filtered {
			t.Errorf("%s: raw findings %d should exceed post-ignore findings %d (fixture must include a suppressed case)",
				rule, raw, filtered)
		}
	}
}

// rawFindings invokes an analyzer directly — per-package or
// module-wide — with cdalint:ignore processing bypassed.
func rawFindings(a *Analyzer, p *Package) []Finding {
	if a.Run != nil {
		return a.Run(p)
	}
	return a.RunModule(NewModule([]*Package{p}))
}

// TestIgnoreScopeGolden is the regression test for directive scoping
// over multi-line statements: the ignorescope fixture's golden set
// must contain the control finding but not the wrapped (suppressed)
// one — and raw analyzer output must contain both.
func TestIgnoreScopeGolden(t *testing.T) {
	loader := newTestLoader(t)
	a := AnalyzerByName("nondeterminism")
	p := loadFixture(t, loader, "ignorescope")
	got := renderFindings(t, Run([]*Package{p}, []*Analyzer{a}))
	goldenPath := filepath.Join("testdata", "ignorescope.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	raw := len(rawFindings(a, p))
	filtered := len(Run([]*Package{p}, []*Analyzer{a}))
	if raw != filtered+2 {
		t.Errorf("expected exactly 2 suppressed sites — the wrapped statement in each function — got raw=%d filtered=%d", raw, filtered)
	}
}

// TestIgnoreLitScopeGolden pins directive scoping at function-literal
// and select-case boundaries for a CFG-based rule: a directive on a
// spawning go/defer statement covers the statement header only and
// never the literal body (the leaks inside spawnLeaky/deferClosure
// survive it), while directives placed inside the literal or at the
// end of a select case arm's own line suppress exactly their sites.
func TestIgnoreLitScopeGolden(t *testing.T) {
	loader := newTestLoader(t)
	a := AnalyzerByName("unlock-path")
	p := loadFixture(t, loader, "ignorelit")
	got := renderFindings(t, Run([]*Package{p}, []*Analyzer{a}))
	goldenPath := filepath.Join("testdata", "ignorelit.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	raw := len(rawFindings(a, p))
	filtered := len(Run([]*Package{p}, []*Analyzer{a}))
	if raw != filtered+2 {
		t.Errorf("expected exactly 2 suppressed sites — inside the literal and in the select arm — got raw=%d filtered=%d", raw, filtered)
	}
	for _, fn := range []string{"spawnLeaky", "deferClosure"} {
		if !strings.Contains(got, "ignorelit") {
			t.Errorf("golden should contain the surviving %s finding", fn)
		}
	}
}

// TestIgnoreScopeMultilineRename pins directive scoping for the
// CFG-based rules: the fsyncorder fixture's suppressed rename spans
// several lines, and the directive on the line above must cover the
// whole statement — exactly one site is suppressed there.
func TestIgnoreScopeMultilineRename(t *testing.T) {
	loader := newTestLoader(t)
	a := AnalyzerByName("fsync-order")
	p := loadFixture(t, loader, "fsyncorder")
	raw := len(rawFindings(a, p))
	filtered := len(Run([]*Package{p}, []*Analyzer{a}))
	if raw != filtered+1 {
		t.Errorf("expected exactly 1 suppressed site — the multi-line rename — got raw=%d filtered=%d", raw, filtered)
	}
}

// TestModuleIsClean lints the entire module with the full suite —
// the same gate scripts/check.sh enforces. Any finding here means a
// reliability invariant regressed.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; skipped with -short")
	}
	loader := newTestLoader(t)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("module is not lint-clean: %d findings across %d packages (each listed above with file:line and rule)",
			len(findings), len(pkgs))
	}
}

// TestAnalyzerByName covers the lookup used by the -rules flag.
func TestAnalyzerByName(t *testing.T) {
	for _, a := range Analyzers() {
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) did not round-trip", a.Name)
		}
	}
	if AnalyzerByName("no-such-rule") != nil {
		t.Error("AnalyzerByName should return nil for unknown rules")
	}
}

// TestIgnoreParsing covers directive parsing edge cases.
func TestIgnoreParsing(t *testing.T) {
	if got := parseRuleList(" dropped-error, bare-panic -- reason"); !got["dropped-error"] || !got["bare-panic"] {
		t.Errorf("comma list not parsed: %v", got)
	}
	if got := parseRuleList(""); !got["*"] {
		t.Errorf("bare directive should suppress all rules: %v", got)
	}
	if got := parseRuleList(" all"); !got["*"] {
		t.Errorf("'all' should map to wildcard: %v", got)
	}
}
