package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockFlow is the interprocedural companion to mutex-hygiene: it
// flags calling a function that (transitively) acquires a mutex that
// the caller already holds on the same object — the classic
// self-deadlock that sync.Mutex does not forgive. Lock acquisitions
// are summarised per function as (parameter, field-path) pairs and
// propagated over the call graph; at each call inside a held region
// the callee's summary is mapped back through the call's receiver and
// arguments. Read-lock inside read-lock is tolerated; every other
// combination on the same mutex is reported.
var LockFlow = &Analyzer{
	Name:      ruleLockFlow,
	Doc:       "calling a function that re-acquires a mutex the caller already holds (interprocedural self-deadlock)",
	Severity:  SeverityError,
	RunModule: runLockFlow,
}

// lockPoint is one acquisition a function performs, expressed in its
// caller-mappable form: on the receiver (idx -1), on a parameter
// (idx >= 0), or on a package-level variable (idx == lockGlobal, obj
// set).
type lockPoint struct {
	idx  int
	path string
	obj  types.Object
	rw   bool
}

const lockGlobal = -2

// lfAcquire is a direct lock event in a function body.
type lfAcquire struct {
	base    types.Object
	path    string
	rw      bool
	unlock  bool
	defered bool
	pos     token.Pos
}

// lfCall is a call site with its possible declared targets and the
// expressions a callee summary maps back through.
type lfCall struct {
	call    *ast.CallExpr
	targets []*types.Func
	pos     token.Pos
}

// lfFunc is the per-function view the rule iterates over.
type lfFunc struct {
	pkg      *Package
	decl     *ast.FuncDecl
	fn       *types.Func
	acquires []lfAcquire
	calls    []lfCall
}

func runLockFlow(m *Module) []Finding {
	funcs := collectLockFuncs(m)
	sums := lockSummaries(funcs)
	ordered := make([]*lfFunc, 0, len(funcs))
	for _, lf := range funcs {
		ordered = append(ordered, lf)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].fn.FullName() < ordered[j].fn.FullName()
	})
	var out []Finding
	for _, lf := range ordered {
		out = append(out, flagHeldRegions(lf, sums)...)
	}
	return out
}

// collectLockFuncs walks every declaration once, recording direct
// lock events and call sites. Function literals are skipped, matching
// mutex-hygiene: a closure may run after the region ends (goroutine,
// defer), so charging its locks to the enclosing region would guess.
func collectLockFuncs(m *Module) map[*types.Func]*lfFunc {
	funcs := map[*types.Func]*lfFunc{}
	for _, p := range m.Pkgs {
		for _, fd := range funcDecls(p) {
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			lf := &lfFunc{pkg: p, decl: fd, fn: fn}
			walkSkipFuncLit(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if acq, ok := lockEventOf(p, call); ok {
					lf.acquires = append(lf.acquires, acq)
					return
				}
				targets := lockCallTargets(m, p, call)
				lf.calls = append(lf.calls, lfCall{call: call, targets: targets, pos: call.Pos()})
			})
			// Deferred unlocks: mark matching acquires as
			// region-to-function-end.
			markDeferred(p, fd, lf)
			funcs[fn] = lf
		}
	}
	return funcs
}

// walkSkipFuncLit visits every node of the body except those inside
// function literals.
func walkSkipFuncLit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockEventOf classifies a call as a sync.Mutex / sync.RWMutex
// acquire or release, returning the base object and field path.
func lockEventOf(p *Package, call *ast.CallExpr) (lfAcquire, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lfAcquire{}, false
	}
	var rw, unlock bool
	switch sel.Sel.Name {
	case "Lock":
	case "RLock":
		rw = true
	case "Unlock":
		unlock = true
	case "RUnlock":
		rw, unlock = true, true
	default:
		return lfAcquire{}, false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return lfAcquire{}, false
	}
	path, name := namedPathName(tv.Type)
	if path != "sync" || (name != "Mutex" && name != "RWMutex") {
		return lfAcquire{}, false
	}
	base, fieldPath := lockBase(p, sel.X)
	if base == nil {
		return lfAcquire{}, false
	}
	return lfAcquire{base: base, path: fieldPath, rw: rw, unlock: unlock, pos: call.Pos()}, true
}

// lockBase resolves the root object and remaining field path of a
// lock receiver: s.mu → (s, "mu"); mu → (mu, ""); c.state.mu →
// (c, "state.mu"). Non-identifier roots return nil.
func lockBase(p *Package, e ast.Expr) (types.Object, string) {
	full := exprString(p.Fset, ast.Unparen(e))
	var root *ast.Ident
	cur := ast.Unparen(e)
	for root == nil {
		switch t := cur.(type) {
		case *ast.Ident:
			root = t
		case *ast.SelectorExpr:
			cur = ast.Unparen(t.X)
		case *ast.StarExpr:
			cur = ast.Unparen(t.X)
		default:
			return nil, ""
		}
	}
	obj := p.Info.ObjectOf(root)
	if obj == nil {
		return nil, ""
	}
	path := strings.TrimPrefix(full, "*")
	path = strings.TrimPrefix(path, root.Name)
	path = strings.TrimPrefix(path, ".")
	return obj, path
}

// markDeferred flips the defered bit on release events that occur
// under defer statements.
func markDeferred(p *Package, fd *ast.FuncDecl, lf *lfFunc) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for i := range lf.acquires {
			if lf.acquires[i].pos == ds.Call.Pos() {
				lf.acquires[i].defered = true
			}
		}
		return true
	})
}

// lockCallTargets resolves a call to its declared targets, including
// every known implementation when the callee is an interface method.
func lockCallTargets(m *Module, p *Package, call *ast.CallExpr) []*types.Func {
	callee := calleeFunc(p, call)
	if callee == nil {
		return nil
	}
	targets := []*types.Func{callee}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		targets = append(targets, m.Graph.Impls[callee]...)
	}
	return targets
}

// paramIndexOf maps an object to fn's receiver (-1) or parameter
// index, or lockGlobal for a package-level variable; ok=false for
// locals.
func paramIndexOf(fn *types.Func, obj types.Object) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	if recv := sig.Recv(); recv != nil && obj == recv {
		return -1, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if obj == sig.Params().At(i) {
			return i, true
		}
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return lockGlobal, true
	}
	return 0, false
}

// lockSummaries computes, to a fixed point over the call graph, the
// set of caller-mappable lock acquisitions each function may perform,
// directly or through callees.
func lockSummaries(funcs map[*types.Func]*lfFunc) map[*types.Func]map[lockPoint]bool {
	sums := map[*types.Func]map[lockPoint]bool{}
	for fn, lf := range funcs {
		set := map[lockPoint]bool{}
		for _, acq := range lf.acquires {
			if acq.unlock {
				continue
			}
			if idx, ok := paramIndexOf(fn, acq.base); ok {
				pt := lockPoint{idx: idx, path: acq.path, rw: acq.rw}
				if idx == lockGlobal {
					pt.obj = acq.base
				}
				set[pt] = true
			}
		}
		sums[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, lf := range funcs {
			set := sums[fn]
			for _, c := range lf.calls {
				for _, target := range c.targets {
					for pt := range sums[target] {
						mapped, ok := mapLockPoint(lf.pkg, fn, c.call, pt)
						if !ok || set[mapped] {
							continue
						}
						set[mapped] = true
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// mapLockPoint translates a callee lock point to the caller's frame
// through a specific call expression: object-identity points (globals,
// locals) pass through unchanged; receiver and parameter points
// require the corresponding call operand to be a bare identifier. An
// operand that is neither the caller's receiver nor a parameter maps
// to an object-identity point, so locking a local struct's mutex and
// then calling its locking method is still caught.
func mapLockPoint(p *Package, caller *types.Func, call *ast.CallExpr, pt lockPoint) (lockPoint, bool) {
	if pt.idx == lockGlobal {
		return pt, true
	}
	var operand ast.Expr
	if pt.idx == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return lockPoint{}, false
		}
		operand = sel.X
	} else {
		if pt.idx >= len(call.Args) {
			return lockPoint{}, false
		}
		operand = call.Args[pt.idx]
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		// &x as a lock-carrying argument is the same object as x.
		if u, okU := ast.Unparen(operand).(*ast.UnaryExpr); okU && u.Op == token.AND {
			id, ok = ast.Unparen(u.X).(*ast.Ident)
		}
		if !ok {
			return lockPoint{}, false
		}
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return lockPoint{}, false
	}
	if idx, okIdx := paramIndexOf(caller, obj); okIdx && idx != lockGlobal {
		return lockPoint{idx: idx, path: pt.path, rw: pt.rw}, true
	}
	return lockPoint{idx: lockGlobal, path: pt.path, rw: pt.rw, obj: obj}, true
}

// flagHeldRegions walks a function's lock regions and reports calls
// that re-acquire a held mutex, plus direct re-acquisition.
func flagHeldRegions(lf *lfFunc, sums map[*types.Func]map[lockPoint]bool) []Finding {
	p := lf.pkg
	var out []Finding
	for i, acq := range lf.acquires {
		if acq.unlock {
			continue
		}
		end := lf.decl.Body.End()
		for _, rel := range lf.acquires[i+1:] {
			if rel.unlock && !rel.defered && rel.base == acq.base && rel.path == acq.path {
				end = rel.pos
				break
			}
		}
		lockName := lockDisplayName(p, acq)
		// Direct re-acquire inside the region.
		for _, re := range lf.acquires[i+1:] {
			if re.unlock || re.pos >= end || re.base != acq.base || re.path != acq.path {
				continue
			}
			if re.rw && acq.rw {
				continue
			}
			out = append(out, Finding{Rule: ruleLockFlow, Severity: SeverityError,
				Pos: p.Fset.Position(re.pos),
				Message: fmt.Sprintf("%s is re-acquired while already held (acquired at line %d): guaranteed self-deadlock",
					lockName, p.Fset.Position(acq.pos).Line)})
		}
		// Calls whose transitive summary re-acquires the held mutex.
		for _, c := range lf.calls {
			if c.pos <= acq.pos || c.pos >= end {
				continue
			}
			for _, target := range c.targets {
				hit := false
				for pt := range sums[target] {
					mapped, ok := mapLockPoint(p, lf.fn, c.call, pt)
					if !ok {
						continue
					}
					sameLock := false
					if mapped.idx == lockGlobal {
						sameLock = mapped.obj == acq.base && mapped.path == acq.path
					} else if idx, okIdx := paramIndexOf(lf.fn, acq.base); okIdx {
						sameLock = idx == mapped.idx && mapped.path == acq.path
					}
					if sameLock && !(mapped.rw && acq.rw) {
						hit = true
					}
				}
				if hit {
					out = append(out, Finding{Rule: ruleLockFlow, Severity: SeverityError,
						Pos: p.Fset.Position(c.pos),
						Message: fmt.Sprintf("call to %s acquires %s, which is already held here (acquired at line %d): self-deadlock through the call graph",
							target.Name(), lockName, p.Fset.Position(acq.pos).Line)})
					break
				}
			}
		}
	}
	return out
}

// lockDisplayName renders the held mutex for messages ("s.mu").
func lockDisplayName(p *Package, acq lfAcquire) string {
	if acq.path == "" {
		return acq.base.Name()
	}
	return acq.base.Name() + "." + acq.path
}
