package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/reliable-cda/cda/internal/analysis/typestate"
)

// GoroutineLeak checks that every `go func(){...}` either signals
// completion on all exit paths or is bounded by a context:
//
//   - a completion signal is a sync.WaitGroup Done(), a channel send,
//     or a close(ch) — direct or under defer (defer covers panics
//     too);
//   - a goroutine whose body receives from ctx.Done()/checks
//     ctx.Err() or ranges over a channel is lifecycle-bounded by its
//     owner and exempt;
//   - a goroutine that can neither terminate nor be signalled (an
//     unbounded for {} worker) is flagged outright.
//
// It also flags the pre-Go-1.22 footgun of a goroutine closure
// capturing the enclosing loop's iteration variable instead of taking
// it as an argument: under older toolchains that races every
// iteration, and even under per-iteration semantics the explicit
// argument keeps the worker's inputs obvious and deterministic.
// Goroutines that launch named functions are not checked — their
// bodies belong to another CFG.
var GoroutineLeak = &Analyzer{
	Name:     ruleGoroutineLeak,
	Doc:      "a go func with no completion signal (Done/send/close) or context bound; loop variables captured by goroutines",
	Severity: SeverityError,
	Run:      runGoroutineLeak,
}

const (
	// glPending: the goroutine can reach this point without having
	// signalled completion.
	glPending typestate.Facts = 1 << iota
	// glSignaled is informational; the check is on glPending.
	glSignaled
)

// glKey is the single tracked fact per goroutine body.
type glKey struct{}

func runGoroutineLeak(p *Package) []Finding {
	var out []Finding
	for _, fb := range funcBodies(p) {
		typestate.InspectNoFuncLit(fb.body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, checkGoroutine(p, gs, fl)...)
			}
			return true
		})
	}
	for _, fd := range funcDecls(p) {
		ast.Walk(glScope{p: p, out: &out}, fd.Body)
	}
	return out
}

// checkGoroutine runs the completion-signal analysis over one
// goroutine closure body.
func checkGoroutine(p *Package, gs *ast.GoStmt, fl *ast.FuncLit) []Finding {
	if glContextBounded(p, fl.Body) {
		return nil
	}
	cfg := buildCFG(p, fl.Body)
	res := typestate.Forward(cfg, typestate.Analysis{
		Init: typestate.State{glKey{}: glPending},
		Transfer: func(n ast.Node, s typestate.State) {
			if glSignals(p, n) {
				s[glKey{}] = glSignaled
			}
		},
	})
	exit := res.AtExit()
	if exit == nil {
		return []Finding{{
			Rule: ruleGoroutineLeak, Severity: SeverityError,
			Pos:     p.Fset.Position(gs.Pos()),
			Message: "goroutine never terminates and is not context-bounded; select on ctx.Done() or range over a closable channel",
		}}
	}
	if exit[glKey{}]&glPending != 0 {
		return []Finding{{
			Rule: ruleGoroutineLeak, Severity: SeverityError,
			Pos:     p.Fset.Position(gs.Pos()),
			Message: "goroutine can finish without signalling completion; send on or close a channel, or defer wg.Done()",
		}}
	}
	return nil
}

// glContextBounded reports whether the body's lifecycle is already
// bounded by its owner: it receives from a context's Done channel,
// consults ctx.Err(), or ranges over a channel (terminating on
// close).
func glContextBounded(p *Package, body *ast.BlockStmt) bool {
	bounded := false
	typestate.InspectNoFuncLit(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch m := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Err") {
				if tv, ok := p.Info.Types[sel.X]; ok {
					if path, name := namedPathName(tv.Type); path == "context" && name == "Context" {
						bounded = true
					}
				}
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[m.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					bounded = true
				}
			}
		}
		return true
	})
	return bounded
}

// glSignals reports whether the node completes the goroutine's
// contract: WaitGroup.Done, a channel send, or close(ch). Deferred
// closures are scanned in full — a defer runs on every exit.
func glSignals(p *Package, n ast.Node) bool {
	found := false
	var visit func(m ast.Node) bool
	visit = func(m ast.Node) bool {
		if found {
			return false
		}
		switch st := m.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(st.Fun).(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					if tv, ok := p.Info.Types[fun.X]; ok {
						if path, name := namedPathName(tv.Type); path == "sync" && name == "WaitGroup" {
							found = true
						}
					}
				}
			case *ast.Ident:
				if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
		}
		return !found
	}
	if ds, ok := n.(*ast.DeferStmt); ok {
		if fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, visit)
		}
		ast.Inspect(ds.Call, visit)
		return found
	}
	typestate.InspectNoFuncLit(n, func(m ast.Node) bool { return visit(m) })
	return found
}

// glScope is the loop-variable-capture walker: it carries the set of
// iteration variables in scope and flags goroutine closures that read
// them instead of taking them as arguments.
type glScope struct {
	p    *Package
	vars []types.Object
	out  *[]Finding
}

func (v glScope) Visit(n ast.Node) ast.Visitor {
	switch st := n.(type) {
	case *ast.RangeStmt:
		nv := v.vars
		for _, e := range []ast.Expr{st.Key, st.Value} {
			if id, ok := e.(*ast.Ident); ok && !isBlank(id) {
				if obj := v.p.Info.Defs[id]; obj != nil {
					nv = appendScope(nv, obj)
				}
			}
		}
		return glScope{p: v.p, vars: nv, out: v.out}
	case *ast.ForStmt:
		nv := v.vars
		if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && !isBlank(id) {
					if obj := v.p.Info.Defs[id]; obj != nil {
						nv = appendScope(nv, obj)
					}
				}
			}
		}
		return glScope{p: v.p, vars: nv, out: v.out}
	case *ast.GoStmt:
		fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit)
		if !ok {
			return v
		}
		for _, obj := range v.vars {
			if usesObject(v.p, fl.Body, obj) {
				*v.out = append(*v.out, Finding{
					Rule: ruleGoroutineLeak, Severity: SeverityError,
					Pos: v.p.Fset.Position(st.Pos()),
					Message: fmt.Sprintf("goroutine captures loop variable %s; pass it as an argument so each iteration gets its own copy",
						obj.Name()),
				})
			}
		}
		return v
	}
	return v
}

func appendScope(vars []types.Object, obj types.Object) []types.Object {
	out := make([]types.Object, len(vars), len(vars)+1)
	copy(out, vars)
	return append(out, obj)
}

// usesObject reports whether the subtree reads obj.
func usesObject(p *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
