package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/reliable-cda/cda/internal/analysis/flow"
)

// ProvenanceTaint enforces P2 Grounding interprocedurally: a value
// that originates in a data-backend query result (sqldb, vectorindex,
// textindex, embed) must not be stored into a user-facing Answer data
// field unless the answer carries a grounding annotation — a
// Provenance / AnswerNode assignment, an explicit abstention, or a
// pass through the provenance/ground packages. The taint engine in
// internal/analysis/flow tracks the backend value through locals,
// string building, helper functions, and mutable-argument write-backs,
// so laundering a result through a formatting helper does not hide it.
var ProvenanceTaint = &Analyzer{
	Name:      ruleProvenanceTaint,
	Doc:       "backend query results stored into Answer data fields without provenance/ground annotation",
	Severity:  SeverityError,
	RunModule: runProvenanceTaint,
}

// backendPkgSuffixes are the data backends whose query results carry
// user-visible data that must stay grounded.
var backendPkgSuffixes = []string{
	"internal/sqldb",
	"internal/vectorindex",
	"internal/textindex",
	"internal/embed",
}

// backendQueryVerbs distinguish query-surface functions (taint
// sources) from constructors and mutators in the same packages.
var backendQueryVerbs = []string{
	"Search", "Execute", "Query", "Probe", "Embed", "Hybrid", "Lookup", "Scan",
}

// isBackendSource reports whether fn is a backend query function.
func isBackendSource(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkgMatch := false
	for _, s := range backendPkgSuffixes {
		if strings.HasSuffix(fn.Pkg().Path(), s) {
			pkgMatch = true
			break
		}
	}
	if !pkgMatch {
		return false
	}
	for _, v := range backendQueryVerbs {
		if strings.Contains(fn.Name(), v) {
			return true
		}
	}
	return false
}

// annotPkgSuffixes are the packages whose functions perform grounding
// annotation; a tainted value routed through them is accounted for.
var annotPkgSuffixes = []string{"internal/provenance", "internal/ground"}

func isAnnotationFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	for _, s := range annotPkgSuffixes {
		if strings.HasSuffix(fn.Pkg().Path(), s) {
			return true
		}
	}
	return false
}

// Data fields of core.Answer that surface to the user, and the
// annotation fields any one of which satisfies the contract.
var (
	taintDataFields  = map[string]bool{"Text": true, "Code": true}
	taintAnnotFields = map[string]bool{"Provenance": true, "AnswerNode": true, "Abstained": true}
)

// isAuditedAnswerType matches core.Answer (by path suffix so fixture
// modules exercising the rule against the real type also match).
func isAuditedAnswerType(t types.Type) bool {
	path, name := namedPathName(t)
	return name == "Answer" && strings.HasSuffix(path, "internal/core")
}

func runProvenanceTaint(m *Module) []Finding {
	taint := m.Graph.Propagate(isBackendSource)
	var out []Finding
	for _, p := range m.Pkgs {
		for _, fd := range funcDecls(p) {
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			out = append(out, auditTaintFunc(p, fd, fn, taint)...)
		}
	}
	return out
}

// auditTaintFunc audits the Answer composite literals a function
// constructs. Answers received as parameters or call results are the
// constructing function's responsibility, not the caller's.
func auditTaintFunc(p *Package, fd *ast.FuncDecl, fn *types.Func, taint *flow.Taint) []Finding {
	type candidate struct {
		pos   ast.Node
		field string
	}
	// Bind literals to the local objects they initialize.
	litObj := map[*ast.CompositeLit]types.Object{}
	var lits []*ast.CompositeLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[cl]; !ok || !isAuditedAnswerType(tv.Type) {
			return true
		}
		lits = append(lits, cl)
		return true
	})
	if len(lits) == 0 {
		return nil
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = ast.Unparen(u.X)
			}
			if cl, ok := rhs.(*ast.CompositeLit); ok {
				for _, have := range lits {
					if have == cl {
						litObj[cl] = p.Info.ObjectOf(id)
					}
				}
			}
		}
		return true
	})

	var out []Finding
	for _, cl := range lits {
		obj := litObj[cl]
		var cands []candidate
		annotated := false
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if taintAnnotFields[key.Name] {
				annotated = true
			}
			if taintDataFields[key.Name] && taint.ExprTainted(fn, kv.Value) {
				cands = append(cands, candidate{pos: kv.Value, field: key.Name})
			}
		}
		if obj != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					base, ok := ast.Unparen(sel.X).(*ast.Ident)
					if !ok || p.Info.ObjectOf(base) != obj {
						continue
					}
					if taintAnnotFields[sel.Sel.Name] {
						annotated = true
					}
					if taintDataFields[sel.Sel.Name] && i < len(as.Rhs) && taint.ExprTainted(fn, as.Rhs[i]) {
						cands = append(cands, candidate{pos: as.Rhs[i], field: sel.Sel.Name})
					}
				}
				return true
			})
			if !annotated && annotatedViaCall(p, fd, obj) {
				annotated = true
			}
		}
		if annotated {
			continue
		}
		for _, c := range cands {
			out = append(out, Finding{Rule: ruleProvenanceTaint, Severity: SeverityError,
				Pos: p.Fset.Position(c.pos.Pos()),
				Message: fmt.Sprintf("backend query result flows into Answer.%s but the answer never gains provenance, grounding, or an abstention (P2 Grounding)",
					c.field)})
		}
	}
	return out
}

// annotatedViaCall reports whether the answer object is handed to a
// provenance/ground package function inside the same declaration.
func annotatedViaCall(p *Package, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isAnnotationFunc(calleeFunc(p, call)) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(p, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
