package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
)

// Nondeterminism flags wall-clock and global-randomness calls that
// would make benchmark and experiment runs irreproducible: the
// simulated NL model (DESIGN.md §2) is only a valid experimental
// instrument because every stochastic component is driven by an
// explicit seed, and every paper number can be regenerated
// bit-for-bit. time.Now() and the global math/rand source are the
// two ways determinism silently leaks out of such a system.
//
// Explicitly-seeded sources (rand.New(rand.NewSource(seed))) are
// fine. An allowlist covers the two places wall-clock time is the
// point: internal/metrics timing counters and internal/experiments
// wall-clock measurements.
var Nondeterminism = &Analyzer{
	Name:     ruleNondeterminism,
	Doc:      "time.Now() or the global math/rand source outside the timing allowlist",
	Severity: SeverityError,
	Run:      runNondeterminism,
}

// nondetAllowlist lists locations where wall-clock access is
// intentional: pkgSuffix matches the end of the import path, file
// (optional) restricts to one basename within it.
var nondetAllowlist = []struct {
	pkgSuffix string
	file      string
}{
	{pkgSuffix: "internal/experiments"},                  // measures real latency
	{pkgSuffix: "internal/metrics", file: "counters.go"}, // timing instrumentation
}

// nondetAllowedFuncs are math/rand package-level functions that
// construct explicit sources rather than touching the global one.
var nondetAllowedFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runNondeterminism(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		if nondetAllowed(p.Path, fname) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig := fn.FullName()
			switch {
			case sig == "time.Now" || sig == "time.Since":
				out = append(out, Finding{
					Rule: ruleNondeterminism, Severity: SeverityError,
					Pos:     p.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("%s() makes runs irreproducible; thread a logical clock or seed through the config", fn.Name()),
				})
			case (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") && isPackageLevel(fn) && !nondetAllowedFuncs[fn.Name()]:
				out = append(out, Finding{
					Rule: ruleNondeterminism, Severity: SeverityError,
					Pos: p.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("rand.%s uses the global math/rand source; use rand.New(rand.NewSource(seed)) so runs are reproducible",
						fn.Name()),
				})
			}
			return true
		})
	}
	return out
}

// isPackageLevel reports whether fn is a package-level function (not
// a method, e.g. (*rand.Rand).Intn which is fine on a seeded source).
func isPackageLevel(fn interface{ FullName() string }) bool {
	return !strings.Contains(fn.FullName(), "(")
}

func nondetAllowed(pkgPath, filename string) bool {
	base := filepath.Base(filename)
	for _, a := range nondetAllowlist {
		if strings.HasSuffix(pkgPath, a.pkgSuffix) && (a.file == "" || a.file == base) {
			return true
		}
	}
	return false
}
