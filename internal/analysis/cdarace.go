package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"

	"github.com/reliable-cda/cda/internal/analysis/lockset"
)

// The cdarace rule family — racy-access, atomic-plain-mix, and
// guard-escape — is the static race-detection layer over the lockset
// engine (internal/analysis/lockset): guard relationships are inferred
// field by field from the module-wide must-lockset dataflow, with lock
// summaries propagated through call edges and goroutine spawn points
// clearing the lockset. The three rules share one analysis run, cached
// on the Module, so cdalint pays for the interprocedural fixed point
// once regardless of which rules are enabled.

// RacyAccess reports reads/writes of a guarded field on paths where
// the inferred guarding mutex is not held. "Guarded" is inferred, not
// declared: a field whose accesses are dominantly (at least 2 and at
// least 3/4) under one same-object mutex is treated as protected by
// it, and the minority accesses with an empty lockset are the
// suspects — exactly the peek-without-lock shape go test -race only
// catches on executed interleavings.
var RacyAccess = &Analyzer{
	Name:      ruleRacyAccess,
	Doc:       "a read/write of a mutex-guarded field without holding the inferred guard",
	Severity:  SeverityError,
	RunModule: runRacyAccess,
}

// AtomicPlainMix reports fields touched both through sync/atomic and
// through plain loads/stores. Mixing the two voids the atomics'
// guarantees: the plain access races with every atomic one, and the
// compiler may tear or cache it.
var AtomicPlainMix = &Analyzer{
	Name:      ruleAtomicPlainMix,
	Doc:       "a field accessed both via sync/atomic and via plain loads/stores",
	Severity:  SeverityError,
	RunModule: runAtomicPlainMix,
}

// GuardEscape reports guarded pointer/slice/map fields whose
// reference leaks out of the critical section — returned to a caller
// or handed to a goroutine — without a copy. The leak site may hold
// the lock; the receiver of the reference does not, so every later
// dereference races with guarded mutation.
var GuardEscape = &Analyzer{
	Name:      ruleGuardEscape,
	Doc:       "a guarded pointer/slice/map field leaking by return or into a goroutine without copy",
	Severity:  SeverityWarning,
	RunModule: runGuardEscape,
}

func runRacyAccess(m *Module) []Finding {
	var out []Finding
	for _, grp := range m.Lockset().Groups {
		if grp.Guard == "" {
			continue
		}
		for _, a := range grp.Accesses {
			if a.Held[grp.Guard] {
				continue
			}
			// Escaping reference accesses are guard-escape's territory;
			// a plain value flowing out still races right here.
			if a.Escape != lockset.EscapeNone && (grp.Ref || a.Addr) {
				continue
			}
			verb := "read"
			if a.Write {
				verb = "written"
			}
			out = append(out, Finding{
				Rule: ruleRacyAccess, Severity: SeverityError,
				Pos: a.Unit.Fset.Position(a.Pos),
				Message: fmt.Sprintf("%s is %s without %s, which guards it on %d of %d accesses; hold the lock here or document why this access cannot race",
					grp.Display, verb, guardDisplay(grp), grp.Guarded, len(grp.Accesses)),
			})
		}
	}
	return out
}

func runAtomicPlainMix(m *Module) []Finding {
	var out []Finding
	for _, grp := range m.Lockset().Groups {
		if len(grp.Atomics) == 0 || len(grp.Accesses) == 0 {
			continue
		}
		atomicAt := token.Position{}
		for _, a := range grp.Atomics {
			p := a.Unit.Fset.Position(a.Pos)
			if atomicAt.Filename == "" || p.Filename < atomicAt.Filename ||
				(p.Filename == atomicAt.Filename && p.Line < atomicAt.Line) {
				atomicAt = p
			}
		}
		for _, a := range grp.Accesses {
			verb := "load"
			if a.Write {
				verb = "store"
			}
			out = append(out, Finding{
				Rule: ruleAtomicPlainMix, Severity: SeverityError,
				Pos: a.Unit.Fset.Position(a.Pos),
				Message: fmt.Sprintf("%s is accessed via sync/atomic (%s:%d) but this is a plain %s; use atomic operations for every access to the field",
					grp.Display, filepath.Base(atomicAt.Filename), atomicAt.Line, verb),
			})
		}
	}
	return out
}

func runGuardEscape(m *Module) []Finding {
	var out []Finding
	for _, grp := range m.Lockset().Groups {
		if grp.Guard == "" {
			continue
		}
		for _, a := range grp.Accesses {
			if a.Escape == lockset.EscapeNone || (!grp.Ref && !a.Addr) {
				continue
			}
			how := "is returned to the caller"
			if a.Escape == lockset.EscapeGo {
				how = "is handed to a goroutine"
			}
			out = append(out, Finding{
				Rule: ruleGuardEscape, Severity: SeverityWarning,
				Pos: a.Unit.Fset.Position(a.Pos),
				Message: fmt.Sprintf("%s (guarded by %s) %s without copy; the reference outlives the critical section — return a copy or document the ownership transfer",
					grp.Display, guardDisplay(grp), how),
			})
		}
	}
	return out
}

// guardDisplay renders the inferred guard with its owning type:
// "member.mu".
func guardDisplay(grp *lockset.Group) string {
	short, _, _ := strings.Cut(grp.Display, ".")
	return short + "." + grp.Guard
}
