package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/reliable-cda/cda/internal/analysis/typestate"
)

// UnlockPath is the CFG-based successor of mutex-hygiene's old
// lock-pairing heuristic: every sync.Mutex/RWMutex acquisition must
// be released on EVERY path out of the function — every return, every
// branch, and every explicit panic — not merely "before the first
// return after the Lock". A defer'd Unlock (directly or inside a
// deferred closure) satisfies all paths at once, including panics;
// explicit Unlocks are checked path-by-path over the control-flow
// graph, so branch-dependent release patterns the old heuristic could
// not see (unlock in one arm of an if, missing in the other) are now
// caught. Function literals are analyzed as their own units.
var UnlockPath = &Analyzer{
	Name:     ruleUnlockPath,
	Doc:      "a Lock/RLock with a path to return or panic that never releases it",
	Severity: SeverityError,
	Run:      runUnlockPath,
}

// Path facts per acquisition site. The powerset semantics: a set bit
// means the fact holds on at least one path reaching the point.
const (
	// upHeld: the lock is held with no deferred release registered.
	upHeld typestate.Facts = 1 << iota
	// upDeferred: the lock is held but a deferred release covers it.
	upDeferred
)

// upKey identifies one acquisition: the lock object (root object +
// field path, as in lock-flow), the lock kind, and the call site.
type upKey struct {
	obj  types.Object
	path string
	rw   bool
	pos  token.Pos
	name string
}

func runUnlockPath(p *Package) []Finding {
	var out []Finding
	for _, fb := range funcBodies(p) {
		out = append(out, unlockPathBody(p, fb)...)
	}
	return out
}

func unlockPathBody(p *Package, fb funcBody) []Finding {
	cfg := buildCFG(p, fb.body)
	res := typestate.Forward(cfg, typestate.Analysis{
		Transfer: func(n ast.Node, s typestate.State) {
			if ds, ok := n.(*ast.DeferStmt); ok {
				upDeferredReleases(p, ds, s)
				return
			}
			typestate.InspectNoFuncLit(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				ev, ok := lockEventOf(p, call)
				if !ok {
					return true
				}
				if ev.unlock {
					upRelease(s, ev, false)
					return true
				}
				k := upKey{obj: ev.base, path: ev.path, rw: ev.rw, pos: call.Pos(),
					name: lockDisplayName(p, ev)}
				// Re-entering the acquire site (a loop): paths already
				// covered by a registered defer stay covered.
				s[k] = upHeld | (s[k] & upDeferred)
				return true
			})
		},
	})

	var out []Finding
	reported := map[upKey]bool{}
	flag := func(s typestate.State, what string) {
		for k, facts := range s {
			key, ok := k.(upKey)
			if !ok || facts&upHeld == 0 || reported[key] {
				continue
			}
			reported[key] = true
			verb := "Lock"
			unlockVerb := "Unlock"
			if key.rw {
				verb, unlockVerb = "RLock", "RUnlock"
			}
			out = append(out, Finding{
				Rule: ruleUnlockPath, Severity: SeverityError,
				Pos: p.Fset.Position(key.pos),
				Message: fmt.Sprintf("%s.%s() is not released on every %s; add defer %s.%s()",
					key.name, verb, what, key.name, unlockVerb),
			})
		}
	}
	if s := res.AtExit(); s != nil {
		flag(s, "return path")
	}
	if s := res.AtPanic(); s != nil {
		flag(s, "panic path")
	}
	// State maps iterate in random order; findings must not.
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	return out
}

// upDeferredReleases applies a defer statement's release effects:
// `defer mu.Unlock()` directly, or every unlock inside a deferred
// closure. Held facts become deferred-covered facts.
func upDeferredReleases(p *Package, ds *ast.DeferStmt, s typestate.State) {
	apply := func(call *ast.CallExpr) {
		if ev, ok := lockEventOf(p, call); ok && ev.unlock {
			upRelease(s, ev, true)
		}
	}
	if fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				apply(call)
			}
			return true
		})
		return
	}
	apply(ds.Call)
}

// upRelease clears the held fact on every acquisition of the same
// lock. A deferred release converts held into deferred-covered
// (release at every exit); an explicit one simply ends the region on
// this path.
func upRelease(s typestate.State, ev lfAcquire, deferred bool) {
	for k, facts := range s {
		key, ok := k.(upKey)
		if !ok || key.obj != ev.base || key.path != ev.path || key.rw != ev.rw {
			continue
		}
		if facts&upHeld != 0 {
			facts &^= upHeld
			if deferred {
				facts |= upDeferred
			}
			s[k] = facts
		}
	}
}
