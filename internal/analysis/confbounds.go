package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ConfidenceBounds constant-folds every expression stored into a
// confidence-named field, variable, or constant and rejects values
// outside [0,1] — a confidence is a probability-like score, and the
// abstention policy (ⓔ) compares it against a threshold in that
// range. It also audits the graceful-degradation ladder: a degraded
// tier's confidence cap must stay strictly below the abstention
// threshold, otherwise a degraded answer would outrank the abstention
// line and mask the very condition the ladder is signalling.
var ConfidenceBounds = &Analyzer{
	Name:      ruleConfidenceBounds,
	Doc:       "confidence constants outside [0,1]; degraded-tier caps at or above the abstention threshold",
	Severity:  SeverityError,
	RunModule: runConfidenceBounds,
}

// confidenceName reports whether an identifier names a confidence
// value. The match is deliberately narrow — "confidence" spelled out —
// so unrelated thresholds (z-scores, row limits) are never folded.
func confidenceName(name string) bool {
	return strings.Contains(strings.ToLower(name), "confidence")
}

func runConfidenceBounds(m *Module) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		out = append(out, confLiteralFindings(p)...)
		out = append(out, ladderCapFindings(p)...)
	}
	return out
}

// constFloat extracts the constant value of an expression, folded by
// the type checker, as a float64.
func constFloat(p *Package, e ast.Expr) (float64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return f, true
	}
	return 0, false
}

// confLiteralFindings flags constant confidence values outside [0,1]
// wherever they are bound to a confidence-named target: const/var
// declarations, assignments, and composite-literal fields.
func confLiteralFindings(p *Package) []Finding {
	var out []Finding
	check := func(name string, value ast.Expr) {
		if !confidenceName(name) || value == nil {
			return
		}
		v, ok := constFloat(p, value)
		if !ok {
			return
		}
		if v < 0 || v > 1 {
			out = append(out, Finding{Rule: ruleConfidenceBounds, Severity: SeverityError,
				Pos: p.Fset.Position(value.Pos()),
				Message: fmt.Sprintf("%s is assigned constant %v, outside the confidence range [0,1]",
					name, v)})
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if i < len(n.Values) {
						check(id.Name, n.Values[i])
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					switch t := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						check(t.Name, n.Rhs[i])
					case *ast.SelectorExpr:
						check(t.Sel.Name, n.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					check(id.Name, n.Value)
				}
			case *ast.CallExpr:
				// Comparisons and arithmetic over confidences are fine;
				// only binding sites are audited.
				return true
			}
			return true
		})
	}
	return out
}

// ladderCapFindings compares, within one package, every constant
// matching "degraded…confidence" against the constant matching
// "abstain": the degradation ladder's caps must sit strictly below
// the abstention threshold.
func ladderCapFindings(p *Package) []Finding {
	type namedConst struct {
		name string
		val  float64
		pos  token.Position
	}
	var caps []namedConst
	var abstain *namedConst
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		val := constant.ToFloat(c.Val())
		if val.Kind() != constant.Float {
			continue
		}
		f, _ := constant.Float64Val(val)
		nc := namedConst{name: name, val: f, pos: p.Fset.Position(c.Pos())}
		lower := strings.ToLower(name)
		switch {
		case strings.Contains(lower, "degraded") && strings.Contains(lower, "confidence"):
			caps = append(caps, nc)
		case strings.Contains(lower, "abstain"):
			if abstain == nil || nc.name < abstain.name {
				v := nc
				abstain = &v
			}
		}
	}
	if abstain == nil {
		return nil
	}
	var out []Finding
	for _, tier := range caps {
		if tier.val >= abstain.val {
			out = append(out, Finding{Rule: ruleConfidenceBounds, Severity: SeverityError,
				Pos: tier.pos,
				Message: fmt.Sprintf("degraded-tier cap %s = %v is not below the abstention threshold %s = %v; a degraded answer would outrank the abstention line",
					tier.name, tier.val, abstain.name, abstain.val)})
		}
	}
	return out
}
