package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment marker that suppresses findings.
const ignoreDirective = "cdalint:ignore"

// ignoreSet maps filename → line → set of suppressed rule names. The
// wildcard rule "*" suppresses everything on that line.
type ignoreSet map[string]map[int]map[string]bool

// ignoresFor scans a package's comments for cdalint:ignore
// directives. A directive applies to its own line (end-of-line
// placement) and to the following line (preceding-comment
// placement).
func ignoresFor(p *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range p.Files {
		ends := stmtEndsByLine(p.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(strings.TrimSpace(text), "/*")
				idx := strings.Index(text, ignoreDirective)
				if idx < 0 {
					continue
				}
				rest := text[idx+len(ignoreDirective):]
				// Cut trailing prose after the rule list: rules are the
				// first comma/space separated tokens that look like
				// rule names; a "--" or "—" starts a free-text reason.
				if cut := strings.Index(rest, "--"); cut >= 0 {
					rest = rest[:cut]
				}
				rules := parseRuleList(rest)
				pos := p.Fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					set[pos.Filename] = byLine
				}
				// The directive covers its own line (end-of-line
				// placement) and, when it heads a comment group, every
				// line through the one after the group (preceding-
				// comment placement with a wrapped reason). When the
				// covered line starts a statement that wraps across
				// several lines, coverage extends through the end of
				// that statement — a finding inside a wrapped call arg
				// is reported on the arg's line, not the statement's.
				last := p.Fset.Position(cg.End()).Line + 1
				for line := pos.Line; line <= last; line++ {
					if end, ok := ends[line]; ok && end > last {
						last = end
					}
				}
				for line := pos.Line; line <= last; line++ {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					for r := range rules {
						byLine[line][r] = true
					}
				}
			}
		}
	}
	return set
}

// stmtEndsByLine maps the line a simple (non-block) statement starts
// on to the last line it spans. Block-bearing statements (if, for,
// switch, func) are deliberately excluded: a directive above an if
// statement must not silence the whole body. The same boundary
// applies to function literals inside otherwise-simple statements — a
// `go func() { … }()` or a deferred closure is a statement whose
// header happens to carry a block, and a directive on the spawning
// statement must not silence every finding in the literal's body: the
// span is capped at the literal's opening brace, so suppressions
// inside the body go on the offending lines themselves.
func stmtEndsByLine(fset *token.FileSet, f *ast.File) map[int]int {
	ends := map[int]int{}
	record := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		ast.Inspect(n, func(m ast.Node) bool {
			if fl, ok := m.(*ast.FuncLit); ok {
				if brace := fset.Position(fl.Body.Lbrace).Line; brace < end {
					end = brace
				}
				return false
			}
			return true
		})
		if end > ends[start] {
			ends[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt,
			*ast.DeferStmt, *ast.GoStmt, *ast.SendStmt,
			*ast.DeclStmt, *ast.IncDecStmt, *ast.ValueSpec,
			*ast.Field:
			record(n)
		}
		return true
	})
	return ends
}

// parseRuleList extracts rule names from the directive tail; an
// empty tail means all rules ("*").
func parseRuleList(s string) map[string]bool {
	out := map[string]bool{}
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	}) {
		if AnalyzerByName(tok) != nil || tok == "all" || tok == "*" {
			if tok == "all" {
				tok = "*"
			}
			out[tok] = true
		} else {
			// Unknown word: treat the directive as prose from here on.
			break
		}
	}
	if len(out) == 0 {
		out["*"] = true
	}
	return out
}

// suppressed reports whether the finding is covered by a directive.
func (s ignoreSet) suppressed(f Finding) bool {
	byLine, ok := s[f.Pos.Filename]
	if !ok {
		return false
	}
	rules, ok := byLine[f.Pos.Line]
	if !ok {
		return false
	}
	return rules["*"] || rules[f.Rule]
}
